#!/usr/bin/env bash
# Tiered local CI gate. Run from the repo root.
#
#   ci.sh quick   fmt + clippy + pl-lint (workspace static analysis:
#                 wire invariants, panic paths, atomics orderings,
#                 metric/experiment doc drift) + shellcheck +
#                 offline-dep check + unit tests (the fast pre-push
#                 loop; targets < 2 minutes warm)
#   ci.sh full    quick tier + release build + workspace tests + the
#                 encode/query, observability, chaos, cluster, router
#                 front-end, distributed-tracing, and live-reconfiguration
#                 smokes
#   ci.sh bench   release build + cut-down e17/e22/e23 runs, gated
#                 against the committed quick-mode baselines in
#                 bench/baselines/ (fails on >20% qps regression or >5%
#                 tracing overhead); reports land in results/
#   ci.sh soak    a sustained chaos soak: verified load against a
#                 fault-injecting server for CI_SOAK_SECS (default 60)
#                 seconds — every pass must exit 0 with zero mismatches
#
# No argument means `full` (the historical behaviour). Every step is
# wall-clock timed; a summary table prints at the end (and is written to
# $CI_SUMMARY_FILE when that is set), and the script exits non-zero if
# any step failed. Steps run fail-fast: the first failure skips the rest
# but still prints the table. All smokes bind port 0 and parse the bound
# address from the server's own output, so parallel CI runs never race
# on a port.
set -uo pipefail
cd "$(dirname "$0")"

TIER="${1:-full}"
case "$TIER" in
    quick|full|bench|soak) ;;
    *) echo "usage: ci.sh [quick|full|bench|soak]" >&2; exit 2 ;;
esac

smoke_dir="$(mktemp -d)"
serve_pids=()
cleanup() {
    for pid in "${serve_pids[@]:-}"; do
        [ -n "$pid" ] && kill "$pid" 2> /dev/null
    done
    rm -rf "$smoke_dir"
}
trap cleanup EXIT

STEP_NAMES=()
STEP_TIMES=()
STEP_STATUS=()

print_summary() {
    {
        echo
        printf '%-34s %8s  %s\n' "step" "time" "status"
        printf '%-34s %8s  %s\n' "----" "----" "------"
        local i
        for i in "${!STEP_NAMES[@]}"; do
            printf '%-34s %7ss  %s\n' \
                "${STEP_NAMES[$i]}" "${STEP_TIMES[$i]}" "${STEP_STATUS[$i]}"
        done
    } | tee "${CI_SUMMARY_FILE:-/dev/null}"
}

# run_step NAME CMD...: times CMD (a command or shell function, run in a
# `set -e` subshell so internal failures propagate) and records the
# outcome. On failure, prints the summary and exits 1 immediately.
run_step() {
    local name="$1"
    shift
    echo "==> $name"
    local t0=$SECONDS status
    if (set -e; "$@"); then
        status=ok
    else
        status=FAIL
    fi
    STEP_NAMES+=("$name")
    STEP_TIMES+=($((SECONDS - t0)))
    STEP_STATUS+=("$status")
    if [ "$status" = FAIL ]; then
        echo "ci: step '$name' failed" >&2
        print_summary
        exit 1
    fi
}

# wait_addr LOG SED_EXPR: polls LOG (up to ~10s) until SED_EXPR captures
# a host:port from it, then prints that address. The servers all print
# their bound address once up, so this doubles as the readiness wait.
wait_addr() {
    local log="$1" expr="$2" try addr
    for try in $(seq 1 100); do
        addr="$(sed -n "$expr" "$log" 2> /dev/null | head -n 1)"
        if [ -n "$addr" ]; then
            echo "$addr"
            return 0
        fi
        sleep 0.1
    done
    echo "ci: no address matched '$expr' in $log after 10s" >&2
    return 1
}

serve_addr_expr='s/^listening on \(.*\)$/\1/p'
router_addr_expr='s/^router listening on \([^ ]*\) .*/\1/p'
prom_addr_expr='s#^prometheus metrics on http://\([^/]*\)/metrics$#\1#p'

# scrape ADDR: fetch http://ADDR/metrics, with a raw /dev/tcp fallback
# for hosts without curl.
scrape() {
    local addr="$1"
    if command -v curl > /dev/null; then
        curl -sf "http://$addr/metrics"
    else
        exec 3<> "/dev/tcp/${addr%:*}/${addr##*:}"
        printf 'GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n' >&3
        cat <&3
        exec 3>&-
    fi
}

# Every dependency must resolve inside the workspace (path deps only):
# this repo builds offline, and a stray source of any kind in the
# lockfile would break that silently until the next cold machine. Path
# dependencies carry no `source` line at all, so *any* `source =` entry
# — registry, git, or anything cargo grows next — is a violation.
offline_deps() {
    if grep -En '^source = ' Cargo.lock; then
        echo "ci: Cargo.lock contains a non-path dependency source" >&2
        return 1
    fi
}

# Lint this script itself when shellcheck is available; CI images that
# lack it skip the step rather than failing the tier.
shellcheck_self() {
    if command -v shellcheck > /dev/null; then
        shellcheck ci.sh
    else
        echo "shellcheck not installed; skipping"
    fi
}

encode_query_smoke() {
    local plab=target/release/plab
    "$plab" gen --model chung-lu --n 2000 --alpha 2.5 --avg-degree 5 --seed 7 \
        --out "$smoke_dir/g.el"
    "$plab" encode --scheme powerlaw --alpha 2.5 --threads 4 "$smoke_dir/g.el" \
        --out "$smoke_dir/g.plab"
    "$plab" encode --scheme powerlaw --alpha 2.5 "$smoke_dir/g.el" \
        --out "$smoke_dir/g1.plab"
    cmp "$smoke_dir/g.plab" "$smoke_dir/g1.plab" \
        || { echo "ci: --threads 4 encode is not bit-identical to single-threaded" >&2; return 1; }
    printf '0 1\n1 0\n0 1999\n' | "$plab" query "$smoke_dir/g.plab" --stdin \
        > "$smoke_dir/answers"
    [ "$(wc -l < "$smoke_dir/answers")" -eq 3 ] \
        || { echo "ci: query --stdin answered wrong line count" >&2; return 1; }
    if grep -Evq '^(true|false)$' "$smoke_dir/answers"; then
        echo "ci: query --stdin produced a non-boolean answer" >&2
        return 1
    fi
}

observability_smoke() {
    local plab=target/release/plab
    # Encode with tracing: the JSONL must carry the encode-phase spans.
    "$plab" encode --scheme powerlaw --alpha 2.5 "$smoke_dir/g.el" \
        --out "$smoke_dir/g2.plab" --trace "$smoke_dir/encode_trace.jsonl"
    grep -q '"name":"encode.fat_thin_encode"' "$smoke_dir/encode_trace.jsonl" \
        || { echo "ci: encode trace JSONL lacks the fat/thin encode span" >&2; return 1; }
    grep -q '"name":"encode.arena_pack"' "$smoke_dir/encode_trace.jsonl" \
        || { echo "ci: encode trace JSONL lacks the arena pack span" >&2; return 1; }

    # Serve with the Prometheus sidecar, drive a little load, scrape, drain.
    "$plab" serve "$smoke_dir/g.plab" --addr 127.0.0.1:0 \
        --prom 127.0.0.1:0 --trace --slow-us 1 --duration 12 \
        2> "$smoke_dir/serve.log" &
    serve_pids+=($!)
    local serve_pid=$!
    local addr prom
    addr="$(wait_addr "$smoke_dir/serve.log" "$serve_addr_expr")" || return 1
    prom="$(wait_addr "$smoke_dir/serve.log" "$prom_addr_expr")" || return 1
    "$plab" loadgen "$addr" --connections 2 --requests 2000 --batch 50 \
        --skew zipf:1.2 > "$smoke_dir/loadgen.out"
    scrape "$prom" > "$smoke_dir/metrics.prom"
    local metric
    for metric in plserve_adj_queries_total plserve_cache_hits_total \
                  plserve_cache_hit_ratio plserve_query_latency_ns \
                  plserve_slow_queries_total; do
        grep -q "$metric" "$smoke_dir/metrics.prom" \
            || { echo "ci: scrape is missing $metric" >&2; return 1; }
    done
    "$plab" stats "$addr" --prom | grep -q '^plserve_qps ' \
        || { echo "ci: plab stats --prom lacks plserve_qps" >&2; return 1; }
    "$plab" trace "$addr" --out "$smoke_dir/serve_trace.jsonl"
    grep -q '"name":"serve.slow_query"' "$smoke_dir/serve_trace.jsonl" \
        || { echo "ci: serve trace JSONL lacks slow-query events" >&2; return 1; }
    wait "$serve_pid"
}

# Chaos smoke: a fixed-seed fault plan injects dropped/truncated/flipped
# reply frames and simulated store errors; the retrying loadgen must
# finish with exit 0 and zero wrong answers (--verify checks every
# adjacency answer against the graph), and the server must report the
# injected faults over STATS.
chaos_smoke() {
    local plab=target/release/plab
    "$plab" gen --model chung-lu --n 2000 --alpha 2.5 --avg-degree 5 --seed 11 \
        --out "$smoke_dir/c.el"
    "$plab" encode --scheme tau:8 "$smoke_dir/c.el" --out "$smoke_dir/c.plab"
    "$plab" serve "$smoke_dir/c.plab" --addr 127.0.0.1:0 --duration 18 \
        --fault-plan "seed=7,flip=0.04,truncate=0.03,drop=0.02,store_err=0.03,delay_ms=1" \
        2> "$smoke_dir/chaos_serve.log" &
    serve_pids+=($!)
    local chaos_pid=$!
    local addr
    addr="$(wait_addr "$smoke_dir/chaos_serve.log" "$serve_addr_expr")" || return 1
    "$plab" health "$addr" > "$smoke_dir/chaos_health.out" \
        || { echo "ci: plab health failed against the chaos server" >&2; return 1; }
    grep -q '^healthy' "$smoke_dir/chaos_health.out" \
        || { echo "ci: chaos server did not report healthy shards" >&2; return 1; }
    # Exit 0 here is the correctness assert: --verify makes loadgen exit
    # nonzero if any retried answer disagrees with the graph.
    "$plab" loadgen "$addr" --connections 2 --requests 2000 --batch 32 \
        --skew zipf:1.2 --retries 3 --deadline-ms 200 --verify "$smoke_dir/c.el" \
        > "$smoke_dir/chaos_loadgen.out" \
        || { echo "ci: chaos loadgen failed (wrong answers or unrecovered faults)" >&2; return 1; }
    grep -q 'verified against reference graph: 0 mismatches' "$smoke_dir/chaos_loadgen.out" \
        || { echo "ci: chaos loadgen did not report zero mismatches" >&2; return 1; }
    # The stats fetch itself can draw an injected fault; retry a few times.
    local try
    for try in $(seq 1 20); do
        if "$plab" stats "$addr" --prom > "$smoke_dir/chaos.prom" 2> /dev/null; then
            break
        fi
        sleep 0.1
    done
    grep '^plserve_faults_injected_total' "$smoke_dir/chaos.prom" \
        | awk '{ exit !($2 > 0) }' \
        || { echo "ci: chaos server reported no injected faults" >&2; return 1; }
    wait "$chaos_pid"
}

# Cluster smoke: a 3-backend / 2-replica local cluster behind the
# scatter-gather router; the verifying loadgen runs against the router
# while one backend is SIGKILLed mid-run. Replication must absorb the
# loss: exit 0, zero mismatches, and a failover counter that moved.
cluster_smoke() {
    local plab=target/release/plab
    "$plab" gen --model chung-lu --n 2000 --alpha 2.5 --avg-degree 5 --seed 13 \
        --out "$smoke_dir/k.el"
    "$plab" encode --scheme tau:8 "$smoke_dir/k.el" --out "$smoke_dir/k.plab"
    "$plab" cluster launch "$smoke_dir/k.plab" --backends 3 --replicas 2 --seed 13 \
        --addr 127.0.0.1:0 --prom 127.0.0.1:0 --duration 30 \
        --dir "$smoke_dir/cluster" 2> "$smoke_dir/cluster_launch.log" &
    serve_pids+=($!)
    local launch_pid=$!
    local router prom
    router="$(wait_addr "$smoke_dir/cluster_launch.log" "$router_addr_expr")" \
        || { echo "ci: cluster router never came up" >&2; return 1; }
    prom="$(wait_addr "$smoke_dir/cluster_launch.log" "$prom_addr_expr")" || return 1
    # First pass: all three backends alive.
    "$plab" loadgen "$router" --connections 2 --requests 1500 --batch 32 \
        --skew zipf:1.2 --retries 3 --deadline-ms 400 --verify "$smoke_dir/k.el" \
        > "$smoke_dir/cluster_loadgen1.out" \
        || { echo "ci: cluster loadgen failed with all backends alive" >&2; return 1; }
    grep -q 'verified against reference graph: 0 mismatches' "$smoke_dir/cluster_loadgen1.out" \
        || { echo "ci: cluster loadgen (pre-kill) reported mismatches" >&2; return 1; }
    # SIGKILL one backend (pid printed by the launcher), then verify again:
    # the surviving replica of every vertex must keep answers exact.
    local victim
    victim="$(sed -n 's/^backend 0: pid \([0-9]*\) .*/\1/p' "$smoke_dir/cluster_launch.log")"
    [ -n "$victim" ] \
        || { echo "ci: could not find backend 0's pid in the launch log" >&2; return 1; }
    kill -9 "$victim"
    "$plab" loadgen "$router" --connections 2 --requests 1500 --batch 32 \
        --skew zipf:1.2 --retries 3 --deadline-ms 400 --verify "$smoke_dir/k.el" \
        > "$smoke_dir/cluster_loadgen2.out" \
        || { echo "ci: cluster loadgen failed after killing a backend" >&2; return 1; }
    grep -q 'verified against reference graph: 0 mismatches' "$smoke_dir/cluster_loadgen2.out" \
        || { echo "ci: cluster loadgen (post-kill) reported mismatches" >&2; return 1; }
    # The router's scrape surface must show the failover machinery moved.
    scrape "$prom" > "$smoke_dir/cluster.prom" \
        || { echo "ci: could not scrape the router" >&2; return 1; }
    grep '^plcluster_failover_total' "$smoke_dir/cluster.prom" \
        | awk '{ s += $2 } END { exit !(s > 0) }' \
        || { echo "ci: router reported no failovers despite a dead backend" >&2; return 1; }
    grep -q '^plcluster_fanout_total' "$smoke_dir/cluster.prom" \
        || { echo "ci: router scrape lacks plcluster_fanout_total" >&2; return 1; }
    wait "$launch_pid"
}

# Router front-end smoke: the router serves through the shared pl-wire
# front-end, so `--max-conns` and `--fault-plan` must work on it exactly
# as on `plab serve`. Two held raw connections fill a cap of 2, a third
# must be shed at accept, and router-side injected faults must be
# absorbed by the retrying loadgen — both counters visible over the
# router's own STATS.
router_front_smoke() {
    local plab=target/release/plab
    "$plab" cluster launch "$smoke_dir/k.plab" --backends 2 --replicas 2 --seed 17 \
        --addr 127.0.0.1:0 --duration 30 --max-conns 2 \
        --fault-plan "seed=7,flip=0.02" \
        --dir "$smoke_dir/cluster_front" 2> "$smoke_dir/front_launch.log" &
    serve_pids+=($!)
    local front_pid=$!
    local router host port
    router="$(wait_addr "$smoke_dir/front_launch.log" "$router_addr_expr")" \
        || { echo "ci: front-end cluster router never came up" >&2; return 1; }
    host="${router%:*}"
    port="${router##*:}"
    # Claim both slots with idle connections, then poke a third: the
    # router must shed it at accept (slot claimed before handshake).
    exec 8<> "/dev/tcp/$host/$port"
    exec 9<> "/dev/tcp/$host/$port"
    (exec 7<> "/dev/tcp/$host/$port") 2> /dev/null
    sleep 0.5
    exec 8>&- 8<&- 9>&- 9<&-
    # With the slots free again, verified load through the faulty router
    # must still end with zero mismatches (retries absorb the flips).
    "$plab" loadgen "$router" --connections 2 --requests 1000 --batch 32 \
        --skew zipf:1.2 --retries 5 --deadline-ms 400 --verify "$smoke_dir/k.el" \
        > "$smoke_dir/front_loadgen.out" \
        || { echo "ci: loadgen failed against the capped+faulty router" >&2; return 1; }
    grep -q 'verified against reference graph: 0 mismatches' "$smoke_dir/front_loadgen.out" \
        || { echo "ci: front-end loadgen reported mismatches" >&2; return 1; }
    # The stats fetch can itself draw an injected fault; retry a few times.
    local try
    for try in $(seq 1 20); do
        if "$plab" stats "$router" --prom > "$smoke_dir/front.prom" 2> /dev/null; then
            break
        fi
        sleep 0.1
    done
    grep '^plserve_shed_total' "$smoke_dir/front.prom" \
        | awk '{ exit !($2 > 0) }' \
        || { echo "ci: router shed counter did not move under --max-conns 2" >&2; return 1; }
    grep '^plserve_faults_injected_total' "$smoke_dir/front.prom" \
        | awk '{ exit !($2 > 0) }' \
        || { echo "ci: router fault counter did not move under --fault-plan" >&2; return 1; }
    wait "$front_pid"
}

# Tracing smoke: a 3×2 cluster launched with --trace, one traced probe
# batch through the router over protocol v5, then the router's merged
# cluster-wide TRACE_DUMP. The probe's trace id must appear both on a
# router-origin line and on at least one backend-origin line — that is
# wire propagation across real process boundaries, which the in-process
# tests cannot see — and --explain must render the per-hop breakdown.
tracing_smoke() {
    local plab=target/release/plab
    "$plab" cluster launch "$smoke_dir/k.plab" --backends 3 --replicas 2 --seed 19 \
        --addr 127.0.0.1:0 --duration 30 --trace \
        --dir "$smoke_dir/cluster_trace" 2> "$smoke_dir/trace_launch.log" &
    serve_pids+=($!)
    local trace_pid=$!
    local router
    router="$(wait_addr "$smoke_dir/trace_launch.log" "$router_addr_expr")" \
        || { echo "ci: tracing cluster router never came up" >&2; return 1; }
    # One command: traced probe batch, merged cluster drain, explain.
    "$plab" trace --cluster "$router" --probe --explain probe \
        --out "$smoke_dir/merged_trace.jsonl" \
        > "$smoke_dir/trace_explain.out" 2> "$smoke_dir/trace_probe.log" \
        || { echo "ci: traced probe through the router failed" >&2
             cat "$smoke_dir/trace_probe.log" >&2; return 1; }
    local hex
    hex="$(sed -n 's/^probe trace id: \([0-9a-f]*\)$/\1/p' "$smoke_dir/trace_probe.log")"
    [ -n "$hex" ] || { echo "ci: probe did not print a trace id" >&2; return 1; }
    grep "\"trace\":\"$hex\"" "$smoke_dir/merged_trace.jsonl" \
        | grep -q '"origin":"router"' \
        || { echo "ci: merged trace lacks a router-origin span for probe $hex" >&2; return 1; }
    grep "\"trace\":\"$hex\"" "$smoke_dir/merged_trace.jsonl" \
        | grep -q '"origin":"b' \
        || { echo "ci: merged trace lacks a backend-origin span for probe $hex" >&2; return 1; }
    grep -q 'router.scatter' "$smoke_dir/trace_explain.out" \
        || { echo "ci: --explain output lacks the router.scatter hop" >&2; return 1; }
    grep -q 'per-hop decomposition' "$smoke_dir/trace_explain.out" \
        || { echo "ci: --explain output lacks the per-hop decomposition" >&2; return 1; }
    wait "$trace_pid"
}

# Reconfiguration smoke: a 3×2 cluster scales out to a stub-booted
# fourth backend and then retires backend 0 — epoch 1 → 2 → 3 — while a
# looping verified workload runs throughout. Every loadgen pass must
# exit 0 with zero mismatches, both rebalances must report the epoch
# they reached, and the router's scrape must show two committed epochs
# and a nonzero migrated-vertex count.
reconfig_smoke() {
    local plab=target/release/plab
    "$plab" cluster launch "$smoke_dir/k.plab" --backends 3 --replicas 2 --seed 23 \
        --addr 127.0.0.1:0 --prom 127.0.0.1:0 --duration 120 \
        --dir "$smoke_dir/cluster_reconfig" 2> "$smoke_dir/reconfig_launch.log" &
    serve_pids+=($!)
    local launch_pid=$!
    local router prom
    router="$(wait_addr "$smoke_dir/reconfig_launch.log" "$router_addr_expr")" \
        || { echo "ci: reconfig cluster router never came up" >&2; return 1; }
    prom="$(wait_addr "$smoke_dir/reconfig_launch.log" "$prom_addr_expr")" || return 1

    # The joiner: the full labeling reduced to prelude stubs, served as
    # a partial store — it answers nothing until the rebalance streams
    # its share of real labels over.
    "$plab" cluster stub "$smoke_dir/k.plab" --out "$smoke_dir/k_stub.plab"
    "$plab" serve "$smoke_dir/k_stub.plab" --partial --addr 127.0.0.1:0 --duration 120 \
        2> "$smoke_dir/joiner.log" &
    serve_pids+=($!)
    local joiner
    joiner="$(wait_addr "$smoke_dir/joiner.log" "$serve_addr_expr")" || return 1

    # Continuous verified load for the whole double-rollout: loop
    # loadgen passes until told to stop, fail-fast on any bad pass.
    : > "$smoke_dir/reconfig_loadgen.out"
    (
        while [ ! -f "$smoke_dir/load_stop" ]; do
            "$plab" loadgen "$router" --connections 2 --requests 1000 --batch 32 \
                --skew zipf:1.2 --retries 3 --deadline-ms 400 --verify "$smoke_dir/k.el" \
                >> "$smoke_dir/reconfig_loadgen.out" 2>&1 \
                || { touch "$smoke_dir/load_failed"; break; }
        done
    ) &
    local load_pid=$!

    "$plab" cluster rebalance "$smoke_dir/k.plab" --router "$router" --add "$joiner" \
        > "$smoke_dir/rebalance_add.out" \
        || { echo "ci: rebalance --add failed" >&2; return 1; }
    grep -q 'rebalanced epoch 1 -> 2' "$smoke_dir/rebalance_add.out" \
        || { echo "ci: scale-out did not reach epoch 2" >&2; return 1; }
    "$plab" cluster rebalance "$smoke_dir/k.plab" --router "$router" --remove 0 \
        > "$smoke_dir/rebalance_remove.out" \
        || { echo "ci: rebalance --remove failed" >&2; return 1; }
    grep -q 'rebalanced epoch 2 -> 3' "$smoke_dir/rebalance_remove.out" \
        || { echo "ci: scale-in did not reach epoch 3" >&2; return 1; }

    touch "$smoke_dir/load_stop"
    wait "$load_pid"
    [ ! -f "$smoke_dir/load_failed" ] \
        || { echo "ci: verified loadgen failed during reconfiguration" >&2
             tail -n 5 "$smoke_dir/reconfig_loadgen.out" >&2; return 1; }
    local passes
    passes="$(grep -c 'verified against reference graph: 0 mismatches' \
        "$smoke_dir/reconfig_loadgen.out")"
    [ "$passes" -ge 1 ] \
        || { echo "ci: no verified loadgen pass completed during reconfiguration" >&2; return 1; }
    if grep -q 'mismatches' "$smoke_dir/reconfig_loadgen.out" \
        && grep 'verified against reference graph' "$smoke_dir/reconfig_loadgen.out" \
            | grep -vq ' 0 mismatches'; then
        echo "ci: reconfiguration loadgen reported mismatches" >&2
        return 1
    fi

    # The router's counters must record both rollouts and a real move.
    scrape "$prom" > "$smoke_dir/reconfig.prom" \
        || { echo "ci: could not scrape the reconfigured router" >&2; return 1; }
    grep '^plcluster_reconfig_epochs_total' "$smoke_dir/reconfig.prom" \
        | awk '{ exit !($2 == 2) }' \
        || { echo "ci: router did not count exactly 2 committed epochs" >&2; return 1; }
    grep '^plcluster_reconfig_vertices_moved_total' "$smoke_dir/reconfig.prom" \
        | awk '{ exit !($2 > 0) }' \
        || { echo "ci: router counted no migrated vertices" >&2; return 1; }
    grep '^plcluster_reconfig_rollbacks_total' "$smoke_dir/reconfig.prom" \
        | awk '{ exit !($2 == 0) }' \
        || { echo "ci: a healthy rollout recorded a rollback" >&2; return 1; }

    # The cluster stays up (duration 120) — tear it down explicitly
    # rather than idling CI: launcher, its backends, and the joiner.
    sed -n 's/^backend [0-9]*: pid \([0-9]*\).*/\1/p' "$smoke_dir/reconfig_launch.log" \
        | xargs -r kill 2> /dev/null
    kill "$launch_pid" 2> /dev/null
    wait "$launch_pid" 2> /dev/null
    return 0
}

# Chaos soak: verified load against a fault-injecting server, looped for
# CI_SOAK_SECS seconds. Nightly CI runs this after the full tier; every
# pass must exit 0 (retries absorb the faults) with zero mismatches.
soak_chaos() {
    local plab=target/release/plab
    local secs="${CI_SOAK_SECS:-60}"
    "$plab" gen --model chung-lu --n 2000 --alpha 2.5 --avg-degree 5 --seed 29 \
        --out "$smoke_dir/s.el"
    "$plab" encode --scheme tau:8 "$smoke_dir/s.el" --out "$smoke_dir/s.plab"
    "$plab" serve "$smoke_dir/s.plab" --addr 127.0.0.1:0 --duration $((secs + 60)) \
        --fault-plan "seed=7,flip=0.04,truncate=0.03,drop=0.02,store_err=0.03,delay_ms=1" \
        2> "$smoke_dir/soak_serve.log" &
    serve_pids+=($!)
    local soak_pid=$!
    local addr
    addr="$(wait_addr "$smoke_dir/soak_serve.log" "$serve_addr_expr")" || return 1
    local t0=$SECONDS passes=0
    while [ $((SECONDS - t0)) -lt "$secs" ]; do
        "$plab" loadgen "$addr" --connections 2 --requests 2000 --batch 32 \
            --skew zipf:1.2 --retries 3 --deadline-ms 200 --verify "$smoke_dir/s.el" \
            > "$smoke_dir/soak_loadgen.out" \
            || { echo "ci: soak loadgen failed on pass $((passes + 1))" >&2; return 1; }
        grep -q 'verified against reference graph: 0 mismatches' "$smoke_dir/soak_loadgen.out" \
            || { echo "ci: soak pass $((passes + 1)) reported mismatches" >&2; return 1; }
        passes=$((passes + 1))
    done
    echo "soak: $passes verified passes in ${secs}s, all clean"
    kill "$soak_pid" 2> /dev/null
    wait "$soak_pid" 2> /dev/null
    return 0
}

# Bench-regression gate: cut-down (--quick) runs of the serving,
# batch-execution, and tracing benches, compared against the committed
# quick-mode baselines. bench_gate fails on a >20% qps drop or >5%
# absolute tracing overhead on gated rows.
bench_e17() { target/release/e17_serving --quick --out results/BENCH_serve.json; }
bench_e22() { target/release/e22_batch_exec --quick --out results/BENCH_batch.json; }
bench_e23() { target/release/e23_tracing --quick --out results/BENCH_trace.json; }
gate_serve() {
    target/release/bench_gate bench/baselines/BENCH_serve.json results/BENCH_serve.json
}
gate_batch() {
    target/release/bench_gate bench/baselines/BENCH_batch.json results/BENCH_batch.json
}
gate_trace() {
    target/release/bench_gate bench/baselines/BENCH_trace.json results/BENCH_trace.json
}

# Dep hygiene: the cluster crate must take its transport from pl-wire —
# never from pl-serve's internals (serve's protocol/fault/metrics
# modules are compatibility re-export shims over pl-wire, not a layer
# other crates may build on).
dep_hygiene() {
    cargo tree -p pl-cluster --edges normal | grep -q 'pl-wire' \
        || { echo "ci: pl-cluster lost its pl-wire dependency" >&2; return 1; }
    if grep -rEn 'pl_serve::(protocol|fault|metrics|server)\b' crates/cluster/src; then
        echo "ci: pl-cluster reaches pl-serve transport shims instead of pl-wire" >&2
        return 1
    fi
}

case "$TIER" in
quick|full)
    run_step "cargo fmt --check"      cargo fmt --all --check
    run_step "cargo clippy -D warnings" cargo clippy --workspace --all-targets -- -D warnings
    run_step "pl-lint"                cargo run -q -p pl-lint --release -- --workspace
    run_step "shellcheck ci.sh"       shellcheck_self
    run_step "offline dep check"      offline_deps
    run_step "dep hygiene"            dep_hygiene
    run_step "unit tests"             cargo test -q
    if [ "$TIER" = full ]; then
        run_step "release build"          cargo build --release
        run_step "workspace tests"        cargo test --workspace -q
        run_step "encode/query smoke"     encode_query_smoke
        run_step "observability smoke"    observability_smoke
        run_step "chaos smoke"            chaos_smoke
        run_step "cluster smoke"          cluster_smoke
        run_step "router front-end smoke" router_front_smoke
        run_step "tracing smoke"          tracing_smoke
        run_step "reconfiguration smoke"  reconfig_smoke
    fi
    ;;
bench)
    mkdir -p results
    run_step "release build (bench)"  cargo build --release -p pl-bench --bins
    run_step "bench e17 serving"      bench_e17
    run_step "bench e22 batch"        bench_e22
    run_step "bench e23 tracing"      bench_e23
    run_step "gate e17 vs baseline"   gate_serve
    run_step "gate e22 vs baseline"   gate_batch
    run_step "gate e23 vs baseline"   gate_trace
    ;;
soak)
    run_step "release build (plab)"   cargo build --release --bin plab
    run_step "chaos soak"             soak_chaos
    ;;
esac

print_summary
echo "ci ($TIER): all green"
