#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Run from the repo root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> plab encode/query smoke (parallel encode round-trip)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
plab="target/release/plab"
"$plab" gen --model chung-lu --n 2000 --alpha 2.5 --avg-degree 5 --seed 7 \
    --out "$smoke_dir/g.el"
"$plab" encode --scheme powerlaw --alpha 2.5 --threads 4 "$smoke_dir/g.el" \
    --out "$smoke_dir/g.plab"
"$plab" encode --scheme powerlaw --alpha 2.5 "$smoke_dir/g.el" \
    --out "$smoke_dir/g1.plab"
cmp "$smoke_dir/g.plab" "$smoke_dir/g1.plab" \
    || { echo "ci: --threads 4 encode is not bit-identical to single-threaded" >&2; exit 1; }
printf '0 1\n1 0\n0 1999\n' | "$plab" query "$smoke_dir/g.plab" --stdin \
    > "$smoke_dir/answers"
[ "$(wc -l < "$smoke_dir/answers")" -eq 3 ] \
    || { echo "ci: query --stdin answered wrong line count" >&2; exit 1; }
if grep -Evq '^(true|false)$' "$smoke_dir/answers"; then
    echo "ci: query --stdin produced a non-boolean answer" >&2
    exit 1
fi

echo "ci: all green"
