#!/usr/bin/env bash
# Tiered local CI gate. Run from the repo root.
#
#   ci.sh quick   fmt + clippy + offline-dep check + unit tests
#                 (the fast pre-push loop; targets < 2 minutes warm)
#   ci.sh full    quick tier + release build + workspace tests + the
#                 encode/query, observability, chaos, cluster, router
#                 front-end, and distributed-tracing smokes
#
# No argument means `full` (the historical behaviour). Every step is
# wall-clock timed; a summary table prints at the end, and the script
# exits non-zero if any step failed. Steps run fail-fast: the first
# failure skips the rest but still prints the table.
set -uo pipefail
cd "$(dirname "$0")"

TIER="${1:-full}"
case "$TIER" in
    quick|full) ;;
    *) echo "usage: ci.sh [quick|full]" >&2; exit 2 ;;
esac

smoke_dir="$(mktemp -d)"
serve_pids=()
cleanup() {
    for pid in "${serve_pids[@]:-}"; do
        [ -n "$pid" ] && kill "$pid" 2> /dev/null
    done
    rm -rf "$smoke_dir"
}
trap cleanup EXIT

STEP_NAMES=()
STEP_TIMES=()
STEP_STATUS=()

print_summary() {
    echo
    printf '%-34s %8s  %s\n' "step" "time" "status"
    printf '%-34s %8s  %s\n' "----" "----" "------"
    local i
    for i in "${!STEP_NAMES[@]}"; do
        printf '%-34s %7ss  %s\n' \
            "${STEP_NAMES[$i]}" "${STEP_TIMES[$i]}" "${STEP_STATUS[$i]}"
    done
}

# run_step NAME CMD...: times CMD (a command or shell function, run in a
# `set -e` subshell so internal failures propagate) and records the
# outcome. On failure, prints the summary and exits 1 immediately.
run_step() {
    local name="$1"
    shift
    echo "==> $name"
    local t0=$SECONDS status
    if (set -e; "$@"); then
        status=ok
    else
        status=FAIL
    fi
    STEP_NAMES+=("$name")
    STEP_TIMES+=($((SECONDS - t0)))
    STEP_STATUS+=("$status")
    if [ "$status" = FAIL ]; then
        echo "ci: step '$name' failed" >&2
        print_summary
        exit 1
    fi
}

# Every dependency must resolve inside the workspace (path deps only):
# this repo builds offline, and a stray crates.io or git source in the
# lockfile would break that silently until the next cold machine.
offline_deps() {
    if grep -En 'source = "(registry|git)' Cargo.lock; then
        echo "ci: Cargo.lock contains a non-path dependency source" >&2
        return 1
    fi
}

encode_query_smoke() {
    local plab=target/release/plab
    "$plab" gen --model chung-lu --n 2000 --alpha 2.5 --avg-degree 5 --seed 7 \
        --out "$smoke_dir/g.el"
    "$plab" encode --scheme powerlaw --alpha 2.5 --threads 4 "$smoke_dir/g.el" \
        --out "$smoke_dir/g.plab"
    "$plab" encode --scheme powerlaw --alpha 2.5 "$smoke_dir/g.el" \
        --out "$smoke_dir/g1.plab"
    cmp "$smoke_dir/g.plab" "$smoke_dir/g1.plab" \
        || { echo "ci: --threads 4 encode is not bit-identical to single-threaded" >&2; return 1; }
    printf '0 1\n1 0\n0 1999\n' | "$plab" query "$smoke_dir/g.plab" --stdin \
        > "$smoke_dir/answers"
    [ "$(wc -l < "$smoke_dir/answers")" -eq 3 ] \
        || { echo "ci: query --stdin answered wrong line count" >&2; return 1; }
    if grep -Evq '^(true|false)$' "$smoke_dir/answers"; then
        echo "ci: query --stdin produced a non-boolean answer" >&2
        return 1
    fi
}

observability_smoke() {
    local plab=target/release/plab
    # Encode with tracing: the JSONL must carry the encode-phase spans.
    "$plab" encode --scheme powerlaw --alpha 2.5 "$smoke_dir/g.el" \
        --out "$smoke_dir/g2.plab" --trace "$smoke_dir/encode_trace.jsonl"
    grep -q '"name":"encode.fat_thin_encode"' "$smoke_dir/encode_trace.jsonl" \
        || { echo "ci: encode trace JSONL lacks the fat/thin encode span" >&2; return 1; }
    grep -q '"name":"encode.arena_pack"' "$smoke_dir/encode_trace.jsonl" \
        || { echo "ci: encode trace JSONL lacks the arena pack span" >&2; return 1; }

    # Serve with the Prometheus sidecar, drive a little load, scrape, drain.
    "$plab" serve "$smoke_dir/g.plab" --addr 127.0.0.1:7421 \
        --prom 127.0.0.1:7422 --trace --slow-us 1 --duration 12 \
        2> "$smoke_dir/serve.log" &
    serve_pids+=($!)
    local serve_pid=$!
    sleep 1
    "$plab" loadgen 127.0.0.1:7421 --connections 2 --requests 2000 --batch 50 \
        --skew zipf:1.2 > "$smoke_dir/loadgen.out"
    scrape() {
        if command -v curl > /dev/null; then
            curl -sf "http://127.0.0.1:7422/metrics"
        else
            # Fallback scraper: raw HTTP over bash's /dev/tcp.
            exec 3<> /dev/tcp/127.0.0.1/7422
            printf 'GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n' >&3
            cat <&3
            exec 3>&-
        fi
    }
    scrape > "$smoke_dir/metrics.prom"
    local metric
    for metric in plserve_adj_queries_total plserve_cache_hits_total \
                  plserve_cache_hit_ratio plserve_query_latency_ns \
                  plserve_slow_queries_total; do
        grep -q "$metric" "$smoke_dir/metrics.prom" \
            || { echo "ci: scrape is missing $metric" >&2; return 1; }
    done
    "$plab" stats 127.0.0.1:7421 --prom | grep -q '^plserve_qps ' \
        || { echo "ci: plab stats --prom lacks plserve_qps" >&2; return 1; }
    "$plab" trace 127.0.0.1:7421 --out "$smoke_dir/serve_trace.jsonl"
    grep -q '"name":"serve.slow_query"' "$smoke_dir/serve_trace.jsonl" \
        || { echo "ci: serve trace JSONL lacks slow-query events" >&2; return 1; }
    wait "$serve_pid"
}

# Chaos smoke: a fixed-seed fault plan injects dropped/truncated/flipped
# reply frames and simulated store errors; the retrying loadgen must
# finish with exit 0 and zero wrong answers (--verify checks every
# adjacency answer against the graph), and the server must report the
# injected faults over STATS.
chaos_smoke() {
    local plab=target/release/plab
    "$plab" gen --model chung-lu --n 2000 --alpha 2.5 --avg-degree 5 --seed 11 \
        --out "$smoke_dir/c.el"
    "$plab" encode --scheme tau:8 "$smoke_dir/c.el" --out "$smoke_dir/c.plab"
    "$plab" serve "$smoke_dir/c.plab" --addr 127.0.0.1:7431 --duration 18 \
        --fault-plan "seed=7,flip=0.04,truncate=0.03,drop=0.02,store_err=0.03,delay_ms=1" \
        2> "$smoke_dir/chaos_serve.log" &
    serve_pids+=($!)
    local chaos_pid=$!
    sleep 1
    "$plab" health 127.0.0.1:7431 > "$smoke_dir/chaos_health.out" \
        || { echo "ci: plab health failed against the chaos server" >&2; return 1; }
    grep -q '^healthy' "$smoke_dir/chaos_health.out" \
        || { echo "ci: chaos server did not report healthy shards" >&2; return 1; }
    # Exit 0 here is the correctness assert: --verify makes loadgen exit
    # nonzero if any retried answer disagrees with the graph.
    "$plab" loadgen 127.0.0.1:7431 --connections 2 --requests 2000 --batch 32 \
        --skew zipf:1.2 --retries 3 --deadline-ms 200 --verify "$smoke_dir/c.el" \
        > "$smoke_dir/chaos_loadgen.out" \
        || { echo "ci: chaos loadgen failed (wrong answers or unrecovered faults)" >&2; return 1; }
    grep -q 'verified against reference graph: 0 mismatches' "$smoke_dir/chaos_loadgen.out" \
        || { echo "ci: chaos loadgen did not report zero mismatches" >&2; return 1; }
    # The stats fetch itself can draw an injected fault; retry a few times.
    local try
    for try in $(seq 1 20); do
        if "$plab" stats 127.0.0.1:7431 --prom > "$smoke_dir/chaos.prom" 2> /dev/null; then
            break
        fi
        sleep 0.1
    done
    grep '^plserve_faults_injected_total' "$smoke_dir/chaos.prom" \
        | awk '{ exit !($2 > 0) }' \
        || { echo "ci: chaos server reported no injected faults" >&2; return 1; }
    wait "$chaos_pid"
}

# Cluster smoke: a 3-backend / 2-replica local cluster behind the
# scatter-gather router; the verifying loadgen runs against the router
# while one backend is SIGKILLed mid-run. Replication must absorb the
# loss: exit 0, zero mismatches, and a failover counter that moved.
cluster_smoke() {
    local plab=target/release/plab
    "$plab" gen --model chung-lu --n 2000 --alpha 2.5 --avg-degree 5 --seed 13 \
        --out "$smoke_dir/k.el"
    "$plab" encode --scheme tau:8 "$smoke_dir/k.el" --out "$smoke_dir/k.plab"
    "$plab" cluster launch "$smoke_dir/k.plab" --backends 3 --replicas 2 --seed 13 \
        --addr 127.0.0.1:7441 --prom 127.0.0.1:7442 --duration 30 \
        --dir "$smoke_dir/cluster" 2> "$smoke_dir/cluster_launch.log" &
    serve_pids+=($!)
    local launch_pid=$!
    # Wait for the router to come up (the launcher prints each backend
    # first, router last).
    local try
    for try in $(seq 1 50); do
        grep -q 'router listening on' "$smoke_dir/cluster_launch.log" && break
        sleep 0.2
    done
    grep -q 'router listening on' "$smoke_dir/cluster_launch.log" \
        || { echo "ci: cluster router never came up" >&2; return 1; }
    # First pass: all three backends alive.
    "$plab" loadgen 127.0.0.1:7441 --connections 2 --requests 1500 --batch 32 \
        --skew zipf:1.2 --retries 3 --deadline-ms 400 --verify "$smoke_dir/k.el" \
        > "$smoke_dir/cluster_loadgen1.out" \
        || { echo "ci: cluster loadgen failed with all backends alive" >&2; return 1; }
    grep -q 'verified against reference graph: 0 mismatches' "$smoke_dir/cluster_loadgen1.out" \
        || { echo "ci: cluster loadgen (pre-kill) reported mismatches" >&2; return 1; }
    # SIGKILL one backend (pid printed by the launcher), then verify again:
    # the surviving replica of every vertex must keep answers exact.
    local victim
    victim="$(sed -n 's/^backend 0: pid \([0-9]*\) .*/\1/p' "$smoke_dir/cluster_launch.log")"
    [ -n "$victim" ] \
        || { echo "ci: could not find backend 0's pid in the launch log" >&2; return 1; }
    kill -9 "$victim"
    "$plab" loadgen 127.0.0.1:7441 --connections 2 --requests 1500 --batch 32 \
        --skew zipf:1.2 --retries 3 --deadline-ms 400 --verify "$smoke_dir/k.el" \
        > "$smoke_dir/cluster_loadgen2.out" \
        || { echo "ci: cluster loadgen failed after killing a backend" >&2; return 1; }
    grep -q 'verified against reference graph: 0 mismatches' "$smoke_dir/cluster_loadgen2.out" \
        || { echo "ci: cluster loadgen (post-kill) reported mismatches" >&2; return 1; }
    # The router's scrape surface must show the failover machinery moved.
    cluster_scrape() {
        if command -v curl > /dev/null; then
            curl -sf "http://127.0.0.1:7442/metrics"
        else
            exec 3<> /dev/tcp/127.0.0.1/7442
            printf 'GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n' >&3
            cat <&3
            exec 3>&-
        fi
    }
    cluster_scrape > "$smoke_dir/cluster.prom" \
        || { echo "ci: could not scrape the router" >&2; return 1; }
    grep '^plcluster_failover_total' "$smoke_dir/cluster.prom" \
        | awk '{ s += $2 } END { exit !(s > 0) }' \
        || { echo "ci: router reported no failovers despite a dead backend" >&2; return 1; }
    grep -q '^plcluster_fanout_total' "$smoke_dir/cluster.prom" \
        || { echo "ci: router scrape lacks plcluster_fanout_total" >&2; return 1; }
    wait "$launch_pid"
}

# Router front-end smoke: the router serves through the shared pl-wire
# front-end, so `--max-conns` and `--fault-plan` must work on it exactly
# as on `plab serve`. Two held raw connections fill a cap of 2, a third
# must be shed at accept, and router-side injected faults must be
# absorbed by the retrying loadgen — both counters visible over the
# router's own STATS.
router_front_smoke() {
    local plab=target/release/plab
    "$plab" cluster launch "$smoke_dir/k.plab" --backends 2 --replicas 2 --seed 17 \
        --addr 127.0.0.1:7451 --duration 30 --max-conns 2 \
        --fault-plan "seed=7,flip=0.02" \
        --dir "$smoke_dir/cluster_front" 2> "$smoke_dir/front_launch.log" &
    serve_pids+=($!)
    local front_pid=$!
    local try
    for try in $(seq 1 50); do
        grep -q 'router listening on' "$smoke_dir/front_launch.log" && break
        sleep 0.2
    done
    grep -q 'router listening on' "$smoke_dir/front_launch.log" \
        || { echo "ci: front-end cluster router never came up" >&2; return 1; }
    # Claim both slots with idle connections, then poke a third: the
    # router must shed it at accept (slot claimed before handshake).
    exec 8<> /dev/tcp/127.0.0.1/7451
    exec 9<> /dev/tcp/127.0.0.1/7451
    (exec 7<> /dev/tcp/127.0.0.1/7451) 2> /dev/null
    sleep 0.5
    exec 8>&- 8<&- 9>&- 9<&-
    # With the slots free again, verified load through the faulty router
    # must still end with zero mismatches (retries absorb the flips).
    "$plab" loadgen 127.0.0.1:7451 --connections 2 --requests 1000 --batch 32 \
        --skew zipf:1.2 --retries 5 --deadline-ms 400 --verify "$smoke_dir/k.el" \
        > "$smoke_dir/front_loadgen.out" \
        || { echo "ci: loadgen failed against the capped+faulty router" >&2; return 1; }
    grep -q 'verified against reference graph: 0 mismatches' "$smoke_dir/front_loadgen.out" \
        || { echo "ci: front-end loadgen reported mismatches" >&2; return 1; }
    # The stats fetch can itself draw an injected fault; retry a few times.
    for try in $(seq 1 20); do
        if "$plab" stats 127.0.0.1:7451 --prom > "$smoke_dir/front.prom" 2> /dev/null; then
            break
        fi
        sleep 0.1
    done
    grep '^plserve_shed_total' "$smoke_dir/front.prom" \
        | awk '{ exit !($2 > 0) }' \
        || { echo "ci: router shed counter did not move under --max-conns 2" >&2; return 1; }
    grep '^plserve_faults_injected_total' "$smoke_dir/front.prom" \
        | awk '{ exit !($2 > 0) }' \
        || { echo "ci: router fault counter did not move under --fault-plan" >&2; return 1; }
    wait "$front_pid"
}

# Tracing smoke: a 3×2 cluster launched with --trace, one traced probe
# batch through the router over protocol v5, then the router's merged
# cluster-wide TRACE_DUMP. The probe's trace id must appear both on a
# router-origin line and on at least one backend-origin line — that is
# wire propagation across real process boundaries, which the in-process
# tests cannot see — and --explain must render the per-hop breakdown.
tracing_smoke() {
    local plab=target/release/plab
    "$plab" cluster launch "$smoke_dir/k.plab" --backends 3 --replicas 2 --seed 19 \
        --addr 127.0.0.1:7461 --duration 30 --trace \
        --dir "$smoke_dir/cluster_trace" 2> "$smoke_dir/trace_launch.log" &
    serve_pids+=($!)
    local trace_pid=$!
    local try
    for try in $(seq 1 50); do
        grep -q 'router listening on' "$smoke_dir/trace_launch.log" && break
        sleep 0.2
    done
    grep -q 'router listening on' "$smoke_dir/trace_launch.log" \
        || { echo "ci: tracing cluster router never came up" >&2; return 1; }
    # One command: traced probe batch, merged cluster drain, explain.
    "$plab" trace --cluster 127.0.0.1:7461 --probe --explain probe \
        --out "$smoke_dir/merged_trace.jsonl" \
        > "$smoke_dir/trace_explain.out" 2> "$smoke_dir/trace_probe.log" \
        || { echo "ci: traced probe through the router failed" >&2
             cat "$smoke_dir/trace_probe.log" >&2; return 1; }
    local hex
    hex="$(sed -n 's/^probe trace id: \([0-9a-f]*\)$/\1/p' "$smoke_dir/trace_probe.log")"
    [ -n "$hex" ] || { echo "ci: probe did not print a trace id" >&2; return 1; }
    grep "\"trace\":\"$hex\"" "$smoke_dir/merged_trace.jsonl" \
        | grep -q '"origin":"router"' \
        || { echo "ci: merged trace lacks a router-origin span for probe $hex" >&2; return 1; }
    grep "\"trace\":\"$hex\"" "$smoke_dir/merged_trace.jsonl" \
        | grep -q '"origin":"b' \
        || { echo "ci: merged trace lacks a backend-origin span for probe $hex" >&2; return 1; }
    grep -q 'router.scatter' "$smoke_dir/trace_explain.out" \
        || { echo "ci: --explain output lacks the router.scatter hop" >&2; return 1; }
    grep -q 'per-hop decomposition' "$smoke_dir/trace_explain.out" \
        || { echo "ci: --explain output lacks the per-hop decomposition" >&2; return 1; }
    wait "$trace_pid"
}

# Dep hygiene: the cluster crate must take its transport from pl-wire —
# never from pl-serve's internals (serve's protocol/fault/metrics
# modules are compatibility re-export shims over pl-wire, not a layer
# other crates may build on).
dep_hygiene() {
    cargo tree -p pl-cluster --edges normal | grep -q 'pl-wire' \
        || { echo "ci: pl-cluster lost its pl-wire dependency" >&2; return 1; }
    if grep -rEn 'pl_serve::(protocol|fault|metrics|server)\b' crates/cluster/src; then
        echo "ci: pl-cluster reaches pl-serve transport shims instead of pl-wire" >&2
        return 1
    fi
}

run_step "cargo fmt --check"      cargo fmt --all --check
run_step "cargo clippy -D warnings" cargo clippy --workspace --all-targets -- -D warnings
run_step "offline dep check"      offline_deps
run_step "dep hygiene"            dep_hygiene
run_step "unit tests"             cargo test -q

if [ "$TIER" = full ]; then
    run_step "release build"          cargo build --release
    run_step "workspace tests"        cargo test --workspace -q
    run_step "encode/query smoke"     encode_query_smoke
    run_step "observability smoke"    observability_smoke
    run_step "chaos smoke"            chaos_smoke
    run_step "cluster smoke"          cluster_smoke
    run_step "router front-end smoke" router_front_smoke
    run_step "tracing smoke"          tracing_smoke
fi

print_summary
echo "ci ($TIER): all green"
