#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Run from the repo root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> plab encode/query smoke (parallel encode round-trip)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
plab="target/release/plab"
"$plab" gen --model chung-lu --n 2000 --alpha 2.5 --avg-degree 5 --seed 7 \
    --out "$smoke_dir/g.el"
"$plab" encode --scheme powerlaw --alpha 2.5 --threads 4 "$smoke_dir/g.el" \
    --out "$smoke_dir/g.plab"
"$plab" encode --scheme powerlaw --alpha 2.5 "$smoke_dir/g.el" \
    --out "$smoke_dir/g1.plab"
cmp "$smoke_dir/g.plab" "$smoke_dir/g1.plab" \
    || { echo "ci: --threads 4 encode is not bit-identical to single-threaded" >&2; exit 1; }
printf '0 1\n1 0\n0 1999\n' | "$plab" query "$smoke_dir/g.plab" --stdin \
    > "$smoke_dir/answers"
[ "$(wc -l < "$smoke_dir/answers")" -eq 3 ] \
    || { echo "ci: query --stdin answered wrong line count" >&2; exit 1; }
if grep -Evq '^(true|false)$' "$smoke_dir/answers"; then
    echo "ci: query --stdin produced a non-boolean answer" >&2
    exit 1
fi

echo "==> observability smoke (prom scrape + trace JSONL)"
# Encode with tracing: the JSONL must carry the encode-phase spans.
"$plab" encode --scheme powerlaw --alpha 2.5 "$smoke_dir/g.el" \
    --out "$smoke_dir/g2.plab" --trace "$smoke_dir/encode_trace.jsonl"
grep -q '"name":"encode.fat_thin_encode"' "$smoke_dir/encode_trace.jsonl" \
    || { echo "ci: encode trace JSONL lacks the fat/thin encode span" >&2; exit 1; }
grep -q '"name":"encode.arena_pack"' "$smoke_dir/encode_trace.jsonl" \
    || { echo "ci: encode trace JSONL lacks the arena pack span" >&2; exit 1; }

# Serve with the Prometheus sidecar, drive a little load, scrape, drain.
"$plab" serve "$smoke_dir/g.plab" --addr 127.0.0.1:7421 \
    --prom 127.0.0.1:7422 --trace --slow-us 1 --duration 12 \
    2> "$smoke_dir/serve.log" &
serve_pid=$!
sleep 1
"$plab" loadgen 127.0.0.1:7421 --connections 2 --requests 2000 --batch 50 \
    --skew zipf:1.2 > "$smoke_dir/loadgen.out"
scrape() {
    if command -v curl > /dev/null; then
        curl -sf "http://127.0.0.1:7422/metrics"
    else
        # Fallback scraper: raw HTTP over bash's /dev/tcp.
        exec 3<> /dev/tcp/127.0.0.1/7422
        printf 'GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n' >&3
        cat <&3
        exec 3>&-
    fi
}
scrape > "$smoke_dir/metrics.prom"
for metric in plserve_adj_queries_total plserve_cache_hits_total \
              plserve_cache_hit_ratio plserve_query_latency_ns \
              plserve_slow_queries_total; do
    grep -q "$metric" "$smoke_dir/metrics.prom" \
        || { echo "ci: scrape is missing $metric" >&2; exit 1; }
done
"$plab" stats 127.0.0.1:7421 --prom | grep -q '^plserve_qps ' \
    || { echo "ci: plab stats --prom lacks plserve_qps" >&2; exit 1; }
"$plab" trace 127.0.0.1:7421 --out "$smoke_dir/serve_trace.jsonl"
grep -q '"name":"serve.slow_query"' "$smoke_dir/serve_trace.jsonl" \
    || { echo "ci: serve trace JSONL lacks slow-query events" >&2; exit 1; }
wait "$serve_pid"

echo "ci: all green"
