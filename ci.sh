#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Run from the repo root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "ci: all green"
