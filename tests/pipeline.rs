//! End-to-end integration tests spanning every crate: generate → fit →
//! choose scheme → encode → decode, exercised the way a downstream user
//! would drive the library.

use powerlaw_labeling::gen;
use powerlaw_labeling::graph::traversal::bfs_distances;
use powerlaw_labeling::labeling::scheme::{AdjacencyDecoder, AdjacencyScheme};
use powerlaw_labeling::labeling::{
    DistanceScheme, OneQueryDecoder, OneQueryScheme, PowerLawScheme, SparseScheme,
};
use powerlaw_labeling::stats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// The full paper pipeline: generate a power-law graph, fit α from the
/// degree distribution, build the Theorem 4 scheme from the fit, and
/// verify both correctness and the label-size guarantee.
#[test]
fn fit_then_label_pipeline() {
    let mut r = rng(1);
    let n = 20_000;
    let g = gen::chung_lu_power_law(n, 2.5, 5.0, &mut r);

    let degrees: Vec<u64> = g.vertices().map(|v| g.degree(v) as u64).collect();
    let fit = stats::fit_power_law(&degrees, 50, 50).expect("fit succeeds");
    assert!((fit.alpha - 2.5).abs() < 0.5, "fit {fit:?}");

    let scheme = PowerLawScheme::new(fit.alpha);
    let labeling = scheme.encode(&g);
    let dec = scheme.decoder();

    for (u, v) in g.edges().take(2_000) {
        assert!(dec.adjacent(labeling.label(u), labeling.label(v)));
    }
    for _ in 0..2_000 {
        let u = r.gen_range(0..n as u32);
        let v = r.gen_range(0..n as u32);
        assert_eq!(
            dec.adjacent(labeling.label(u), labeling.label(v)),
            g.has_edge(u, v)
        );
    }
}

/// Every adjacency scheme family agrees with every other on the same graph.
#[test]
fn schemes_agree_pairwise() {
    let mut r = rng(2);
    let g = gen::chung_lu_power_law(2_000, 2.5, 4.0, &mut r);

    let thm4 = PowerLawScheme::new(2.5);
    let thm3 = SparseScheme::for_graph(&g);
    let l4 = thm4.encode(&g);
    let l3 = thm3.encode(&g);
    let adj = powerlaw_labeling::labeling::baseline::AdjListScheme.encode(&g);
    let ori = powerlaw_labeling::labeling::forest::OrientationScheme.encode(&g);
    let oq = OneQueryScheme.encode(&g, &mut r);

    let d4 = thm4.decoder();
    let d3 = thm3.decoder();
    let dadj = powerlaw_labeling::labeling::baseline::AdjListDecoder;
    let dori = powerlaw_labeling::labeling::forest::OrientationDecoder;
    let doq = OneQueryDecoder;

    for _ in 0..5_000 {
        let u = r.gen_range(0..2_000u32);
        let v = r.gen_range(0..2_000u32);
        let answers = [
            d4.adjacent(l4.label(u), l4.label(v)),
            d3.adjacent(l3.label(u), l3.label(v)),
            dadj.adjacent(adj.label(u), adj.label(v)),
            dori.adjacent(ori.label(u), ori.label(v)),
            doq.adjacent_with(oq.label(u), oq.label(v), |t| oq.label(t as u32)),
        ];
        assert!(
            answers.iter().all(|&a| a == answers[0]),
            "schemes disagree on ({u}, {v}): {answers:?}"
        );
        assert_eq!(answers[0], g.has_edge(u, v));
    }
}

/// The lower-bound machinery composes with the upper-bound machinery: a
/// `P_l` host labels correctly and the label of the embedded `H` region
/// reproduces `H`'s adjacency.
#[test]
fn lower_bound_embedding_labels_correctly() {
    let mut r = rng(3);
    let n = 10_000;
    let alpha = 2.5;
    let k = stats::PaperConstants::new(n, alpha);
    let h = gen::er::gnp(k.i1, 0.5, &mut r);
    let emb = gen::embed_in_p_l(&h, n, alpha, &mut r);

    let scheme = PowerLawScheme::new(alpha);
    let labeling = scheme.encode(&emb.graph);
    let dec = scheme.decoder();

    // Adjacency inside the embedded H, answered purely from labels,
    // must equal H's own adjacency.
    for a in 0..h.vertex_count() as u32 {
        for b in 0..h.vertex_count() as u32 {
            let (ga, gb) = (emb.host[a as usize], emb.host[b as usize]);
            assert_eq!(
                dec.adjacent(labeling.label(ga), labeling.label(gb)),
                h.has_edge(a, b),
                "H pair ({a}, {b})"
            );
        }
    }
}

/// Distance labels built on the generated graph agree with BFS.
#[test]
fn distance_oracle_pipeline() {
    let mut r = rng(4);
    let n = 3_000;
    let g = gen::chung_lu_power_law(n, 2.5, 5.0, &mut r);
    let f = 3u32;
    let scheme = DistanceScheme::new(2.5, f);
    let labeling = scheme.encode(&g);
    let dec = scheme.decoder();

    for _ in 0..4 {
        let u = r.gen_range(0..n as u32);
        let truth = bfs_distances(&g, u);
        for _ in 0..500 {
            let v = r.gen_range(0..n as u32);
            let want = match truth[v as usize] {
                powerlaw_labeling::graph::UNREACHABLE => None,
                d if d > f => None,
                d => Some(d),
            };
            assert_eq!(dec.distance(labeling.label(u), labeling.label(v)), want);
        }
    }
}

/// The facade crate re-exports compose: a user can reach every subsystem
/// through `powerlaw_labeling::*`.
#[test]
fn facade_reexports_compose() {
    let mut r = rng(5);
    let g = powerlaw_labeling::gen::classic::cycle(10);
    let ph = powerlaw_labeling::hash::PerfectHash::build(&[1, 2, 3], &mut r).unwrap();
    assert!(ph.contains(2));
    assert_eq!(g.edge_count(), 10);
    assert!((powerlaw_labeling::stats::zeta(2.0) - 1.6449).abs() < 1e-3);
    let lab = powerlaw_labeling::labeling::ThresholdScheme::with_tau(2).encode(&g);
    assert!(lab.max_bits() > 0);
}

/// Serialization round trip: a graph written to the edge-list format and
/// read back yields identical labels under a deterministic scheme.
#[test]
fn io_round_trip_preserves_labels() {
    let mut r = rng(6);
    let g = gen::chung_lu_power_law(1_000, 2.5, 4.0, &mut r);
    let text = powerlaw_labeling::graph::io::to_edge_list(&g);
    let g2 = powerlaw_labeling::graph::io::from_edge_list(&text).unwrap();
    assert_eq!(g, g2);

    let s = PowerLawScheme::new(2.5);
    let l1 = s.encode(&g);
    let l2 = s.encode(&g2);
    for v in g.vertices() {
        assert_eq!(l1.label(v), l2.label(v));
    }
}

/// A distance scheme with budget f = 1 is an adjacency scheme: the
/// decoders must agree pair-by-pair.
#[test]
fn distance_f1_is_adjacency() {
    let mut r = rng(7);
    let g = gen::chung_lu_power_law(1_500, 2.5, 4.0, &mut r);
    let dist = DistanceScheme::new(2.5, 1);
    let dist_l = dist.encode(&g);
    let ddec = dist.decoder();
    let adj = PowerLawScheme::new(2.5);
    let adj_l = adj.encode(&g);
    let adec = adj.decoder();
    for _ in 0..5_000 {
        let u = r.gen_range(0..1_500u32);
        let v = r.gen_range(0..1_500u32);
        let d = ddec.distance(dist_l.label(u), dist_l.label(v));
        let a = adec.adjacent(adj_l.label(u), adj_l.label(v));
        match d {
            Some(0) => assert_eq!(u, v),
            Some(1) => assert!(a, "({u}, {v})"),
            Some(x) => panic!("budget 1 scheme returned {x}"),
            None => assert!(!a && u != v, "({u}, {v})"),
        }
    }
}

/// The compressed and plain threshold decoders agree everywhere and with
/// ground truth, label by label.
#[test]
fn compressed_and_plain_threshold_agree() {
    use powerlaw_labeling::labeling::compressed::CompressedThresholdScheme;
    use powerlaw_labeling::labeling::ThresholdScheme;
    let mut r = rng(8);
    let g = gen::chung_lu_power_law(1_000, 2.5, 5.0, &mut r);
    for tau in [3usize, 12, 60] {
        let plain = ThresholdScheme::with_tau(tau);
        let comp = CompressedThresholdScheme::with_tau(tau);
        let pl = plain.encode(&g);
        let cl = comp.encode(&g);
        let pd = plain.decoder();
        let cd = comp.decoder();
        for _ in 0..3_000 {
            let u = r.gen_range(0..1_000u32);
            let v = r.gen_range(0..1_000u32);
            let want = g.has_edge(u, v);
            assert_eq!(pd.adjacent(pl.label(u), pl.label(v)), want);
            assert_eq!(cd.adjacent(cl.label(u), cl.label(v)), want);
        }
    }
}
