//! Integration tests for the `plab` command-line tool: the gen → stats →
//! fit → encode → query pipeline a user would run from a shell.

use std::path::PathBuf;
use std::process::{Command, Output};

fn plab(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_plab"))
        .args(args)
        .output()
        .expect("plab should launch")
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("plab-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn help_prints_usage() {
    let out = plab(&["--help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn unknown_subcommand_fails() {
    let out = plab(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn gen_stats_fit_pipeline() {
    let graph = tmp("pipeline.el");
    let out = plab(&[
        "gen",
        "--model",
        "chung-lu",
        "--n",
        "3000",
        "--alpha",
        "2.5",
        "--seed",
        "7",
        "--out",
        graph.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = plab(&["stats", graph.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("vertices       3000"), "{text}");
    assert!(text.contains("degeneracy"));

    let out = plab(&["fit", graph.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    let alpha_line = text.lines().find(|l| l.starts_with("alpha")).unwrap();
    let alpha: f64 = alpha_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    assert!((alpha - 2.5).abs() < 0.6, "fitted alpha {alpha}");

    let _ = std::fs::remove_file(graph);
}

#[test]
fn encode_and_query_agree_with_graph() {
    let graph = tmp("enc.el");
    let labels = tmp("enc.plab");
    assert!(plab(&[
        "gen",
        "--model",
        "ba",
        "--n",
        "500",
        "--m-param",
        "2",
        "--seed",
        "3",
        "--out",
        graph.to_str().unwrap(),
    ])
    .status
    .success());

    for scheme in [
        "powerlaw",
        "sparse",
        "adjlist",
        "orientation",
        "moon",
        "tau:8",
    ] {
        let mut args = vec!["encode", "--scheme", scheme];
        let alpha_args = ["--alpha", "3.0"];
        if scheme == "powerlaw" {
            args.extend_from_slice(&alpha_args);
        }
        args.extend_from_slice(&[graph.to_str().unwrap(), "--out", labels.to_str().unwrap()]);
        let out = plab(&args);
        assert!(
            out.status.success(),
            "{scheme}: {}",
            String::from_utf8_lossy(&out.stderr)
        );

        // Reload the graph to pick true/false query pairs.
        let text = std::fs::read_to_string(&graph).unwrap();
        let g = pl_graph::io::from_edge_list(&text).unwrap();
        let (u, v) = g.edges().next().unwrap();
        let out = plab(&[
            "query",
            labels.to_str().unwrap(),
            &u.to_string(),
            &v.to_string(),
        ]);
        assert!(out.status.success());
        assert_eq!(
            String::from_utf8_lossy(&out.stdout).trim(),
            "true",
            "{scheme}"
        );

        // A guaranteed non-edge: a vertex with itself.
        let out = plab(&["query", labels.to_str().unwrap(), "0", "0"]);
        assert_eq!(
            String::from_utf8_lossy(&out.stdout).trim(),
            "false",
            "{scheme}"
        );
    }

    let _ = std::fs::remove_file(graph);
    let _ = std::fs::remove_file(labels);
}

#[test]
fn query_rejects_out_of_range() {
    let graph = tmp("range.el");
    let labels = tmp("range.plab");
    assert!(plab(&[
        "gen",
        "--model",
        "er",
        "--n",
        "50",
        "--edges",
        "100",
        "--out",
        graph.to_str().unwrap(),
    ])
    .status
    .success());
    assert!(plab(&[
        "encode",
        "--scheme",
        "adjlist",
        graph.to_str().unwrap(),
        "--out",
        labels.to_str().unwrap(),
    ])
    .status
    .success());
    let out = plab(&["query", labels.to_str().unwrap(), "0", "5000"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));

    let _ = std::fs::remove_file(graph);
    let _ = std::fs::remove_file(labels);
}

/// Runs `plab` with the given stdin content piped in.
fn plab_with_stdin(args: &[&str], input: &str) -> Output {
    use std::io::Write;
    let mut child = Command::new(env!("CARGO_BIN_EXE_plab"))
        .args(args)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("plab should launch");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("write stdin");
    child.wait_with_output().expect("plab should finish")
}

#[test]
fn query_stdin_answers_batches_and_rejects_garbage() {
    let graph = tmp("stdin.el");
    let labels = tmp("stdin.plab");
    assert!(plab(&[
        "gen",
        "--model",
        "ba",
        "--n",
        "200",
        "--m-param",
        "2",
        "--seed",
        "11",
        "--out",
        graph.to_str().unwrap(),
    ])
    .status
    .success());
    assert!(plab(&[
        "encode",
        "--scheme",
        "tau:4",
        graph.to_str().unwrap(),
        "--out",
        labels.to_str().unwrap(),
    ])
    .status
    .success());

    let text = std::fs::read_to_string(&graph).unwrap();
    let g = pl_graph::io::from_edge_list(&text).unwrap();
    let edges: Vec<(u32, u32)> = g.edges().take(5).collect();
    let mut input = String::from("# comment lines and blanks are skipped\n\n");
    for &(u, v) in &edges {
        input.push_str(&format!("{u} {v}\n"));
    }
    input.push_str("0 0\n");
    let out = plab_with_stdin(&["query", labels.to_str().unwrap(), "--stdin"], &input);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let answers: Vec<&str> = std::str::from_utf8(&out.stdout).unwrap().lines().collect();
    assert_eq!(answers.len(), edges.len() + 1);
    assert!(answers[..edges.len()].iter().all(|&a| a == "true"));
    assert_eq!(answers[edges.len()], "false");

    // Malformed pairs must exit non-zero, naming the offending line.
    for bad in ["0 zebra\n", "1\n", "1 2 3\n", "0 99999\n"] {
        let out = plab_with_stdin(&["query", labels.to_str().unwrap(), "--stdin"], bad);
        assert!(!out.status.success(), "input {bad:?} should fail");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("line 1"),
            "input {bad:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    let _ = std::fs::remove_file(graph);
    let _ = std::fs::remove_file(labels);
}

#[test]
fn encode_distance_scheme_and_query_adjacency() {
    let graph = tmp("dist.el");
    let labels = tmp("dist.plab");
    assert!(plab(&[
        "gen",
        "--model",
        "chung-lu",
        "--n",
        "400",
        "--alpha",
        "2.5",
        "--seed",
        "5",
        "--out",
        graph.to_str().unwrap(),
    ])
    .status
    .success());
    let out = plab(&[
        "encode",
        "--scheme",
        "distance",
        "--alpha",
        "2.5",
        "--f",
        "2",
        graph.to_str().unwrap(),
        "--out",
        labels.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&graph).unwrap();
    let g = pl_graph::io::from_edge_list(&text).unwrap();
    let (u, v) = g.edges().next().unwrap();
    let out = plab(&[
        "query",
        labels.to_str().unwrap(),
        &u.to_string(),
        &v.to_string(),
    ]);
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "true");

    let _ = std::fs::remove_file(graph);
    let _ = std::fs::remove_file(labels);
}

#[test]
fn serve_and_loadgen_round_trip() {
    use std::io::{BufRead, BufReader};

    let graph = tmp("serve.el");
    let labels = tmp("serve.plab");
    assert!(plab(&[
        "gen",
        "--model",
        "chung-lu",
        "--n",
        "1000",
        "--alpha",
        "2.5",
        "--seed",
        "9",
        "--out",
        graph.to_str().unwrap(),
    ])
    .status
    .success());
    assert!(plab(&[
        "encode",
        "--scheme",
        "powerlaw",
        "--alpha",
        "2.5",
        graph.to_str().unwrap(),
        "--out",
        labels.to_str().unwrap(),
    ])
    .status
    .success());

    // Port 0 lets the OS pick; the server reports the bound address on
    // stderr as "listening on 127.0.0.1:PORT".
    let mut server = Command::new(env!("CARGO_BIN_EXE_plab"))
        .args([
            "serve",
            labels.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--shards",
            "2",
        ])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("server should launch");
    let stderr = BufReader::new(server.stderr.take().expect("piped stderr"));
    let mut addr = None;
    for line in stderr.lines() {
        let line = line.expect("server stderr");
        if let Some(rest) = line.strip_prefix("listening on ") {
            addr = Some(rest.trim().to_string());
            break;
        }
    }
    let addr = addr.expect("server should report its address");

    let out = plab(&[
        "loadgen",
        &addr,
        "--connections",
        "2",
        "--requests",
        "2000",
        "--batch",
        "32",
        "--skew",
        "zipf:1.1",
    ]);
    let _ = server.kill();
    let _ = server.wait();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("4000 queries"), "{text}");
    assert!(text.contains("server stats"), "{text}");
    assert!(text.contains("qps"), "{text}");

    let _ = std::fs::remove_file(graph);
    let _ = std::fs::remove_file(labels);
}

#[test]
fn gen_rejects_bad_model_and_missing_n() {
    let out = plab(&["gen", "--model", "nope", "--n", "10"]);
    assert!(!out.status.success());
    let out = plab(&["gen", "--model", "er"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--n"));
}

#[test]
fn stats_ddist_prints_degree_classes() {
    let graph = tmp("ddist.el");
    assert!(plab(&[
        "gen",
        "--model",
        "chung-lu",
        "--n",
        "2000",
        "--alpha",
        "2.5",
        "--out",
        graph.to_str().unwrap(),
    ])
    .status
    .success());
    let out = plab(&["stats", graph.to_str().unwrap(), "--ddist"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("ddist"), "{text}");
    assert!(
        text.lines().any(|l| l.trim_start().starts_with('1')),
        "{text}"
    );
    let _ = std::fs::remove_file(graph);
}
