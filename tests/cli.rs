//! Integration tests for the `plab` command-line tool: the gen → stats →
//! fit → encode → query pipeline a user would run from a shell.

use std::path::PathBuf;
use std::process::{Command, Output};

fn plab(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_plab"))
        .args(args)
        .output()
        .expect("plab should launch")
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("plab-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn help_prints_usage() {
    let out = plab(&["--help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn unknown_subcommand_fails() {
    let out = plab(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn gen_stats_fit_pipeline() {
    let graph = tmp("pipeline.el");
    let out = plab(&[
        "gen",
        "--model",
        "chung-lu",
        "--n",
        "3000",
        "--alpha",
        "2.5",
        "--seed",
        "7",
        "--out",
        graph.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = plab(&["stats", graph.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("vertices       3000"), "{text}");
    assert!(text.contains("degeneracy"));

    let out = plab(&["fit", graph.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    let alpha_line = text.lines().find(|l| l.starts_with("alpha")).unwrap();
    let alpha: f64 = alpha_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    assert!((alpha - 2.5).abs() < 0.6, "fitted alpha {alpha}");

    let _ = std::fs::remove_file(graph);
}

#[test]
fn encode_and_query_agree_with_graph() {
    let graph = tmp("enc.el");
    let labels = tmp("enc.plab");
    assert!(plab(&[
        "gen",
        "--model",
        "ba",
        "--n",
        "500",
        "--m-param",
        "2",
        "--seed",
        "3",
        "--out",
        graph.to_str().unwrap(),
    ])
    .status
    .success());

    for scheme in [
        "powerlaw",
        "sparse",
        "adjlist",
        "orientation",
        "moon",
        "tau:8",
    ] {
        let mut args = vec!["encode", "--scheme", scheme];
        let alpha_args = ["--alpha", "3.0"];
        if scheme == "powerlaw" {
            args.extend_from_slice(&alpha_args);
        }
        args.extend_from_slice(&[graph.to_str().unwrap(), "--out", labels.to_str().unwrap()]);
        let out = plab(&args);
        assert!(
            out.status.success(),
            "{scheme}: {}",
            String::from_utf8_lossy(&out.stderr)
        );

        // Reload the graph to pick true/false query pairs.
        let text = std::fs::read_to_string(&graph).unwrap();
        let g = pl_graph::io::from_edge_list(&text).unwrap();
        let (u, v) = g.edges().next().unwrap();
        let out = plab(&[
            "query",
            labels.to_str().unwrap(),
            &u.to_string(),
            &v.to_string(),
        ]);
        assert!(out.status.success());
        assert_eq!(
            String::from_utf8_lossy(&out.stdout).trim(),
            "true",
            "{scheme}"
        );

        // A guaranteed non-edge: a vertex with itself.
        let out = plab(&["query", labels.to_str().unwrap(), "0", "0"]);
        assert_eq!(
            String::from_utf8_lossy(&out.stdout).trim(),
            "false",
            "{scheme}"
        );
    }

    let _ = std::fs::remove_file(graph);
    let _ = std::fs::remove_file(labels);
}

#[test]
fn query_rejects_out_of_range() {
    let graph = tmp("range.el");
    let labels = tmp("range.plab");
    assert!(plab(&[
        "gen",
        "--model",
        "er",
        "--n",
        "50",
        "--edges",
        "100",
        "--out",
        graph.to_str().unwrap(),
    ])
    .status
    .success());
    assert!(plab(&[
        "encode",
        "--scheme",
        "adjlist",
        graph.to_str().unwrap(),
        "--out",
        labels.to_str().unwrap(),
    ])
    .status
    .success());
    let out = plab(&["query", labels.to_str().unwrap(), "0", "5000"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));

    let _ = std::fs::remove_file(graph);
    let _ = std::fs::remove_file(labels);
}

#[test]
fn gen_rejects_bad_model_and_missing_n() {
    let out = plab(&["gen", "--model", "nope", "--n", "10"]);
    assert!(!out.status.success());
    let out = plab(&["gen", "--model", "er"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--n"));
}

#[test]
fn stats_ddist_prints_degree_classes() {
    let graph = tmp("ddist.el");
    assert!(plab(&[
        "gen",
        "--model",
        "chung-lu",
        "--n",
        "2000",
        "--alpha",
        "2.5",
        "--out",
        graph.to_str().unwrap(),
    ])
    .status
    .success());
    let out = plab(&["stats", graph.to_str().unwrap(), "--ddist"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("ddist"), "{text}");
    assert!(
        text.lines().any(|l| l.trim_start().starts_with('1')),
        "{text}"
    );
    let _ = std::fs::remove_file(graph);
}
