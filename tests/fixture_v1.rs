//! Compatibility test against a committed legacy (v1) `.plab` fixture.
//!
//! The fixture at `tests/fixtures/tiny_v1.plab` was written with the
//! per-label v1 wire format (`PLL1`) that predates the arena container.
//! The version-gated reader must keep loading it, and the labels it
//! carries must answer exactly the adjacency of a fresh encode of the
//! same graph. Regenerate (after an intentional format change only) with
//! `cargo test --test fixture_v1 -- --ignored`.

use pl_graph::Graph;
use pl_labeling::codec::{decode_adjacent, SchemeTag, TaggedLabeling};
use pl_labeling::scheme::AdjacencyScheme;
use pl_labeling::ThresholdScheme;

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/tiny_v1.plab");
const TAU: usize = 2;

/// The deterministic 8-vertex graph the fixture labels: a hub (0), a
/// triangle (1-2-3), a path tail, and an isolated vertex (7).
fn fixture_graph() -> Graph {
    pl_graph::builder::from_edges(
        8,
        [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (2, 3),
            (1, 3),
            (4, 5),
            (5, 6),
        ],
    )
}

/// Tag byte + legacy v1 labeling body, exactly as the old writer emitted.
fn fixture_bytes() -> Vec<u8> {
    let labeling = ThresholdScheme::with_tau(TAU).encode(&fixture_graph());
    let mut out = vec![SchemeTag::Threshold.as_u8()];
    out.extend_from_slice(&labeling.to_bytes_v1());
    out
}

#[test]
fn committed_v1_fixture_still_decodes() {
    let bytes = std::fs::read(FIXTURE).expect("fixture file present");
    assert_eq!(
        &bytes[1..5],
        b"PLL1",
        "fixture must stay in the legacy v1 format"
    );
    let tagged = TaggedLabeling::from_bytes(&bytes).expect("v1 body parses");
    assert_eq!(tagged.tag, SchemeTag::Threshold);

    let g = fixture_graph();
    let fresh = ThresholdScheme::with_tau(TAU).encode(&g);
    assert_eq!(tagged.labeling.len(), fresh.len());
    for u in g.vertices() {
        for v in g.vertices() {
            let from_fixture = decode_adjacent(
                tagged.tag,
                tagged.labeling.label(u),
                tagged.labeling.label(v),
            );
            assert_eq!(
                from_fixture,
                g.has_edge(u, v),
                "fixture answer for ({u},{v})"
            );
            assert_eq!(
                from_fixture,
                decode_adjacent(tagged.tag, fresh.label(u), fresh.label(v)),
                "fixture vs fresh encode for ({u},{v})"
            );
        }
    }
}

#[test]
fn fixture_bytes_match_writer() {
    // The committed bytes are exactly what the kept v1 writer emits, so
    // a silent change to either side fails loudly.
    let bytes = std::fs::read(FIXTURE).expect("fixture file present");
    assert_eq!(bytes, fixture_bytes());
}

#[test]
#[ignore = "writes the fixture; run only after an intentional format change"]
fn regenerate_fixture() {
    std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures"))
        .expect("create fixtures dir");
    std::fs::write(FIXTURE, fixture_bytes()).expect("write fixture");
}
