//! Property-based tests for the graph substrate.

use pl_graph::{builder::from_edges, GraphBuilder};
use proptest::prelude::*;
use std::collections::HashSet;

/// Strategy: vertex count and raw edge insertions (self-loops included, to
/// exercise the builder's cleaning).
fn arb_edges() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..40).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0..n as u32, 0..n as u32), 0..120),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn builder_matches_reference_set((n, edges) in arb_edges()) {
        let mut reference: HashSet<(u32, u32)> = HashSet::new();
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            if u != v {
                b.add_edge(u, v);
                reference.insert((u.min(v), u.max(v)));
            }
        }
        let g = b.build();
        prop_assert_eq!(g.edge_count(), reference.len());
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                prop_assert_eq!(
                    g.has_edge(u, v),
                    u != v && reference.contains(&(u.min(v), u.max(v)))
                );
            }
        }
        // Edge iterator emits exactly the reference set.
        let listed: HashSet<(u32, u32)> = g.edges().collect();
        prop_assert_eq!(listed, reference);
    }

    #[test]
    fn degree_sum_equals_twice_edges((n, edges) in arb_edges()) {
        let g = from_edges(n, edges.into_iter().filter(|(u, v)| u != v));
        prop_assert_eq!(g.degree_sum(), 2 * g.edge_count());
        let total: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(total, g.degree_sum());
    }

    #[test]
    fn bfs_is_lipschitz_on_edges((n, edges) in arb_edges()) {
        let g = from_edges(n, edges.into_iter().filter(|(u, v)| u != v));
        let d = pl_graph::traversal::bfs_distances(&g, 0);
        for (u, v) in g.edges() {
            let (du, dv) = (d[u as usize], d[v as usize]);
            if du != pl_graph::UNREACHABLE {
                prop_assert!(dv != pl_graph::UNREACHABLE);
                prop_assert!(du.abs_diff(dv) <= 1, "edge ({}, {}): {} vs {}", u, v, du, dv);
            }
        }
    }

    #[test]
    fn components_agree_with_bfs((n, edges) in arb_edges()) {
        let g = from_edges(n, edges.into_iter().filter(|(u, v)| u != v));
        let comps = pl_graph::components::connected_components(&g);
        let d = pl_graph::traversal::bfs_distances(&g, 0);
        for v in g.vertices() {
            prop_assert_eq!(
                comps.connected(0, v),
                d[v as usize] != pl_graph::UNREACHABLE
            );
        }
        let total: usize = comps.sizes().iter().sum();
        prop_assert_eq!(total, n);
    }

    #[test]
    fn orientation_partitions_edges((n, edges) in arb_edges()) {
        let g = from_edges(n, edges.into_iter().filter(|(u, v)| u != v));
        let o = pl_graph::degeneracy::orient_by_degeneracy(&g);
        prop_assert_eq!(o.arc_count(), g.edge_count());
        for (u, v) in g.edges() {
            prop_assert!(o.has_arc(u, v) ^ o.has_arc(v, u));
        }
        let d = pl_graph::degeneracy::degeneracy_ordering(&g);
        prop_assert_eq!(o.max_outdegree(), d.degeneracy);
    }

    #[test]
    fn degeneracy_bounds((n, edges) in arb_edges()) {
        let g = from_edges(n, edges.into_iter().filter(|(u, v)| u != v));
        let d = pl_graph::degeneracy::degeneracy_ordering(&g).degeneracy;
        prop_assert!(d <= g.max_degree());
        // Any graph with m edges has a vertex of degree <= 2m/n, and
        // degeneracy <= max over subgraphs of that: crude bound m >= d(d+1)/2.
        prop_assert!(g.edge_count() * 2 >= d * (d + 1));
    }

    #[test]
    fn pseudoforest_decomposition_is_partition((n, edges) in arb_edges()) {
        let g = from_edges(n, edges.into_iter().filter(|(u, v)| u != v));
        let dec = pl_graph::forest::decompose(&g);
        prop_assert_eq!(dec.edge_count(), g.edge_count());
        for u in g.vertices() {
            for v in g.vertices() {
                if u < v {
                    prop_assert_eq!(dec.has_edge(u, v), g.has_edge(u, v));
                }
            }
        }
    }

    #[test]
    fn induced_subgraph_preserves_adjacency((n, edges) in arb_edges(), pick in any::<u64>()) {
        let g = from_edges(n, edges.into_iter().filter(|(u, v)| u != v));
        // Deterministic pseudo-random subset from `pick`.
        let sel: Vec<u32> = (0..n as u32).filter(|&v| (pick >> (v % 64)) & 1 == 1).collect();
        let sub = pl_graph::view::induced_subgraph(&g, &sel);
        for i in 0..sub.graph.vertex_count() as u32 {
            for j in 0..sub.graph.vertex_count() as u32 {
                prop_assert_eq!(
                    sub.graph.has_edge(i, j),
                    g.has_edge(sub.to_original(i), sub.to_original(j))
                );
            }
        }
    }

    #[test]
    fn edge_list_io_round_trip((n, edges) in arb_edges()) {
        let g = from_edges(n, edges.into_iter().filter(|(u, v)| u != v));
        let text = pl_graph::io::to_edge_list(&g);
        let h = pl_graph::io::from_edge_list(&text).unwrap();
        prop_assert_eq!(g, h);
    }

    #[test]
    fn histogram_counts_sum_to_n((n, edges) in arb_edges()) {
        let g = from_edges(n, edges.into_iter().filter(|(u, v)| u != v));
        let h = pl_graph::degree::DegreeHistogram::of(&g);
        let total: usize = (0..=h.max_degree()).map(|k| h.count(k)).sum();
        prop_assert_eq!(total, n);
        prop_assert_eq!(h.tail_count(0), n);
    }
}
