//! Pseudoforest decomposition from a low-outdegree orientation.
//!
//! An orientation with maximum outdegree `k` partitions the edge set into
//! `k` *functional subgraphs*: subgraph `i` contains the `i`-th out-arc of
//! every vertex, so in subgraph `i` each vertex points to at most one other
//! vertex. Such a subgraph is a pseudoforest (each component has at most one
//! cycle), and — exactly like the forests of the paper's Proposition 5 — it
//! admits a trivially small adjacency labeling: each vertex records its one
//! "successor" per subgraph.

use crate::degeneracy::{orient_by_degeneracy, Orientation};
use crate::{Graph, VertexId};

/// A partition of a graph's edges into pseudoforests, each represented by a
/// successor (parent) pointer per vertex.
#[derive(Debug, Clone)]
pub struct PseudoforestDecomposition {
    /// `successor[i][v]` is `v`'s out-neighbour in pseudoforest `i`, if any.
    successor: Vec<Vec<Option<VertexId>>>,
}

impl PseudoforestDecomposition {
    /// Number of pseudoforests in the decomposition.
    #[must_use]
    pub fn forest_count(&self) -> usize {
        self.successor.len()
    }

    /// Number of vertices.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.successor.first().map_or(0, Vec::len)
    }

    /// The successor of `v` in pseudoforest `i`, if it has one.
    #[must_use]
    pub fn successor(&self, i: usize, v: VertexId) -> Option<VertexId> {
        self.successor[i][v as usize]
    }

    /// All successors of `v` across the decomposition (its out-neighbour
    /// list in the underlying orientation).
    #[must_use]
    pub fn successors_of(&self, v: VertexId) -> Vec<VertexId> {
        self.successor
            .iter()
            .filter_map(|f| f[v as usize])
            .collect()
    }

    /// Whether `{u, v}` is an edge of some pseudoforest (i.e. of the graph).
    #[must_use]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.successor
            .iter()
            .any(|f| f[u as usize] == Some(v) || f[v as usize] == Some(u))
    }

    /// Total number of edges across all pseudoforests.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.successor
            .iter()
            .map(|f| f.iter().filter(|s| s.is_some()).count())
            .sum()
    }
}

/// Decomposes an orientation into `max_outdegree` pseudoforests by sending
/// each vertex's `i`-th out-arc to pseudoforest `i`.
#[must_use]
pub fn decompose_orientation(o: &Orientation) -> PseudoforestDecomposition {
    let n = o.vertex_count();
    let k = o.max_outdegree();
    let mut successor = vec![vec![None; n]; k];
    for v in 0..n as VertexId {
        for (i, &w) in o.out_neighbors(v).iter().enumerate() {
            successor[i][v as usize] = Some(w);
        }
    }
    PseudoforestDecomposition { successor }
}

/// Convenience: degeneracy-orient `g` and decompose it into at most
/// `degeneracy(g)` pseudoforests (`<= 2 * arboricity(g) - 1` of them).
///
/// # Example
///
/// ```
/// // A tree decomposes into a single pseudoforest.
/// let g = pl_graph::builder::from_edges(4, [(0, 1), (1, 2), (1, 3)]);
/// let d = pl_graph::forest::decompose(&g);
/// assert_eq!(d.forest_count(), 1);
/// assert_eq!(d.edge_count(), 3);
/// ```
#[must_use]
pub fn decompose(g: &Graph) -> PseudoforestDecomposition {
    decompose_orientation(&orient_by_degeneracy(g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use crate::GraphBuilder;

    #[test]
    fn empty_graph_decomposes_to_nothing() {
        let d = decompose(&GraphBuilder::new(3).build());
        assert_eq!(d.forest_count(), 0);
        assert_eq!(d.edge_count(), 0);
    }

    #[test]
    fn decomposition_covers_all_edges_exactly_once() {
        let g = from_edges(
            8,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 0),
                (1, 5),
            ],
        );
        let d = decompose(&g);
        assert_eq!(d.edge_count(), g.edge_count());
        for (u, v) in g.edges() {
            assert!(d.has_edge(u, v), "missing edge ({u}, {v})");
            assert!(d.has_edge(v, u));
        }
    }

    #[test]
    fn non_edges_not_reported() {
        let g = from_edges(5, [(0, 1), (2, 3)]);
        let d = decompose(&g);
        assert!(!d.has_edge(0, 2));
        assert!(!d.has_edge(1, 4));
        assert!(!d.has_edge(0, 0));
    }

    #[test]
    fn clique_uses_degeneracy_many_forests() {
        let n = 5u32;
        let edges = (0..n).flat_map(|u| (u + 1..n).map(move |v| (u, v)));
        let g = from_edges(n as usize, edges);
        let d = decompose(&g);
        assert_eq!(d.forest_count(), 4);
        assert_eq!(d.edge_count(), 10);
    }

    #[test]
    fn successors_of_matches_orientation() {
        let g = from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        let o = crate::degeneracy::orient_by_degeneracy(&g);
        let d = decompose_orientation(&o);
        for v in 0..4u32 {
            let mut a = d.successors_of(v);
            let mut b = o.out_neighbors(v).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn each_vertex_at_most_one_successor_per_forest() {
        let g = from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2), (4, 5)]);
        let d = decompose(&g);
        for i in 0..d.forest_count() {
            for v in 0..6u32 {
                // By construction this is a single Option; sanity-check API.
                let s = d.successor(i, v);
                if let Some(w) = s {
                    assert!(g.has_edge(v, w));
                }
            }
        }
    }
}
