//! Incremental construction of [`Graph`] values.

use crate::csr::Graph;
use crate::VertexId;

/// Incremental builder for a simple undirected [`Graph`].
///
/// Edges may be added in any order; self-loops are rejected at insertion
/// time and parallel (duplicate) edges are removed when [`build`] finalizes
/// the CSR arrays. The builder records each endpoint pair once and expands
/// it into the two directed arcs of the CSR representation at build time.
///
/// [`build`]: GraphBuilder::build
///
/// # Example
///
/// ```
/// use pl_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// assert!(b.add_edge(0, 1));
/// assert!(!b.add_edge(1, 1)); // self-loop rejected
/// assert!(b.add_edge(1, 0)); // duplicate recorded, deduplicated at build
/// let g = b.build();
/// assert_eq!(g.edge_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    /// Normalized (min, max) endpoint pairs, possibly with duplicates.
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` vertices and no edges.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds `u32::MAX` (vertex ids are `u32`).
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(
            u32::try_from(n).is_ok(),
            "vertex count {n} exceeds u32 id space"
        );
        Self {
            n,
            edges: Vec::new(),
        }
    }

    /// Creates a builder with capacity for roughly `m` edges.
    #[must_use]
    pub fn with_edge_capacity(n: usize, m: usize) -> Self {
        let mut b = Self::new(n);
        b.edges.reserve(m);
        b
    }

    /// Number of vertices of the graph under construction.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of edge insertions recorded so far (duplicates included).
    #[must_use]
    pub fn recorded_edges(&self) -> usize {
        self.edges.len()
    }

    /// Records the undirected edge `{u, v}`.
    ///
    /// Returns `false` (and records nothing) for self-loops. Duplicate
    /// insertions are accepted here and collapsed by [`build`].
    ///
    /// [`build`]: GraphBuilder::build
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is not a valid vertex id (`>= n`).
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u}, {v}) out of range for {} vertices",
            self.n
        );
        if u == v {
            return false;
        }
        self.edges.push((u.min(v), u.max(v)));
        true
    }

    /// Records every edge from an iterator, skipping self-loops.
    pub fn extend_edges<I: IntoIterator<Item = (VertexId, VertexId)>>(&mut self, iter: I) {
        for (u, v) in iter {
            self.add_edge(u, v);
        }
    }

    /// Finalizes the builder into an immutable CSR [`Graph`].
    ///
    /// Runs in `O(n + m log m)` time: duplicate edges are removed by sorting
    /// the normalized endpoint list, then both CSR directions are emitted
    /// with counting sort so each neighbour list ends up sorted.
    #[must_use]
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        Graph::from_dedup_sorted_edges(self.n, &self.edges)
    }
}

/// Convenience free function: builds a graph directly from an edge list.
///
/// Self-loops are dropped and duplicates collapsed.
///
/// # Example
///
/// ```
/// let g = pl_graph::builder::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
/// assert_eq!(g.edge_count(), 4);
/// assert_eq!(g.degree(0), 2);
/// ```
#[must_use]
pub fn from_edges<I: IntoIterator<Item = (VertexId, VertexId)>>(n: usize, edges: I) -> Graph {
    let mut b = GraphBuilder::new(n);
    b.extend_edges(edges);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn isolated_vertices() {
        let g = GraphBuilder::new(5).build();
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 0);
        for v in 0..5 {
            assert_eq!(g.degree(v), 0);
        }
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        assert!(!b.add_edge(1, 1));
        let g = b.build();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn dedups_parallel_edges_both_orientations() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 2);
        b.add_edge(2, 0);
        b.add_edge(0, 2);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 1);
        assert_eq!(g.degree(1), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_vertex() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    #[test]
    fn from_edges_matches_builder() {
        let edges = [(0, 1), (1, 2), (0, 2)];
        let g = from_edges(3, edges);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2) && g.has_edge(0, 2));
    }

    #[test]
    fn recorded_edges_counts_duplicates() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        assert_eq!(b.recorded_edges(), 2);
        assert_eq!(b.build().edge_count(), 1);
    }
}
