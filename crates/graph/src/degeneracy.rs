//! Degeneracy (core) ordering and the induced low-outdegree orientation.
//!
//! The paper's Proposition 5 labels graphs of bounded arboricity by
//! decomposing them into few forests. Computing the arboricity exactly is
//! expensive; the paper itself points to near-linear approximations. We use
//! the classic *degeneracy ordering* (Matula–Beck): repeatedly remove a
//! minimum-degree vertex. Orienting every edge from the earlier-removed
//! endpoint to the later one yields an acyclic orientation whose maximum
//! outdegree equals the degeneracy `d`, and `d <= 2 * arboricity - 1`, so
//! the outdegree is within a factor 2 of the optimum the paper's
//! Proposition 5 assumes.

use crate::{Graph, VertexId};

/// Result of [`degeneracy_ordering`]: the removal order and the degeneracy.
#[derive(Debug, Clone)]
pub struct Degeneracy {
    /// Vertices in removal order (first removed first).
    pub order: Vec<VertexId>,
    /// `position[v]` is the index of `v` in `order`.
    pub position: Vec<u32>,
    /// The graph's degeneracy: the maximum, over the removal process, of the
    /// removed vertex's residual degree.
    pub degeneracy: usize,
}

/// Computes a degeneracy ordering in `O(n + m)` with a bucket queue.
///
/// # Example
///
/// ```
/// // A triangle has degeneracy 2; a tree has degeneracy 1.
/// let tri = pl_graph::builder::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
/// assert_eq!(pl_graph::degeneracy::degeneracy_ordering(&tri).degeneracy, 2);
/// let tree = pl_graph::builder::from_edges(4, [(0, 1), (1, 2), (1, 3)]);
/// assert_eq!(pl_graph::degeneracy::degeneracy_ordering(&tree).degeneracy, 1);
/// ```
#[must_use]
pub fn degeneracy_ordering(g: &Graph) -> Degeneracy {
    let n = g.vertex_count();
    let mut deg: Vec<usize> = (0..n).map(|v| g.degree(v as VertexId)).collect();
    let max_deg = deg.iter().copied().max().unwrap_or(0);

    // Bucket queue: buckets[d] holds vertices of current residual degree d.
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); max_deg + 1];
    for (v, &d) in deg.iter().enumerate() {
        buckets[d].push(v as VertexId);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut position = vec![0u32; n];
    let mut degeneracy = 0usize;
    let mut cur = 0usize;
    for _ in 0..n {
        // Find the lowest non-empty bucket holding a live vertex. `cur` can
        // decrease by at most 1 per removal, so the total scan is O(n + m).
        cur = cur.saturating_sub(1);
        let v = loop {
            match buckets.get_mut(cur).and_then(Vec::pop) {
                Some(v) if !removed[v as usize] && deg[v as usize] == cur => break v,
                Some(_) => continue, // stale entry
                None => cur += 1,
            }
        };
        removed[v as usize] = true;
        degeneracy = degeneracy.max(cur);
        position[v as usize] = order.len() as u32;
        order.push(v);
        for &w in g.neighbors(v) {
            if !removed[w as usize] {
                let dw = deg[w as usize];
                deg[w as usize] = dw - 1;
                buckets[dw - 1].push(w);
            }
        }
    }
    Degeneracy {
        order,
        position,
        degeneracy,
    }
}

/// Per-vertex core numbers: `core[v]` is the largest `k` such that `v`
/// belongs to the `k`-core (the maximal subgraph of minimum degree `k`).
///
/// Computed from the same bucket-queue peeling as
/// [`degeneracy_ordering`]; the maximum core number equals the
/// degeneracy. The experiment harness uses core numbers to relate the
/// fat/thin threshold to the graph's core structure.
///
/// # Example
///
/// ```
/// // A triangle with a pendant vertex: triangle is the 2-core.
/// let g = pl_graph::builder::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]);
/// let core = pl_graph::degeneracy::core_numbers(&g);
/// assert_eq!(core, vec![2, 2, 2, 1]);
/// ```
#[must_use]
pub fn core_numbers(g: &Graph) -> Vec<usize> {
    let n = g.vertex_count();
    let mut deg: Vec<usize> = (0..n).map(|v| g.degree(v as VertexId)).collect();
    let max_deg = deg.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); max_deg + 1];
    for (v, &d) in deg.iter().enumerate() {
        buckets[d].push(v as VertexId);
    }
    let mut removed = vec![false; n];
    let mut core = vec![0usize; n];
    let mut level = 0usize;
    let mut cur = 0usize;
    for _ in 0..n {
        cur = cur.saturating_sub(1);
        let v = loop {
            match buckets.get_mut(cur).and_then(Vec::pop) {
                Some(v) if !removed[v as usize] && deg[v as usize] == cur => break v,
                Some(_) => continue,
                None => cur += 1,
            }
        };
        removed[v as usize] = true;
        level = level.max(cur);
        core[v as usize] = level;
        for &w in g.neighbors(v) {
            if !removed[w as usize] {
                let dw = deg[w as usize];
                deg[w as usize] = dw - 1;
                buckets[dw - 1].push(w);
            }
        }
    }
    core
}

/// An orientation of a graph's edges: each undirected edge `{u, v}` appears
/// exactly once, as an out-arc of exactly one endpoint.
#[derive(Debug, Clone)]
pub struct Orientation {
    out: Vec<Vec<VertexId>>,
}

impl Orientation {
    /// Out-neighbours of `v`.
    #[must_use]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.out[v as usize]
    }

    /// Maximum outdegree over all vertices.
    #[must_use]
    pub fn max_outdegree(&self) -> usize {
        self.out.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Total number of arcs (equals the graph's edge count).
    #[must_use]
    pub fn arc_count(&self) -> usize {
        self.out.iter().map(Vec::len).sum()
    }

    /// Number of vertices.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.out.len()
    }

    /// Whether the arc `u -> v` is present.
    #[must_use]
    pub fn has_arc(&self, u: VertexId, v: VertexId) -> bool {
        self.out[u as usize].contains(&v)
    }
}

/// Orients every edge from its earlier endpoint to its later endpoint in the
/// degeneracy removal order, giving maximum outdegree exactly the degeneracy.
///
/// # Example
///
/// ```
/// let tri = pl_graph::builder::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
/// let o = pl_graph::degeneracy::orient_by_degeneracy(&tri);
/// assert_eq!(o.max_outdegree(), 2);
/// assert_eq!(o.arc_count(), 3);
/// ```
#[must_use]
pub fn orient_by_degeneracy(g: &Graph) -> Orientation {
    let d = degeneracy_ordering(g);
    let n = g.vertex_count();
    let mut out = vec![Vec::new(); n];
    for (u, v) in g.edges() {
        if d.position[u as usize] < d.position[v as usize] {
            out[u as usize].push(v);
        } else {
            out[v as usize].push(u);
        }
    }
    Orientation { out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use crate::GraphBuilder;

    #[test]
    fn empty_graph_degeneracy_zero() {
        let g = GraphBuilder::new(0).build();
        let d = degeneracy_ordering(&g);
        assert_eq!(d.degeneracy, 0);
        assert!(d.order.is_empty());
    }

    #[test]
    fn isolated_vertices_degeneracy_zero() {
        let g = GraphBuilder::new(4).build();
        assert_eq!(degeneracy_ordering(&g).degeneracy, 0);
    }

    #[test]
    fn path_degeneracy_one() {
        let g = from_edges(5, (0..4u32).map(|i| (i, i + 1)));
        assert_eq!(degeneracy_ordering(&g).degeneracy, 1);
    }

    #[test]
    fn clique_degeneracy_n_minus_one() {
        let n = 6u32;
        let edges = (0..n).flat_map(|u| (u + 1..n).map(move |v| (u, v)));
        let g = from_edges(n as usize, edges);
        assert_eq!(degeneracy_ordering(&g).degeneracy, 5);
    }

    #[test]
    fn order_is_a_permutation() {
        let g = from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)]);
        let d = degeneracy_ordering(&g);
        let mut seen = [false; 6];
        for &v in &d.order {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for (i, &v) in d.order.iter().enumerate() {
            assert_eq!(d.position[v as usize] as usize, i);
        }
    }

    #[test]
    fn orientation_covers_each_edge_once() {
        let g = from_edges(
            7,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 0),
            ],
        );
        let o = orient_by_degeneracy(&g);
        assert_eq!(o.arc_count(), g.edge_count());
        for (u, v) in g.edges() {
            assert!(o.has_arc(u, v) ^ o.has_arc(v, u));
        }
    }

    #[test]
    fn orientation_outdegree_equals_degeneracy_on_clique() {
        let n = 5u32;
        let edges = (0..n).flat_map(|u| (u + 1..n).map(move |v| (u, v)));
        let g = from_edges(n as usize, edges);
        let o = orient_by_degeneracy(&g);
        assert_eq!(o.max_outdegree(), 4);
    }

    #[test]
    fn tree_orientation_outdegree_one() {
        let g = from_edges(7, [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)]);
        let o = orient_by_degeneracy(&g);
        assert_eq!(o.max_outdegree(), 1);
    }

    #[test]
    fn core_numbers_on_clique_plus_tail() {
        // K4 on {0..3} with a path 3-4-5 hanging off.
        let mut edges = vec![(0u32, 1u32), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        edges.extend([(3, 4), (4, 5)]);
        let g = from_edges(6, edges);
        let core = core_numbers(&g);
        assert_eq!(core, vec![3, 3, 3, 3, 1, 1]);
    }

    #[test]
    fn max_core_equals_degeneracy() {
        let g = from_edges(
            9,
            [
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 3),
                (6, 7),
                (0, 3),
                (1, 3),
            ],
        );
        let d = degeneracy_ordering(&g).degeneracy;
        let core = core_numbers(&g);
        assert_eq!(core.iter().copied().max().unwrap(), d);
    }

    #[test]
    fn core_numbers_of_edgeless_graph() {
        let g = GraphBuilder::new(4).build();
        assert_eq!(core_numbers(&g), vec![0, 0, 0, 0]);
    }

    #[test]
    fn core_number_at_most_degree() {
        let g = from_edges(
            8,
            [
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (4, 5),
                (5, 6),
                (6, 4),
                (6, 7),
            ],
        );
        let core = core_numbers(&g);
        for v in g.vertices() {
            assert!(core[v as usize] <= g.degree(v));
        }
    }
}
