//! Induced subgraphs.

use crate::{Graph, GraphBuilder, VertexId};

/// An induced subgraph together with the mapping back to the host graph.
#[derive(Debug, Clone)]
pub struct InducedSubgraph {
    /// The subgraph over dense ids `0..k`.
    pub graph: Graph,
    /// `original[i]` is the host-graph id of subgraph vertex `i`.
    pub original: Vec<VertexId>,
}

impl InducedSubgraph {
    /// Host-graph id of subgraph vertex `i`.
    #[must_use]
    pub fn to_original(&self, i: VertexId) -> VertexId {
        self.original[i as usize]
    }
}

/// Extracts the subgraph of `g` induced by `vertices` (duplicates ignored,
/// order preserved for the id mapping).
///
/// Runs in `O(n + sum of degrees of selected vertices)`.
///
/// # Example
///
/// ```
/// let g = pl_graph::builder::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
/// let sub = pl_graph::view::induced_subgraph(&g, &[1, 2, 4]);
/// assert_eq!(sub.graph.vertex_count(), 3);
/// assert_eq!(sub.graph.edge_count(), 1); // only {1,2} survives
/// assert!(sub.graph.has_edge(0, 1));
/// assert_eq!(sub.to_original(2), 4);
/// ```
#[must_use]
pub fn induced_subgraph(g: &Graph, vertices: &[VertexId]) -> InducedSubgraph {
    let mut map = vec![u32::MAX; g.vertex_count()];
    let mut original = Vec::with_capacity(vertices.len());
    for &v in vertices {
        if map[v as usize] == u32::MAX {
            map[v as usize] = original.len() as u32;
            original.push(v);
        }
    }
    let mut b = GraphBuilder::new(original.len());
    for (i, &v) in original.iter().enumerate() {
        for &w in g.neighbors(v) {
            let j = map[w as usize];
            if j != u32::MAX && (i as u32) < j {
                b.add_edge(i as u32, j);
            }
        }
    }
    InducedSubgraph {
        graph: b.build(),
        original,
    }
}

/// Extracts the largest connected component of `g` as an induced subgraph.
#[must_use]
pub fn largest_component(g: &Graph) -> InducedSubgraph {
    let comps = crate::components::connected_components(g);
    match comps.largest() {
        Some(c) => induced_subgraph(g, &comps.members(c)),
        None => InducedSubgraph {
            graph: GraphBuilder::new(0).build(),
            original: Vec::new(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (4, 5)]);
        let sub = induced_subgraph(&g, &[0, 1, 2]);
        assert_eq!(sub.graph.vertex_count(), 3);
        assert_eq!(sub.graph.edge_count(), 3);
    }

    #[test]
    fn induced_subgraph_dedups_selection() {
        let g = from_edges(3, [(0, 1)]);
        let sub = induced_subgraph(&g, &[1, 1, 0]);
        assert_eq!(sub.graph.vertex_count(), 2);
        assert_eq!(sub.to_original(0), 1);
        assert_eq!(sub.to_original(1), 0);
        assert!(sub.graph.has_edge(0, 1));
    }

    #[test]
    fn empty_selection() {
        let g = from_edges(3, [(0, 1)]);
        let sub = induced_subgraph(&g, &[]);
        assert_eq!(sub.graph.vertex_count(), 0);
    }

    #[test]
    fn largest_component_extraction() {
        let g = from_edges(7, [(0, 1), (1, 2), (2, 3), (5, 6)]);
        let lc = largest_component(&g);
        assert_eq!(lc.graph.vertex_count(), 4);
        assert_eq!(lc.graph.edge_count(), 3);
        let mut orig = lc.original.clone();
        orig.sort_unstable();
        assert_eq!(orig, vec![0, 1, 2, 3]);
    }

    #[test]
    fn largest_component_of_empty() {
        let g = crate::GraphBuilder::new(0).build();
        assert_eq!(largest_component(&g).graph.vertex_count(), 0);
    }
}
