//! The immutable CSR graph representation.

use crate::VertexId;

/// An immutable simple undirected graph in CSR (compressed sparse row) form.
///
/// Vertices are the dense range `0..n`; each vertex's neighbour list is
/// stored sorted, so adjacency queries cost `O(log deg)` via binary search
/// and neighbour iteration is a contiguous slice scan.
///
/// Construct with [`GraphBuilder`](crate::GraphBuilder) or
/// [`builder::from_edges`](crate::builder::from_edges).
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v + 1]` indexes `neighbors` for vertex `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted neighbour lists; length `2m`.
    neighbors: Vec<VertexId>,
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.vertex_count())
            .field("m", &self.edge_count())
            .finish()
    }
}

impl Graph {
    /// Builds from a deduplicated, sorted list of normalized `(min, max)`
    /// edges. Internal constructor used by the builder.
    pub(crate) fn from_dedup_sorted_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut deg = vec![0usize; n];
        for &(u, v) in edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets[..n].to_vec();
        let mut neighbors = vec![0 as VertexId; acc];
        // `edges` is sorted by (min, max); writing u->v in this order fills
        // each min-endpoint list in sorted order already, while max-endpoint
        // lists need a final per-vertex sort. Simpler and still O(m log Δ):
        // fill both directions then sort each list.
        for &(u, v) in edges {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        for v in 0..n {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Self { offsets, neighbors }
    }

    /// Number of vertices `n`.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// `true` iff the graph has no vertices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vertex_count() == 0
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[must_use]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The sorted neighbour list of `v` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[must_use]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether the undirected edge `{u, v}` is present.
    ///
    /// Runs in `O(log min(deg(u), deg(v)))`.
    #[must_use]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all vertex ids `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.vertex_count() as VertexId
    }

    /// Iterator over each undirected edge exactly once, as `(u, v)` with
    /// `u < v`, in lexicographic order.
    #[must_use]
    pub fn edges(&self) -> EdgeIter<'_> {
        EdgeIter {
            graph: self,
            u: 0,
            idx: 0,
        }
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    #[must_use]
    pub fn max_degree(&self) -> usize {
        (0..self.vertex_count())
            .map(|v| self.degree(v as VertexId))
            .max()
            .unwrap_or(0)
    }

    /// Sum of `deg(v)` over all vertices; always `2m`.
    #[must_use]
    pub fn degree_sum(&self) -> usize {
        self.neighbors.len()
    }

    /// `true` iff the graph is `c`-sparse in the paper's sense, i.e. has at
    /// most `c * n` edges.
    #[must_use]
    pub fn is_c_sparse(&self, c: f64) -> bool {
        (self.edge_count() as f64) <= c * self.vertex_count() as f64
    }

    /// The smallest `c` such that this graph is `c`-sparse (`m / n`), or
    /// `0.0` for the empty graph.
    #[must_use]
    pub fn sparsity(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.edge_count() as f64 / self.vertex_count() as f64
        }
    }

    /// Iterator over `v`'s neighbours (by value). Equivalent to
    /// `self.neighbors(v).iter().copied()` but keeps call sites tidy.
    #[must_use]
    pub fn neighbor_iter(&self, v: VertexId) -> NeighborIter<'_> {
        NeighborIter {
            slice: self.neighbors(v).iter(),
        }
    }
}

/// Iterator over all undirected edges of a [`Graph`], each reported once.
#[derive(Debug, Clone)]
pub struct EdgeIter<'g> {
    graph: &'g Graph,
    u: VertexId,
    idx: usize,
}

impl Iterator for EdgeIter<'_> {
    type Item = (VertexId, VertexId);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.graph.vertex_count() as VertexId;
        while self.u < n {
            let nbrs = self.graph.neighbors(self.u);
            while self.idx < nbrs.len() {
                let v = nbrs[self.idx];
                self.idx += 1;
                if self.u < v {
                    return Some((self.u, v));
                }
            }
            self.u += 1;
            self.idx = 0;
        }
        None
    }
}

/// By-value neighbour iterator returned by [`Graph::neighbor_iter`].
#[derive(Debug, Clone)]
pub struct NeighborIter<'g> {
    slice: std::slice::Iter<'g, VertexId>,
}

impl Iterator for NeighborIter<'_> {
    type Item = VertexId;

    fn next(&mut self) -> Option<Self::Item> {
        self.slice.next().copied()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.slice.size_hint()
    }
}

impl ExactSizeIterator for NeighborIter<'_> {}

#[cfg(test)]
mod tests {
    use crate::builder::from_edges;

    #[test]
    fn neighbors_are_sorted() {
        let g = from_edges(5, [(3, 1), (3, 4), (3, 0), (3, 2)]);
        assert_eq!(g.neighbors(3), &[0, 1, 2, 4]);
    }

    #[test]
    fn has_edge_symmetric() {
        let g = from_edges(4, [(0, 1), (2, 3)]);
        for (u, v) in [(0u32, 1u32), (2, 3)] {
            assert!(g.has_edge(u, v));
            assert!(g.has_edge(v, u));
        }
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn edges_iterator_reports_each_edge_once_sorted() {
        let g = from_edges(4, [(2, 3), (0, 1), (1, 2)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn degree_sum_is_twice_edges() {
        let g = from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4)]);
        assert_eq!(g.degree_sum(), 2 * g.edge_count());
    }

    #[test]
    fn sparsity_and_c_sparse() {
        let g = from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert!((g.sparsity() - 0.75).abs() < 1e-12);
        assert!(g.is_c_sparse(1.0));
        assert!(!g.is_c_sparse(0.5));
    }

    #[test]
    fn max_degree_star() {
        let g = from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn neighbor_iter_is_exact_size() {
        let g = from_edges(4, [(1, 0), (1, 2), (1, 3)]);
        let it = g.neighbor_iter(1);
        assert_eq!(it.len(), 3);
        assert_eq!(it.collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn debug_is_compact() {
        let g = from_edges(3, [(0, 1)]);
        let s = format!("{g:?}");
        assert!(s.contains("n: 3") && s.contains("m: 1"));
    }
}
