//! Triangle counting and clustering coefficients.
//!
//! Used to validate that the generators reproduce the *local* structure
//! real networks are known for (BA and Chung–Lu differ sharply in
//! clustering even at identical degree distributions), complementing the
//! degree-distribution checks of experiment E9.

use crate::degeneracy::orient_by_degeneracy;
use crate::{Graph, VertexId};

/// Exact triangle count via the degeneracy orientation: every triangle is
/// counted exactly once at its "earliest" vertex. Runs in
/// `O(m · degeneracy)`.
///
/// # Example
///
/// ```
/// // K4 contains 4 triangles.
/// let g = pl_graph::builder::from_edges(4, [(0,1),(0,2),(0,3),(1,2),(1,3),(2,3)]);
/// assert_eq!(pl_graph::triangles::triangle_count(&g), 4);
/// ```
#[must_use]
pub fn triangle_count(g: &Graph) -> u64 {
    let o = orient_by_degeneracy(g);
    let mut count = 0u64;
    for v in 0..g.vertex_count() as VertexId {
        let out = o.out_neighbors(v);
        for (i, &a) in out.iter().enumerate() {
            for &b in &out[i + 1..] {
                if g.has_edge(a, b) {
                    count += 1;
                }
            }
        }
    }
    count
}

/// Number of wedges (paths of length 2): `Σ_v deg(v)·(deg(v)−1)/2`.
#[must_use]
pub fn wedge_count(g: &Graph) -> u64 {
    g.vertices()
        .map(|v| {
            let d = g.degree(v) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum()
}

/// The global clustering coefficient (transitivity): `3·triangles / wedges`;
/// 0 for wedge-free graphs.
#[must_use]
pub fn global_clustering(g: &Graph) -> f64 {
    let w = wedge_count(g);
    if w == 0 {
        0.0
    } else {
        3.0 * triangle_count(g) as f64 / w as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use crate::GraphBuilder;

    #[test]
    fn triangle_free_graphs() {
        assert_eq!(triangle_count(&GraphBuilder::new(5).build()), 0);
        let path = from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(triangle_count(&path), 0);
        let c4 = from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(triangle_count(&c4), 0);
        assert_eq!(global_clustering(&c4), 0.0);
    }

    #[test]
    fn single_triangle() {
        let g = from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        assert_eq!(triangle_count(&g), 1);
        assert_eq!(wedge_count(&g), 3);
        assert!((global_clustering(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn complete_graph_count() {
        // K_n has C(n,3) triangles.
        for n in [4usize, 5, 7] {
            let edges = (0..n as u32).flat_map(|u| (u + 1..n as u32).map(move |v| (u, v)));
            let g = from_edges(n, edges);
            let expect = (n * (n - 1) * (n - 2) / 6) as u64;
            assert_eq!(triangle_count(&g), expect, "K{n}");
            assert!((global_clustering(&g) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn two_triangles_sharing_an_edge() {
        let g = from_edges(4, [(0, 1), (1, 2), (2, 0), (0, 3), (1, 3)]);
        assert_eq!(triangle_count(&g), 2);
    }

    #[test]
    fn matches_brute_force_on_random_graph() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(66);
        let n = 60usize;
        let mut b = GraphBuilder::new(n);
        for _ in 0..400 {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let mut brute = 0u64;
        for a in 0..n as u32 {
            for b2 in a + 1..n as u32 {
                for c in b2 + 1..n as u32 {
                    if g.has_edge(a, b2) && g.has_edge(b2, c) && g.has_edge(a, c) {
                        brute += 1;
                    }
                }
            }
        }
        assert_eq!(triangle_count(&g), brute);
    }

    #[test]
    fn star_has_wedges_but_no_triangles() {
        let g = from_edges(6, (1..6u32).map(|i| (0, i)));
        assert_eq!(wedge_count(&g), 10);
        assert_eq!(triangle_count(&g), 0);
        assert_eq!(global_clustering(&g), 0.0);
    }
}
