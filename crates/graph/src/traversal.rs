//! Breadth-first search, bounded and filtered variants.
//!
//! The distance labeling scheme of the paper's Lemma 7 needs, besides plain
//! BFS, a BFS that only relaxes paths whose *interior* vertices belong to a
//! permitted set (there: the thin vertices). [`bfs_bounded_through`]
//! implements exactly that semantics: the source and the reported targets may
//! be arbitrary, but no path is extended through a forbidden vertex.

use std::collections::VecDeque;

use crate::{Graph, VertexId, UNREACHABLE};

/// Single-source BFS distances to every vertex.
///
/// Returns a vector of length `n` with hop distances from `src`;
/// unreachable vertices get [`UNREACHABLE`].
///
/// # Example
///
/// ```
/// let g = pl_graph::builder::from_edges(4, [(0, 1), (1, 2)]);
/// let d = pl_graph::traversal::bfs_distances(&g, 0);
/// assert_eq!(d, vec![0, 1, 2, pl_graph::UNREACHABLE]);
/// ```
#[must_use]
pub fn bfs_distances(g: &Graph, src: VertexId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.vertex_count()];
    let mut queue = VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Bounded single-source BFS: every vertex within `limit` hops of `src`,
/// reported as `(vertex, distance)` pairs in non-decreasing distance order
/// (the source itself included with distance 0).
///
/// Cost is proportional to the explored ball, not to `n`, except for an
/// `O(n)` visited bitmap.
#[must_use]
pub fn bfs_bounded(g: &Graph, src: VertexId, limit: u32) -> Vec<(VertexId, u32)> {
    bfs_bounded_through(g, src, limit, |_| true)
}

/// Bounded BFS that may only *pass through* permitted vertices.
///
/// Explores paths `src = v0, v1, …, vk` with `k <= limit` where every
/// interior vertex `v1 … v_{k-1}` satisfies `allow_interior`; endpoints are
/// unrestricted. Returns `(vertex, distance)` pairs for every vertex
/// reachable under this restriction, source included, in non-decreasing
/// distance order. The reported distance is the shortest *restricted* path
/// length, which can exceed the true graph distance.
///
/// This is the exact notion needed by part (ii) of the labels in the
/// paper's Lemma 7: "thin nodes w at distance at most f(n) where the
/// shortest path between v and w does not pass through any fat node".
///
/// # Example
///
/// ```
/// // Path 0 - 1 - 2; forbid passing through 1: vertex 2 still reported?
/// // No: 1 may be an endpoint but not interior, so 2 is unreachable.
/// let g = pl_graph::builder::from_edges(3, [(0, 1), (1, 2)]);
/// let ball = pl_graph::traversal::bfs_bounded_through(&g, 0, 5, |v| v != 1);
/// let verts: Vec<u32> = ball.iter().map(|&(v, _)| v).collect();
/// assert_eq!(verts, vec![0, 1]); // 1 reachable as endpoint, 2 is not
/// ```
#[must_use]
pub fn bfs_bounded_through(
    g: &Graph,
    src: VertexId,
    limit: u32,
    mut allow_interior: impl FnMut(VertexId) -> bool,
) -> Vec<(VertexId, u32)> {
    let mut dist = vec![UNREACHABLE; g.vertex_count()];
    let mut out = Vec::new();
    let mut queue = VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    out.push((src, 0));
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        if du == limit {
            continue;
        }
        // `u` is about to act as an interior vertex for any continuation,
        // unless it is the source.
        if u != src && !allow_interior(u) {
            continue;
        }
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                out.push((v, du + 1));
                queue.push_back(v);
            }
        }
    }
    out
}

/// Eccentricity of `src` within its connected component (maximum BFS
/// distance to a reachable vertex).
#[must_use]
pub fn eccentricity(g: &Graph, src: VertexId) -> u32 {
    bfs_distances(g, src)
        .into_iter()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .unwrap_or(0)
}

/// Lower bound on the diameter via the standard double-sweep heuristic:
/// BFS from `start`, then BFS from the farthest vertex found.
///
/// For trees this is exact; for general graphs it is a lower bound that is
/// tight in practice, which is all the experiments need (the paper only uses
/// the Chung–Lu `Θ(log n)` diameter estimate qualitatively).
#[must_use]
pub fn double_sweep_diameter(g: &Graph, start: VertexId) -> u32 {
    if g.is_empty() {
        return 0;
    }
    let d1 = bfs_distances(g, start);
    let far = d1
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != UNREACHABLE)
        .max_by_key(|&(_, &d)| d)
        .map_or(start, |(v, _)| v as VertexId);
    eccentricity(g, far)
}

/// Mean hop distance from the given source vertices to every vertex they
/// reach (self-distances excluded), plus the number of (source, target)
/// pairs averaged. Used to check the Chung–Lu small-world claim the
/// paper's distance scheme leans on; pick a handful of random sources for
/// an unbiased estimate.
#[must_use]
pub fn mean_distance_from(g: &Graph, sources: &[VertexId]) -> (f64, usize) {
    let mut total = 0u64;
    let mut pairs = 0usize;
    for &s in sources {
        for (v, d) in bfs_distances(g, s).into_iter().enumerate() {
            if d != UNREACHABLE && v as VertexId != s {
                total += u64::from(d);
                pairs += 1;
            }
        }
    }
    if pairs == 0 {
        (0.0, 0)
    } else {
        (total as f64 / pairs as f64, pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    fn path(n: usize) -> Graph {
        from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn bfs_on_path() {
        let g = path(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = from_edges(4, [(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn bounded_bfs_limits_radius() {
        let g = path(10);
        let ball = bfs_bounded(&g, 0, 3);
        assert_eq!(ball.len(), 4);
        assert_eq!(ball.last().copied(), Some((3, 3)));
    }

    #[test]
    fn bounded_bfs_distances_non_decreasing() {
        let g = from_edges(6, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5)]);
        let ball = bfs_bounded(&g, 0, 10);
        for w in ball.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn through_filter_blocks_interior_only() {
        // Triangle 0-1-2 plus pendant 3 on 2. Forbid interior 2.
        let g = from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)]);
        let ball = bfs_bounded_through(&g, 0, 5, |v| v != 2);
        let mut verts: Vec<_> = ball.iter().map(|&(v, _)| v).collect();
        verts.sort_unstable();
        // 2 reachable as an endpoint; 3 requires passing through 2.
        assert_eq!(verts, vec![0, 1, 2]);
    }

    #[test]
    fn through_filter_source_exempt() {
        // Star centered at 0; even if 0 is "forbidden", it is the source.
        let g = from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        let ball = bfs_bounded_through(&g, 0, 2, |v| v != 0);
        assert_eq!(ball.len(), 4);
    }

    #[test]
    fn restricted_distance_can_exceed_true_distance() {
        // 0-1-3 (short, via 1) and 0-2-4-3 (long, via 2 and 4).
        let g = from_edges(5, [(0, 1), (1, 3), (0, 2), (2, 4), (4, 3)]);
        let ball = bfs_bounded_through(&g, 0, 5, |v| v != 1);
        let d3 = ball.iter().find(|&&(v, _)| v == 3).map(|&(_, d)| d);
        assert_eq!(d3, Some(3)); // forced around the long way
        assert_eq!(bfs_distances(&g, 0)[3], 2);
    }

    #[test]
    fn eccentricity_and_diameter_of_path() {
        let g = path(7);
        assert_eq!(eccentricity(&g, 3), 3);
        assert_eq!(eccentricity(&g, 0), 6);
        assert_eq!(double_sweep_diameter(&g, 3), 6);
    }

    #[test]
    fn diameter_of_disconnected_uses_component() {
        let g = from_edges(6, [(0, 1), (1, 2), (3, 4)]);
        assert_eq!(double_sweep_diameter(&g, 3), 1);
        assert_eq!(double_sweep_diameter(&g, 0), 2);
    }

    #[test]
    fn mean_distance_on_path() {
        let g = path(4); // distances from 0: 1, 2, 3
        let (mean, pairs) = mean_distance_from(&g, &[0]);
        assert_eq!(pairs, 3);
        assert!((mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mean_distance_skips_unreachable_and_self() {
        let g = from_edges(4, [(0, 1)]);
        let (mean, pairs) = mean_distance_from(&g, &[0, 2]);
        assert_eq!(pairs, 1); // only 0 -> 1
        assert_eq!(mean, 1.0);
        let isolated = crate::GraphBuilder::new(3).build();
        assert_eq!(mean_distance_from(&isolated, &[0]), (0.0, 0));
    }
}
