//! Compact undirected-graph substrate for the power-law labeling schemes.
//!
//! This crate provides the graph representation and graph algorithms that the
//! labeling schemes of Petersen, Rotbart, Simonsen and Wulff-Nilsen
//! (*Near Optimal Adjacency Labeling Schemes for Power-Law Graphs*,
//! ICALP 2016) are built on:
//!
//! * [`Graph`] — an immutable, cache-friendly CSR (compressed sparse row)
//!   representation of a simple undirected graph, with sorted neighbour
//!   lists and O(log Δ) adjacency queries.
//! * [`GraphBuilder`] — incremental construction with de-duplication of
//!   parallel edges and removal of self-loops.
//! * [`traversal`] — breadth-first search, bounded BFS, and BFS restricted to
//!   paths through a vertex subset (needed by the distance labeling scheme of
//!   the paper's Lemma 7).
//! * [`components`] — connected components and largest-component extraction.
//! * [`degeneracy`] — core (degeneracy) ordering and the induced
//!   low-outdegree orientation, the substrate for the arboricity-based
//!   scheme of the paper's Proposition 5.
//! * [`forest`] — decomposition of a low-outdegree orientation into
//!   pseudoforests with explicit parent pointers.
//! * [`degree`] — degree histograms, the paper's `ddist_G` degree
//!   distribution, and CCDF utilities.
//!
//! The representation is deliberately minimal: vertices are dense `u32`
//! indices `0..n`, which is what a labeling scheme ultimately assigns
//! identifiers to anyway.
//!
//! # Example
//!
//! ```
//! use pl_graph::{Graph, GraphBuilder};
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(2, 3);
//! b.add_edge(1, 2); // duplicate, ignored
//! let g: Graph = b.build();
//!
//! assert_eq!(g.vertex_count(), 4);
//! assert_eq!(g.edge_count(), 3);
//! assert!(g.has_edge(1, 2));
//! assert!(!g.has_edge(0, 3));
//! assert_eq!(g.degree(1), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
mod csr;

pub mod components;
pub mod degeneracy;
pub mod degree;
pub mod forest;
pub mod io;
pub mod traversal;
pub mod triangles;
pub mod view;

pub use builder::GraphBuilder;
pub use csr::{EdgeIter, Graph, NeighborIter};

/// Dense vertex identifier: vertices of an `n`-vertex [`Graph`] are
/// exactly `0..n as VertexId`.
pub type VertexId = u32;

/// Sentinel distance returned by BFS for unreachable vertices.
pub const UNREACHABLE: u32 = u32::MAX;
