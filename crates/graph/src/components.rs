//! Connected components.

use crate::{Graph, VertexId};

/// The partition of a graph's vertices into connected components.
#[derive(Debug, Clone)]
pub struct Components {
    /// `component[v]` is the 0-based id of `v`'s component.
    component: Vec<u32>,
    /// `sizes[c]` is the number of vertices in component `c`.
    sizes: Vec<usize>,
}

impl Components {
    /// Number of connected components.
    #[must_use]
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Component id of vertex `v`.
    #[must_use]
    pub fn component_of(&self, v: VertexId) -> u32 {
        self.component[v as usize]
    }

    /// Sizes of all components, indexed by component id.
    #[must_use]
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Id of a largest component (`None` for the empty graph).
    #[must_use]
    pub fn largest(&self) -> Option<u32> {
        self.sizes
            .iter()
            .enumerate()
            .max_by_key(|&(_, &s)| s)
            .map(|(c, _)| c as u32)
    }

    /// Whether two vertices lie in the same component.
    #[must_use]
    pub fn connected(&self, u: VertexId, v: VertexId) -> bool {
        self.component_of(u) == self.component_of(v)
    }

    /// The vertices of component `c`, in increasing id order.
    #[must_use]
    pub fn members(&self, c: u32) -> Vec<VertexId> {
        self.component
            .iter()
            .enumerate()
            .filter(|&(_, &cc)| cc == c)
            .map(|(v, _)| v as VertexId)
            .collect()
    }
}

/// Computes the connected components of `g` with iterative DFS in `O(n + m)`.
///
/// # Example
///
/// ```
/// let g = pl_graph::builder::from_edges(5, [(0, 1), (1, 2), (3, 4)]);
/// let comps = pl_graph::components::connected_components(&g);
/// assert_eq!(comps.count(), 2);
/// assert!(comps.connected(0, 2));
/// assert!(!comps.connected(0, 3));
/// ```
#[must_use]
pub fn connected_components(g: &Graph) -> Components {
    let n = g.vertex_count();
    let mut component = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut stack = Vec::new();
    for start in 0..n as VertexId {
        if component[start as usize] != u32::MAX {
            continue;
        }
        let c = sizes.len() as u32;
        let mut size = 0usize;
        component[start as usize] = c;
        stack.push(start);
        while let Some(u) = stack.pop() {
            size += 1;
            for &v in g.neighbors(u) {
                if component[v as usize] == u32::MAX {
                    component[v as usize] = c;
                    stack.push(v);
                }
            }
        }
        sizes.push(size);
    }
    Components { component, sizes }
}

/// `true` iff `g` is connected (the empty graph counts as connected).
#[must_use]
pub fn is_connected(g: &Graph) -> bool {
    g.is_empty() || connected_components(g).count() == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use crate::GraphBuilder;

    #[test]
    fn empty_graph_is_connected() {
        assert!(is_connected(&GraphBuilder::new(0).build()));
    }

    #[test]
    fn single_vertex_connected() {
        assert!(is_connected(&GraphBuilder::new(1).build()));
    }

    #[test]
    fn isolated_vertices_are_singleton_components() {
        let g = GraphBuilder::new(3).build();
        let c = connected_components(&g);
        assert_eq!(c.count(), 3);
        assert_eq!(c.sizes(), &[1, 1, 1]);
    }

    #[test]
    fn two_components_sizes_and_membership() {
        let g = from_edges(6, [(0, 1), (1, 2), (3, 4)]);
        let c = connected_components(&g);
        assert_eq!(c.count(), 3);
        let largest = c.largest().unwrap();
        assert_eq!(c.sizes()[largest as usize], 3);
        assert_eq!(c.members(largest), vec![0, 1, 2]);
        assert!(c.connected(3, 4));
        assert!(!c.connected(2, 5));
    }

    #[test]
    fn cycle_is_connected() {
        let n = 10u32;
        let g = from_edges(10, (0..n).map(|i| (i, (i + 1) % n)));
        assert!(is_connected(&g));
    }
}
