//! Degree histograms and the paper's degree distribution `ddist_G`.

use crate::{Graph, VertexId};

/// The degree histogram of a graph: `count(k)` = number of vertices of
/// degree exactly `k` (the paper's `|V_k|`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegreeHistogram {
    counts: Vec<usize>,
    n: usize,
}

impl DegreeHistogram {
    /// Builds the histogram of `g` in `O(n)`.
    #[must_use]
    pub fn of(g: &Graph) -> Self {
        let mut counts = vec![0usize; g.max_degree() + 1];
        for v in g.vertices() {
            counts[g.degree(v)] += 1;
        }
        Self {
            counts,
            n: g.vertex_count(),
        }
    }

    /// Builds a histogram directly from a degree sequence.
    #[must_use]
    pub fn from_degrees(degrees: &[usize]) -> Self {
        let max = degrees.iter().copied().max().unwrap_or(0);
        let mut counts = vec![0usize; max + 1];
        for &d in degrees {
            counts[d] += 1;
        }
        Self {
            counts,
            n: degrees.len(),
        }
    }

    /// `|V_k|`: the number of vertices of degree exactly `k` (0 beyond the
    /// maximum degree).
    #[must_use]
    pub fn count(&self, k: usize) -> usize {
        self.counts.get(k).copied().unwrap_or(0)
    }

    /// The number of vertices `n`.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Maximum degree with a non-zero count (0 for an edgeless histogram).
    #[must_use]
    pub fn max_degree(&self) -> usize {
        self.counts.iter().rposition(|&c| c > 0).unwrap_or(0)
    }

    /// The paper's `ddist_G(k) = |V_k| / n`; 0 when `n == 0`.
    #[must_use]
    pub fn ddist(&self, k: usize) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.count(k) as f64 / self.n as f64
        }
    }

    /// The tail count `sum_{i >= k} |V_i|`: the number of vertices of degree
    /// at least `k`. This is the quantity Definition 1 of the paper bounds.
    #[must_use]
    pub fn tail_count(&self, k: usize) -> usize {
        self.counts.iter().skip(k).sum()
    }

    /// Iterator over `(degree, count)` pairs with non-zero count.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(k, &c)| (k, c))
    }

    /// The degree sequence in non-increasing order.
    #[must_use]
    pub fn sorted_degrees_desc(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.n);
        for (k, c) in self.nonzero() {
            out.extend(std::iter::repeat_n(k, c));
        }
        out.reverse();
        out
    }
}

/// The degree sequence of `g` indexed by vertex id.
#[must_use]
pub fn degree_sequence(g: &Graph) -> Vec<usize> {
    g.vertices().map(|v| g.degree(v)).collect()
}

/// Vertices sorted by degree descending (ties broken by ascending id).
/// The labeling schemes use this to identify the "fat" vertices.
#[must_use]
pub fn vertices_by_degree_desc(g: &Graph) -> Vec<VertexId> {
    let mut vs: Vec<VertexId> = g.vertices().collect();
    vs.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    vs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use crate::GraphBuilder;

    fn star(n: usize) -> Graph {
        from_edges(n, (1..n as u32).map(|i| (0, i)))
    }

    #[test]
    fn histogram_of_star() {
        let g = star(5);
        let h = DegreeHistogram::of(&g);
        assert_eq!(h.count(1), 4);
        assert_eq!(h.count(4), 1);
        assert_eq!(h.count(0), 0);
        assert_eq!(h.count(100), 0);
        assert_eq!(h.max_degree(), 4);
        assert_eq!(h.vertex_count(), 5);
    }

    #[test]
    fn ddist_sums_to_one() {
        let g = from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)]);
        let h = DegreeHistogram::of(&g);
        let total: f64 = (0..=h.max_degree()).map(|k| h.ddist(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tail_count_monotone_and_correct() {
        let g = star(5);
        let h = DegreeHistogram::of(&g);
        assert_eq!(h.tail_count(0), 5);
        assert_eq!(h.tail_count(1), 5);
        assert_eq!(h.tail_count(2), 1);
        assert_eq!(h.tail_count(5), 0);
        for k in 0..6 {
            assert!(h.tail_count(k) >= h.tail_count(k + 1));
        }
    }

    #[test]
    fn from_degrees_agrees_with_graph() {
        let g = from_edges(5, [(0, 1), (1, 2), (2, 3)]);
        let a = DegreeHistogram::of(&g);
        let b = DegreeHistogram::from_degrees(&degree_sequence(&g));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_histogram() {
        let h = DegreeHistogram::of(&GraphBuilder::new(0).build());
        assert_eq!(h.vertex_count(), 0);
        assert_eq!(h.ddist(0), 0.0);
        assert_eq!(h.max_degree(), 0);
    }

    #[test]
    fn sorted_degrees_desc_roundtrip() {
        let g = star(4);
        let h = DegreeHistogram::of(&g);
        assert_eq!(h.sorted_degrees_desc(), vec![3, 1, 1, 1]);
    }

    #[test]
    fn vertices_by_degree_desc_star() {
        let g = star(4);
        let order = vertices_by_degree_desc(&g);
        assert_eq!(order[0], 0);
        assert_eq!(&order[1..], &[1, 2, 3]);
    }

    #[test]
    fn nonzero_skips_gaps() {
        let g = star(5);
        let nz: Vec<_> = DegreeHistogram::of(&g).nonzero().collect();
        assert_eq!(nz, vec![(1, 4), (4, 1)]);
    }
}
