//! Plain-text edge-list serialization.
//!
//! The experiment harness occasionally round-trips graphs through files; the
//! format is the one every graph toolkit speaks: a header line `n m`, then
//! one `u v` pair per line. Lines starting with `#` are comments.

use std::fmt::Write as _;

use crate::{Graph, GraphBuilder, VertexId};

/// Error parsing an edge-list document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The header line `n m` is missing or malformed.
    BadHeader(String),
    /// An edge line did not contain two integers.
    BadEdge {
        /// 1-based line number of the offending line.
        line: usize,
        /// The raw line content.
        content: String,
    },
    /// An endpoint was `>= n`.
    VertexOutOfRange {
        /// 1-based line number of the offending line.
        line: usize,
        /// The out-of-range endpoint.
        vertex: u64,
        /// The declared vertex count.
        n: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadHeader(h) => write!(f, "bad edge-list header: {h:?}"),
            Self::BadEdge { line, content } => {
                write!(f, "line {line}: expected `u v`, got {content:?}")
            }
            Self::VertexOutOfRange { line, vertex, n } => {
                write!(f, "line {line}: vertex {vertex} out of range for n = {n}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializes `g` as an edge-list document.
#[must_use]
pub fn to_edge_list(g: &Graph) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{} {}", g.vertex_count(), g.edge_count());
    for (u, v) in g.edges() {
        let _ = writeln!(s, "{u} {v}");
    }
    s
}

/// Parses an edge-list document produced by [`to_edge_list`] (or any
/// whitespace-separated `n m` header plus `u v` lines; `#` comments allowed).
///
/// The declared `m` is advisory; the actual edges present win. Self-loops
/// and duplicates are cleaned up as usual by the builder.
pub fn from_edge_list(text: &str) -> Result<Graph, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseError::BadHeader(String::new()))?;
    let mut parts = header.split_whitespace();
    let n: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseError::BadHeader(header.to_string()))?;
    let _m: Option<usize> = parts.next().and_then(|t| t.parse().ok());

    let mut b = GraphBuilder::new(n);
    for (line, l) in lines {
        let mut it = l.split_whitespace();
        let (u, v) = match (
            it.next().and_then(|t| t.parse::<u64>().ok()),
            it.next().and_then(|t| t.parse::<u64>().ok()),
        ) {
            (Some(u), Some(v)) => (u, v),
            _ => {
                return Err(ParseError::BadEdge {
                    line,
                    content: l.to_string(),
                })
            }
        };
        for x in [u, v] {
            if x >= n as u64 {
                return Err(ParseError::VertexOutOfRange { line, vertex: x, n });
            }
        }
        b.add_edge(u as VertexId, v as VertexId);
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn round_trip() {
        let g = from_edges(5, [(0, 1), (1, 2), (3, 4), (0, 4)]);
        let text = to_edge_list(&g);
        let h = from_edge_list(&text).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# a comment\n\n3 2\n0 1\n# interior\n1 2\n";
        let g = from_edge_list(text).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn rejects_missing_header() {
        assert!(matches!(from_edge_list(""), Err(ParseError::BadHeader(_))));
        assert!(matches!(
            from_edge_list("# only comments\n"),
            Err(ParseError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_bad_edge_line() {
        let err = from_edge_list("2 1\n0\n").unwrap_err();
        assert!(matches!(err, ParseError::BadEdge { line: 2, .. }));
    }

    #[test]
    fn rejects_out_of_range_vertex() {
        let err = from_edge_list("2 1\n0 5\n").unwrap_err();
        assert!(matches!(
            err,
            ParseError::VertexOutOfRange {
                vertex: 5,
                n: 2,
                ..
            }
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let err = from_edge_list("2 1\nx y\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"));
    }
}
