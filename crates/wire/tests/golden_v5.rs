//! Golden-bytes tests for the protocol v5 additions: the `TRACE_CTX`
//! extension trailer on `BATCH` and the `TRACE_DUMP` flag byte.
//!
//! Round-trip tests prove encode and parse agree with *each other*;
//! only a byte-literal test proves they agree with the *protocol* — a
//! matched encode/parse bug (reordered fields, flipped endianness, a
//! swapped trace-id half) round-trips clean and would ship a silent
//! wire break for every already-deployed peer. Each array below was
//! written out by hand from the layout documented in `protocol.rs`; if
//! an edit changes any of these bytes, it changes the protocol and must
//! bump the version instead.

use pl_obs::TraceContext;
use pl_wire::protocol::{
    encode_batch, encode_batch_ctx, encode_trace_dump, parse_batch, parse_batch_ctx,
    parse_trace_dump, trace_dump_flags, ProtocolError,
};
use pl_wire::Query;

const CTX: TraceContext = TraceContext {
    trace_hi: 0x1122_3344_5566_7788,
    trace_lo: 0x99AA_BBCC_DDEE_FF00,
    parent_span: 0x0123_4567_89AB_CDEF,
};

/// BATCH on a v5 session with a trace context: the plain v1 entry
/// layout, then `'T'` and three u64 LE words (trace hi, trace lo,
/// parent span).
#[test]
fn batch_trace_ctx_v5_golden_bytes() {
    let queries = [Query::adjacent(0x0102_0304, 0x0A0B_0C0D)];
    #[rustfmt::skip]
    let expected: &[u8] = &[
        0x01,                   // opcode BATCH
        0x01, 0x00,             // 1 query, u16 LE
        0x00,                   // kind Adjacent
        0x04, 0x03, 0x02, 0x01, // u = 0x01020304, u32 LE
        0x0D, 0x0C, 0x0B, 0x0A, // v = 0x0A0B0C0D, u32 LE
        0x54,                   // EXT_TRACE_CTX ('T')
        0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11, // trace_hi LE
        0x00, 0xFF, 0xEE, 0xDD, 0xCC, 0xBB, 0xAA, 0x99, // trace_lo LE
        0xEF, 0xCD, 0xAB, 0x89, 0x67, 0x45, 0x23, 0x01, // parent_span LE
    ];
    assert_eq!(
        encode_batch_ctx(&queries, Some(&CTX), 5).unwrap(),
        expected,
        "TRACE_CTX trailer layout drifted"
    );
    let (parsed, ctx) = parse_batch_ctx(expected, 5).unwrap();
    assert_eq!(parsed, queries);
    assert_eq!(ctx, Some(CTX));

    // Without a context a v5 BATCH is byte-identical to every earlier
    // version — the trailer is strictly pay-for-what-you-use.
    assert_eq!(
        encode_batch_ctx(&queries, None, 5).unwrap(),
        encode_batch(&queries).unwrap()
    );
}

/// Downgrade, pinned at the byte level: a v5 client talking to a v4
/// session encodes the *pre-v5* bytes (context silently dropped, never
/// a hard failure), and a v4 parser rejects the v5 trailer outright so
/// a version-confused peer cannot smuggle one through.
#[test]
fn batch_trace_ctx_v4_downgrade_golden_bytes() {
    let queries = [Query::adjacent(0x0102_0304, 0x0A0B_0C0D)];
    #[rustfmt::skip]
    let v4_expected: &[u8] = &[
        0x01,                   // opcode BATCH
        0x01, 0x00,             // 1 query, u16 LE
        0x00,                   // kind Adjacent
        0x04, 0x03, 0x02, 0x01, // u, u32 LE
        0x0D, 0x0C, 0x0B, 0x0A, // v, u32 LE
                                // no trailer: v4 never saw TRACE_CTX
    ];
    assert_eq!(
        encode_batch_ctx(&queries, Some(&CTX), 4).unwrap(),
        v4_expected
    );
    let (parsed, ctx) = parse_batch_ctx(v4_expected, 4).unwrap();
    assert_eq!(parsed, queries);
    assert_eq!(ctx, None);

    // The v5 frame with the trailer is malformed on a v4 session (the
    // strict exact-length check of parse_batch is unchanged).
    let v5 = encode_batch_ctx(&queries, Some(&CTX), 5).unwrap();
    assert!(matches!(
        parse_batch(&v5),
        Err(ProtocolError::Malformed("batch length"))
    ));
    assert!(matches!(
        parse_batch_ctx(&v5, 4),
        Err(ProtocolError::Malformed("batch length"))
    ));
}

/// TRACE_DUMP: the bare pre-v5 body is one byte; the v5 snapshot form
/// appends exactly one flag byte.
#[test]
fn trace_dump_golden_bytes() {
    assert_eq!(encode_trace_dump(0), [0x04]);
    assert_eq!(
        encode_trace_dump(trace_dump_flags::SNAPSHOT),
        [0x04, 0x01] // opcode TRACE_DUMP, SNAPSHOT flag
    );
    assert_eq!(parse_trace_dump(&[0x04]).unwrap(), 0);
    assert_eq!(parse_trace_dump(&[0x04, 0x01]).unwrap(), 0x01);
    // Unknown flag bits must be rejected, not ignored: a future client
    // would otherwise silently get consuming-drain semantics.
    assert!(parse_trace_dump(&[0x04, 0x02]).is_err());
}
