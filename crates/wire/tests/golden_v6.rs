//! Golden-bytes tests for the protocol v6 additions: the map-rollout
//! opcodes (`MAP_GET`/`MAP_REPLY`/`MAP_SET`/`MAP_OK`) and the label
//! migration stream (`LABELS`/`LABELS_OK`).
//!
//! As with `golden_v5.rs`: round-trip tests prove encode and parse
//! agree with *each other*; only a byte-literal test proves they agree
//! with the *protocol*. Every array below was written out by hand from
//! the layouts documented in `protocol.rs` (the two trailing FNV-1a-32
//! checksums were computed once, offline, from the preceding literal
//! bytes). If an edit changes any of these bytes, it changes the
//! protocol and must bump the version instead.

use pl_wire::protocol::{
    encode_labels, encode_labels_ok, encode_map_get, encode_map_ok, encode_map_reply,
    encode_map_set, parse_labels, parse_labels_ok, parse_map_get, parse_map_ok, parse_map_reply,
    parse_map_set, LabelsStatus, MapSetMode, MapSetRequest, MapSetStatus, ProtocolError,
    MAP_TARGET_ROUTER,
};

/// A hand-written, checksummed `ClusterMap` blob: epoch 2, seed 3,
/// 1 replica, n = 5, tag 2, one backend `"a:1"`. The wire layer only
/// validates this structurally, but the bytes pin the `.plcm` layout
/// the v6 opcodes carry.
#[rustfmt::skip]
const MAP_BLOB: &[u8] = &[
    b'P', b'L', b'C', b'M',                         // magic
    0x01,                                           // map version 1
    0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // epoch = 2, u64 LE
    0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // seed = 3, u64 LE
    0x01, 0x00, 0x00, 0x00,                         // replicas = 1, u32 LE
    0x05, 0x00, 0x00, 0x00,                         // n = 5, u32 LE
    0x02,                                           // scheme tag
    0x01, 0x00,                                     // 1 backend, u16 LE
    0x03, 0x00,                                     // address length, u16 LE
    b'a', b':', b'1',                               // "a:1"
    0xEB, 0xCB, 0xFB, 0xE8,                         // FNV-1a-32 of the above, LE
];

#[test]
fn map_get_golden_bytes() {
    assert_eq!(encode_map_get(), [0x06]);
    assert!(parse_map_get(&[0x06]).is_ok());
    // Strictly opcode-only: a trailing byte is a malformed frame, not
    // slack for a future field.
    assert!(parse_map_get(&[0x06, 0x00]).is_err());
}

#[test]
fn map_reply_golden_bytes() {
    // No map: opcode + absent presence byte.
    assert_eq!(encode_map_reply(None), [0x87, 0x00]);
    assert_eq!(parse_map_reply(&[0x87, 0x00]).unwrap(), None);

    // Present map: opcode, presence byte, then the blob verbatim.
    let mut expected = vec![0x87, 0x01];
    expected.extend_from_slice(MAP_BLOB);
    assert_eq!(encode_map_reply(Some(MAP_BLOB)), expected);
    assert_eq!(parse_map_reply(&expected).unwrap(), Some(MAP_BLOB.to_vec()));

    // A flipped bit inside the blob fails the blob's own checksum.
    let mut tampered = expected.clone();
    tampered[10] ^= 0x40;
    assert!(matches!(
        parse_map_reply(&tampered),
        Err(ProtocolError::ChecksumMismatch)
    ));
}

/// MAP_SET: opcode, mode byte, backend u32, moved u64, then the blob.
#[test]
fn map_set_golden_bytes() {
    #[rustfmt::skip]
    let mut expected = vec![
        0x07,                   // opcode MAP_SET
        0x01,                   // mode Commit
        0xFF, 0xFF, 0xFF, 0xFF, // backend = MAP_TARGET_ROUTER, u32 LE
        0x02, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // moved = 0x0102, u64 LE
    ];
    expected.extend_from_slice(MAP_BLOB);
    assert_eq!(
        encode_map_set(MapSetMode::Commit, MAP_TARGET_ROUTER, 0x0102, MAP_BLOB).unwrap(),
        expected,
        "MAP_SET layout drifted"
    );
    assert_eq!(
        parse_map_set(&expected).unwrap(),
        MapSetRequest {
            mode: MapSetMode::Commit,
            backend: MAP_TARGET_ROUTER,
            moved: 0x0102,
            map: MAP_BLOB.to_vec(),
        }
    );

    // The four mode bytes are pinned; byte 4 is not a mode.
    for (mode, byte) in [
        (MapSetMode::Prepare, 0x00),
        (MapSetMode::Commit, 0x01),
        (MapSetMode::Abort, 0x02),
        (MapSetMode::Shrink, 0x03),
    ] {
        let body = encode_map_set(mode, 0, 0, MAP_BLOB).unwrap();
        assert_eq!(body[1], byte, "{mode:?} mode byte");
    }
    let mut bad_mode = expected.clone();
    bad_mode[1] = 0x04;
    assert!(parse_map_set(&bad_mode).is_err());
}

/// MAP_OK: opcode, status byte, the receiver's current epoch.
#[test]
fn map_ok_golden_bytes() {
    #[rustfmt::skip]
    let expected: &[u8] = &[
        0x88,                   // opcode MAP_OK
        0x04,                   // status Stale
        0x09, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // epoch = 9, u64 LE
    ];
    assert_eq!(encode_map_ok(MapSetStatus::Stale, 9), expected);
    assert_eq!(parse_map_ok(expected).unwrap(), (MapSetStatus::Stale, 9));

    // All seven status bytes are pinned; byte 7 is not a status.
    for (status, byte) in [
        (MapSetStatus::Prepared, 0x00),
        (MapSetStatus::Committed, 0x01),
        (MapSetStatus::Aborted, 0x02),
        (MapSetStatus::Shrunk, 0x03),
        (MapSetStatus::Stale, 0x04),
        (MapSetStatus::Unsupported, 0x05),
        (MapSetStatus::Failed, 0x06),
    ] {
        assert_eq!(encode_map_ok(status, 0)[1], byte, "{status:?} status byte");
    }
    assert!(parse_map_ok(&[0x88, 0x07, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
}

/// LABELS: opcode, epoch, count, `count ×` (vertex, length, bytes),
/// then an FNV-1a-32 checksum of every preceding body byte.
#[test]
fn labels_golden_bytes() {
    #[rustfmt::skip]
    let expected: &[u8] = &[
        0x08,                   // opcode LABELS
        0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // epoch = 7, u64 LE
        0x01, 0x00,             // 1 entry, u16 LE
        0x04, 0x03, 0x02, 0x01, // vertex = 0x01020304, u32 LE
        0x02, 0x00, 0x00, 0x00, // label length = 2, u32 LE
        0xAA, 0xBB,             // label record bytes
        0x30, 0xE5, 0x8C, 0x8E, // FNV-1a-32 of the above, LE
    ];
    assert_eq!(
        encode_labels(7, &[(0x0102_0304, &[0xAA, 0xBB])]).unwrap(),
        expected,
        "LABELS layout drifted"
    );
    let (epoch, entries) = parse_labels(expected).unwrap();
    assert_eq!(epoch, 7);
    assert_eq!(entries, vec![(0x0102_0304, vec![0xAA, 0xBB])]);

    // A single flipped label bit fails the trailing checksum — the
    // tamper-evidence migration pushes rely on.
    let mut tampered = expected.to_vec();
    tampered[19] ^= 0x01; // 0xAA -> 0xAB
    assert!(matches!(
        parse_labels(&tampered),
        Err(ProtocolError::ChecksumMismatch)
    ));
}

/// LABELS_OK: opcode, status byte, labels buffered so far this epoch.
#[test]
fn labels_ok_golden_bytes() {
    #[rustfmt::skip]
    let expected: &[u8] = &[
        0x89,                   // opcode LABELS_OK
        0x00,                   // status Ok
        0x03, 0x00, 0x00, 0x00, // received = 3, u32 LE
    ];
    assert_eq!(encode_labels_ok(LabelsStatus::Ok, 3), expected);
    assert_eq!(parse_labels_ok(expected).unwrap(), (LabelsStatus::Ok, 3));

    for (status, byte) in [
        (LabelsStatus::Ok, 0x00),
        (LabelsStatus::WrongEpoch, 0x01),
        (LabelsStatus::Rejected, 0x02),
        (LabelsStatus::Unsupported, 0x03),
    ] {
        assert_eq!(
            encode_labels_ok(status, 0)[1],
            byte,
            "{status:?} status byte"
        );
    }
    assert!(parse_labels_ok(&[0x89, 0x04, 0, 0, 0, 0]).is_err());
}
