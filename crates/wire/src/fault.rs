//! Deterministic fault injection for the serving path.
//!
//! A production label store has to stay correct when the world around it
//! misbehaves: slow clients, half-written frames, dying connections,
//! bit-flipped response bytes, shard I/O hiccups. This module is the
//! harness that *manufactures* those failures on demand, deterministically,
//! so the chaos experiments (`e20_chaos`, the `ci.sh full` chaos smoke,
//! and `tests/resilience.rs`) can assert the recovery story instead of
//! hoping for it.
//!
//! A [`FaultPlan`] is a seeded set of per-event probabilities. Each
//! accepted connection derives a [`FaultInjector`] from the plan and its
//! connection id, so a fixed `(seed, connection id)` pair always produces
//! the same fault sequence — a failing chaos run replays exactly.
//!
//! Every injected fault increments the
//! `plserve_faults_injected_total{kind=...}` counter family
//! ([`FaultCounters`]) and emits a `serve.fault` trace event, so the
//! injection itself is observable through the same pipeline as the
//! recovery.
//!
//! ## Fault taxonomy (see RELIABILITY.md)
//!
//! | kind          | site                    | what the peer sees              |
//! |---------------|-------------------------|---------------------------------|
//! | `read_delay`  | after bytes arrive      | slow request processing         |
//! | `write_delay` | before a reply frame    | slow responses                  |
//! | `truncate`    | on a reply frame        | partial frame, then close       |
//! | `drop`        | instead of a reply      | connection closed mid-request   |
//! | `flip`        | inside a reply body     | corrupt frame (checksum catches)|
//! | `store_err`   | instead of a store read | `ANS_OVERLOADED` for the query  |

use std::sync::Arc;
use std::time::Duration;

use pl_obs::registry::Counter;
use pl_obs::MetricsRegistry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The kinds of fault the injector can produce, in a fixed order so the
/// counters and the spec parser can iterate them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Sleep before processing bytes just read.
    ReadDelay,
    /// Sleep before writing a reply frame.
    WriteDelay,
    /// Write a full-length prefix but only part of the body, then close.
    Truncate,
    /// Close the connection instead of replying.
    Drop,
    /// Flip one byte inside the reply body before writing it.
    Flip,
    /// Answer a query with a simulated shard-store I/O error.
    StoreErr,
}

impl FaultKind {
    /// All kinds, in counter order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::ReadDelay,
        FaultKind::WriteDelay,
        FaultKind::Truncate,
        FaultKind::Drop,
        FaultKind::Flip,
        FaultKind::StoreErr,
    ];

    /// The `kind` label value used on the Prometheus counter family and
    /// the key accepted by [`FaultPlan::parse`].
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::ReadDelay => "read_delay",
            Self::WriteDelay => "write_delay",
            Self::Truncate => "truncate",
            Self::Drop => "drop",
            Self::Flip => "flip",
            Self::StoreErr => "store_err",
        }
    }

    fn index(self) -> usize {
        Self::ALL.iter().position(|&k| k == self).expect("in ALL") // lint: panic-ok(ALL enumerates every variant; the exhaustiveness test below keeps it that way)
    }
}

/// A seeded, declarative description of which faults to inject how often.
///
/// Probabilities are per *event* (per frame, per query, per read) in
/// `[0, 1]`. The plan is inert until handed to the server via
/// `ServeOptions::fault_plan`; a plan with all rates zero injects nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Base seed; connection `c` uses `seed` mixed with `c`.
    pub seed: u64,
    /// Per-fault-kind probabilities, indexed by [`FaultKind::index`].
    pub rates: [f64; 6],
    /// How long `read_delay` / `write_delay` faults sleep.
    pub delay: Duration,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0xFA_017,
            rates: [0.0; 6],
            delay: Duration::from_millis(5),
        }
    }
}

impl FaultPlan {
    /// Probability for one fault kind.
    #[must_use]
    pub fn rate(&self, kind: FaultKind) -> f64 {
        self.rates[kind.index()]
    }

    /// Sets the probability for one fault kind (builder style).
    #[must_use]
    pub fn with_rate(mut self, kind: FaultKind, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "fault rate out of range: {p}");
        self.rates[kind.index()] = p;
        self
    }

    /// Combined probability mass of the frame-level faults (truncate,
    /// drop, flip) — the figure the chaos gate checks against its ≥5%
    /// requirement.
    #[must_use]
    pub fn frame_fault_rate(&self) -> f64 {
        self.rate(FaultKind::Truncate) + self.rate(FaultKind::Drop) + self.rate(FaultKind::Flip)
    }

    /// `true` if any rate is nonzero.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.rates.iter().any(|&r| r > 0.0)
    }

    /// Parses the compact `key=value[,key=value...]` spec used by
    /// `plab serve --fault-plan`.
    ///
    /// Keys: `seed=U64`, `delay_ms=U64`, and one per fault kind
    /// (`read_delay`, `write_delay`, `truncate`, `drop`, `flip`,
    /// `store_err`) taking a probability in `[0, 1]`.
    ///
    /// ```
    /// use pl_wire::fault::{FaultKind, FaultPlan};
    /// let plan = FaultPlan::parse("seed=7,flip=0.05,drop=0.02,delay_ms=3").unwrap();
    /// assert_eq!(plan.seed, 7);
    /// assert_eq!(plan.rate(FaultKind::Flip), 0.05);
    /// assert_eq!(plan.delay.as_millis(), 3);
    /// ```
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = Self::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault plan: expected key=value, got {part:?}"))?;
            match key.trim() {
                "seed" => {
                    plan.seed = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("fault plan: bad seed {value:?}"))?;
                }
                "delay_ms" => {
                    let ms: u64 = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("fault plan: bad delay_ms {value:?}"))?;
                    plan.delay = Duration::from_millis(ms);
                }
                other => {
                    let kind = FaultKind::ALL
                        .into_iter()
                        .find(|k| k.name() == other)
                        .ok_or_else(|| format!("fault plan: unknown key {other:?}"))?;
                    let p: f64 = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("fault plan: bad probability {value:?}"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("fault plan: {other}={p} outside [0, 1]"));
                    }
                    plan.rates[kind.index()] = p;
                }
            }
        }
        Ok(plan)
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seed={},delay_ms={}", self.seed, self.delay.as_millis())?;
        for kind in FaultKind::ALL {
            if self.rate(kind) > 0.0 {
                write!(f, ",{}={}", kind.name(), self.rate(kind))?;
            }
        }
        Ok(())
    }
}

/// The `plserve_faults_injected_total{kind=...}` counter family, one
/// counter per [`FaultKind`], registered in the server's registry.
#[derive(Debug)]
pub struct FaultCounters {
    counters: [Arc<Counter>; 6],
}

impl FaultCounters {
    /// Registers the family in `registry` (counters start at zero and
    /// stay there when no plan is active).
    #[must_use]
    pub fn new(registry: &MetricsRegistry) -> Self {
        Self {
            counters: FaultKind::ALL.map(|kind| {
                registry.counter_with("plserve_faults_injected_total", &[("kind", kind.name())])
            }),
        }
    }

    /// Records one injected fault.
    pub fn record(&self, kind: FaultKind) {
        self.counters[kind.index()].inc();
    }

    /// Faults injected so far for one kind.
    #[must_use]
    pub fn get(&self, kind: FaultKind) -> u64 {
        self.counters[kind.index()].get()
    }

    /// Faults injected so far, all kinds.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counters.iter().map(|c| c.get()).sum()
    }
}

/// Per-connection fault source: rolls the plan's probabilities from a
/// deterministic stream derived from `(plan.seed, connection id)`.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
}

impl FaultInjector {
    /// An injector for connection `conn_id`. The same `(plan.seed,
    /// conn_id)` pair always yields the same decision sequence.
    #[must_use]
    pub fn new(plan: &FaultPlan, conn_id: u64) -> Self {
        // SplitMix-style avalanche so nearby connection ids do not
        // produce correlated streams.
        let mixed = (plan.seed ^ conn_id.wrapping_mul(0x9E37_79B9_7F4A_7C15)).rotate_left(31);
        Self {
            plan: plan.clone(),
            rng: StdRng::seed_from_u64(mixed),
        }
    }

    /// Rolls one fault kind. The roll consumes randomness whether or not
    /// it fires, keeping the stream aligned across kinds.
    pub fn roll(&mut self, kind: FaultKind) -> bool {
        let p = self.plan.rate(kind);
        // Always consume a draw so decision sequences stay comparable
        // between plans that differ only in rates.
        let x: f64 = self.rng.gen();
        p > 0.0 && x < p
    }

    /// The configured injected-delay duration.
    #[must_use]
    pub fn delay(&self) -> Duration {
        self.plan.delay
    }

    /// Index of the byte to flip in a body of `len` bytes.
    pub fn flip_position(&mut self, len: usize) -> usize {
        debug_assert!(len > 0);
        self.rng.gen_range(0..len)
    }

    /// How many body bytes survive a truncation fault: at least the
    /// length prefix's promise is broken — somewhere in `[0, len)`.
    pub fn truncate_at(&mut self, len: usize) -> usize {
        debug_assert!(len > 0);
        self.rng.gen_range(0..len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_through_display() {
        let plan = FaultPlan::parse("seed=42,flip=0.25,truncate=0.1,delay_ms=7").unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.rate(FaultKind::Flip), 0.25);
        assert_eq!(plan.rate(FaultKind::Truncate), 0.1);
        assert_eq!(plan.rate(FaultKind::Drop), 0.0);
        assert_eq!(plan.delay, Duration::from_millis(7));
        let reparsed = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(reparsed, plan);
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(FaultPlan::parse("flip").is_err());
        assert!(FaultPlan::parse("warp=0.1").is_err());
        assert!(FaultPlan::parse("flip=1.5").is_err());
        assert!(FaultPlan::parse("flip=-0.1").is_err());
        assert!(FaultPlan::parse("seed=abc").is_err());
        assert!(FaultPlan::parse("delay_ms=xyz").is_err());
    }

    #[test]
    fn empty_spec_is_the_inert_default() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(!plan.is_active());
        assert_eq!(plan.frame_fault_rate(), 0.0);
    }

    #[test]
    fn injector_is_deterministic_per_connection() {
        let plan = FaultPlan::parse("seed=9,flip=0.5,drop=0.3").unwrap();
        let decisions = |conn: u64| -> Vec<bool> {
            let mut inj = FaultInjector::new(&plan, conn);
            (0..64)
                .map(|i| {
                    inj.roll(if i % 2 == 0 {
                        FaultKind::Flip
                    } else {
                        FaultKind::Drop
                    })
                })
                .collect()
        };
        assert_eq!(decisions(3), decisions(3), "same conn id, same stream");
        assert_ne!(decisions(3), decisions(4), "different conn ids diverge");
    }

    #[test]
    fn injector_rates_are_roughly_honoured() {
        let plan = FaultPlan::default().with_rate(FaultKind::Flip, 0.2);
        let mut inj = FaultInjector::new(&plan, 0);
        let fired = (0..10_000).filter(|_| inj.roll(FaultKind::Flip)).count();
        assert!(
            (1_500..2_500).contains(&fired),
            "0.2 rate fired {fired}/10000 times"
        );
    }

    #[test]
    fn zero_rate_never_fires() {
        let plan = FaultPlan::default();
        let mut inj = FaultInjector::new(&plan, 1);
        assert!((0..1_000).all(|_| !inj.roll(FaultKind::Drop)));
    }

    #[test]
    fn counters_track_per_kind_and_total() {
        let reg = MetricsRegistry::new();
        let counters = FaultCounters::new(&reg);
        counters.record(FaultKind::Flip);
        counters.record(FaultKind::Flip);
        counters.record(FaultKind::Drop);
        assert_eq!(counters.get(FaultKind::Flip), 2);
        assert_eq!(counters.get(FaultKind::Drop), 1);
        assert_eq!(counters.get(FaultKind::Truncate), 0);
        assert_eq!(counters.total(), 3);
        let text = pl_obs::prom::render(&reg);
        assert!(
            text.contains("plserve_faults_injected_total{kind=\"flip\"} 2"),
            "{text}"
        );
    }
}
