//! The generic hardened TCP front-end, parameterized over a
//! [`QueryEngine`].
//!
//! One implementation of accept loop, per-connection lifecycle, HELLO
//! negotiation, shedding, deadlines, drain-on-shutdown, and fault
//! injection serves both the single-node server (`pl_serve::server`)
//! and the cluster router (`pl_cluster::route`): each supplies only an
//! engine answering batches and reporting stats/health. The front-end
//! owns everything transport:
//!
//! - **Shedding**: [`FrontendOptions::max_conns`] caps concurrent
//!   connections; the cap is checked (and the slot claimed) in the
//!   accept loop so racing accepts cannot both squeeze past it. Shed
//!   peers get a single `OVERLOADED` frame (`plserve_shed_total`).
//! - **Deadlines**: [`FrontendOptions::idle_timeout`] reaps silent
//!   connections (`plserve_idle_reaped_total`);
//!   [`FrontendOptions::stall_timeout`] bounds a peer stalled mid-frame
//!   and doubles as the socket write timeout
//!   (`plserve_deadline_closes_total`).
//! - **Drain-on-shutdown**: after shutdown is signalled, connections
//!   serve every fully received frame and linger through a short quiet
//!   window for bytes still in flight before closing.
//! - **Fault injection**: a [`FaultPlan`] drives the deterministic
//!   harness of [`crate::fault`] — read/write delays, dropped and
//!   truncated reply frames, flipped `BATCH_REPLY` bytes (v3 checksums
//!   catch them), and per-query simulated store errors rolled *ahead*
//!   of engine dispatch.
//!
//! Per-connection reply encoding and frame reassembly reuse scratch
//! buffers, and frames go out through a vectored header+body write, so
//! the steady-state reply path performs no per-frame allocation.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pl_obs::MetricsRegistry;

use crate::fault::{FaultCounters, FaultInjector, FaultKind, FaultPlan};
use crate::protocol::{
    encode_batch_reply_into, encode_health_reply_into, encode_hello_ok_into, encode_labels_ok,
    encode_map_ok, encode_map_reply, encode_stats_reply_into, opcode, parse_batch_ctx, parse_hello,
    parse_labels, parse_map_get, parse_map_set, parse_trace_dump, trace_dump_flags,
    write_frame_vectored, Answer, FrameBuffer, LabelsStatus, MapSetRequest, MapSetStatus, Query,
    MAX_FRAME, VERSION,
};
use crate::stats::{Metrics, Snapshot};

/// Poll interval for the accept loop and connection read timeout.
const POLL: Duration = Duration::from_millis(20);

/// After shutdown is signalled, a connection closes once it has seen no
/// new bytes for this long — frames already on the wire still get served.
const DRAIN_QUIET: Duration = Duration::from_millis(150);

/// What a front-end serves: anything that can answer query batches and
/// describe itself for HELLO/STATS/HEALTH/TRACE replies.
///
/// Implementations: the single-node label store (`pl_serve`) and the
/// scatter-gather cluster router (`pl_cluster`), which therefore share
/// one hardened transport.
pub trait QueryEngine: Send + Sync + 'static {
    /// Per-connection engine state (e.g. pooled downstream clients or
    /// reusable scratch). Created once per accepted connection.
    type Session: Send;

    /// Fresh state for a newly accepted connection.
    fn new_session(&self) -> Self::Session;

    /// Scheme tag byte for the HELLO_OK reply.
    fn scheme_tag(&self) -> u8;

    /// Vertex-universe size for the HELLO_OK reply.
    fn n(&self) -> u32;

    /// Answers `queries` in order, pushing exactly `queries.len()`
    /// answers. `answers` arrives cleared.
    fn answer_batch(
        &self,
        session: &mut Self::Session,
        queries: &[Query],
        answers: &mut Vec<Answer>,
    );

    /// Per-shard (or per-backend) liveness flags for HEALTH replies.
    fn health(&self) -> Vec<bool>;

    /// JSONL trace payload for TRACE_DUMP replies; the front-end
    /// truncates it to the frame cap at a line boundary, keeping the
    /// newest lines. `snapshot`
    /// selects the non-consuming read (v5 `TRACE_DUMP` flag). A router
    /// merges downstream backend rings here, which may use the
    /// session's pooled connections.
    fn trace_jsonl(&self, session: &mut Self::Session, snapshot: bool) -> String {
        let _ = session;
        if snapshot {
            pl_obs::trace::snapshot_jsonl()
        } else {
            pl_obs::trace::drain_jsonl()
        }
    }

    /// The engine's current serialized cluster map, answering a v6
    /// `MAP_GET`. Engines that serve no cluster map (a standalone
    /// backend before any map push, or a plain single-node server)
    /// return `None`, which the front-end encodes as an empty
    /// `MAP_REPLY`.
    fn map_payload(&self, session: &mut Self::Session) -> Option<Vec<u8>> {
        let _ = session;
        None
    }

    /// Applies a v6 `MAP_SET` push (prepare/commit/abort/shrink an
    /// epoch-bumped cluster map) and returns the verdict plus the
    /// engine's current epoch afterwards. The blob arrives already
    /// structurally validated (magic + self-checksum); semantic
    /// validation — epoch ordering, map parameters — is the engine's.
    /// The default refuses: reconfiguration is opt-in per engine.
    fn map_install(&self, session: &mut Self::Session, req: &MapSetRequest) -> (MapSetStatus, u64) {
        let _ = (session, req);
        (MapSetStatus::Unsupported, 0)
    }

    /// Buffers a v6 `LABELS` migration push for the staged epoch and
    /// returns the verdict plus the labels accepted so far this epoch.
    /// The frame checksum has already been verified; per-label
    /// byte-identity verification is the engine's. The default refuses.
    fn labels_install(
        &self,
        session: &mut Self::Session,
        epoch: u64,
        entries: &[(u32, Vec<u8>)],
    ) -> (LabelsStatus, u32) {
        let _ = (session, epoch, entries);
        (LabelsStatus::Unsupported, 0)
    }

    /// Snapshot answering a wire STATS request. A router merges
    /// downstream backend stats here, which may use the session's
    /// pooled connections; a plain server returns
    /// [`local_snapshot`](Self::local_snapshot).
    fn wire_stats(&self, session: &mut Self::Session, front: &FrontStats) -> Snapshot;

    /// Local (no-I/O) snapshot, used by [`FrontendHandle::snapshot`]
    /// and returned from [`FrontendHandle::shutdown`].
    fn local_snapshot(&self, front: &FrontStats) -> Snapshot;
}

/// The front-end's own instruments, passed to the engine so transport
/// counters (bytes, sheds, faults, open connections) can be folded
/// into snapshots.
pub struct FrontStats {
    /// Wire metrics (`plserve_*` families).
    pub metrics: Metrics,
    /// Fault-injection counters (`plserve_faults_injected_total{kind}`).
    pub faults: FaultCounters,
    /// When the front-end started, for uptime/qps derivation.
    pub started: Instant,
}

/// Transport tuning knobs, shared by every front-end consumer.
#[derive(Debug, Clone, Default)]
pub struct FrontendOptions {
    /// Registry for the front-end's instruments; a fresh private
    /// registry when `None`. Pass the engine's registry so all families
    /// land on one scrape surface (instruments dedup by name+labels).
    pub registry: Option<Arc<MetricsRegistry>>,
    /// Maximum concurrent connections; further accepts are shed with an
    /// `OVERLOADED` frame (`plserve_shed_total`). `None` means no cap.
    pub max_conns: Option<usize>,
    /// Fault-injection plan for chaos testing; `None` (or an all-zero
    /// plan) serves faithfully.
    pub fault_plan: Option<FaultPlan>,
    /// Connections that send no bytes for this long are reaped
    /// (`plserve_idle_reaped_total`). `None` lets idle connections live
    /// until shutdown.
    pub idle_timeout: Option<Duration>,
    /// Deadline for a peer stalled mid-frame, and the socket write
    /// timeout for a peer that stops reading replies
    /// (`plserve_deadline_closes_total`). `None` disables both.
    pub stall_timeout: Option<Duration>,
    /// Highest protocol version this front-end will negotiate; `None`
    /// means the build's newest ([`VERSION`]). Capping below a client's
    /// offer makes the handshake reject it, driving the client's
    /// version-fallback loop — how the downgrade path is tested without
    /// an old binary.
    pub max_version: Option<u8>,
}

/// Everything a connection thread needs, behind one `Arc`.
struct FrontShared<E: QueryEngine> {
    engine: Arc<E>,
    stats: FrontStats,
    registry: Arc<MetricsRegistry>,
    /// Connection cap; `usize::MAX` disables.
    max_conns: usize,
    /// Highest negotiable protocol version.
    max_version: u8,
    fault_plan: Option<FaultPlan>,
    idle_timeout: Option<Duration>,
    stall_timeout: Option<Duration>,
    /// Connections currently being served (authoritative for shedding).
    live_conns: AtomicUsize,
    /// Join handles currently held by the accept loop (diagnostic; see
    /// [`FrontendHandle::conn_handle_count`]).
    conn_handles: AtomicUsize,
    /// Monotonic connection ids, feeding per-connection fault streams.
    conn_seq: AtomicU64,
    shutdown: AtomicBool,
}

/// Decrements the live-connection accounting when a connection thread
/// exits, however it exits.
struct ConnGuard<'a, E: QueryEngine>(&'a FrontShared<E>);

impl<E: QueryEngine> Drop for ConnGuard<'_, E> {
    fn drop(&mut self) {
        self.0.live_conns.fetch_sub(1, Ordering::SeqCst);
        self.0.stats.metrics.open_conns.add(-1);
    }
}

/// A running front-end. Dropping the handle without calling
/// [`shutdown`](Self::shutdown) aborts rather than drains.
pub struct FrontendHandle<E: QueryEngine> {
    addr: SocketAddr,
    shared: Arc<FrontShared<E>>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl<E: QueryEngine> FrontendHandle<E> {
    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine this front-end serves.
    #[must_use]
    pub fn engine(&self) -> &Arc<E> {
        &self.shared.engine
    }

    /// The front-end's transport instruments.
    #[must_use]
    pub fn stats(&self) -> &FrontStats {
        &self.shared.stats
    }

    /// The registry the front-end's instruments live in.
    #[must_use]
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.shared.registry)
    }

    /// Connections currently being served.
    #[must_use]
    pub fn live_connections(&self) -> usize {
        self.shared.live_conns.load(Ordering::SeqCst)
    }

    /// Join handles the accept loop is currently holding. Finished
    /// handles are reaped every loop pass, so this stays bounded by the
    /// live-connection count (plus at most one poll interval of lag)
    /// rather than growing with every connection ever accepted.
    #[must_use]
    pub fn conn_handle_count(&self) -> usize {
        self.shared.conn_handles.load(Ordering::SeqCst)
    }

    /// A live engine snapshot (no downstream I/O).
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        self.shared.engine.local_snapshot(&self.shared.stats)
    }

    /// Signals shutdown, waits for every connection to drain, and
    /// returns the final engine snapshot.
    pub fn shutdown(mut self) -> Snapshot {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.snapshot()
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves `engine` until
/// [`FrontendHandle::shutdown`].
pub fn bind<E: QueryEngine>(
    engine: Arc<E>,
    addr: impl ToSocketAddrs,
    options: FrontendOptions,
) -> std::io::Result<FrontendHandle<E>> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let registry = options
        .registry
        .unwrap_or_else(|| Arc::new(MetricsRegistry::new()));
    let shared = Arc::new(FrontShared {
        engine,
        stats: FrontStats {
            metrics: Metrics::new(&registry),
            faults: FaultCounters::new(&registry),
            started: Instant::now(),
        },
        registry,
        max_conns: options.max_conns.unwrap_or(usize::MAX),
        max_version: options.max_version.unwrap_or(VERSION).min(VERSION),
        fault_plan: options.fault_plan.filter(FaultPlan::is_active),
        idle_timeout: options.idle_timeout,
        stall_timeout: options.stall_timeout,
        live_conns: AtomicUsize::new(0),
        conn_handles: AtomicUsize::new(0),
        conn_seq: AtomicU64::new(0),
        shutdown: AtomicBool::new(false),
    });
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::Builder::new()
        .name("plwire-accept".into())
        .spawn(move || accept_loop(&listener, &accept_shared))?;
    Ok(FrontendHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
    })
}

fn accept_loop<E: QueryEngine>(listener: &TcpListener, shared: &Arc<FrontShared<E>>) {
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        // Reap finished connection threads every pass — not only when
        // accepts are quiet — so the handle vector tracks live
        // connections instead of every connection ever accepted.
        conns.retain(|c| !c.is_finished());
        shared.conn_handles.store(conns.len(), Ordering::SeqCst);
        match listener.accept() {
            Ok((mut stream, _)) => {
                // The cap is checked (and the slot claimed) here in the
                // accept loop, not in the connection thread, so two
                // racing accepts cannot both squeeze past the limit.
                if shared.live_conns.load(Ordering::SeqCst) >= shared.max_conns {
                    shared.stats.metrics.shed.inc();
                    pl_obs::event!("serve.shed");
                    // Best effort: tell the peer why before closing.
                    let _ = write_frame_vectored(&mut stream, &[opcode::OVERLOADED]);
                    continue;
                }
                shared.live_conns.fetch_add(1, Ordering::SeqCst);
                shared.stats.metrics.open_conns.add(1);
                shared.stats.metrics.connections.inc();
                pl_obs::event!("serve.accept");
                let conn_id = shared.conn_seq.fetch_add(1, Ordering::SeqCst);
                let conn_shared = Arc::clone(shared);
                conns.push(std::thread::spawn(move || {
                    let _guard = ConnGuard(&conn_shared);
                    // Per-connection I/O errors just end that connection.
                    let _ = serve_connection(stream, &conn_shared, conn_id);
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
    for c in conns {
        let _ = c.join();
    }
    shared.conn_handles.store(0, Ordering::SeqCst);
}

/// Per-connection state: the engine session plus reusable scratch, so
/// the steady-state frame loop allocates nothing.
struct Conn<'a, E: QueryEngine> {
    shared: &'a FrontShared<E>,
    session: E::Session,
    injector: Option<FaultInjector>,
    /// Negotiated protocol version; `None` until the handshake.
    version: Option<u8>,
    /// Reply-encoding scratch, reused across frames.
    reply: Vec<u8>,
    /// Answer scratch, reused across batches.
    answers: Vec<Answer>,
}

fn serve_connection<E: QueryEngine>(
    mut stream: TcpStream,
    shared: &Arc<FrontShared<E>>,
    conn_id: u64,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL))?;
    stream.set_write_timeout(shared.stall_timeout)?;
    let mut conn = Conn {
        shared,
        session: shared.engine.new_session(),
        injector: shared
            .fault_plan
            .as_ref()
            .map(|plan| FaultInjector::new(plan, conn_id)),
        version: None,
        reply: Vec::new(),
        answers: Vec::new(),
    };
    let mut fb = FrameBuffer::new();
    let mut read_buf = [0u8; 16 * 1024];
    // Decoded-frame scratch, reused across frames.
    let mut frame = Vec::new();
    let mut quiet_since: Option<Instant> = None;
    let mut last_activity = Instant::now();
    loop {
        match stream.read(&mut read_buf) {
            Ok(0) => return Ok(()), // peer closed
            Ok(len) => {
                quiet_since = None;
                last_activity = Instant::now();
                shared.stats.metrics.bytes_in.add(len as u64);
                if let Some(inj) = conn.injector.as_mut() {
                    if inj.roll(FaultKind::ReadDelay) {
                        shared.stats.faults.record(FaultKind::ReadDelay);
                        pl_obs::event!("serve.fault.read_delay", conn_id);
                        std::thread::sleep(inj.delay());
                    }
                }
                fb.push(&read_buf[..len]);
                loop {
                    match fb.next_frame_into(&mut frame) {
                        Ok(true) => {
                            if !conn.process_frame(&frame, &mut stream)? {
                                return stream.flush();
                            }
                        }
                        Ok(false) => break,
                        Err(e) => {
                            shared.stats.metrics.protocol_errors.inc();
                            conn.send_error(&mut stream, &e.to_string())?;
                            return stream.flush();
                        }
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    // Drain: keep listening for DRAIN_QUIET in case a
                    // request is still in flight, then close.
                    let since = *quiet_since.get_or_insert_with(Instant::now);
                    if since.elapsed() >= DRAIN_QUIET {
                        return stream.flush();
                    }
                } else if fb.pending() > 0 {
                    // Mid-frame stall: the peer sent a partial frame and
                    // went quiet. A hub client wedged here used to hold
                    // its thread forever.
                    if let Some(stall) = shared.stall_timeout {
                        if last_activity.elapsed() >= stall {
                            shared.stats.metrics.deadline_closes.inc();
                            pl_obs::event!("serve.deadline_close", conn_id);
                            return stream.flush();
                        }
                    }
                } else if let Some(idle) = shared.idle_timeout {
                    if last_activity.elapsed() >= idle {
                        shared.stats.metrics.idle_reaped.inc();
                        pl_obs::event!("serve.idle_reap", conn_id);
                        return stream.flush();
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

impl<E: QueryEngine> Conn<'_, E> {
    /// Handles one frame; returns `false` when the connection should
    /// close.
    fn process_frame(&mut self, body: &[u8], stream: &mut TcpStream) -> std::io::Result<bool> {
        let op = body.first().copied();
        let Some(version) = self.version else {
            return match op {
                Some(opcode::HELLO) => match parse_hello(body) {
                    Ok(v) if v > self.shared.max_version => {
                        // Version-capped front-end (downgrade testing):
                        // reject so the client's fallback loop re-offers
                        // an older version.
                        self.shared.stats.metrics.protocol_errors.inc();
                        self.send_error(stream, &format!("unsupported protocol version {v}"))?;
                        Ok(false)
                    }
                    Ok(v) => {
                        self.version = Some(v);
                        encode_hello_ok_into(
                            v,
                            self.shared.engine.scheme_tag(),
                            self.shared.engine.n(),
                            &mut self.reply,
                        );
                        send(stream, &self.shared.stats, &mut self.injector, &self.reply)?;
                        Ok(true)
                    }
                    Err(e) => {
                        self.shared.stats.metrics.protocol_errors.inc();
                        self.send_error(stream, &e.to_string())?;
                        Ok(false)
                    }
                },
                _ => {
                    self.shared.stats.metrics.protocol_errors.inc();
                    self.send_error(stream, "expected HELLO")?;
                    Ok(false)
                }
            };
        };
        match op {
            Some(opcode::BATCH) => match parse_batch_ctx(body, version) {
                Ok((queries, ctx)) => {
                    // Adopt the propagated context *before* opening the
                    // span so serve.batch (and everything the engine
                    // records on this thread) parents to the remote
                    // caller and carries its trace id.
                    let _ctx_guard = ctx.map(pl_obs::trace::adopt);
                    let _batch_span = pl_obs::span!("serve.batch", queries.len());
                    self.answer_with_faults(&queries);
                    self.shared.stats.metrics.batches.inc();
                    encode_batch_reply_into(&self.answers, version, &mut self.reply);
                    send(stream, &self.shared.stats, &mut self.injector, &self.reply)?;
                    Ok(true)
                }
                Err(e) => {
                    self.shared.stats.metrics.protocol_errors.inc();
                    self.send_error(stream, &e.to_string())?;
                    Ok(false)
                }
            },
            Some(opcode::STATS) => {
                let snap = self
                    .shared
                    .engine
                    .wire_stats(&mut self.session, &self.shared.stats);
                encode_stats_reply_into(&snap, version, &mut self.reply);
                send(stream, &self.shared.stats, &mut self.injector, &self.reply)?;
                Ok(true)
            }
            Some(opcode::HEALTH) => {
                if version < 3 {
                    self.shared.stats.metrics.protocol_errors.inc();
                    self.send_error(stream, "HEALTH requires protocol version 3")?;
                    return Ok(false);
                }
                encode_health_reply_into(&self.shared.engine.health(), &mut self.reply);
                send(stream, &self.shared.stats, &mut self.injector, &self.reply)?;
                Ok(true)
            }
            Some(opcode::TRACE_DUMP) => {
                let flags = match parse_trace_dump(body) {
                    Ok(f) => f,
                    Err(e) => {
                        self.shared.stats.metrics.protocol_errors.inc();
                        self.send_error(stream, &e.to_string())?;
                        return Ok(false);
                    }
                };
                if flags != 0 && version < 5 {
                    self.shared.stats.metrics.protocol_errors.inc();
                    self.send_error(stream, "TRACE_DUMP flags require protocol version 5")?;
                    return Ok(false);
                }
                let snapshot = flags & trace_dump_flags::SNAPSHOT != 0;
                let jsonl = self.shared.engine.trace_jsonl(&mut self.session, snapshot);
                self.reply.clear();
                self.reply.push(opcode::TRACE_REPLY);
                // Truncate to the frame cap at a line boundary, keeping
                // the *newest* lines: a consuming drain has already
                // emptied the rings, so whatever is cut here is gone,
                // and the events worth keeping are the ones closest to
                // now (the trace you just sent a probe for).
                let budget = MAX_FRAME - 1;
                let bytes = jsonl.as_bytes();
                let from = if bytes.len() <= budget {
                    0
                } else {
                    let cut = bytes.len() - budget;
                    bytes[cut..]
                        .iter()
                        .position(|&b| b == b'\n')
                        .map_or(bytes.len(), |p| cut + p + 1)
                };
                self.reply.extend_from_slice(&bytes[from..]);
                send(stream, &self.shared.stats, &mut self.injector, &self.reply)?;
                Ok(true)
            }
            Some(opcode::MAP_GET) => {
                if version < 6 {
                    self.shared.stats.metrics.protocol_errors.inc();
                    self.send_error(stream, "MAP_GET requires protocol version 6")?;
                    return Ok(false);
                }
                if let Err(e) = parse_map_get(body) {
                    self.shared.stats.metrics.protocol_errors.inc();
                    self.send_error(stream, &e.to_string())?;
                    return Ok(false);
                }
                let map = self.shared.engine.map_payload(&mut self.session);
                let reply = encode_map_reply(map.as_deref());
                send(stream, &self.shared.stats, &mut self.injector, &reply)?;
                Ok(true)
            }
            Some(opcode::MAP_SET) => {
                if version < 6 {
                    self.shared.stats.metrics.protocol_errors.inc();
                    self.send_error(stream, "MAP_SET requires protocol version 6")?;
                    return Ok(false);
                }
                // A checksum-tampered or truncated map push dies here,
                // before the engine ever sees it.
                let req = match parse_map_set(body) {
                    Ok(req) => req,
                    Err(e) => {
                        self.shared.stats.metrics.protocol_errors.inc();
                        self.send_error(stream, &e.to_string())?;
                        return Ok(false);
                    }
                };
                let (status, epoch) = self.shared.engine.map_install(&mut self.session, &req);
                let reply = encode_map_ok(status, epoch);
                send(stream, &self.shared.stats, &mut self.injector, &reply)?;
                Ok(true)
            }
            Some(opcode::LABELS) => {
                if version < 6 {
                    self.shared.stats.metrics.protocol_errors.inc();
                    self.send_error(stream, "LABELS requires protocol version 6")?;
                    return Ok(false);
                }
                let (epoch, entries) = match parse_labels(body) {
                    Ok(parsed) => parsed,
                    Err(e) => {
                        self.shared.stats.metrics.protocol_errors.inc();
                        self.send_error(stream, &e.to_string())?;
                        return Ok(false);
                    }
                };
                let (status, received) =
                    self.shared
                        .engine
                        .labels_install(&mut self.session, epoch, &entries);
                let reply = encode_labels_ok(status, received);
                send(stream, &self.shared.stats, &mut self.injector, &reply)?;
                Ok(true)
            }
            Some(opcode::GOODBYE) => {
                send(
                    stream,
                    &self.shared.stats,
                    &mut self.injector,
                    &[opcode::GOODBYE_OK],
                )?;
                Ok(false)
            }
            _ => {
                self.shared.stats.metrics.protocol_errors.inc();
                self.send_error(stream, "unknown opcode")?;
                Ok(false)
            }
        }
    }

    /// Fills `self.answers` for `queries`, rolling the per-query
    /// `store_err` fault *ahead* of engine dispatch: a faulted query is
    /// answered [`Answer::Overloaded`] without reaching the engine. The
    /// roll consumes one RNG draw per query whenever a plan is active,
    /// keeping each connection's fault stream deterministic regardless
    /// of how the engine batches internally.
    fn answer_with_faults(&mut self, queries: &[Query]) {
        self.answers.clear();
        let Some(inj) = self.injector.as_mut() else {
            self.shared
                .engine
                .answer_batch(&mut self.session, queries, &mut self.answers);
            return;
        };
        let mut faulted = vec![false; queries.len()];
        let mut live: Vec<Query> = Vec::with_capacity(queries.len());
        for (i, q) in queries.iter().enumerate() {
            if inj.roll(FaultKind::StoreErr) {
                self.shared.stats.faults.record(FaultKind::StoreErr);
                let (u, v) = (q.u, q.v);
                pl_obs::event!("serve.fault.store_err", u, v);
                faulted[i] = true;
            } else {
                live.push(*q);
            }
        }
        if live.len() == queries.len() {
            self.shared
                .engine
                .answer_batch(&mut self.session, queries, &mut self.answers);
            return;
        }
        let mut sub: Vec<Answer> = Vec::with_capacity(live.len());
        self.shared
            .engine
            .answer_batch(&mut self.session, &live, &mut sub);
        let mut settled = sub.into_iter();
        for hit in faulted {
            self.answers.push(if hit {
                Answer::Overloaded
            } else {
                settled.next().unwrap_or(Answer::Overloaded)
            });
        }
    }

    fn send_error(&mut self, stream: &mut TcpStream, msg: &str) -> std::io::Result<()> {
        self.reply.clear();
        self.reply.push(opcode::ERROR);
        self.reply.extend_from_slice(msg.as_bytes());
        send(stream, &self.shared.stats, &mut self.injector, &self.reply)
    }
}

/// Writes one reply frame, applying write-side faults when a plan is
/// active. Rolls happen in a fixed order (write_delay, drop, truncate,
/// flip) so a given `(seed, conn_id)` replays the same fault sequence.
///
/// Byte flips are confined to `BATCH_REPLY` bodies: that is the surface
/// protocol v3 checksums, so an injected flip is always *detectable*
/// corruption (the client re-asks) rather than a silently wrong
/// handshake parameter.
fn send(
    stream: &mut TcpStream,
    stats: &FrontStats,
    injector: &mut Option<FaultInjector>,
    body: &[u8],
) -> std::io::Result<()> {
    if let Some(inj) = injector.as_mut() {
        if inj.roll(FaultKind::WriteDelay) {
            stats.faults.record(FaultKind::WriteDelay);
            pl_obs::event!("serve.fault.write_delay");
            std::thread::sleep(inj.delay());
        }
        if inj.roll(FaultKind::Drop) {
            stats.faults.record(FaultKind::Drop);
            pl_obs::event!("serve.fault.drop");
            // Close without replying: the peer sees EOF mid-request.
            return Err(std::io::Error::new(
                ErrorKind::ConnectionAborted,
                "injected connection drop",
            ));
        }
        if inj.roll(FaultKind::Truncate) && !body.is_empty() {
            stats.faults.record(FaultKind::Truncate);
            pl_obs::event!("serve.fault.truncate");
            // Promise the full frame, deliver part of it, close. The
            // peer's frame reassembly stalls and its deadline fires.
            let keep = inj.truncate_at(body.len());
            let mut partial = Vec::with_capacity(4 + keep);
            partial.extend_from_slice(&(body.len() as u32).to_le_bytes());
            partial.extend_from_slice(&body[..keep]);
            stream.write_all(&partial)?;
            stream.flush()?;
            stats.metrics.bytes_out.add(partial.len() as u64);
            return Err(std::io::Error::new(
                ErrorKind::ConnectionAborted,
                "injected frame truncation",
            ));
        }
        if inj.roll(FaultKind::Flip) && body.first() == Some(&opcode::BATCH_REPLY) && body.len() > 1
        {
            stats.faults.record(FaultKind::Flip);
            pl_obs::event!("serve.fault.flip");
            let mut corrupted = body.to_vec();
            // Never byte 0: a flipped opcode would change the frame's
            // meaning before the checksum is even consulted.
            let pos = 1 + inj.flip_position(body.len() - 1);
            corrupted[pos] ^= 1 << (pos % 8);
            write_frame_vectored(stream, &corrupted)?;
            stats.metrics.bytes_out.add(4 + corrupted.len() as u64);
            return Ok(());
        }
    }
    write_frame_vectored(stream, body)?;
    stats.metrics.bytes_out.add(4 + body.len() as u64);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{
        encode_batch, encode_hello_version, encode_map_get, parse_batch_reply, parse_hello_ok,
        parse_map_reply, read_frame, write_frame,
    };

    /// A constant-answer engine: NotAdjacent for everything.
    struct EchoEngine;

    impl QueryEngine for EchoEngine {
        type Session = ();
        fn new_session(&self) {}
        fn scheme_tag(&self) -> u8 {
            7
        }
        fn n(&self) -> u32 {
            100
        }
        fn answer_batch(&self, _s: &mut (), queries: &[Query], answers: &mut Vec<Answer>) {
            answers.extend(queries.iter().map(|_| Answer::NotAdjacent));
        }
        fn health(&self) -> Vec<bool> {
            vec![true]
        }
        fn wire_stats(&self, _s: &mut (), front: &FrontStats) -> Snapshot {
            self.local_snapshot(front)
        }
        fn local_snapshot(&self, front: &FrontStats) -> Snapshot {
            front
                .metrics
                .snapshot(front.started, &[], front.faults.total())
        }
    }

    #[test]
    fn handshake_batch_and_shed_through_a_dummy_engine() {
        let front = bind(
            Arc::new(EchoEngine),
            "127.0.0.1:0",
            FrontendOptions {
                max_conns: Some(1),
                ..FrontendOptions::default()
            },
        )
        .expect("bind");

        let mut stream = TcpStream::connect(front.addr()).expect("connect");
        write_frame(&mut stream, &encode_hello_version(4)).expect("hello");
        let ok = read_frame(&mut stream).expect("hello_ok");
        assert_eq!(parse_hello_ok(&ok), Ok((4, 7, 100)));

        let queries = vec![Query::adjacent(1, 2), Query::adjacent(3, 4)];
        write_frame(&mut stream, &encode_batch(&queries).unwrap()).expect("batch");
        let reply = read_frame(&mut stream).expect("reply");
        assert_eq!(
            parse_batch_reply(&reply, 4).unwrap(),
            vec![Answer::NotAdjacent; 2]
        );

        // A second connection over the cap is shed with OVERLOADED.
        let mut extra = TcpStream::connect(front.addr()).expect("connect extra");
        let shed = read_frame(&mut extra).expect("shed frame");
        assert_eq!(shed, vec![opcode::OVERLOADED]);

        drop(stream);
        drop(extra);
        let snap = front.shutdown();
        assert_eq!(snap.batches, 1);
        assert!(snap.shed >= 1, "shed counter: {}", snap.shed);
    }

    #[test]
    fn map_opcodes_are_gated_on_v6_and_default_to_unsupported() {
        let front = bind(
            Arc::new(EchoEngine),
            "127.0.0.1:0",
            FrontendOptions::default(),
        )
        .expect("bind");

        // On a v5 session the v6 opcodes are refused with ERROR.
        let mut old = TcpStream::connect(front.addr()).expect("connect");
        write_frame(&mut old, &encode_hello_version(5)).expect("hello");
        let _ = read_frame(&mut old).expect("hello_ok");
        write_frame(&mut old, &encode_map_get()).expect("map_get");
        let err = read_frame(&mut old).expect("error frame");
        assert_eq!(err.first(), Some(&opcode::ERROR));
        assert!(String::from_utf8_lossy(&err[1..]).contains("version 6"));

        // On a v6 session a map-less engine answers an empty MAP_REPLY.
        let mut new = TcpStream::connect(front.addr()).expect("connect");
        write_frame(&mut new, &encode_hello_version(6)).expect("hello");
        let ok = read_frame(&mut new).expect("hello_ok");
        assert_eq!(parse_hello_ok(&ok), Ok((6, 7, 100)));
        write_frame(&mut new, &encode_map_get()).expect("map_get");
        let reply = read_frame(&mut new).expect("map_reply");
        assert_eq!(parse_map_reply(&reply), Ok(None));

        drop(old);
        drop(new);
        front.shutdown();
    }
}
