//! The length-prefixed binary wire protocol.
//!
//! Every frame is a `u32` little-endian body length followed by the body;
//! the first body byte is the opcode. A session is:
//!
//! ```text
//! client → HELLO("PLSV", version)
//! server → HELLO_OK(version, scheme tag, n)
//! client → BATCH(count, count × (kind, u, v)) | STATS   (any number, any order)
//! server → BATCH_REPLY(count × answer)       | STATS_REPLY(snapshot)
//! client → GOODBYE
//! server → GOODBYE_OK, close
//! ```
//!
//! Frames are capped at [`MAX_FRAME`] bytes so a hostile length prefix
//! cannot drive an allocation; every parser here returns
//! [`ProtocolError`] on malformed input, never panics.

use std::io::{IoSlice, Read, Write};

use pl_obs::TraceContext;

use crate::stats::Snapshot;

/// Newest protocol version this build speaks. Version 2 added the
/// extended STATS reply (p90/p999, min/max, slow queries, per-shard
/// cache counters) and the `TRACE_DUMP` opcode. Version 3 adds the
/// resilience surface: checksummed `BATCH_REPLY` bodies (so corrupted
/// response bytes are *detected* instead of silently mis-answering),
/// the per-query `ANS_OVERLOADED` status, the pre-handshake
/// `OVERLOADED` shed frame, the `HEALTH` opcode, and three extra
/// STATS fields (faults injected, connections shed, open connections).
/// Version 4 adds the per-query `ANS_NOT_OWNED` status for partial
/// (cluster-partitioned) stores: the backend holds a stub for one of
/// the queried vertices and cannot answer locally, so a router should
/// re-ask a replica that owns the other endpoint. Version 5 adds
/// distributed tracing: an optional `TRACE_CTX` extension trailer on
/// `BATCH` frames (tag byte + 128-bit trace id + 64-bit parent span id)
/// and an optional flag byte on `TRACE_DUMP` selecting a non-consuming
/// snapshot drain. Both are strictly optional — a v5 client talking to
/// a v4 server negotiates down and silently drops the context; it is
/// never a hard failure. Version 6 adds live cluster reconfiguration:
/// `MAP_GET`/`MAP_REPLY` to read a peer's current cluster map,
/// `MAP_SET`/`MAP_OK` to stage, commit, abort, or shrink-apply an
/// epoch-bumped map push (the blob is the self-checksummed `ClusterMap`
/// serialization; a tampered or truncated push is rejected at this
/// layer), and `LABELS`/`LABELS_OK` to stream re-owned vertices' full
/// labels — FNV-checksummed per frame — into a gaining backend during a
/// rebalance. All three opcodes are refused on pre-v6 sessions; query
/// frames are byte-identical to v5, so old clients are unaffected.
pub const VERSION: u8 = 6;

/// Oldest protocol version this build still accepts. Version-1 sessions
/// get the original twelve-field STATS reply.
pub const MIN_VERSION: u8 = 1;

/// Handshake magic, first bytes of the HELLO body after the opcode.
pub const MAGIC: [u8; 4] = *b"PLSV";

/// Hard cap on frame body size; larger length prefixes are rejected
/// before any allocation.
pub const MAX_FRAME: usize = 1 << 20;

/// Most queries a single BATCH may carry (fits the `u16` count field).
pub const MAX_BATCH: usize = u16::MAX as usize;

/// Tag byte opening the optional v5 `TRACE_CTX` extension trailer on a
/// `BATCH` body (`'T'`).
pub const EXT_TRACE_CTX: u8 = 0x54;

/// Total size of the `TRACE_CTX` trailer: tag byte + 128-bit trace id +
/// 64-bit parent span id.
pub const TRACE_CTX_LEN: usize = 1 + 8 + 8 + 8;

/// Flag bits for the optional `TRACE_DUMP` flag byte (v5+). A bare
/// one-byte `TRACE_DUMP` body keeps the pre-v5 behavior (consuming
/// drain).
pub mod trace_dump_flags {
    /// Non-consuming snapshot: the reader watermark stays put, so two
    /// concurrent drainers both see the full stream instead of
    /// splitting it.
    pub const SNAPSHOT: u8 = 0x01;
    /// Every bit a v5 server understands; others are rejected.
    pub const ALL: u8 = SNAPSHOT;
}

/// Frame opcodes. Requests have the high bit clear, replies set.
pub mod opcode {
    /// Client handshake: magic + version.
    pub const HELLO: u8 = 0x00;
    /// Batched queries.
    pub const BATCH: u8 = 0x01;
    /// Request a metrics snapshot.
    pub const STATS: u8 = 0x02;
    /// Orderly close; server replies `GOODBYE_OK` after draining.
    pub const GOODBYE: u8 = 0x03;
    /// Drain the server's trace rings (v2+): reply is `TRACE_REPLY`.
    pub const TRACE_DUMP: u8 = 0x04;
    /// Ask for shard liveness (v3+): reply is `HEALTH_REPLY`.
    pub const HEALTH: u8 = 0x05;
    /// Read the peer's current cluster map (v6+): reply is `MAP_REPLY`.
    pub const MAP_GET: u8 = 0x06;
    /// Push an epoch-bumped cluster map (v6+): prepare, commit, abort,
    /// or shrink-apply. Reply is `MAP_OK`.
    pub const MAP_SET: u8 = 0x07;
    /// Stream full labels for re-owned vertices into a gaining backend
    /// during a rebalance (v6+): reply is `LABELS_OK`.
    pub const LABELS: u8 = 0x08;
    /// Handshake accepted: version + scheme tag + vertex count.
    pub const HELLO_OK: u8 = 0x80;
    /// Answers, one per query, in order.
    pub const BATCH_REPLY: u8 = 0x81;
    /// Serialized [`Snapshot`].
    pub const STATS_REPLY: u8 = 0x82;
    /// Acknowledges `GOODBYE`; the server closes after sending it.
    pub const GOODBYE_OK: u8 = 0x83;
    /// Drained trace events as UTF-8 JSONL (possibly truncated to the
    /// frame cap at a line boundary).
    pub const TRACE_REPLY: u8 = 0x84;
    /// Sent *instead of* `HELLO_OK` when the server sheds the
    /// connection at its cap (v3); the server closes after sending it.
    pub const OVERLOADED: u8 = 0x85;
    /// Shard-liveness report (v3): status byte + per-shard flags.
    pub const HEALTH_REPLY: u8 = 0x86;
    /// The peer's current cluster map, if it has one (v6).
    pub const MAP_REPLY: u8 = 0x87;
    /// Outcome of a `MAP_SET`: status byte + the peer's epoch (v6).
    pub const MAP_OK: u8 = 0x88;
    /// Outcome of a `LABELS` push: status byte + labels received (v6).
    pub const LABELS_OK: u8 = 0x89;
    /// Fatal per-connection error, body is a UTF-8 message.
    pub const ERROR: u8 = 0x8F;
}

/// What a single query asks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum QueryKind {
    /// "Is {u, v} an edge?"
    Adjacent = 0,
    /// "What is dist(u, v)?" (bounded-distance schemes only).
    Distance = 1,
}

/// One query in a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Query {
    pub kind: QueryKind,
    pub u: u32,
    pub v: u32,
}

impl Query {
    /// An adjacency query.
    #[must_use]
    pub fn adjacent(u: u32, v: u32) -> Self {
        Self {
            kind: QueryKind::Adjacent,
            u,
            v,
        }
    }

    /// A distance query.
    #[must_use]
    pub fn distance(u: u32, v: u32) -> Self {
        Self {
            kind: QueryKind::Distance,
            u,
            v,
        }
    }
}

/// The server's answer to one [`Query`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Answer {
    /// Adjacency: the pair is not an edge.
    NotAdjacent,
    /// Adjacency: the pair is an edge.
    Adjacent,
    /// Distance: the exact distance.
    Distance(u32),
    /// Distance: beyond the scheme's bound `f` (or disconnected).
    Unreachable,
    /// A vertex id was `≥ n`.
    OutOfRange,
    /// The loaded scheme cannot answer this query kind.
    Unsupported,
    /// A label involved in the query was corrupt; the query fails but
    /// the connection (and server) stay up.
    MalformedLabel,
    /// The server could not serve this query right now (shard-store I/O
    /// error or shedding); the query is safe to retry. v3 wire status;
    /// on older sessions it degrades to [`Answer::MalformedLabel`].
    Overloaded,
    /// A partial (cluster-partitioned) store holds only a stub for one
    /// of the queried vertices and cannot answer locally; a router
    /// should re-ask a replica owning the other endpoint. Retrying the
    /// *same* backend is useless, so this is not
    /// [retryable](Answer::is_retryable). v4 wire status; on older
    /// sessions it degrades to [`Answer::MalformedLabel`].
    NotOwned,
}

impl Answer {
    /// `true` for transient statuses a client may retry verbatim.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        matches!(self, Self::Overloaded)
    }
}

const ANS_NOT_ADJACENT: u8 = 0;
const ANS_ADJACENT: u8 = 1;
const ANS_DISTANCE: u8 = 2;
const ANS_UNREACHABLE: u8 = 3;
const ANS_NOT_OWNED: u8 = 0xFA;
const ANS_OVERLOADED: u8 = 0xFB;
const ANS_MALFORMED: u8 = 0xFC;
const ANS_OUT_OF_RANGE: u8 = 0xFD;
const ANS_UNSUPPORTED: u8 = 0xFE;

/// Malformed or unexpected wire input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// Length prefix exceeded [`MAX_FRAME`].
    FrameTooLarge(u32),
    /// HELLO magic mismatch.
    BadMagic,
    /// Peer speaks a version this build does not.
    UnsupportedVersion(u8),
    /// Opcode valid but body malformed.
    Malformed(&'static str),
    /// An opcode that makes no sense in the current state.
    UnexpectedOpcode(u8),
    /// A v3 checksummed body failed verification — the frame was
    /// corrupted in flight; safe to retry.
    ChecksumMismatch,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::FrameTooLarge(len) => write!(f, "frame of {len} bytes exceeds cap {MAX_FRAME}"),
            Self::BadMagic => write!(f, "bad handshake magic"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            Self::Malformed(what) => write!(f, "malformed frame: {what}"),
            Self::UnexpectedOpcode(op) => write!(f, "unexpected opcode {op:#04x}"),
            Self::ChecksumMismatch => write!(f, "reply checksum mismatch (corrupted in flight)"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Writes one frame (length prefix + body).
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> std::io::Result<()> {
    debug_assert!(body.len() <= MAX_FRAME);
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)
}

/// Writes one frame with a single vectored syscall for header + body
/// (falling back to plain continuation writes on short writes), so the
/// hot reply path never copies the body into a combined buffer and
/// never issues two syscalls for one frame on a healthy socket.
pub fn write_frame_vectored(w: &mut impl Write, body: &[u8]) -> std::io::Result<()> {
    debug_assert!(body.len() <= MAX_FRAME);
    let len = (body.len() as u32).to_le_bytes();
    let total = 4 + body.len();
    let mut written = 0;
    while written < total {
        let result = if written < 4 {
            w.write_vectored(&[IoSlice::new(&len[written..]), IoSlice::new(body)])
        } else {
            w.write(&body[written - 4..])
        };
        match result {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "failed to write whole frame",
                ))
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Blocking read of one frame body. Used by the client, which always
/// expects a reply; the server side uses [`FrameBuffer`] instead so it
/// can poll for shutdown.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len as usize > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            ProtocolError::FrameTooLarge(len).to_string(),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(body)
}

/// Incremental frame reassembly for non-blocking reads: feed raw socket
/// bytes with [`push`](Self::push), pull complete frame bodies with
/// [`next_frame`](Self::next_frame).
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// A fresh, empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends bytes read from the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame body, if one has fully arrived.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, ProtocolError> {
        let mut body = Vec::new();
        Ok(self.next_frame_into(&mut body)?.then_some(body))
    }

    /// Allocation-free variant of [`next_frame`](Self::next_frame):
    /// copies the next complete frame body into `out` (cleared first)
    /// and returns `true`, or returns `false` when no full frame has
    /// arrived yet. Reusing one `out` buffer across frames amortises
    /// the allocation a `Vec`-returning pop would make per frame.
    pub fn next_frame_into(&mut self, out: &mut Vec<u8>) -> Result<bool, ProtocolError> {
        if self.buf.len() < 4 {
            return Ok(false);
        }
        let len = crate::bytes::le_u32(&self.buf[..4]);
        if len as usize > MAX_FRAME {
            return Err(ProtocolError::FrameTooLarge(len));
        }
        let total = 4 + len as usize;
        if self.buf.len() < total {
            return Ok(false);
        }
        out.clear();
        out.extend_from_slice(&self.buf[4..total]);
        self.buf.drain(..total);
        Ok(true)
    }

    /// Bytes buffered but not yet consumed as frames.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

/// Builds a HELLO body offering [`VERSION`].
#[must_use]
pub fn encode_hello() -> Vec<u8> {
    encode_hello_version(VERSION)
}

/// Builds a HELLO body offering an explicit `version` (the client's
/// downgrade path when talking to an older server).
#[must_use]
pub fn encode_hello_version(version: u8) -> Vec<u8> {
    let mut b = vec![opcode::HELLO];
    b.extend_from_slice(&MAGIC);
    b.push(version);
    b
}

/// Parses a HELLO body (opcode byte included) and returns the version,
/// which must be within `MIN_VERSION..=VERSION`.
pub fn parse_hello(body: &[u8]) -> Result<u8, ProtocolError> {
    if body.len() != 6 || body[0] != opcode::HELLO {
        return Err(ProtocolError::Malformed("hello"));
    }
    if body[1..5] != MAGIC {
        return Err(ProtocolError::BadMagic);
    }
    let version = body[5];
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(ProtocolError::UnsupportedVersion(version));
    }
    Ok(version)
}

/// Builds a HELLO_OK body carrying the negotiated session `version`.
#[must_use]
pub fn encode_hello_ok(version: u8, tag: u8, n: u32) -> Vec<u8> {
    let mut b = Vec::new();
    encode_hello_ok_into(version, tag, n, &mut b);
    b
}

/// [`encode_hello_ok`] into a reusable buffer (cleared first).
pub fn encode_hello_ok_into(version: u8, tag: u8, n: u32, out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&[opcode::HELLO_OK, version, tag]);
    out.extend_from_slice(&n.to_le_bytes());
}

/// Parses a HELLO_OK body into `(version, scheme tag, n)`.
pub fn parse_hello_ok(body: &[u8]) -> Result<(u8, u8, u32), ProtocolError> {
    if body.len() != 7 || body[0] != opcode::HELLO_OK {
        return Err(ProtocolError::Malformed("hello_ok"));
    }
    let n = crate::bytes::le_u32(&body[3..7]);
    Ok((body[1], body[2], n))
}

/// Builds a BATCH body.
///
/// # Errors
///
/// Returns [`ProtocolError::Malformed`] if `queries.len() > MAX_BATCH`
/// (the count would not fit the `u16` field), so a buggy caller gets a
/// wire-level error instead of a panic killing its thread.
pub fn encode_batch(queries: &[Query]) -> Result<Vec<u8>, ProtocolError> {
    if queries.len() > MAX_BATCH {
        return Err(ProtocolError::Malformed("batch too large"));
    }
    let mut b = Vec::with_capacity(3 + queries.len() * 9);
    b.push(opcode::BATCH);
    b.extend_from_slice(&(queries.len() as u16).to_le_bytes());
    for q in queries {
        b.push(q.kind as u8);
        b.extend_from_slice(&q.u.to_le_bytes());
        b.extend_from_slice(&q.v.to_le_bytes());
    }
    Ok(b)
}

/// Parses a BATCH body.
pub fn parse_batch(body: &[u8]) -> Result<Vec<Query>, ProtocolError> {
    if body.len() < 3 || body[0] != opcode::BATCH {
        return Err(ProtocolError::Malformed("batch header"));
    }
    let count = crate::bytes::le_u16(&body[1..3]) as usize;
    let entries = &body[3..];
    if entries.len() != count * 9 {
        return Err(ProtocolError::Malformed("batch length"));
    }
    let mut queries = Vec::with_capacity(count);
    for e in entries.chunks_exact(9) {
        let kind = match e[0] {
            0 => QueryKind::Adjacent,
            1 => QueryKind::Distance,
            _ => return Err(ProtocolError::Malformed("query kind")),
        };
        queries.push(Query {
            kind,
            u: crate::bytes::le_u32(&e[1..5]),
            v: crate::bytes::le_u32(&e[5..9]),
        });
    }
    Ok(queries)
}

/// Builds a BATCH body, appending the v5 `TRACE_CTX` extension trailer
/// when the session `version` supports it and a context is supplied.
/// On a pre-v5 session the context is *silently dropped* — downgrade
/// loses tracing, never the batch.
///
/// # Errors
///
/// Same as [`encode_batch`]: `Malformed` when the count exceeds
/// [`MAX_BATCH`].
pub fn encode_batch_ctx(
    queries: &[Query],
    ctx: Option<&TraceContext>,
    version: u8,
) -> Result<Vec<u8>, ProtocolError> {
    let mut b = encode_batch(queries)?;
    if version >= 5 {
        if let Some(ctx) = ctx.filter(|c| c.is_set()) {
            b.reserve(TRACE_CTX_LEN);
            b.push(EXT_TRACE_CTX);
            b.extend_from_slice(&ctx.trace_hi.to_le_bytes());
            b.extend_from_slice(&ctx.trace_lo.to_le_bytes());
            b.extend_from_slice(&ctx.parent_span.to_le_bytes());
        }
    }
    Ok(b)
}

/// Parses a BATCH body in the layout of the session's negotiated
/// `version`. On v5+ sessions an optional trailing [`EXT_TRACE_CTX`]
/// block yields the propagated context; pre-v5 sessions keep the strict
/// exact-length check (any trailer is malformed, exactly as before).
pub fn parse_batch_ctx(
    body: &[u8],
    version: u8,
) -> Result<(Vec<Query>, Option<TraceContext>), ProtocolError> {
    if version < 5 {
        return Ok((parse_batch(body)?, None));
    }
    if body.len() < 3 || body[0] != opcode::BATCH {
        return Err(ProtocolError::Malformed("batch header"));
    }
    let count = crate::bytes::le_u16(&body[1..3]) as usize;
    let entries_end = 3 + count * 9;
    let ctx = match body.len() {
        l if l == entries_end => None,
        l if l == entries_end + TRACE_CTX_LEN => {
            let ext = &body[entries_end..];
            if ext[0] != EXT_TRACE_CTX {
                return Err(ProtocolError::Malformed("batch extension tag"));
            }
            Some(TraceContext {
                trace_hi: crate::bytes::le_u64(&ext[1..9]),
                trace_lo: crate::bytes::le_u64(&ext[9..17]),
                parent_span: crate::bytes::le_u64(&ext[17..25]),
            })
        }
        _ => return Err(ProtocolError::Malformed("batch length")),
    };
    let queries = parse_batch(&body[..entries_end])?;
    Ok((queries, ctx))
}

/// Builds a TRACE_DUMP body. `flags == 0` emits the bare one-byte
/// pre-v5 form; any flag bit appends the v5 flag byte.
#[must_use]
pub fn encode_trace_dump(flags: u8) -> Vec<u8> {
    if flags == 0 {
        vec![opcode::TRACE_DUMP]
    } else {
        vec![opcode::TRACE_DUMP, flags]
    }
}

/// Parses a TRACE_DUMP body into its flag byte (0 when absent). Unknown
/// flag bits are malformed so a future client cannot silently get the
/// wrong drain semantics from an old server.
pub fn parse_trace_dump(body: &[u8]) -> Result<u8, ProtocolError> {
    match body {
        [op] if *op == opcode::TRACE_DUMP => Ok(0),
        [op, flags] if *op == opcode::TRACE_DUMP => {
            if *flags & !trace_dump_flags::ALL != 0 {
                return Err(ProtocolError::Malformed("trace dump flags"));
            }
            Ok(*flags)
        }
        _ => Err(ProtocolError::Malformed("trace dump")),
    }
}

/// FNV-1a (32-bit) over `bytes` — the v3 reply checksum. One flipped
/// byte anywhere in a checksummed body changes the digest, so response
/// corruption surfaces as a parse error the client can retry instead of
/// a silently wrong answer.
#[must_use]
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Builds a BATCH_REPLY body in the layout of the session's negotiated
/// `version`. v3 appends a 4-byte FNV-1a checksum of everything before
/// it; on v1/v2 sessions [`Answer::Overloaded`] (a v3 status) degrades
/// to the closest legacy status, `ANS_MALFORMED`.
#[must_use]
pub fn encode_batch_reply(answers: &[Answer], version: u8) -> Vec<u8> {
    let mut b = Vec::with_capacity(3 + answers.len() * 5 + 4);
    encode_batch_reply_into(answers, version, &mut b);
    b
}

/// [`encode_batch_reply`] into a reusable buffer (cleared first).
pub fn encode_batch_reply_into(answers: &[Answer], version: u8, b: &mut Vec<u8>) {
    b.clear();
    b.push(opcode::BATCH_REPLY);
    b.extend_from_slice(&(answers.len() as u16).to_le_bytes());
    for a in answers {
        match a {
            Answer::NotAdjacent => b.push(ANS_NOT_ADJACENT),
            Answer::Adjacent => b.push(ANS_ADJACENT),
            Answer::Distance(d) => {
                b.push(ANS_DISTANCE);
                b.extend_from_slice(&d.to_le_bytes());
            }
            Answer::Unreachable => b.push(ANS_UNREACHABLE),
            Answer::OutOfRange => b.push(ANS_OUT_OF_RANGE),
            Answer::Unsupported => b.push(ANS_UNSUPPORTED),
            Answer::MalformedLabel => b.push(ANS_MALFORMED),
            Answer::Overloaded => b.push(if version >= 3 {
                ANS_OVERLOADED
            } else {
                ANS_MALFORMED
            }),
            Answer::NotOwned => b.push(if version >= 4 {
                ANS_NOT_OWNED
            } else {
                ANS_MALFORMED
            }),
        }
    }
    if version >= 3 {
        let sum = checksum(b);
        b.extend_from_slice(&sum.to_le_bytes());
    }
}

/// Parses a BATCH_REPLY body in the layout of the session's negotiated
/// `version`; v3 verifies and strips the trailing checksum first.
pub fn parse_batch_reply(body: &[u8], version: u8) -> Result<Vec<Answer>, ProtocolError> {
    let body = if version >= 3 {
        if body.len() < 7 || body[0] != opcode::BATCH_REPLY {
            return Err(ProtocolError::Malformed("batch reply header"));
        }
        let (payload, sum) = body.split_at(body.len() - 4);
        let declared = crate::bytes::le_u32(sum);
        if checksum(payload) != declared {
            return Err(ProtocolError::ChecksumMismatch);
        }
        payload
    } else {
        body
    };
    if body.len() < 3 || body[0] != opcode::BATCH_REPLY {
        return Err(ProtocolError::Malformed("batch reply header"));
    }
    let count = crate::bytes::le_u16(&body[1..3]) as usize;
    let mut answers = Vec::with_capacity(count.min(MAX_BATCH));
    let mut pos = 3;
    for _ in 0..count {
        let status = *body
            .get(pos)
            .ok_or(ProtocolError::Malformed("truncated reply"))?;
        pos += 1;
        answers.push(match status {
            ANS_NOT_ADJACENT => Answer::NotAdjacent,
            ANS_ADJACENT => Answer::Adjacent,
            ANS_DISTANCE => {
                let d = body
                    .get(pos..pos + 4)
                    .ok_or(ProtocolError::Malformed("truncated distance"))?;
                pos += 4;
                Answer::Distance(crate::bytes::le_u32(d))
            }
            ANS_UNREACHABLE => Answer::Unreachable,
            ANS_OUT_OF_RANGE => Answer::OutOfRange,
            ANS_UNSUPPORTED => Answer::Unsupported,
            ANS_MALFORMED => Answer::MalformedLabel,
            ANS_OVERLOADED => Answer::Overloaded,
            ANS_NOT_OWNED => Answer::NotOwned,
            _ => return Err(ProtocolError::Malformed("answer status")),
        });
    }
    if pos != body.len() {
        return Err(ProtocolError::Malformed("trailing reply bytes"));
    }
    Ok(answers)
}

/// A server's shard-liveness report, the payload of `HEALTH_REPLY`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// Every shard live?
    pub healthy: bool,
    /// Per-shard liveness flags, in shard order.
    pub shards: Vec<bool>,
}

/// Builds a HEALTH_REPLY body from per-shard liveness flags.
#[must_use]
pub fn encode_health_reply(shards: &[bool]) -> Vec<u8> {
    let mut b = Vec::with_capacity(4 + shards.len());
    encode_health_reply_into(shards, &mut b);
    b
}

/// [`encode_health_reply`] into a reusable buffer (cleared first).
pub fn encode_health_reply_into(shards: &[bool], b: &mut Vec<u8>) {
    let healthy = shards.iter().all(|&s| s);
    b.clear();
    b.push(opcode::HEALTH_REPLY);
    b.push(u8::from(healthy));
    b.extend_from_slice(&(shards.len() as u16).to_le_bytes());
    b.extend(shards.iter().map(|&s| u8::from(s)));
}

/// Parses a HEALTH_REPLY body.
pub fn parse_health_reply(body: &[u8]) -> Result<HealthReport, ProtocolError> {
    if body.len() < 4 || body[0] != opcode::HEALTH_REPLY {
        return Err(ProtocolError::Malformed("health reply header"));
    }
    let count = crate::bytes::le_u16(&body[2..4]) as usize;
    let flags = &body[4..];
    if flags.len() != count || flags.iter().any(|&f| f > 1) {
        return Err(ProtocolError::Malformed("health reply body"));
    }
    let shards: Vec<bool> = flags.iter().map(|&f| f == 1).collect();
    let healthy = body[1] == 1;
    if healthy != shards.iter().all(|&s| s) {
        return Err(ProtocolError::Malformed("health status inconsistent"));
    }
    Ok(HealthReport { healthy, shards })
}

/// The sentinel value of the `MAP_SET` backend-index field addressing a
/// router rather than a backend: routers dual-route during the window,
/// backends install partitions, and the index field tells the receiver
/// which role (and which partition) the pushed map assigns it.
pub const MAP_TARGET_ROUTER: u32 = u32::MAX;

/// What a `MAP_SET` push asks the receiver to do with the map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MapSetMode {
    /// Stage the epoch-bumped map without serving from it yet. A
    /// backend buffers it and starts accepting `LABELS` for its epoch;
    /// a router opens the dual-routing window (try new owners first,
    /// fall back to the old map on `ANS_NOT_OWNED`).
    Prepare = 0,
    /// Make the prepared map current. A backend swaps in the rebuilt
    /// store (pushed labels merged); a router retires the old map.
    Commit = 1,
    /// Discard the prepared map and return to the current epoch.
    Abort = 2,
    /// Post-commit cleanup on a losing backend: shrink labels the
    /// current map no longer assigns to it back to prelude stubs.
    Shrink = 3,
}

impl MapSetMode {
    fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            0 => Self::Prepare,
            1 => Self::Commit,
            2 => Self::Abort,
            3 => Self::Shrink,
            _ => return None,
        })
    }
}

/// The receiver's verdict on a `MAP_SET`, carried in `MAP_OK` together
/// with the receiver's (possibly unchanged) current epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MapSetStatus {
    /// The map is staged; `LABELS` pushes for its epoch are accepted.
    Prepared = 0,
    /// The staged map is now current.
    Committed = 1,
    /// The staged map was discarded.
    Aborted = 2,
    /// Re-homed labels were shrunk back to prelude stubs.
    Shrunk = 3,
    /// The pushed epoch is not newer than the receiver's current epoch
    /// (stale or equal) — the epoch field of the reply carries the
    /// receiver's current epoch so the pusher can re-read and retry.
    Stale = 4,
    /// The receiving engine does not participate in reconfiguration.
    Unsupported = 5,
    /// The request was well-formed but could not be applied (no staged
    /// map to commit, map parameters disagree with the serving store,
    /// a pushed label failed verification, ...).
    Failed = 6,
}

impl MapSetStatus {
    fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            0 => Self::Prepared,
            1 => Self::Committed,
            2 => Self::Aborted,
            3 => Self::Shrunk,
            4 => Self::Stale,
            5 => Self::Unsupported,
            6 => Self::Failed,
            _ => return None,
        })
    }
}

/// The receiver's verdict on a `LABELS` push, carried in `LABELS_OK`
/// together with the count of labels accepted so far this epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum LabelsStatus {
    /// All labels of this frame were verified and buffered.
    Ok = 0,
    /// The frame's epoch does not match the staged map's epoch.
    WrongEpoch = 1,
    /// A label failed verification (not byte-identical after a decode
    /// round-trip, or out of range) — the whole frame is discarded.
    Rejected = 2,
    /// The receiving engine does not accept label pushes.
    Unsupported = 3,
}

impl LabelsStatus {
    fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            0 => Self::Ok,
            1 => Self::WrongEpoch,
            2 => Self::Rejected,
            3 => Self::Unsupported,
            _ => return None,
        })
    }
}

/// A parsed `MAP_SET` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapSetRequest {
    /// What to do with the map.
    pub mode: MapSetMode,
    /// The receiver's index in the pushed map's backend list, or
    /// [`MAP_TARGET_ROUTER`] when the receiver is a router.
    pub backend: u32,
    /// On a router `Commit`: the number of vertices whose ownership the
    /// new map moved (feeds `plcluster_reconfig_vertices_moved_total`).
    /// Zero otherwise.
    pub moved: u64,
    /// The serialized cluster map, already structurally validated
    /// ([`validate_map_blob`]).
    pub map: Vec<u8>,
}

/// Structural validation of a pushed map blob: the `"PLCM"` magic, the
/// minimum fixed-layout size, and the trailing FNV-1a-32 self-checksum
/// the `ClusterMap` serialization carries. The wire layer treats the
/// blob as opaque beyond this — semantic parsing lives with the engine
/// — but a bit-flipped or truncated push is rejected here, before any
/// engine sees it.
pub fn validate_map_blob(map: &[u8]) -> Result<(), ProtocolError> {
    if map.len() < 36 || map[..4] != *b"PLCM" {
        return Err(ProtocolError::Malformed("map blob"));
    }
    let (payload, sum) = map.split_at(map.len() - 4);
    let declared = crate::bytes::le_u32(sum);
    if checksum(payload) != declared {
        return Err(ProtocolError::ChecksumMismatch);
    }
    Ok(())
}

/// Builds a MAP_GET body (opcode only).
#[must_use]
pub fn encode_map_get() -> Vec<u8> {
    vec![opcode::MAP_GET]
}

/// Parses a MAP_GET body.
pub fn parse_map_get(body: &[u8]) -> Result<(), ProtocolError> {
    if body != [opcode::MAP_GET] {
        return Err(ProtocolError::Malformed("map get"));
    }
    Ok(())
}

/// Builds a MAP_REPLY body: a presence byte, then the map blob when the
/// peer has one.
#[must_use]
pub fn encode_map_reply(map: Option<&[u8]>) -> Vec<u8> {
    let mut b = Vec::with_capacity(2 + map.map_or(0, <[u8]>::len));
    b.push(opcode::MAP_REPLY);
    match map {
        Some(bytes) => {
            b.push(1);
            b.extend_from_slice(bytes);
        }
        None => b.push(0),
    }
    b
}

/// Parses a MAP_REPLY body; a present map blob is structurally
/// validated before it is returned.
pub fn parse_map_reply(body: &[u8]) -> Result<Option<Vec<u8>>, ProtocolError> {
    match body {
        [op, 0] if *op == opcode::MAP_REPLY => Ok(None),
        [op, 1, rest @ ..] if *op == opcode::MAP_REPLY => {
            validate_map_blob(rest)?;
            Ok(Some(rest.to_vec()))
        }
        _ => Err(ProtocolError::Malformed("map reply")),
    }
}

/// Builds a MAP_SET body:
///
/// ```text
/// 0x07 | mode u8 | backend u32 | moved u64 | map blob
/// ```
///
/// # Errors
///
/// `Malformed`/`ChecksumMismatch` if the map blob fails
/// [`validate_map_blob`] — a pusher cannot emit a push its receiver
/// would reject — or if the frame would exceed [`MAX_FRAME`].
pub fn encode_map_set(
    mode: MapSetMode,
    backend: u32,
    moved: u64,
    map: &[u8],
) -> Result<Vec<u8>, ProtocolError> {
    validate_map_blob(map)?;
    if 14 + map.len() > MAX_FRAME {
        return Err(ProtocolError::Malformed("map set too large"));
    }
    let mut b = Vec::with_capacity(14 + map.len());
    b.push(opcode::MAP_SET);
    b.push(mode as u8);
    b.extend_from_slice(&backend.to_le_bytes());
    b.extend_from_slice(&moved.to_le_bytes());
    b.extend_from_slice(map);
    Ok(b)
}

/// Parses a MAP_SET body, structurally validating the map blob (a
/// checksum-tampered push fails here with
/// [`ProtocolError::ChecksumMismatch`]).
pub fn parse_map_set(body: &[u8]) -> Result<MapSetRequest, ProtocolError> {
    if body.len() < 14 || body[0] != opcode::MAP_SET {
        return Err(ProtocolError::Malformed("map set header"));
    }
    let mode = MapSetMode::from_byte(body[1]).ok_or(ProtocolError::Malformed("map set mode"))?;
    let backend = crate::bytes::le_u32(&body[2..6]);
    let moved = crate::bytes::le_u64(&body[6..14]);
    let map = &body[14..];
    validate_map_blob(map)?;
    Ok(MapSetRequest {
        mode,
        backend,
        moved,
        map: map.to_vec(),
    })
}

/// Builds a MAP_OK body: status byte + the receiver's current epoch
/// (after the request took effect, or unchanged when it was refused).
#[must_use]
pub fn encode_map_ok(status: MapSetStatus, epoch: u64) -> Vec<u8> {
    let mut b = Vec::with_capacity(10);
    b.push(opcode::MAP_OK);
    b.push(status as u8);
    b.extend_from_slice(&epoch.to_le_bytes());
    b
}

/// Parses a MAP_OK body into `(status, epoch)`.
pub fn parse_map_ok(body: &[u8]) -> Result<(MapSetStatus, u64), ProtocolError> {
    if body.len() != 10 || body[0] != opcode::MAP_OK {
        return Err(ProtocolError::Malformed("map ok"));
    }
    let status = MapSetStatus::from_byte(body[1]).ok_or(ProtocolError::Malformed("map status"))?;
    let epoch = crate::bytes::le_u64(&body[2..10]);
    Ok((status, epoch))
}

/// Builds a LABELS body:
///
/// ```text
/// 0x08 | epoch u64 | count u16 | count × (vertex u32, len u32, bytes)
///      | FNV-1a-32 u32 over every preceding body byte
/// ```
///
/// Each entry's bytes are one serialized label record
/// (`Label::to_bytes` form). The trailing checksum makes migration
/// pushes tamper-evident end to end: a flipped label bit is caught on
/// arrival, never merged into a store.
///
/// # Errors
///
/// `Malformed` if the entry count exceeds [`MAX_BATCH`] or the frame
/// would exceed [`MAX_FRAME`].
pub fn encode_labels(epoch: u64, entries: &[(u32, &[u8])]) -> Result<Vec<u8>, ProtocolError> {
    if entries.len() > MAX_BATCH {
        return Err(ProtocolError::Malformed("too many labels"));
    }
    let payload: usize = entries.iter().map(|(_, bytes)| 8 + bytes.len()).sum();
    if 11 + payload + 4 > MAX_FRAME {
        return Err(ProtocolError::Malformed("labels frame too large"));
    }
    let mut b = Vec::with_capacity(11 + payload + 4);
    b.push(opcode::LABELS);
    b.extend_from_slice(&epoch.to_le_bytes());
    b.extend_from_slice(&(entries.len() as u16).to_le_bytes());
    for (vertex, bytes) in entries {
        b.extend_from_slice(&vertex.to_le_bytes());
        b.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        b.extend_from_slice(bytes);
    }
    let sum = checksum(&b);
    b.extend_from_slice(&sum.to_le_bytes());
    Ok(b)
}

/// `(vertex, label bytes)` entries carried by one LABELS frame.
pub type LabelEntries = Vec<(u32, Vec<u8>)>;

/// Parses a LABELS body into `(epoch, entries)`, verifying the trailing
/// checksum first — corruption anywhere in the frame surfaces as
/// [`ProtocolError::ChecksumMismatch`] before a single label is
/// extracted.
pub fn parse_labels(body: &[u8]) -> Result<(u64, LabelEntries), ProtocolError> {
    if body.len() < 15 || body[0] != opcode::LABELS {
        return Err(ProtocolError::Malformed("labels header"));
    }
    let (payload, sum) = body.split_at(body.len() - 4);
    let declared = crate::bytes::le_u32(sum);
    if checksum(payload) != declared {
        return Err(ProtocolError::ChecksumMismatch);
    }
    let epoch = crate::bytes::le_u64(&payload[1..9]);
    let count = crate::bytes::le_u16(&payload[9..11]) as usize;
    let mut entries = Vec::with_capacity(count.min(MAX_BATCH));
    let mut pos = 11;
    for _ in 0..count {
        let header = payload
            .get(pos..pos + 8)
            .ok_or(ProtocolError::Malformed("truncated label entry"))?;
        let vertex = crate::bytes::le_u32(&header[..4]);
        let len = crate::bytes::le_u32(&header[4..8]) as usize;
        pos += 8;
        let bytes = payload
            .get(pos..pos + len)
            .ok_or(ProtocolError::Malformed("truncated label bytes"))?;
        pos += len;
        entries.push((vertex, bytes.to_vec()));
    }
    if pos != payload.len() {
        return Err(ProtocolError::Malformed("trailing label bytes"));
    }
    Ok((epoch, entries))
}

/// Builds a LABELS_OK body: status byte + labels accepted so far this
/// epoch (u32 LE).
#[must_use]
pub fn encode_labels_ok(status: LabelsStatus, received: u32) -> Vec<u8> {
    let mut b = Vec::with_capacity(6);
    b.push(opcode::LABELS_OK);
    b.push(status as u8);
    b.extend_from_slice(&received.to_le_bytes());
    b
}

/// Parses a LABELS_OK body into `(status, received)`.
pub fn parse_labels_ok(body: &[u8]) -> Result<(LabelsStatus, u32), ProtocolError> {
    if body.len() != 6 || body[0] != opcode::LABELS_OK {
        return Err(ProtocolError::Malformed("labels ok"));
    }
    let status =
        LabelsStatus::from_byte(body[1]).ok_or(ProtocolError::Malformed("labels status"))?;
    let received = crate::bytes::le_u32(&body[2..6]);
    Ok((status, received))
}

/// Builds a STATS_REPLY body in the layout of the session's negotiated
/// `version`: v1 sessions get the original twelve-field reply, v2 the
/// extended layout with quantiles, min/max, and per-shard counters, and
/// v3+ appends the resilience fields (faults injected, shed, open
/// connections).
#[must_use]
pub fn encode_stats_reply(s: &Snapshot, version: u8) -> Vec<u8> {
    let mut b = Vec::new();
    encode_stats_reply_into(s, version, &mut b);
    b
}

/// [`encode_stats_reply`] into a reusable buffer (cleared first).
pub fn encode_stats_reply_into(s: &Snapshot, version: u8, b: &mut Vec<u8>) {
    b.clear();
    b.push(opcode::STATS_REPLY);
    if version <= 1 {
        b.extend_from_slice(&s.to_bytes_v1());
    } else if version == 2 {
        b.extend_from_slice(&s.to_bytes());
    } else {
        b.extend_from_slice(&s.to_bytes_v3());
    }
}

/// Parses a STATS_REPLY body.
pub fn parse_stats_reply(body: &[u8]) -> Result<Snapshot, ProtocolError> {
    if body.first() != Some(&opcode::STATS_REPLY) {
        return Err(ProtocolError::Malformed("stats reply header"));
    }
    Snapshot::from_bytes(&body[1..]).ok_or(ProtocolError::Malformed("stats reply body"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hello_round_trip() {
        assert_eq!(parse_hello(&encode_hello()), Ok(VERSION));
        assert_eq!(parse_hello(&[]), Err(ProtocolError::Malformed("hello")));
        let mut bad = encode_hello();
        bad[2] = b'X';
        assert_eq!(parse_hello(&bad), Err(ProtocolError::BadMagic));
        let mut wrong_version = encode_hello();
        wrong_version[5] = 99;
        assert_eq!(
            parse_hello(&wrong_version),
            Err(ProtocolError::UnsupportedVersion(99))
        );
        let mut too_old = encode_hello();
        too_old[5] = 0;
        assert_eq!(
            parse_hello(&too_old),
            Err(ProtocolError::UnsupportedVersion(0))
        );
        // Every version in the supported range is accepted.
        for v in MIN_VERSION..=VERSION {
            assert_eq!(parse_hello(&encode_hello_version(v)), Ok(v));
        }
    }

    #[test]
    fn hello_ok_round_trip() {
        let body = encode_hello_ok(VERSION, 1, 54_321);
        assert_eq!(parse_hello_ok(&body), Ok((VERSION, 1, 54_321)));
        let v1 = encode_hello_ok(1, 1, 54_321);
        assert_eq!(parse_hello_ok(&v1), Ok((1, 1, 54_321)));
    }

    #[test]
    fn stats_reply_is_version_gated() {
        let s = Snapshot {
            adj_queries: 7,
            p90_ns: 1234,
            ..Snapshot::default()
        };
        let v1 = encode_stats_reply(&s, 1);
        let v2 = encode_stats_reply(&s, 2);
        let v3 = encode_stats_reply(&s, 3);
        assert_eq!(v1.len(), 1 + 12 * 8);
        assert!(v2.len() > v1.len());
        assert_eq!(v3.len(), v2.len() + 3 * 8);
        // All parse; older layouts lose the newer fields.
        let from_v1 = parse_stats_reply(&v1).unwrap();
        assert_eq!(from_v1.adj_queries, 7);
        assert_eq!(from_v1.p90_ns, 0);
        let from_v2 = parse_stats_reply(&v2).unwrap();
        assert_eq!(from_v2.p90_ns, 1234);
        let from_v3 = parse_stats_reply(&v3).unwrap();
        assert_eq!(from_v3.p90_ns, 1234);
    }

    #[test]
    fn batch_round_trip() {
        let queries = vec![
            Query::adjacent(0, 7),
            Query::distance(u32::MAX, 3),
            Query::adjacent(5, 5),
        ];
        assert_eq!(
            parse_batch(&encode_batch(&queries).unwrap()).unwrap(),
            queries
        );
    }

    #[test]
    fn batch_ctx_round_trip_and_version_gating() {
        let queries = vec![Query::adjacent(1, 2), Query::distance(3, 4)];
        let ctx = TraceContext {
            trace_hi: 0x1111_2222_3333_4444,
            trace_lo: 0x5555_6666_7777_8888,
            parent_span: 0x9999_AAAA_BBBB_CCCC,
        };

        // v5: context survives the round trip.
        let v5 = encode_batch_ctx(&queries, Some(&ctx), 5).unwrap();
        assert_eq!(
            parse_batch_ctx(&v5, 5).unwrap(),
            (queries.clone(), Some(ctx))
        );

        // v5 without a context is byte-identical to the plain encoding
        // and parses everywhere.
        let bare = encode_batch_ctx(&queries, None, 5).unwrap();
        assert_eq!(bare, encode_batch(&queries).unwrap());
        assert_eq!(parse_batch_ctx(&bare, 5).unwrap(), (queries.clone(), None));
        assert_eq!(parse_batch(&bare).unwrap(), queries);

        // Downgrade: encoding for a v4 session silently drops the
        // context, and the result is the plain v4 batch.
        let v4 = encode_batch_ctx(&queries, Some(&ctx), 4).unwrap();
        assert_eq!(v4, encode_batch(&queries).unwrap());
        assert_eq!(parse_batch_ctx(&v4, 4).unwrap(), (queries.clone(), None));

        // An unset context is never shipped, even on v5.
        let zero = TraceContext {
            trace_hi: 0,
            trace_lo: 0,
            parent_span: 7,
        };
        let unset = encode_batch_ctx(&queries, Some(&zero), 5).unwrap();
        assert_eq!(unset, encode_batch(&queries).unwrap());

        // The pre-v5 strict length check still rejects the trailer.
        assert_eq!(
            parse_batch(&v5),
            Err(ProtocolError::Malformed("batch length"))
        );
        assert_eq!(
            parse_batch_ctx(&v5, 4),
            Err(ProtocolError::Malformed("batch length"))
        );

        // Corrupt trailers are malformed, never mis-parsed.
        let mut bad_tag = v5.clone();
        let tag_at = bad_tag.len() - TRACE_CTX_LEN;
        bad_tag[tag_at] = 0x55;
        assert!(parse_batch_ctx(&bad_tag, 5).is_err());
        let truncated = &v5[..v5.len() - 1];
        assert!(parse_batch_ctx(truncated, 5).is_err());
    }

    #[test]
    fn trace_dump_flags_round_trip() {
        assert_eq!(encode_trace_dump(0), vec![opcode::TRACE_DUMP]);
        assert_eq!(parse_trace_dump(&encode_trace_dump(0)), Ok(0));
        let snap = encode_trace_dump(trace_dump_flags::SNAPSHOT);
        assert_eq!(snap, vec![opcode::TRACE_DUMP, trace_dump_flags::SNAPSHOT]);
        assert_eq!(parse_trace_dump(&snap), Ok(trace_dump_flags::SNAPSHOT));
        // Unknown flag bits and junk bodies are malformed.
        assert!(parse_trace_dump(&[opcode::TRACE_DUMP, 0x80]).is_err());
        assert!(parse_trace_dump(&[opcode::BATCH]).is_err());
        assert!(parse_trace_dump(&[]).is_err());
        assert!(parse_trace_dump(&[opcode::TRACE_DUMP, 1, 2]).is_err());
    }

    #[test]
    fn oversized_batch_is_a_wire_error_not_a_panic() {
        let queries = vec![Query::adjacent(0, 0); MAX_BATCH + 1];
        assert_eq!(
            encode_batch(&queries),
            Err(ProtocolError::Malformed("batch too large"))
        );
        let exactly_max = vec![Query::adjacent(0, 0); MAX_BATCH];
        assert!(encode_batch(&exactly_max).is_ok());
    }

    #[test]
    fn into_encoders_match_their_allocating_twins() {
        let answers = vec![Answer::Adjacent, Answer::Distance(9), Answer::Overloaded];
        let snap = Snapshot {
            adj_queries: 3,
            shard_cache: vec![(1, 2)],
            ..Snapshot::default()
        };
        // Pre-fill each buffer with junk: `_into` must clear first.
        let mut buf = vec![0xAA; 32];
        for version in [1, 2, 3, 4, 5, 6] {
            encode_batch_reply_into(&answers, version, &mut buf);
            assert_eq!(buf, encode_batch_reply(&answers, version));
            encode_stats_reply_into(&snap, version, &mut buf);
            assert_eq!(buf, encode_stats_reply(&snap, version));
        }
        encode_hello_ok_into(3, 1, 77, &mut buf);
        assert_eq!(buf, encode_hello_ok(3, 1, 77));
        encode_health_reply_into(&[true, false], &mut buf);
        assert_eq!(buf, encode_health_reply(&[true, false]));
    }

    #[test]
    fn vectored_frame_write_matches_plain() {
        for body in [&[][..], &[7][..], &[1, 2, 3, 4, 5][..]] {
            let mut plain = Vec::new();
            write_frame(&mut plain, body).unwrap();
            let mut vectored = Vec::new();
            write_frame_vectored(&mut vectored, body).unwrap();
            assert_eq!(plain, vectored);
        }
    }

    #[test]
    fn batch_reply_round_trip() {
        let answers = vec![
            Answer::NotAdjacent,
            Answer::Adjacent,
            Answer::Distance(42),
            Answer::Unreachable,
            Answer::OutOfRange,
            Answer::Unsupported,
        ];
        for version in [1, 2, 3, 4, 5, 6] {
            assert_eq!(
                parse_batch_reply(&encode_batch_reply(&answers, version), version).unwrap(),
                answers,
                "version {version}"
            );
        }
    }

    #[test]
    fn not_owned_answer_is_version_gated() {
        let answers = vec![Answer::NotOwned, Answer::Adjacent];
        let v4 = encode_batch_reply(&answers, 4);
        assert_eq!(parse_batch_reply(&v4, 4).unwrap(), answers);
        // On a v3 session the v4-only status degrades to MalformedLabel.
        let v3 = encode_batch_reply(&answers, 3);
        assert_eq!(
            parse_batch_reply(&v3, 3).unwrap(),
            vec![Answer::MalformedLabel, Answer::Adjacent]
        );
        // NotOwned is a routing signal, not a same-backend retry signal.
        assert!(!Answer::NotOwned.is_retryable());
    }

    #[test]
    fn overloaded_answer_is_version_gated() {
        let answers = vec![Answer::Adjacent, Answer::Overloaded];
        let v3 = encode_batch_reply(&answers, 3);
        assert_eq!(parse_batch_reply(&v3, 3).unwrap(), answers);
        // On a v2 session the v3-only status degrades to MalformedLabel.
        let v2 = encode_batch_reply(&answers, 2);
        assert_eq!(
            parse_batch_reply(&v2, 2).unwrap(),
            vec![Answer::Adjacent, Answer::MalformedLabel]
        );
    }

    #[test]
    fn every_single_byte_flip_of_a_v3_reply_is_detected() {
        let answers = vec![
            Answer::Adjacent,
            Answer::NotAdjacent,
            Answer::Distance(7),
            Answer::Adjacent,
        ];
        let body = encode_batch_reply(&answers, 3);
        for pos in 0..body.len() {
            for bit in 0..8 {
                let mut corrupted = body.clone();
                corrupted[pos] ^= 1 << bit;
                assert!(
                    parse_batch_reply(&corrupted, 3).is_err(),
                    "flip of byte {pos} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn v2_reply_without_checksum_is_rejected_by_v3_parse() {
        let answers = vec![Answer::Adjacent];
        let v2 = encode_batch_reply(&answers, 2);
        assert!(parse_batch_reply(&v2, 3).is_err());
    }

    #[test]
    fn health_reply_round_trip() {
        let all_up = encode_health_reply(&[true, true, true]);
        assert_eq!(
            parse_health_reply(&all_up).unwrap(),
            HealthReport {
                healthy: true,
                shards: vec![true, true, true],
            }
        );
        let degraded = encode_health_reply(&[true, false]);
        let report = parse_health_reply(&degraded).unwrap();
        assert!(!report.healthy);
        assert_eq!(report.shards, vec![true, false]);
        assert!(parse_health_reply(&[]).is_err());
        // Inconsistent status byte vs flags is rejected.
        let mut lying = encode_health_reply(&[false]);
        lying[1] = 1;
        assert!(parse_health_reply(&lying).is_err());
    }

    /// A minimal, structurally valid map blob: "PLCM" magic, arbitrary
    /// body bytes up to the fixed-layout minimum, trailing FNV-1a-32
    /// self-checksum.
    fn fake_map_blob() -> Vec<u8> {
        let mut b = Vec::new();
        b.extend_from_slice(b"PLCM");
        b.push(1); // map format version
        b.extend_from_slice(&7u64.to_le_bytes()); // epoch
        b.extend_from_slice(&0xDEAD_BEEFu64.to_le_bytes()); // seed
        b.extend_from_slice(&2u32.to_le_bytes()); // replicas
        b.extend_from_slice(&100u32.to_le_bytes()); // n
        b.push(2); // scheme tag
        b.extend_from_slice(&1u16.to_le_bytes()); // backend count
        b.extend_from_slice(&4u16.to_le_bytes());
        b.extend_from_slice(b"a:91");
        let sum = checksum(&b);
        b.extend_from_slice(&sum.to_le_bytes());
        b
    }

    #[test]
    fn map_get_round_trip() {
        assert_eq!(parse_map_get(&encode_map_get()), Ok(()));
        assert!(parse_map_get(&[]).is_err());
        assert!(parse_map_get(&[opcode::MAP_GET, 0]).is_err());
        assert!(parse_map_get(&[opcode::BATCH]).is_err());
    }

    #[test]
    fn map_reply_round_trip() {
        let blob = fake_map_blob();
        assert_eq!(
            parse_map_reply(&encode_map_reply(Some(&blob))).unwrap(),
            Some(blob.clone())
        );
        assert_eq!(parse_map_reply(&encode_map_reply(None)).unwrap(), None);
        // A tampered blob inside the reply is caught by the
        // self-checksum, not passed through.
        let mut tampered = encode_map_reply(Some(&blob));
        tampered[10] ^= 0x01;
        assert_eq!(
            parse_map_reply(&tampered),
            Err(ProtocolError::ChecksumMismatch)
        );
        assert!(parse_map_reply(&[opcode::MAP_REPLY]).is_err());
        assert!(parse_map_reply(&[opcode::MAP_REPLY, 2]).is_err());
    }

    #[test]
    fn map_set_round_trip() {
        let blob = fake_map_blob();
        for (mode, backend, moved) in [
            (MapSetMode::Prepare, 0u32, 0u64),
            (MapSetMode::Commit, MAP_TARGET_ROUTER, 1234),
            (MapSetMode::Abort, 3, 0),
            (MapSetMode::Shrink, 2, 0),
        ] {
            let body = encode_map_set(mode, backend, moved, &blob).unwrap();
            let req = parse_map_set(&body).unwrap();
            assert_eq!(req.mode, mode);
            assert_eq!(req.backend, backend);
            assert_eq!(req.moved, moved);
            assert_eq!(req.map, blob);
        }
        // Unknown mode byte is malformed.
        let mut bad_mode = encode_map_set(MapSetMode::Prepare, 0, 0, &blob).unwrap();
        bad_mode[1] = 9;
        assert!(parse_map_set(&bad_mode).is_err());
    }

    #[test]
    fn checksum_tampered_map_push_is_rejected() {
        let blob = fake_map_blob();
        let body = encode_map_set(MapSetMode::Prepare, 1, 0, &blob).unwrap();
        // Flip every bit of the embedded map blob in turn: each flip
        // must surface as a checksum (or structural) error, never as a
        // successfully parsed push.
        for pos in 14..body.len() {
            for bit in 0..8 {
                let mut corrupted = body.clone();
                corrupted[pos] ^= 1 << bit;
                assert!(
                    parse_map_set(&corrupted).is_err(),
                    "map blob flip at byte {pos} bit {bit} went undetected"
                );
            }
        }
        // A truncated blob is structural, not a checksum coincidence.
        let mut short = blob.clone();
        short.truncate(20);
        assert_eq!(
            encode_map_set(MapSetMode::Prepare, 0, 0, &short),
            Err(ProtocolError::Malformed("map blob"))
        );
        // The encoder refuses to emit a push its receiver would reject.
        let mut bad = blob;
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        assert_eq!(
            encode_map_set(MapSetMode::Prepare, 0, 0, &bad),
            Err(ProtocolError::ChecksumMismatch)
        );
    }

    #[test]
    fn map_ok_round_trip() {
        for (status, epoch) in [
            (MapSetStatus::Prepared, 8u64),
            (MapSetStatus::Committed, 8),
            (MapSetStatus::Aborted, 7),
            (MapSetStatus::Shrunk, 8),
            (MapSetStatus::Stale, 7),
            (MapSetStatus::Unsupported, 0),
            (MapSetStatus::Failed, 7),
        ] {
            let body = encode_map_ok(status, epoch);
            assert_eq!(parse_map_ok(&body), Ok((status, epoch)));
        }
        assert!(parse_map_ok(&[opcode::MAP_OK, 7]).is_err());
        let mut bad = encode_map_ok(MapSetStatus::Prepared, 1);
        bad[1] = 99;
        assert!(parse_map_ok(&bad).is_err());
    }

    #[test]
    fn labels_round_trip() {
        let entries: Vec<(u32, &[u8])> =
            vec![(3, &[1, 2, 3][..]), (99, &[][..]), (7, &[0xFF; 40][..])];
        let body = encode_labels(42, &entries).unwrap();
        let (epoch, parsed) = parse_labels(&body).unwrap();
        assert_eq!(epoch, 42);
        let expected: Vec<(u32, Vec<u8>)> = entries
            .iter()
            .map(|&(v, bytes)| (v, bytes.to_vec()))
            .collect();
        assert_eq!(parsed, expected);
        // An empty push is valid (a gaining backend may gain nothing).
        let empty = encode_labels(42, &[]).unwrap();
        assert_eq!(parse_labels(&empty).unwrap(), (42, vec![]));
    }

    #[test]
    fn every_single_byte_flip_of_a_labels_push_is_detected() {
        let entries: Vec<(u32, &[u8])> = vec![(1, &[0xAB, 0xCD][..]), (2, &[0x11][..])];
        let body = encode_labels(9, &entries).unwrap();
        for pos in 0..body.len() {
            for bit in 0..8 {
                let mut corrupted = body.clone();
                corrupted[pos] ^= 1 << bit;
                assert!(
                    parse_labels(&corrupted).is_err(),
                    "labels flip at byte {pos} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn labels_ok_round_trip() {
        for (status, received) in [
            (LabelsStatus::Ok, 17u32),
            (LabelsStatus::WrongEpoch, 0),
            (LabelsStatus::Rejected, 3),
            (LabelsStatus::Unsupported, 0),
        ] {
            let body = encode_labels_ok(status, received);
            assert_eq!(parse_labels_ok(&body), Ok((status, received)));
        }
        let mut bad = encode_labels_ok(LabelsStatus::Ok, 1);
        bad[1] = 9;
        assert!(parse_labels_ok(&bad).is_err());
        assert!(parse_labels_ok(&[opcode::LABELS_OK, 0]).is_err());
    }

    #[test]
    fn oversized_labels_push_is_a_wire_error_not_a_panic() {
        let big = vec![0u8; MAX_FRAME];
        assert_eq!(
            encode_labels(1, &[(0, &big)]),
            Err(ProtocolError::Malformed("labels frame too large"))
        );
    }

    #[test]
    fn checksum_changes_on_any_input_change() {
        assert_ne!(checksum(b"hello"), checksum(b"hellp"));
        assert_ne!(checksum(b""), checksum(b"\0"));
        assert_eq!(checksum(b"abc"), checksum(b"abc"));
    }

    #[test]
    fn frame_buffer_reassembles_split_frames() {
        let mut fb = FrameBuffer::new();
        let mut wire = Vec::new();
        write_frame(&mut wire, &[1, 2, 3]).unwrap();
        write_frame(&mut wire, &[4]).unwrap();
        // Feed one byte at a time.
        let mut frames = Vec::new();
        for &b in &wire {
            fb.push(&[b]);
            while let Some(f) = fb.next_frame().unwrap() {
                frames.push(f);
            }
        }
        assert_eq!(frames, vec![vec![1, 2, 3], vec![4]]);
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn oversized_length_prefix_rejected_without_allocating() {
        let mut fb = FrameBuffer::new();
        fb.push(&u32::MAX.to_le_bytes());
        assert_eq!(fb.next_frame(), Err(ProtocolError::FrameTooLarge(u32::MAX)));
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_frame(&mut wire.as_slice()).is_err());
    }

    proptest! {
        #[test]
        fn parsers_never_panic_on_random_bytes(body in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = parse_hello(&body);
            let _ = parse_hello_ok(&body);
            let _ = parse_batch(&body);
            let _ = parse_batch_ctx(&body, 4);
            let _ = parse_batch_ctx(&body, 5);
            let _ = parse_trace_dump(&body);
            let _ = parse_batch_reply(&body, 2);
            let _ = parse_batch_reply(&body, 3);
            let _ = parse_batch_reply(&body, 4);
            let _ = parse_batch_reply(&body, 5);
            let _ = parse_stats_reply(&body);
            let _ = parse_health_reply(&body);
            let _ = parse_map_get(&body);
            let _ = parse_map_reply(&body);
            let _ = parse_map_set(&body);
            let _ = parse_map_ok(&body);
            let _ = parse_labels(&body);
            let _ = parse_labels_ok(&body);
            let _ = validate_map_blob(&body);
        }

        #[test]
        fn batch_round_trips_random(
            raw in proptest::collection::vec((0u8..2, any::<u32>(), any::<u32>()), 0..64),
        ) {
            let queries: Vec<Query> = raw
                .iter()
                .map(|&(k, u, v)| if k == 0 { Query::adjacent(u, v) } else { Query::distance(u, v) })
                .collect();
            prop_assert_eq!(parse_batch(&encode_batch(&queries).unwrap()).unwrap(), queries);
        }
    }
}
