//! Little-endian integer reads from length-checked slices.
//!
//! Every wire parser in this workspace reads fixed-width integers out
//! of slices whose bounds it has already verified (explicit length
//! checks, `chunks_exact`, `get(pos..pos + N)?`). The
//! `try_into().expect("N bytes")` idiom that conversion forces is
//! provably unreachable at every such site — but it *reads* like a
//! panic path, and the `panic-path` lint pass rightly refuses to
//! certify two dozen scattered copies of it. These helpers concentrate
//! the idiom into one audited place; callers stay panic-token-free.
//!
//! Contract: the caller passes a slice of exactly the advertised
//! width. A wrong-width slice is a caller bug (the bounds check and
//! the read disagree), and surfacing it loudly beats silently parsing
//! garbage — so the panic stays, tagged and justified, here.

/// Reads a `u16` from a 2-byte slice.
#[must_use]
pub fn le_u16(bytes: &[u8]) -> u16 {
    // lint: panic-ok(width is bounds-checked at every call site; a mismatch is a caller bug worth a loud failure)
    u16::from_le_bytes(bytes.try_into().expect("caller passed a 2-byte slice"))
}

/// Reads a `u32` from a 4-byte slice.
#[must_use]
pub fn le_u32(bytes: &[u8]) -> u32 {
    // lint: panic-ok(width is bounds-checked at every call site; a mismatch is a caller bug worth a loud failure)
    u32::from_le_bytes(bytes.try_into().expect("caller passed a 4-byte slice"))
}

/// Reads a `u64` from an 8-byte slice.
#[must_use]
pub fn le_u64(bytes: &[u8]) -> u64 {
    // lint: panic-ok(width is bounds-checked at every call site; a mismatch is a caller bug worth a loud failure)
    u64::from_le_bytes(bytes.try_into().expect("caller passed an 8-byte slice"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_match_from_le_bytes() {
        assert_eq!(le_u16(&[0x34, 0x12]), 0x1234);
        assert_eq!(le_u32(&[4, 3, 2, 1]), u32::from_le_bytes([4, 3, 2, 1]));
        assert_eq!(
            le_u64(&[8, 7, 6, 5, 4, 3, 2, 1]),
            u64::from_le_bytes([8, 7, 6, 5, 4, 3, 2, 1])
        );
    }

    #[test]
    #[should_panic(expected = "4-byte slice")]
    fn wrong_width_is_loud() {
        let _ = le_u32(&[1, 2, 3]);
    }
}
