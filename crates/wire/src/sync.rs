//! Poison-recovering lock acquisition.
//!
//! A connection thread that panics while holding a `Mutex`/`RwLock`
//! poisons it; the default `lock().unwrap()` idiom then cascades that
//! one panic into every thread that touches the lock — a single bad
//! query takes down the whole server. Every shared structure in the
//! serving stack is written so its invariants hold at every await-free
//! release point (stores are swapped whole, caches are never left
//! torn), so the right response to poison is the one
//! `pl_serve::store` already established: take the data anyway and
//! keep serving, reporting degradation through `HEALTH` rather than
//! through process death.
//!
//! These helpers make that recovery a one-word idiom, so the
//! `panic-path` lint pass can hold server code to zero `unwrap`s on
//! lock results.

use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Locks `m`, recovering the guard if a previous holder panicked.
pub fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-locks `l`, recovering the guard if a writer panicked.
pub fn read_recover<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks `l`, recovering the guard if a holder panicked.
pub fn write_recover<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn poisoned_locks_still_yield_their_data() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock_recover(&m), 7);

        let l = Arc::new(RwLock::new(9));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write().unwrap();
            panic!("poison it");
        })
        .join();
        assert_eq!(*read_recover(&l), 9);
        *write_recover(&l) = 10;
        assert_eq!(*read_recover(&l), 10);
    }
}
