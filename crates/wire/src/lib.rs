//! # pl-wire: the shared transport layer
//!
//! Everything two processes in this system say to each other over TCP
//! lives here, in one place, serving both the single-node label server
//! (`pl-serve`) and the cluster scatter-gather router (`pl-cluster`):
//!
//! - [`protocol`] — the length-prefixed binary frame codec: opcodes,
//!   HELLO version negotiation (v1–v4), FNV-1a reply checksums,
//!   version-gated BATCH/STATS/HEALTH layouts, and the incremental
//!   [`FrameBuffer`](protocol::FrameBuffer) reassembler.
//! - [`stats`] — the wire-visible [`Metrics`]/[`Snapshot`] pair: the
//!   instruments the front-end maintains and the version-gated STATS
//!   payload they serialize into.
//! - [`fault`] — the deterministic fault-injection harness
//!   ([`FaultPlan`](fault::FaultPlan)/[`FaultInjector`](fault::FaultInjector))
//!   for chaos testing either front-end.
//! - [`frontend`] — the generic hardened TCP front-end: accept loop,
//!   per-connection lifecycle, shedding, idle/stall deadlines,
//!   drain-on-shutdown, and per-connection scratch-buffer reuse, all
//!   parameterized over the [`QueryEngine`] trait.
//!
//! Layering (see DESIGN.md):
//!
//! ```text
//!         pl-wire (frames + front-end)
//!              │ QueryEngine
//!      ┌───────┴────────┐
//!   pl-serve         pl-cluster
//!  (LabelStore)       (Router)
//! ```

pub mod bytes;
pub mod fault;
pub mod frontend;
pub mod protocol;
pub mod stats;
pub mod sync;

pub use frontend::{bind, FrontStats, FrontendHandle, FrontendOptions, QueryEngine};
pub use protocol::{Answer, HealthReport, ProtocolError, Query, QueryKind};
pub use stats::{Metrics, Snapshot};
