//! Front-end metrics, built on the [`pl_obs`] metrics registry and
//! shared by every consumer of the wire front-end (single-node server
//! and cluster router alike).
//!
//! Every instrument is an `Arc` handed out by a
//! [`MetricsRegistry`] — counters under `plserve_*_total`, the query
//! latency under `plserve_query_latency_ns` — so the same numbers that
//! feed the binary `STATS` reply are scrapeable as Prometheus text from
//! the exposition sidecar. The hot query path still pays only a handful
//! of uncontended relaxed fetch-adds. [`LatencyHistogram`] is
//! [`pl_obs::Histogram`]: 64 power-of-two nanosecond buckets plus exact
//! sum/min/max.

use std::sync::Arc;
use std::time::Instant;

use pl_obs::registry::{Counter, Gauge};
use pl_obs::MetricsRegistry;

/// Power-of-two latency histogram (see [`pl_obs::Histogram`]).
pub type LatencyHistogram = pl_obs::Histogram;

/// The server's counters, registered in a [`MetricsRegistry`]. One
/// instance is shared (via `Arc`d instruments) by every connection
/// thread.
#[derive(Debug)]
pub struct Metrics {
    /// Adjacency queries answered (`plserve_adj_queries_total`).
    pub adj_queries: Arc<Counter>,
    /// Distance queries answered (`plserve_dist_queries_total`).
    pub dist_queries: Arc<Counter>,
    /// Batch frames processed (`plserve_batches_total`).
    pub batches: Arc<Counter>,
    /// Connections accepted (`plserve_connections_total`).
    pub connections: Arc<Counter>,
    /// Bytes read off sockets (`plserve_bytes_in_total`).
    pub bytes_in: Arc<Counter>,
    /// Bytes written to sockets (`plserve_bytes_out_total`).
    pub bytes_out: Arc<Counter>,
    /// Malformed frames rejected (`plserve_protocol_errors_total`).
    pub protocol_errors: Arc<Counter>,
    /// Queries at or over the slow-query threshold
    /// (`plserve_slow_queries_total`).
    pub slow_queries: Arc<Counter>,
    /// Connections refused at the cap with an `OVERLOADED` frame
    /// (`plserve_shed_total`).
    pub shed: Arc<Counter>,
    /// Idle connections reaped by the server (`plserve_idle_reaped_total`).
    pub idle_reaped: Arc<Counter>,
    /// Connections closed for stalling mid-frame past the read deadline
    /// (`plserve_deadline_closes_total`).
    pub deadline_closes: Arc<Counter>,
    /// Currently open connections (`plserve_open_conns`).
    pub open_conns: Arc<Gauge>,
    /// Per-query decode latency (`plserve_query_latency_ns`).
    pub query_latency: Arc<LatencyHistogram>,
}

impl Metrics {
    /// Registers every instrument in `registry`.
    #[must_use]
    pub fn new(registry: &MetricsRegistry) -> Self {
        Self {
            adj_queries: registry.counter("plserve_adj_queries_total"),
            dist_queries: registry.counter("plserve_dist_queries_total"),
            batches: registry.counter("plserve_batches_total"),
            connections: registry.counter("plserve_connections_total"),
            bytes_in: registry.counter("plserve_bytes_in_total"),
            bytes_out: registry.counter("plserve_bytes_out_total"),
            protocol_errors: registry.counter("plserve_protocol_errors_total"),
            slow_queries: registry.counter("plserve_slow_queries_total"),
            shed: registry.counter("plserve_shed_total"),
            idle_reaped: registry.counter("plserve_idle_reaped_total"),
            deadline_closes: registry.counter("plserve_deadline_closes_total"),
            open_conns: registry.gauge("plserve_open_conns"),
            query_latency: registry.histogram("plserve_query_latency_ns"),
        }
    }

    /// Immutable snapshot of all counters; `elapsed` is measured against
    /// `started` for the QPS figure, `shard_cache` carries the store's
    /// per-shard `(hits, misses)` pairs, `faults_injected` the fault
    /// harness's total (0 when no plan is active).
    #[must_use]
    pub fn snapshot(
        &self,
        started: Instant,
        shard_cache: &[(u64, u64)],
        faults_injected: u64,
    ) -> Snapshot {
        let adj = self.adj_queries.get();
        let dist = self.dist_queries.get();
        let secs = started.elapsed().as_secs_f64().max(1e-9);
        let lat = self.query_latency.snapshot();
        Snapshot {
            adj_queries: adj,
            dist_queries: dist,
            batches: self.batches.get(),
            connections: self.connections.get(),
            cache_hits: shard_cache.iter().map(|&(h, _)| h).sum(),
            cache_misses: shard_cache.iter().map(|&(_, m)| m).sum(),
            bytes_in: self.bytes_in.get(),
            bytes_out: self.bytes_out.get(),
            protocol_errors: self.protocol_errors.get(),
            p50_ns: lat.quantile_ns(0.50),
            p90_ns: lat.quantile_ns(0.90),
            p99_ns: lat.quantile_ns(0.99),
            p999_ns: lat.quantile_ns(0.999),
            min_ns: lat.min,
            max_ns: lat.max,
            qps_milli: (((adj + dist) as f64 / secs) * 1000.0) as u64,
            slow_queries: self.slow_queries.get(),
            shard_cache: shard_cache.to_vec(),
            faults_injected,
            shed: self.shed.get(),
            open_conns: self.open_conns.get().max(0) as u64,
        }
    }
}

/// Number of fixed `u64` fields in the version-1 `STATS` wire layout.
const V1_FIELDS: usize = 12;

/// Number of fixed `u64` fields in the version-2 layout, before the
/// per-shard pairs.
const V2_FIXED_FIELDS: usize = 18;

/// Number of `u64` fields version 3 appends *after* the per-shard pairs
/// (faults injected, shed, open connections). Deliberately odd, so a v3
/// body can never be mistaken for a v2 body with extra shard pairs.
const V3_TRAILER_FIELDS: usize = 3;

/// A point-in-time copy of [`Metrics`], also the payload of the wire
/// `STATS` reply.
///
/// Three wire layouts exist: version 1 is the original twelve fixed
/// `u64`s; version 2 appends p90/p999, min/max, the slow-query count,
/// and the per-shard cache pairs; version 3 appends three resilience
/// fields after the shard pairs. [`from_bytes`](Self::from_bytes) tells
/// them apart by length against the declared shard count (96 bytes is
/// v1; v2 is exactly `18 + 2s` words; v3 is `18 + 2s + 3` words — the
/// odd trailer keeps the lengths disjoint).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    pub adj_queries: u64,
    pub dist_queries: u64,
    pub batches: u64,
    pub connections: u64,
    /// Decode-cache hits, summed over shards.
    pub cache_hits: u64,
    /// Decode-cache misses, summed over shards.
    pub cache_misses: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
    pub protocol_errors: u64,
    /// Estimated median decode latency, ns (bucket upper edge).
    pub p50_ns: u64,
    /// Estimated 90th-percentile decode latency, ns (v2; 0 from v1).
    pub p90_ns: u64,
    /// Estimated 99th-percentile decode latency, ns.
    pub p99_ns: u64,
    /// Estimated 99.9th-percentile decode latency, ns (v2; 0 from v1).
    pub p999_ns: u64,
    /// Smallest observed decode latency, ns (v2; 0 from v1).
    pub min_ns: u64,
    /// Largest observed decode latency, ns (v2; 0 from v1).
    pub max_ns: u64,
    /// Queries per second × 1000, measured over the server's lifetime.
    pub qps_milli: u64,
    /// Queries at or over the slow-query threshold (v2; 0 from v1).
    pub slow_queries: u64,
    /// Per-shard decode-cache `(hits, misses)` (v2; empty from v1).
    pub shard_cache: Vec<(u64, u64)>,
    /// Faults injected by the chaos harness (v3; 0 from v1/v2).
    pub faults_injected: u64,
    /// Connections shed at the connection cap (v3; 0 from v1/v2).
    pub shed: u64,
    /// Connections open when the snapshot was taken (v3; 0 from v1/v2).
    pub open_conns: u64,
}

impl Snapshot {
    /// Serializes the version-2 `STATS` reply body.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut fields = vec![
            self.adj_queries,
            self.dist_queries,
            self.batches,
            self.connections,
            self.cache_hits,
            self.cache_misses,
            self.bytes_in,
            self.bytes_out,
            self.protocol_errors,
            self.p50_ns,
            self.p90_ns,
            self.p99_ns,
            self.p999_ns,
            self.min_ns,
            self.max_ns,
            self.qps_milli,
            self.slow_queries,
            self.shard_cache.len() as u64,
        ];
        debug_assert_eq!(fields.len(), V2_FIXED_FIELDS);
        for &(h, m) in &self.shard_cache {
            fields.push(h);
            fields.push(m);
        }
        let mut out = Vec::with_capacity(fields.len() * 8);
        for f in fields {
            out.extend_from_slice(&f.to_le_bytes());
        }
        out
    }

    /// Serializes the version-3 `STATS` reply body: the v2 layout plus a
    /// three-word resilience trailer (faults injected, shed, open
    /// connections) after the per-shard pairs.
    #[must_use]
    pub fn to_bytes_v3(&self) -> Vec<u8> {
        let mut out = self.to_bytes();
        for f in [self.faults_injected, self.shed, self.open_conns] {
            out.extend_from_slice(&f.to_le_bytes());
        }
        out
    }

    /// Serializes the legacy version-1 reply body (twelve `u64`s); the
    /// extended fields are dropped.
    #[must_use]
    pub fn to_bytes_v1(&self) -> Vec<u8> {
        let fields = [
            self.adj_queries,
            self.dist_queries,
            self.batches,
            self.connections,
            self.cache_hits,
            self.cache_misses,
            self.bytes_in,
            self.bytes_out,
            self.protocol_errors,
            self.p50_ns,
            self.p99_ns,
            self.qps_milli,
        ];
        let mut out = Vec::with_capacity(fields.len() * 8);
        for f in fields {
            out.extend_from_slice(&f.to_le_bytes());
        }
        out
    }

    /// Parses a `STATS` reply body of either wire version.
    #[must_use]
    pub fn from_bytes(buf: &[u8]) -> Option<Self> {
        if !buf.len().is_multiple_of(8) {
            return None;
        }
        let words: Vec<u64> = buf.chunks_exact(8).map(crate::bytes::le_u64).collect();
        if words.len() == V1_FIELDS {
            return Some(Self {
                adj_queries: words[0],
                dist_queries: words[1],
                batches: words[2],
                connections: words[3],
                cache_hits: words[4],
                cache_misses: words[5],
                bytes_in: words[6],
                bytes_out: words[7],
                protocol_errors: words[8],
                p50_ns: words[9],
                p99_ns: words[10],
                qps_milli: words[11],
                ..Self::default()
            });
        }
        if words.len() < V2_FIXED_FIELDS {
            return None;
        }
        let shard_count = usize::try_from(words[V2_FIXED_FIELDS - 1]).ok()?;
        let expected = shard_count
            .checked_mul(2)
            .and_then(|x| x.checked_add(V2_FIXED_FIELDS))?;
        // A v2 body is exactly `expected` words; a v3 body carries the
        // three-word trailer. Any other length is malformed. (The two
        // cannot collide: a v2 body's length always matches its declared
        // shard count exactly, and the trailer is odd-sized.)
        let (faults_injected, shed, open_conns) = if words.len() == expected {
            (0, 0, 0)
        } else if words.len() == expected + V3_TRAILER_FIELDS {
            (words[expected], words[expected + 1], words[expected + 2])
        } else {
            return None;
        };
        let shard_cache = words[V2_FIXED_FIELDS..expected]
            .chunks_exact(2)
            .map(|p| (p[0], p[1]))
            .collect();
        Some(Self {
            adj_queries: words[0],
            dist_queries: words[1],
            batches: words[2],
            connections: words[3],
            cache_hits: words[4],
            cache_misses: words[5],
            bytes_in: words[6],
            bytes_out: words[7],
            protocol_errors: words[8],
            p50_ns: words[9],
            p90_ns: words[10],
            p99_ns: words[11],
            p999_ns: words[12],
            min_ns: words[13],
            max_ns: words[14],
            qps_milli: words[15],
            slow_queries: words[16],
            shard_cache,
            faults_injected,
            shed,
            open_conns,
        })
    }

    /// Cache hit rate in `[0, 1]`; 0 when the cache was never consulted.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Per-shard hit rates in `[0, 1]`, in shard order (empty for a v1
    /// snapshot).
    #[must_use]
    pub fn shard_hit_rates(&self) -> Vec<f64> {
        self.shard_cache
            .iter()
            .map(|&(h, m)| {
                let total = h + m;
                if total == 0 {
                    0.0
                } else {
                    h as f64 / total as f64
                }
            })
            .collect()
    }

    /// Queries per second.
    #[must_use]
    pub fn qps(&self) -> f64 {
        self.qps_milli as f64 / 1000.0
    }
}

impl std::fmt::Display for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "queries: {} adj + {} dist in {} batches over {} connections",
            self.adj_queries, self.dist_queries, self.batches, self.connections
        )?;
        writeln!(
            f,
            "throughput: {:.1} qps, latency p50 < {} ns, p90 < {} ns, p99 < {} ns, p999 < {} ns (min {} ns, max {} ns)",
            self.qps(),
            self.p50_ns,
            self.p90_ns,
            self.p99_ns,
            self.p999_ns,
            self.min_ns,
            self.max_ns
        )?;
        writeln!(
            f,
            "cache: {} hits / {} misses ({:.1}% hit rate)",
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_rate() * 100.0
        )?;
        for (i, &(h, m)) in self.shard_cache.iter().enumerate() {
            let rate = self.shard_hit_rates()[i] * 100.0;
            writeln!(
                f,
                "  shard {i}: {h} hits / {m} misses ({rate:.1}% hit rate)"
            )?;
        }
        writeln!(f, "slow queries: {}", self.slow_queries)?;
        writeln!(
            f,
            "resilience: {} faults injected, {} conns shed, {} conns open",
            self.faults_injected, self.shed, self.open_conns
        )?;
        write!(
            f,
            "wire: {} bytes in, {} bytes out, {} protocol errors",
            self.bytes_in, self.bytes_out, self.protocol_errors
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The histogram semantics themselves are covered in pl-obs; here we
    // only pin that the re-exported type keeps the serve-side contract.
    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_ns(0.5), 0);
        for _ in 0..99 {
            h.record(100); // bucket 6: [64, 128)
        }
        h.record(1 << 20);
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_ns(0.5), 128);
        assert_eq!(h.quantile_ns(0.98), 128);
        assert_eq!(h.quantile_ns(1.0), 1 << 21);
    }

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            adj_queries: 1,
            dist_queries: 2,
            batches: 3,
            connections: 4,
            cache_hits: 9,
            cache_misses: 6,
            bytes_in: 7,
            bytes_out: 8,
            protocol_errors: 9,
            p50_ns: 10,
            p90_ns: 11,
            p99_ns: 12,
            p999_ns: 13,
            min_ns: 2,
            max_ns: 99,
            qps_milli: 12_500,
            slow_queries: 1,
            shard_cache: vec![(4, 1), (5, 5), (0, 0)],
            faults_injected: 17,
            shed: 3,
            open_conns: 2,
        }
    }

    #[test]
    fn snapshot_round_trips_v2() {
        let s = sample_snapshot();
        let bytes = s.to_bytes();
        assert_eq!(bytes.len(), (18 + 2 * 3) * 8);
        let parsed = Snapshot::from_bytes(&bytes).expect("v2 parses");
        // The v2 layout drops the resilience trailer.
        assert_eq!(parsed.faults_injected, 0);
        assert_eq!(parsed.shed, 0);
        assert_eq!(parsed.open_conns, 0);
        assert_eq!(
            parsed,
            Snapshot {
                faults_injected: 0,
                shed: 0,
                open_conns: 0,
                ..s.clone()
            }
        );
        assert_eq!(Snapshot::from_bytes(&bytes[..bytes.len() - 1]), None);
        assert_eq!(Snapshot::from_bytes(&bytes[..bytes.len() - 16]), None);
        assert!((s.qps() - 12.5).abs() < 1e-9);
        assert!((s.cache_hit_rate() - 9.0 / 15.0).abs() < 1e-9);
        let rates = s.shard_hit_rates();
        assert!((rates[0] - 0.8).abs() < 1e-9);
        assert!((rates[1] - 0.5).abs() < 1e-9);
        assert!(rates[2].abs() < 1e-9);
    }

    #[test]
    fn snapshot_round_trips_v3() {
        let s = sample_snapshot();
        let bytes = s.to_bytes_v3();
        assert_eq!(bytes.len(), (18 + 2 * 3 + 3) * 8);
        assert_eq!(Snapshot::from_bytes(&bytes), Some(s.clone()));
        // Truncating the trailer down to the v2 length still parses (as
        // v2, zeroing the trailer); any partial trailer is rejected.
        let v2_len = bytes.len() - 3 * 8;
        assert!(Snapshot::from_bytes(&bytes[..v2_len]).is_some());
        assert_eq!(Snapshot::from_bytes(&bytes[..v2_len + 8]), None);
        assert_eq!(Snapshot::from_bytes(&bytes[..v2_len + 16]), None);
    }

    #[test]
    fn snapshot_v3_trailer_cannot_masquerade_as_shards() {
        // A v3 body reinterpreted with a larger shard count would need
        // an even number of extra words; the trailer is three. Claiming
        // one more shard over a v3 body must fail.
        let s = sample_snapshot();
        let mut bytes = s.to_bytes_v3();
        let idx = (V2_FIXED_FIELDS - 1) * 8;
        bytes[idx..idx + 8].copy_from_slice(&4u64.to_le_bytes());
        assert_eq!(Snapshot::from_bytes(&bytes), None);
    }

    #[test]
    fn snapshot_v1_layout_still_parses() {
        let s = sample_snapshot();
        let v1 = s.to_bytes_v1();
        assert_eq!(v1.len(), 96);
        let parsed = Snapshot::from_bytes(&v1).expect("v1 parses");
        assert_eq!(parsed.adj_queries, s.adj_queries);
        assert_eq!(parsed.p50_ns, s.p50_ns);
        assert_eq!(parsed.p99_ns, s.p99_ns);
        assert_eq!(parsed.qps_milli, s.qps_milli);
        // Extended fields degrade to zero/empty.
        assert_eq!(parsed.p90_ns, 0);
        assert_eq!(parsed.p999_ns, 0);
        assert!(parsed.shard_cache.is_empty());
    }

    #[test]
    fn snapshot_rejects_inconsistent_shard_count() {
        let s = sample_snapshot();
        let mut bytes = s.to_bytes();
        // Claim one more shard than the body carries.
        let idx = (V2_FIXED_FIELDS - 1) * 8;
        bytes[idx..idx + 8].copy_from_slice(&4u64.to_le_bytes());
        assert_eq!(Snapshot::from_bytes(&bytes), None);
        // Absurd shard count must not allocate or wrap.
        bytes[idx..idx + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(Snapshot::from_bytes(&bytes), None);
    }

    #[test]
    fn snapshot_counts_and_qps() {
        let reg = MetricsRegistry::new();
        let m = Metrics::new(&reg);
        m.adj_queries.add(10);
        m.query_latency.record(500);
        m.shed.add(2);
        m.open_conns.set(5);
        let s = m.snapshot(
            Instant::now() - std::time::Duration::from_secs(1),
            &[(3, 0), (0, 1)],
            7,
        );
        assert_eq!(s.adj_queries, 10);
        assert_eq!(s.faults_injected, 7);
        assert_eq!(s.shed, 2);
        assert_eq!(s.open_conns, 5);
        assert!(s.qps() > 1.0, "ten queries over ~1s");
        assert_eq!(s.cache_hits, 3);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.shard_cache, vec![(3, 0), (0, 1)]);
        assert_eq!(s.min_ns, 500);
        assert_eq!(s.max_ns, 500);
        assert!(s.p90_ns >= s.p50_ns);
        assert!(s.p999_ns >= s.p99_ns);
        // The same numbers are visible through the registry.
        let text = pl_obs::prom::render(&reg);
        assert!(text.contains("plserve_adj_queries_total 10"), "{text}");
        assert!(text.contains("plserve_query_latency_ns_count 1"));
    }
}
