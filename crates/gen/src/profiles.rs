//! Synthetic stand-ins for the full version's real-world datasets.
//!
//! The paper's full-version evaluation runs the labeling schemes on
//! real-world power-law networks. Those datasets are not redistributable
//! here, so — per the substitution policy in DESIGN.md — each profile below
//! records the published shape statistics `(n, m, α)` of a well-known
//! network and regenerates a synthetic Chung–Lu graph matching them. The
//! labeling schemes only interact with the degree distribution (threshold,
//! number of fat vertices, thin degrees), so matching `(n, m, α)` exercises
//! the identical code paths and trade-offs.

use pl_graph::Graph;
use rand::Rng;

/// A synthetic dataset profile: name plus the shape statistics of the
/// real-world network it stands in for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetProfile {
    /// Descriptive name (suffix `-like` marks it as synthetic).
    pub name: &'static str,
    /// Number of vertices.
    pub n: usize,
    /// Target number of edges.
    pub m: usize,
    /// Power-law exponent of the degree distribution.
    pub alpha: f64,
}

impl DatasetProfile {
    /// The expected average degree `2m/n`.
    #[must_use]
    pub fn avg_degree(&self) -> f64 {
        2.0 * self.m as f64 / self.n as f64
    }

    /// Generates the synthetic graph for this profile (Chung–Lu with
    /// power-law weights matching `α` and the average degree).
    #[must_use]
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Graph {
        crate::chung_lu_power_law(self.n, self.alpha, self.avg_degree(), rng)
    }

    /// A scaled copy of the profile with `n' = n / factor` vertices (same
    /// average degree and exponent) for quick runs.
    #[must_use]
    pub fn scaled_down(&self, factor: usize) -> Self {
        let n = (self.n / factor).max(100);
        let m = (self.m / factor).max(100);
        Self {
            name: self.name,
            n,
            m,
            alpha: self.alpha,
        }
    }
}

/// The default profile suite used by experiment E1, modelled after the
/// published statistics of widely used SNAP collaboration / social / web
/// networks (collaboration network, social news site, web crawl, email
/// network, peer-to-peer overlay).
#[must_use]
pub fn standard_profiles() -> Vec<DatasetProfile> {
    vec![
        DatasetProfile {
            name: "collab-astro-like",
            n: 18_772,
            m: 198_110,
            alpha: 2.8,
        },
        DatasetProfile {
            name: "social-news-like",
            n: 77_360,
            m: 469_180,
            alpha: 2.3,
        },
        DatasetProfile {
            name: "web-crawl-like",
            n: 100_000,
            m: 500_000,
            alpha: 2.1,
        },
        DatasetProfile {
            name: "email-like",
            n: 36_692,
            m: 183_831,
            alpha: 2.4,
        },
        DatasetProfile {
            name: "p2p-overlay-like",
            n: 62_586,
            m: 147_892,
            alpha: 2.6,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn profiles_have_sane_parameters() {
        for p in standard_profiles() {
            assert!(p.alpha > 2.0 && p.alpha < 3.5, "{}", p.name);
            assert!(p.avg_degree() > 1.0 && p.avg_degree() < 50.0, "{}", p.name);
        }
    }

    #[test]
    fn generated_graph_matches_shape() {
        let p = standard_profiles()[0].scaled_down(10);
        let mut rng = StdRng::seed_from_u64(5);
        let g = p.generate(&mut rng);
        assert_eq!(g.vertex_count(), p.n);
        let m = g.edge_count() as f64;
        assert!(
            (m - p.m as f64).abs() < 0.3 * p.m as f64,
            "{}: m = {m} vs target {}",
            p.name,
            p.m
        );
    }

    #[test]
    fn scaled_down_preserves_density() {
        let p = standard_profiles()[1];
        let s = p.scaled_down(10);
        assert!((s.avg_degree() - p.avg_degree()).abs() < 0.5);
        assert_eq!(s.alpha, p.alpha);
    }

    #[test]
    fn generated_graph_is_power_law() {
        let p = DatasetProfile {
            name: "test",
            n: 30_000,
            m: 90_000,
            alpha: 2.5,
        };
        let mut rng = StdRng::seed_from_u64(17);
        let g = p.generate(&mut rng);
        let degrees: Vec<u64> = g.vertices().map(|v| g.degree(v) as u64).collect();
        let fit = pl_stats::fit_power_law(&degrees, 30, 50).unwrap();
        assert!((fit.alpha - 2.5).abs() < 0.4, "fitted {fit:?}");
    }
}
