//! The paper's power-law graph families `P_h` and `P_l`.
//!
//! Implements, verbatim from Sections 3 and 5 of the paper:
//!
//! * [`PaperConstants`] — `C = 1/ζ(α)`, the index `i₁` (smallest integer
//!   with `⌊C·n/i₁^α⌋ ≤ 1`, which is `Θ(n^{1/α})`), and the constant `C'`.
//! * [`is_in_p_h`] — membership in `P_{h,χ,α}` (Definition 1): for every
//!   degree `k` between `χ(n)` and `n−1`, the tail count
//!   `Σ_{i≥k} |V_i| ≤ C'·n/k^{α−1}`.
//! * [`is_in_p_l`] — membership in `P_{l,α}` (Definition 2): per-degree
//!   class sizes within rounding of `C·n/i^α`, monotone from degree 2 on.
//! * [`embed_in_p_l`] — the three-phase Section-5 construction that, given
//!   an arbitrary graph `H` on `i₁` vertices, produces an `n`-vertex member
//!   of `P_l` containing `H` as an *induced* subgraph. This is the
//!   constructive engine behind the paper's `Ω(n^{1/α})` lower bound
//!   (Theorem 6): a labeling of the produced graph induces a labeling of
//!   the arbitrary graph `H`.

use pl_graph::degree::DegreeHistogram;
use pl_graph::{Graph, GraphBuilder, VertexId};
use rand::Rng;
use std::collections::BinaryHeap;

// The constants C, i₁, C' live in the numeric substrate; re-exported here
// because the `P_l`/`P_h` machinery is their main consumer.
pub use pl_stats::paper::PaperConstants;

/// A clause of Definition 2 that a graph failed, with context.
#[derive(Debug, Clone, PartialEq)]
pub enum PlViolation {
    /// The graph has isolated vertices, which no degree class of
    /// Definition 2 accounts for.
    IsolatedVertices {
        /// Number of degree-0 vertices found.
        count: usize,
    },
    /// `|V_1|` outside `[⌊Cn⌋ − i₁ − 1, ⌈Cn⌉]` (clause 1).
    DegreeOneClass {
        /// Actual `|V_1|`.
        actual: usize,
        /// Permitted inclusive range.
        range: (usize, usize),
    },
    /// `|V_2|` outside `[⌊Cn/2^α⌋, ⌈Cn/2^α⌉ + 1]` (clause 2).
    DegreeTwoClass {
        /// Actual `|V_2|`.
        actual: usize,
        /// Permitted inclusive range.
        range: (usize, usize),
    },
    /// Some `|V_i|`, `3 ≤ i ≤ n`, not in `{⌊Cn/i^α⌋, ⌈Cn/i^α⌉}` (clause 3).
    ClassSize {
        /// The degree class `i`.
        degree: usize,
        /// Actual `|V_i|`.
        actual: usize,
        /// The two permitted values.
        allowed: (usize, usize),
    },
    /// `|V_i| < |V_{i+1}|` for some `2 ≤ i ≤ n−1` (clause 4).
    NotMonotone {
        /// The degree `i` where monotonicity breaks.
        degree: usize,
    },
}

impl std::fmt::Display for PlViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::IsolatedVertices { count } => {
                write!(
                    f,
                    "{count} isolated vertices (P_l classes start at degree 1)"
                )
            }
            Self::DegreeOneClass { actual, range } => {
                write!(f, "|V_1| = {actual} outside [{}, {}]", range.0, range.1)
            }
            Self::DegreeTwoClass { actual, range } => {
                write!(f, "|V_2| = {actual} outside [{}, {}]", range.0, range.1)
            }
            Self::ClassSize {
                degree,
                actual,
                allowed,
            } => write!(
                f,
                "|V_{degree}| = {actual} not in {{{}, {}}}",
                allowed.0, allowed.1
            ),
            Self::NotMonotone { degree } => {
                write!(f, "|V_{degree}| < |V_{}|", degree + 1)
            }
        }
    }
}

/// Checks membership in `P_{l,α}` (Definition 2), returning the first
/// violated clause if any.
///
/// Definition 2 partitions the vertices into degree classes `V_1 … V_n`;
/// a degree-0 vertex belongs to no class, so isolated vertices are reported
/// as a violation.
pub fn is_in_p_l(g: &Graph, alpha: f64) -> Result<PaperConstants, PlViolation> {
    let n = g.vertex_count();
    let k = PaperConstants::new(n, alpha);
    let h = DegreeHistogram::of(g);
    if h.count(0) > 0 {
        return Err(PlViolation::IsolatedVertices { count: h.count(0) });
    }
    let cn = k.c * n as f64;

    // Clause 1.
    let v1 = h.count(1);
    let lo1 = (cn.floor() as usize).saturating_sub(k.i1 + 1);
    let hi1 = cn.ceil() as usize;
    if v1 < lo1 || v1 > hi1 {
        return Err(PlViolation::DegreeOneClass {
            actual: v1,
            range: (lo1, hi1),
        });
    }

    // Clause 2.
    let ideal2 = cn / 2f64.powf(alpha);
    let v2 = h.count(2);
    let lo2 = ideal2.floor() as usize;
    let hi2 = ideal2.ceil() as usize + 1;
    if v2 < lo2 || v2 > hi2 {
        return Err(PlViolation::DegreeTwoClass {
            actual: v2,
            range: (lo2, hi2),
        });
    }

    // Clause 3.
    for i in 3..=n {
        let ideal = cn / (i as f64).powf(alpha);
        let lo = ideal.floor() as usize;
        let hi = ideal.ceil() as usize;
        let actual = h.count(i);
        if actual != lo && actual != hi {
            return Err(PlViolation::ClassSize {
                degree: i,
                actual,
                allowed: (lo, hi),
            });
        }
    }

    // Clause 4.
    for i in 2..n {
        if h.count(i) < h.count(i + 1) {
            return Err(PlViolation::NotMonotone { degree: i });
        }
    }

    Ok(k)
}

/// Checks membership in `P_{h,χ,α}` (Definition 1) with cutoff value
/// `chi_n = χ(n)` and constant `c_prime`: for every `k` with
/// `χ(n) ≤ k ≤ n−1`, requires `Σ_{i=k}^{n−1} |V_i| ≤ C'·n/k^{α−1}`.
///
/// Pass `consts.c_prime` from [`PaperConstants`] for the paper's minimal
/// constant. Runs in `O(n + max_degree)`.
#[must_use]
pub fn is_in_p_h(g: &Graph, alpha: f64, chi_n: usize, c_prime: f64) -> bool {
    let n = g.vertex_count();
    if n == 0 {
        return true;
    }
    let h = DegreeHistogram::of(g);
    let nf = n as f64;
    // Tail counts via one reverse sweep up to max degree.
    let maxd = h.max_degree().min(n.saturating_sub(1));
    let mut tail = 0usize;
    let mut tails = vec![0usize; maxd + 2];
    for k in (0..=maxd).rev() {
        tail += h.count(k);
        tails[k] = tail;
    }
    #[allow(clippy::needless_range_loop)] // k is a degree value, not just an index
    for k in chi_n.max(1)..n {
        let t = if k <= maxd { tails[k] } else { 0 };
        // Definition 1 sums |V_i| for i in [k, n-1]; degrees above n-1 are
        // impossible in a simple graph, so the tail count suffices.
        if (t as f64) > c_prime * nf / (k as f64).powf(alpha - 1.0) {
            return false;
        }
    }
    true
}

/// The result of the Section-5 construction.
#[derive(Debug, Clone)]
pub struct PlEmbedding {
    /// The produced `n`-vertex member of `P_l`.
    pub graph: Graph,
    /// `host[i]` is the vertex of `graph` playing the role of `H`'s vertex
    /// `i`; `H` is induced on these.
    pub host: Vec<VertexId>,
    /// Constants used for the construction.
    pub constants: PaperConstants,
}

/// Minimum `n` for which the construction's class arithmetic is safely
/// non-degenerate.
const MIN_EMBED_N: usize = 64;

/// The three-phase construction of Section 5: embeds an arbitrary graph `H`
/// with `i₁(n, α)` vertices into an `n`-vertex graph of `P_{l,α}` as an
/// induced subgraph.
///
/// The construction is deterministic given the iteration order; the `rng`
/// is used only to pick which concrete vertices host `H` (any choice is
/// valid per the paper, which says "arbitrary").
///
/// # Panics
///
/// Panics if `h.vertex_count() != i₁(n, α)` (compute `i₁` first via
/// [`PaperConstants::new`]), if `α <= 2` (the paper's lower bound assumes
/// `α > 2`), or if `n < 64`.
#[must_use]
pub fn embed_in_p_l<R: Rng + ?Sized>(h: &Graph, n: usize, alpha: f64, rng: &mut R) -> PlEmbedding {
    assert!(alpha > 2.0, "the Section-5 construction assumes alpha > 2");
    assert!(n >= MIN_EMBED_N, "n = {n} too small for the construction");
    let k = PaperConstants::new(n, alpha);
    assert_eq!(
        h.vertex_count(),
        k.i1,
        "H must have exactly i1 = {} vertices, got {}",
        k.i1,
        h.vertex_count()
    );
    let cn = k.c * n as f64;
    let i1 = k.i1;

    // ---- Degree-class layout -------------------------------------------
    // target[v] is the degree vertex v must reach. Classes are laid out in
    // ascending degree over the id range.
    let mut class_sizes: Vec<(usize, usize)> = Vec::new(); // (degree, size)
    let v1_size = (cn.floor() as usize).saturating_sub(i1);
    class_sizes.push((1, v1_size));
    for i in 2..i1 {
        class_sizes.push((i, k.ideal_class_size(i)));
    }
    let n_prime: usize = class_sizes.iter().map(|&(_, s)| s).sum();
    assert!(
        n_prime + i1 <= n,
        "construction invariant n - n' >= i1 failed (n' = {n_prime}, i1 = {i1})"
    );
    for i in i1..i1 + (n - n_prime) {
        class_sizes.push((i, 1));
    }
    let total: usize = class_sizes.iter().map(|&(_, s)| s).sum();
    debug_assert_eq!(total, n);

    let mut target = vec![0usize; n];
    let mut next_id = 0usize;
    let mut v1_range = 0..0;
    let mut singleton_ids = Vec::new(); // the size-1 classes, in degree order
    for &(deg, size) in &class_sizes {
        if size == 0 {
            continue;
        }
        let range = next_id..next_id + size;
        if deg == 1 {
            v1_range = range.clone();
        }
        if deg >= i1 {
            singleton_ids.extend(range.clone().map(|v| v as VertexId));
        }
        for v in range {
            target[v] = deg;
        }
        next_id += size;
    }
    debug_assert_eq!(next_id, n);

    // ---- Pick V_H and install H ----------------------------------------
    // "form a set V_H of i1 arbitrary vertices from the singleton classes".
    // We sample without replacement for variety; any choice is valid.
    let mut pool = singleton_ids.clone();
    let mut host = Vec::with_capacity(i1);
    for _ in 0..i1 {
        let idx = rng.gen_range(0..pool.len());
        host.push(pool.swap_remove(idx));
    }

    let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    let mut deg = vec![0usize; n];
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let add_edge = |adj: &mut Vec<Vec<VertexId>>,
                    deg: &mut Vec<usize>,
                    edges: &mut Vec<(VertexId, VertexId)>,
                    u: VertexId,
                    v: VertexId| {
        debug_assert_ne!(u, v);
        debug_assert!(!adj[u as usize].contains(&v), "duplicate edge {u}-{v}");
        adj[u as usize].push(v);
        adj[v as usize].push(u);
        deg[u as usize] += 1;
        deg[v as usize] += 1;
        edges.push((u, v));
    };

    for (a, b) in h.edges() {
        add_edge(
            &mut adj,
            &mut deg,
            &mut edges,
            host[a as usize],
            host[b as usize],
        );
    }

    // ---- Phase 1: saturate V_H from V' ----------------------------------
    // V' = V \ (V_1 ∪ V_H): every vertex with target >= 2 not hosting H.
    let host_set: std::collections::HashSet<VertexId> = host.iter().copied().collect();
    let v_prime: Vec<VertexId> = (0..n as VertexId)
        .filter(|&v| target[v as usize] >= 2 && !host_set.contains(&v))
        .collect();

    let mut cursor = 0usize;
    for &hv in &host {
        let mut scan = cursor;
        while deg[hv as usize] < target[hv as usize] {
            assert!(
                scan < v_prime.len(),
                "phase 1 ran out of V' vertices (n too small)"
            );
            let u = v_prime[scan];
            scan += 1;
            if deg[u as usize] < target[u as usize] && !adj[hv as usize].contains(&u) {
                add_edge(&mut adj, &mut deg, &mut edges, hv, u);
            }
        }
        // Advance the shared cursor past fully processed vertices.
        while cursor < v_prime.len()
            && deg[v_prime[cursor] as usize] >= target[v_prime[cursor] as usize]
        {
            cursor += 1;
        }
    }

    // ---- Phase 2: pair up V' deficits (Havel–Hakimi greedy) -------------
    let mut heap: BinaryHeap<(usize, VertexId)> = v_prime
        .iter()
        .filter(|&&v| deg[v as usize] < target[v as usize])
        .map(|&v| (target[v as usize] - deg[v as usize], v))
        .collect();
    let mut leftovers: Vec<VertexId> = Vec::new();
    while let Some((d, u)) = heap.pop() {
        if target[u as usize] - deg[u as usize] != d {
            continue; // stale entry
        }
        if d == 0 {
            continue;
        }
        let mut partners = Vec::with_capacity(d);
        let mut skipped = Vec::new();
        while partners.len() < d {
            match heap.pop() {
                Some((pd, v)) => {
                    if target[v as usize] - deg[v as usize] != pd || pd == 0 {
                        continue; // stale
                    }
                    if adj[u as usize].contains(&v) {
                        skipped.push((pd, v));
                    } else {
                        partners.push(v);
                    }
                }
                None => break,
            }
        }
        for v in &partners {
            add_edge(&mut adj, &mut deg, &mut edges, u, *v);
        }
        for (_, v) in skipped {
            let rd = target[v as usize] - deg[v as usize];
            if rd > 0 {
                heap.push((rd, v));
            }
        }
        for v in partners {
            let rd = target[v as usize] - deg[v as usize];
            if rd > 0 {
                heap.push((rd, v));
            }
        }
        if deg[u as usize] < target[u as usize] {
            // Could not finish u inside V' (the paper's "at most one
            // unprocessed vertex" case).
            leftovers.push(u);
        }
    }

    // Process leftovers against degree-0 vertices of V_1 (allowed: they
    // become degree 1, exactly their class target).
    let mut v1_zero: Vec<VertexId> = v1_range
        .clone()
        .map(|v| v as VertexId)
        .filter(|&v| deg[v as usize] == 0)
        .collect();
    for u in leftovers {
        while deg[u as usize] < target[u as usize] {
            let v = v1_zero
                .pop()
                .expect("phase 2 fallback exhausted V_1 (n too small)");
            debug_assert!(!adj[u as usize].contains(&v));
            add_edge(&mut adj, &mut deg, &mut edges, u, v);
        }
    }

    // ---- Phase 3: pair the remaining degree-0 V_1 vertices --------------
    v1_zero.retain(|&v| deg[v as usize] == 0);
    let mut it = v1_zero.chunks_exact(2);
    for pair in &mut it {
        add_edge(&mut adj, &mut deg, &mut edges, pair[0], pair[1]);
    }
    if let [w] = it.remainder() {
        // One odd vertex: connect it to a degree-1 vertex of V_1, moving
        // that vertex into V_2 (Definition 2's slack absorbs this).
        let w = *w;
        let partner = v1_range
            .clone()
            .map(|v| v as VertexId)
            .find(|&v| v != w && deg[v as usize] == 1 && !adj[w as usize].contains(&v))
            .expect("phase 3 found no degree-1 partner in V_1");
        add_edge(&mut adj, &mut deg, &mut edges, w, partner);
    }

    let mut b = GraphBuilder::with_edge_capacity(n, edges.len());
    b.extend_edges(edges);
    PlEmbedding {
        graph: b.build(),
        host,
        constants: k,
    }
}

/// Convenience: a "random member of `P_l`" obtained by embedding an
/// Erdős–Rényi `G(i₁, ½)` graph via [`embed_in_p_l`] — the paper's own
/// hard-instance distribution for the lower bound.
#[must_use]
pub fn p_l_random<R: Rng + ?Sized>(n: usize, alpha: f64, rng: &mut R) -> PlEmbedding {
    let k = PaperConstants::new(n, alpha);
    let h = crate::er::gnp(k.i1, 0.5, rng);
    embed_in_p_l(&h, n, alpha, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_graph::view::induced_subgraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x51EC)
    }

    #[test]
    fn constants_scale_like_root_n() {
        for &alpha in &[2.2, 2.5, 3.0] {
            for &n in &[1_000usize, 10_000, 100_000] {
                let k = PaperConstants::new(n, alpha);
                let root = (n as f64).powf(1.0 / alpha);
                let ratio = k.i1 as f64 / root;
                assert!(
                    ratio > 0.3 && ratio < 3.0,
                    "alpha={alpha} n={n}: i1={} vs n^(1/a)={root}",
                    k.i1
                );
                assert!(k.c_prime > 0.0 && k.c_prime.is_finite());
            }
        }
    }

    #[test]
    fn i1_is_minimal() {
        let k = PaperConstants::new(50_000, 2.5);
        let check = |i: usize| (k.c * k.n as f64 / (i as f64).powf(k.alpha)).floor() <= 1.0;
        assert!(check(k.i1));
        assert!(k.i1 == 1 || !check(k.i1 - 1));
    }

    #[test]
    fn embedding_is_in_p_l() {
        let mut r = rng();
        for &n in &[500usize, 5_000, 20_000] {
            let emb = p_l_random(n, 2.5, &mut r);
            assert_eq!(emb.graph.vertex_count(), n);
            is_in_p_l(&emb.graph, 2.5).unwrap_or_else(|v| panic!("n = {n}: {v}"));
        }
    }

    #[test]
    fn embedding_alpha_three() {
        let mut r = rng();
        let emb = p_l_random(10_000, 3.0, &mut r);
        is_in_p_l(&emb.graph, 3.0).unwrap_or_else(|v| panic!("{v}"));
    }

    #[test]
    fn embedded_h_is_induced() {
        let mut r = rng();
        let n = 5_000;
        let k = PaperConstants::new(n, 2.5);
        let h = crate::er::gnp(k.i1, 0.5, &mut r);
        let emb = embed_in_p_l(&h, n, 2.5, &mut r);
        let sub = induced_subgraph(&emb.graph, &emb.host);
        // Same vertex order, so graphs must be identical.
        assert_eq!(sub.graph, h, "H is not induced in G");
    }

    #[test]
    fn embedded_clique_is_induced() {
        let mut r = rng();
        let n = 3_000;
        let k = PaperConstants::new(n, 2.5);
        let h = crate::classic::complete(k.i1);
        let emb = embed_in_p_l(&h, n, 2.5, &mut r);
        let sub = induced_subgraph(&emb.graph, &emb.host);
        assert_eq!(sub.graph, h);
        is_in_p_l(&emb.graph, 2.5).unwrap_or_else(|v| panic!("{v}"));
    }

    #[test]
    fn embedded_empty_h_is_induced() {
        let mut r = rng();
        let n = 3_000;
        let k = PaperConstants::new(n, 2.5);
        let h = pl_graph::GraphBuilder::new(k.i1).build();
        let emb = embed_in_p_l(&h, n, 2.5, &mut r);
        let sub = induced_subgraph(&emb.graph, &emb.host);
        assert_eq!(sub.graph.edge_count(), 0);
        is_in_p_l(&emb.graph, 2.5).unwrap_or_else(|v| panic!("{v}"));
    }

    #[test]
    fn p_l_member_is_in_p_h() {
        let mut r = rng();
        let emb = p_l_random(8_000, 2.5, &mut r);
        let k = emb.constants;
        // Proposition 3: P_l ⊆ P_h for any χ; use χ(n) = 1.
        assert!(is_in_p_h(&emb.graph, 2.5, 1, k.c_prime));
    }

    #[test]
    fn p_l_member_is_sparse() {
        // Proposition 2: alpha > 2 implies sparsity.
        let mut r = rng();
        let emb = p_l_random(20_000, 2.5, &mut r);
        let k = emb.constants;
        // m <= O(n^{2/alpha}) + C·ζ(α−1)·n; just check a generous linear bound.
        let bound = 2.0 * k.c * pl_stats::zeta(1.5) * 20_000.0;
        assert!(
            (emb.graph.edge_count() as f64) < bound,
            "m = {} vs bound {bound}",
            emb.graph.edge_count()
        );
    }

    #[test]
    fn max_degree_bound_proposition_1() {
        let mut r = rng();
        let emb = p_l_random(10_000, 2.5, &mut r);
        let k = emb.constants;
        let bound =
            (k.c / (k.alpha - 1.0) + 2.0) * (k.n as f64).powf(1.0 / k.alpha) + k.i1 as f64 + 3.0;
        assert!(
            (emb.graph.max_degree() as f64) <= bound,
            "max degree {} vs Proposition 1 bound {bound}",
            emb.graph.max_degree()
        );
    }

    #[test]
    fn checker_rejects_wrong_graphs() {
        // A clique is about as far from P_l as it gets.
        let g = crate::classic::complete(64);
        assert!(is_in_p_l(&g, 2.5).is_err());
        // A star: one giant hub, everything else degree 1 — fails class
        // size constraints too (|V_1| too big relative to floor/ceil, or
        // monotonicity at the hub's degree).
        let s = crate::classic::star(256);
        assert!(is_in_p_l(&s, 2.5).is_err());
    }

    #[test]
    fn checker_rejects_isolated_vertices() {
        let g = pl_graph::GraphBuilder::new(100).build();
        assert!(matches!(
            is_in_p_l(&g, 2.5),
            Err(PlViolation::IsolatedVertices { count: 100 })
        ));
    }

    #[test]
    fn p_h_check_monotone_in_c_prime() {
        let mut r = rng();
        let g = crate::chung_lu_power_law(5_000, 2.5, 4.0, &mut r);
        // Huge constant: always a member. Zero constant: never (n >= 1 tail).
        assert!(is_in_p_h(&g, 2.5, 1, 1e12));
        assert!(!is_in_p_h(&g, 2.5, 1, 0.0));
    }

    #[test]
    fn violation_display_messages() {
        let v = PlViolation::ClassSize {
            degree: 5,
            actual: 9,
            allowed: (3, 4),
        };
        assert!(v.to_string().contains("V_5"));
        let v = PlViolation::NotMonotone { degree: 7 };
        assert!(v.to_string().contains("V_7"));
    }

    #[test]
    #[should_panic(expected = "alpha > 2")]
    fn embed_rejects_small_alpha() {
        let mut r = rng();
        let h = pl_graph::GraphBuilder::new(10).build();
        let _ = embed_in_p_l(&h, 1_000, 1.5, &mut r);
    }

    #[test]
    #[should_panic(expected = "i1")]
    fn embed_rejects_wrong_h_size() {
        let mut r = rng();
        let h = pl_graph::GraphBuilder::new(3).build();
        let _ = embed_in_p_l(&h, 10_000, 2.5, &mut r);
    }
}
