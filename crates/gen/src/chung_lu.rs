//! The Chung–Lu expected-degree random graph model.
//!
//! Reference \[23\] of the paper (Chung & Lu, *Complex Graphs and Networks*).
//! Each pair `{u, v}` is an edge independently with probability
//! `min(1, w_u · w_v / W)` where `W = Σ w`. With power-law weights the
//! resulting degree distribution is power-law with the same exponent, which
//! makes this the workhorse generator for the upper-bound experiments.
//!
//! Sampling uses the Miller–Hagberg skipping technique over
//! weight-sorted vertices: expected time `O(n + m)` instead of `Θ(n²)`.

use pl_graph::{Graph, GraphBuilder, VertexId};
use rand::Rng;

/// Samples a Chung–Lu graph with the given expected-degree weights.
///
/// Weights must be non-negative. Runs in expected `O(n log n + m)`.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// // Two hubs and many low-weight vertices.
/// let mut w = vec![50.0, 50.0];
/// w.extend(std::iter::repeat(1.0).take(998));
/// let g = pl_gen::chung_lu(&w, &mut rng);
/// assert_eq!(g.vertex_count(), 1000);
/// assert!(g.degree(0) > 10); // hub
/// ```
#[must_use]
pub fn chung_lu<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> Graph {
    let n = weights.len();
    assert!(
        weights.iter().all(|&w| w >= 0.0 && w.is_finite()),
        "weights must be finite and non-negative"
    );
    let total: f64 = weights.iter().sum();
    let mut b = GraphBuilder::new(n);
    if n < 2 || total <= 0.0 {
        return b.build();
    }

    // Sort vertex ids by weight descending; `order[i]` is the original id.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]));
    let w: Vec<f64> = order.iter().map(|&v| weights[v]).collect();

    for i in 0..n - 1 {
        if w[i] <= 0.0 {
            break; // all remaining weights are zero
        }
        let mut j = i + 1;
        let mut p = (w[i] * w[j] / total).min(1.0);
        while j < n && p > 0.0 {
            if p < 1.0 {
                // Geometric skip: number of consecutive misses at success
                // probability p.
                let r: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                let skip = (r.ln() / (1.0 - p).ln()).floor();
                if skip >= (n - j) as f64 {
                    break;
                }
                j += skip as usize;
            }
            let q = (w[i] * w[j] / total).min(1.0);
            if rng.gen::<f64>() < q / p {
                b.add_edge(order[i] as VertexId, order[j] as VertexId);
            }
            p = q;
            j += 1;
        }
    }
    b.build()
}

/// Power-law weights for [`chung_lu`]: `w_i = (ζ-normalized) · (i + i₀)^{-1/(α-1)}`,
/// scaled so the average weight (expected average degree) is `avg_degree`.
///
/// The offset `i₀` caps the largest expected degree at roughly
/// `avg_degree · (n / i₀)^{1/(α-1)} / normalizer`; `i₀ = 0` gives the pure
/// Zipf weight profile.
#[must_use]
pub fn power_law_weights(n: usize, alpha: f64, avg_degree: f64) -> Vec<f64> {
    assert!(alpha > 2.0, "power-law weights need alpha > 2, got {alpha}");
    assert!(avg_degree > 0.0);
    let gamma = 1.0 / (alpha - 1.0);
    let mut w: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-gamma)).collect();
    let mean = w.iter().sum::<f64>() / n as f64;
    let scale = avg_degree / mean;
    for x in &mut w {
        *x *= scale;
    }
    w
}

/// Convenience: a Chung–Lu graph whose degree distribution follows a power
/// law with exponent `α > 2` and the given expected average degree.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let g = pl_gen::chung_lu_power_law(5000, 2.5, 4.0, &mut rng);
/// let avg = 2.0 * g.edge_count() as f64 / g.vertex_count() as f64;
/// assert!((avg - 4.0).abs() < 1.0, "avg degree {avg}");
/// ```
#[must_use]
pub fn chung_lu_power_law<R: Rng + ?Sized>(
    n: usize,
    alpha: f64,
    avg_degree: f64,
    rng: &mut R,
) -> Graph {
    chung_lu(&power_law_weights(n, alpha, avg_degree), rng)
}

/// A Chung–Lu graph whose weights are an explicit target degree sequence:
/// `E[deg(v)] ≈ degrees[v]` (exactly, when no pair probability saturates).
/// This is how the dataset profiles can mimic a measured degree sequence
/// rather than a fitted exponent.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(8);
/// let mut target = vec![2usize; 2000];
/// target[0] = 100; // one hub
/// let g = pl_gen::chung_lu::chung_lu_from_degrees(&target, &mut rng);
/// let hub = g.degree(0) as f64;
/// assert!((hub - 100.0).abs() < 40.0, "hub degree {hub}");
/// ```
#[must_use]
pub fn chung_lu_from_degrees<R: Rng + ?Sized>(degrees: &[usize], rng: &mut R) -> Graph {
    let w: Vec<f64> = degrees.iter().map(|&d| d as f64).collect();
    chung_lu(&w, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2024)
    }

    #[test]
    fn from_degrees_matches_expected_total() {
        let mut r = rng();
        let degrees = vec![4usize; 3000];
        let g = chung_lu_from_degrees(&degrees, &mut r);
        let m = g.edge_count() as f64;
        let expect = 3000.0 * 4.0 / 2.0;
        assert!((m - expect).abs() < 0.15 * expect, "m {m} vs {expect}");
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(chung_lu(&[], &mut rng()).vertex_count(), 0);
        assert_eq!(chung_lu(&[5.0], &mut rng()).edge_count(), 0);
        assert_eq!(chung_lu(&[0.0, 0.0], &mut rng()).edge_count(), 0);
    }

    #[test]
    fn saturated_weights_give_near_clique() {
        // Weights so large that every pair probability is 1.
        let w = vec![1e6; 8];
        let g = chung_lu(&w, &mut rng());
        assert_eq!(g.edge_count(), 8 * 7 / 2);
    }

    #[test]
    fn expected_edge_count_matches() {
        let n = 3000usize;
        let w = vec![3.0; n];
        // Homogeneous weights: E[m] ≈ C(n,2) · w²/W = (n-1) * w / 2.
        let g = chung_lu(&w, &mut rng());
        let expect = (n as f64 - 1.0) * 3.0 / 2.0;
        let got = g.edge_count() as f64;
        assert!(
            (got - expect).abs() < 0.15 * expect,
            "edges {got} vs expected {expect}"
        );
    }

    #[test]
    fn degrees_track_weights() {
        let mut w = vec![1.0; 4000];
        w[0] = 200.0;
        w[1] = 100.0;
        let g = chung_lu(&w, &mut rng());
        let d0 = g.degree(0) as f64;
        let d1 = g.degree(1) as f64;
        assert!((d0 - 200.0).abs() < 60.0, "hub0 degree {d0}");
        assert!((d1 - 100.0).abs() < 40.0, "hub1 degree {d1}");
    }

    #[test]
    fn power_law_weights_scaled_to_average() {
        let w = power_law_weights(1000, 2.5, 6.0);
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        assert!((mean - 6.0).abs() < 1e-9);
        // Monotone non-increasing.
        for pair in w.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
    }

    #[test]
    fn power_law_graph_fits_exponent() {
        let mut r = rng();
        let g = chung_lu_power_law(30_000, 2.5, 5.0, &mut r);
        let degrees: Vec<u64> = g.vertices().map(|v| g.degree(v) as u64).collect();
        let fit = pl_stats::fit_power_law(&degrees, 30, 50).unwrap();
        assert!(
            (fit.alpha - 2.5).abs() < 0.35,
            "fitted alpha {} (x_min {})",
            fit.alpha,
            fit.x_min
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        let _ = chung_lu(&[1.0, -2.0], &mut rng());
    }

    #[test]
    fn deterministic_under_seed() {
        let w = power_law_weights(500, 2.3, 4.0);
        let g1 = chung_lu(&w, &mut StdRng::seed_from_u64(8));
        let g2 = chung_lu(&w, &mut StdRng::seed_from_u64(8));
        assert_eq!(g1, g2);
    }
}
