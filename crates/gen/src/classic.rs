//! Deterministic classic graphs for tests and calibration.

use pl_graph::{builder::from_edges, Graph, GraphBuilder, VertexId};

/// The path `P_n` on `n` vertices (`n − 1` edges).
#[must_use]
pub fn path(n: usize) -> Graph {
    if n == 0 {
        return GraphBuilder::new(0).build();
    }
    from_edges(n, (0..n as VertexId - 1).map(|i| (i, i + 1)))
}

/// The cycle `C_n` on `n ≥ 3` vertices.
///
/// # Panics
///
/// Panics for `n < 3`.
#[must_use]
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    from_edges(n, (0..n as VertexId).map(|i| (i, (i + 1) % n as VertexId)))
}

/// The complete graph `K_n`.
#[must_use]
pub fn complete(n: usize) -> Graph {
    let n32 = n as VertexId;
    from_edges(n, (0..n32).flat_map(|u| (u + 1..n32).map(move |v| (u, v))))
}

/// The star `S_n`: vertex 0 joined to vertices `1..n`.
#[must_use]
pub fn star(n: usize) -> Graph {
    if n == 0 {
        return GraphBuilder::new(0).build();
    }
    from_edges(n, (1..n as VertexId).map(|i| (0, i)))
}

/// A balanced binary tree on `n` vertices (vertex `i`'s parent is
/// `(i − 1) / 2`).
#[must_use]
pub fn binary_tree(n: usize) -> Graph {
    if n == 0 {
        return GraphBuilder::new(0).build();
    }
    from_edges(n, (1..n as VertexId).map(|i| (i, (i - 1) / 2)))
}

/// The `r × c` grid graph.
#[must_use]
pub fn grid(r: usize, c: usize) -> Graph {
    let n = r * c;
    let mut b = GraphBuilder::new(n);
    for i in 0..r {
        for j in 0..c {
            let v = (i * c + j) as VertexId;
            if j + 1 < c {
                b.add_edge(v, v + 1);
            }
            if i + 1 < r {
                b.add_edge(v, v + c as VertexId);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_counts() {
        assert_eq!(path(0).vertex_count(), 0);
        assert_eq!(path(1).edge_count(), 0);
        let p = path(10);
        assert_eq!(p.edge_count(), 9);
        assert_eq!(p.max_degree(), 2);
    }

    #[test]
    fn cycle_counts() {
        let c = cycle(8);
        assert_eq!(c.edge_count(), 8);
        for v in c.vertices() {
            assert_eq!(c.degree(v), 2);
        }
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn cycle_too_small() {
        let _ = cycle(2);
    }

    #[test]
    fn complete_counts() {
        let k = complete(7);
        assert_eq!(k.edge_count(), 21);
        assert_eq!(k.max_degree(), 6);
    }

    #[test]
    fn star_counts() {
        let s = star(9);
        assert_eq!(s.degree(0), 8);
        assert_eq!(s.edge_count(), 8);
    }

    #[test]
    fn binary_tree_is_tree() {
        let t = binary_tree(15);
        assert_eq!(t.edge_count(), 14);
        assert!(pl_graph::components::is_connected(&t));
        assert_eq!(pl_graph::degeneracy::degeneracy_ordering(&t).degeneracy, 1);
    }

    #[test]
    fn grid_counts() {
        let g = grid(3, 4);
        assert_eq!(g.vertex_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert_eq!(g.max_degree(), 4);
    }
}
