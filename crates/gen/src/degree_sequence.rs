//! Power-law degree sequences.

use pl_stats::zeta::paper_c;
use rand::Rng;

/// Samples one value from the discrete bounded power law
/// `P(X = k) ∝ k^{-α}` for `k ∈ [k_min, k_max]`, by inversion over a
/// precomputed cumulative table. Use [`ZipfSampler`] to amortize the table.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    k_min: u64,
    /// `cum[i] = P(X <= k_min + i)`, last entry 1.0.
    cum: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the inversion table for `P(X = k) ∝ k^{-α}`, `k_min ≤ k ≤ k_max`.
    ///
    /// # Panics
    ///
    /// Panics if `k_min` is 0 or exceeds `k_max`, or `α <= 0`.
    #[must_use]
    pub fn new(alpha: f64, k_min: u64, k_max: u64) -> Self {
        assert!(k_min >= 1 && k_min <= k_max, "need 1 <= k_min <= k_max");
        assert!(alpha > 0.0, "alpha must be positive");
        let mut cum = Vec::with_capacity((k_max - k_min + 1) as usize);
        let mut acc = 0.0f64;
        for k in k_min..=k_max {
            acc += (k as f64).powf(-alpha);
            cum.push(acc);
        }
        let total = acc;
        for c in &mut cum {
            *c /= total;
        }
        Self { k_min, cum }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let idx = self.cum.partition_point(|&c| c < u);
        self.k_min + idx.min(self.cum.len() - 1) as u64
    }
}

/// Samples an `n`-term power-law degree sequence with exponent `α`,
/// degrees in `[d_min, d_max]`, adjusted to an even sum (one entry may be
/// bumped by 1) so it can feed the configuration model.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let seq = pl_gen::degree_sequence::power_law_degrees(1000, 2.5, 1, 100, &mut rng);
/// assert_eq!(seq.len(), 1000);
/// assert_eq!(seq.iter().sum::<usize>() % 2, 0);
/// assert!(seq.iter().all(|&d| (1..=101).contains(&d)));
/// ```
#[must_use]
pub fn power_law_degrees<R: Rng + ?Sized>(
    n: usize,
    alpha: f64,
    d_min: u64,
    d_max: u64,
    rng: &mut R,
) -> Vec<usize> {
    let sampler = ZipfSampler::new(alpha, d_min, d_max);
    let mut seq: Vec<usize> = (0..n).map(|_| sampler.sample(rng) as usize).collect();
    if seq.iter().sum::<usize>() % 2 == 1 {
        if let Some(first) = seq.first_mut() {
            *first += 1;
        }
    }
    seq
}

/// The deterministic "ideal" power-law counts of the paper's Section 3:
/// `count[k] = ⌊C·n / k^α⌋` with `C = 1/ζ(α)`, reported as `(k, count)`
/// pairs for every `k ≥ 1` with a positive count.
///
/// These are the per-degree-class targets around which Definition 2 allows
/// ±1 rounding noise.
#[must_use]
pub fn ideal_power_law_counts(n: usize, alpha: f64) -> Vec<(usize, usize)> {
    let c = paper_c(alpha);
    let mut out = Vec::new();
    let mut k = 1usize;
    loop {
        let cnt = (c * n as f64 / (k as f64).powf(alpha)).floor() as usize;
        if cnt == 0 {
            break;
        }
        out.push((k, cnt));
        k += 1;
    }
    out
}

/// Expands `(degree, count)` pairs into a flat degree sequence with an even
/// sum (bumping one degree-1 entry if needed).
#[must_use]
pub fn expand_counts(counts: &[(usize, usize)]) -> Vec<usize> {
    let mut seq = Vec::new();
    for &(k, c) in counts {
        seq.extend(std::iter::repeat_n(k, c));
    }
    if seq.iter().sum::<usize>() % 2 == 1 {
        if let Some(first) = seq.first_mut() {
            *first += 1;
        }
    }
    seq
}

/// Erdős–Gallai test: is the degree sequence realizable by a simple graph?
///
/// # Example
///
/// ```
/// assert!(pl_gen::degree_sequence::is_graphical(&[2, 2, 2]));      // triangle
/// assert!(!pl_gen::degree_sequence::is_graphical(&[3, 1]));         // too big
/// assert!(!pl_gen::degree_sequence::is_graphical(&[1, 1, 1]));      // odd sum
/// ```
#[must_use]
pub fn is_graphical(degrees: &[usize]) -> bool {
    let n = degrees.len();
    let mut d = degrees.to_vec();
    d.sort_unstable_by(|a, b| b.cmp(a));
    if d.first().is_some_and(|&x| x >= n) {
        return false;
    }
    let total: usize = d.iter().sum();
    if total % 2 == 1 {
        return false;
    }
    // Erdős–Gallai with prefix sums.
    let mut prefix = vec![0usize; n + 1];
    for (i, &x) in d.iter().enumerate() {
        prefix[i + 1] = prefix[i] + x;
    }
    for k in 1..=n {
        let lhs = prefix[k];
        // Σ_{i>k} min(d_i, k)
        let mut rhs = k * (k - 1);
        for &x in &d[k..] {
            rhs += x.min(k);
        }
        if lhs > rhs {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn zipf_respects_bounds() {
        let s = ZipfSampler::new(2.5, 2, 50);
        let mut r = rng();
        for _ in 0..1000 {
            let x = s.sample(&mut r);
            assert!((2..=50).contains(&x));
        }
    }

    #[test]
    fn zipf_mass_concentrates_at_low_degrees() {
        let s = ZipfSampler::new(2.5, 1, 1000);
        let mut r = rng();
        let n = 20_000;
        let ones = (0..n).filter(|_| s.sample(&mut r) == 1).count();
        // P(X = 1) = 1/ζ-ish over the truncated support ≈ 0.745 for α=2.5.
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.745).abs() < 0.03, "frac {frac}");
    }

    #[test]
    fn zipf_alpha_one_is_allowed() {
        // α need not exceed 1 for a *bounded* zipf.
        let s = ZipfSampler::new(1.0, 1, 10);
        let mut r = rng();
        for _ in 0..100 {
            assert!((1..=10).contains(&s.sample(&mut r)));
        }
    }

    #[test]
    #[should_panic(expected = "k_min")]
    fn zipf_rejects_zero_kmin() {
        let _ = ZipfSampler::new(2.0, 0, 5);
    }

    #[test]
    fn power_law_degrees_even_sum() {
        let mut r = rng();
        for _ in 0..5 {
            let seq = power_law_degrees(501, 2.2, 1, 60, &mut r);
            assert_eq!(seq.iter().sum::<usize>() % 2, 0);
        }
    }

    #[test]
    fn ideal_counts_match_formula() {
        let n = 10_000;
        let alpha = 2.5;
        let counts = ideal_power_law_counts(n, alpha);
        let c = pl_stats::zeta::paper_c(alpha);
        assert_eq!(counts[0].0, 1);
        assert_eq!(counts[0].1, (c * n as f64).floor() as usize);
        // Counts non-increasing in k.
        for w in counts.windows(2) {
            assert!(w[0].1 >= w[1].1);
            assert_eq!(w[0].0 + 1, w[1].0);
        }
        // Last degree class is where the floor first hits zero.
        let last_k = counts.last().unwrap().0;
        assert!((c * n as f64 / ((last_k + 1) as f64).powf(alpha)).floor() as usize == 0);
    }

    #[test]
    fn expand_counts_flattens() {
        let seq = expand_counts(&[(1, 3), (2, 1)]);
        // Sum 3*1 + 2 = 5 is odd: first entry bumped to 2.
        assert_eq!(seq, vec![2, 1, 1, 2]);
    }

    #[test]
    fn graphical_known_cases() {
        assert!(is_graphical(&[]));
        assert!(is_graphical(&[0, 0]));
        assert!(is_graphical(&[1, 1]));
        assert!(is_graphical(&[3, 3, 3, 3])); // K4
        assert!(!is_graphical(&[4, 1, 1, 1])); // star needs deg-4 center with 4 leaves
        assert!(is_graphical(&[4, 1, 1, 1, 1]));
        assert!(!is_graphical(&[2, 0, 0]));
        assert!(!is_graphical(&[5, 5, 4, 3, 2, 1])); // classic EG failure
    }

    #[test]
    fn sampled_power_law_usually_graphical() {
        let mut r = rng();
        let seq = power_law_degrees(2000, 2.5, 1, 80, &mut r);
        assert!(is_graphical(&seq));
    }
}
