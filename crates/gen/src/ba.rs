//! The Barabási–Albert preferential-attachment model.
//!
//! Section 6 of the paper singles out the BA model: its graphs have bounded
//! arboricity, so they admit an `O(m log n)` labeling, and an encoder that
//! "operates at the same time as the creation of the graph" achieves
//! `m·log n` by storing, at each new vertex, the identifiers of the `m`
//! vertices it attached to. [`BaGraph::history`] records exactly that
//! information for the online scheme.

use pl_graph::{Graph, GraphBuilder, VertexId};
use rand::Rng;

/// A Barabási–Albert graph together with its attachment history.
#[derive(Debug, Clone)]
pub struct BaGraph {
    /// The generated graph.
    pub graph: Graph,
    /// `history[v]` lists the vertices `v` attached to when it was inserted;
    /// empty for the `m₀` seed vertices.
    pub history: Vec<Vec<VertexId>>,
    /// The attachment parameter `m`.
    pub m: usize,
    /// Number of seed vertices the growth started from.
    pub seed_size: usize,
}

/// Generates an `n`-vertex BA graph with attachment parameter `m`.
///
/// Growth starts from a seed clique of `m` vertices (ids `0..m`); each
/// subsequent vertex attaches to `m` distinct existing vertices chosen by
/// preferential attachment (probability proportional to current degree),
/// implemented with the standard repeated-endpoints trick in `O(n·m)`.
///
/// # Panics
///
/// Panics unless `1 <= m < n`.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let ba = pl_gen::barabasi_albert(500, 3, &mut rng);
/// assert_eq!(ba.graph.vertex_count(), 500);
/// // Every non-seed vertex attached to exactly m = 3 distinct targets.
/// for v in 3..500u32 {
///     assert_eq!(ba.history[v as usize].len(), 3);
/// }
/// ```
#[must_use]
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> BaGraph {
    assert!(m >= 1 && m < n, "need 1 <= m < n (m = {m}, n = {n})");
    let mut b = GraphBuilder::with_edge_capacity(n, m * n);
    let mut history: Vec<Vec<VertexId>> = vec![Vec::new(); n];

    // Seed: a clique on vertices 0..m so every seed vertex has positive
    // degree (required for preferential attachment to be well-defined).
    // For m = 1 the seed is the single vertex 0, attached to by vertex 1.
    let seed_size = m.max(2).min(n);
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * m * n);
    for u in 0..seed_size as VertexId {
        for v in (u + 1)..seed_size as VertexId {
            b.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }

    let mut targets: Vec<VertexId> = Vec::with_capacity(m);
    #[allow(clippy::needless_range_loop)] // v is a vertex id, not just an index
    for v in seed_size..n {
        targets.clear();
        // Draw m distinct targets; each draw is degree-proportional.
        while targets.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            b.add_edge(v as VertexId, t);
            endpoints.push(v as VertexId);
            endpoints.push(t);
        }
        history[v] = targets.clone();
        history[v].sort_unstable();
    }

    BaGraph {
        graph: b.build(),
        history,
        m,
        seed_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(31)
    }

    #[test]
    fn edge_count_formula() {
        let ba = barabasi_albert(200, 3, &mut rng());
        // Seed clique C(3,2) = 3 edges + 197 * 3 attachments, all distinct.
        assert_eq!(ba.graph.edge_count(), 3 + 197 * 3);
    }

    #[test]
    fn m_equals_one_gives_tree() {
        let ba = barabasi_albert(100, 1, &mut rng());
        // Seed is an edge (2 vertices), then 98 single attachments: a tree.
        assert_eq!(ba.graph.edge_count(), 99);
        assert!(pl_graph::components::is_connected(&ba.graph));
    }

    #[test]
    fn history_matches_graph_edges() {
        let ba = barabasi_albert(300, 4, &mut rng());
        for v in ba.seed_size..300 {
            for &t in &ba.history[v] {
                assert!(ba.graph.has_edge(v as u32, t));
                assert!((t as usize) < v, "target {t} not older than {v}");
            }
        }
    }

    #[test]
    fn history_targets_distinct() {
        let ba = barabasi_albert(300, 5, &mut rng());
        for v in ba.seed_size..300 {
            let h = &ba.history[v];
            let mut sorted = h.clone();
            sorted.dedup();
            assert_eq!(sorted.len(), h.len());
        }
    }

    #[test]
    fn rich_get_richer() {
        let ba = barabasi_albert(5000, 2, &mut rng());
        // Early vertices should dominate the top of the degree ranking.
        let hubs = pl_graph::degree::vertices_by_degree_desc(&ba.graph);
        let top10: Vec<u32> = hubs[..10].to_vec();
        let early = top10.iter().filter(|&&v| v < 100).count();
        assert!(
            early >= 5,
            "only {early} of the top-10 hubs are early vertices"
        );
    }

    #[test]
    fn min_degree_is_m() {
        let ba = barabasi_albert(1000, 3, &mut rng());
        for v in ba.graph.vertices() {
            assert!(ba.graph.degree(v) >= 3);
        }
    }

    #[test]
    #[should_panic(expected = "1 <= m < n")]
    fn rejects_m_zero() {
        let _ = barabasi_albert(10, 0, &mut rng());
    }

    #[test]
    #[should_panic(expected = "1 <= m < n")]
    fn rejects_m_ge_n() {
        let _ = barabasi_albert(5, 5, &mut rng());
    }
}
