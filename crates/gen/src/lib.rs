//! Graph generators for the power-law labeling reproduction.
//!
//! The paper's upper bounds are evaluated on graphs whose degree
//! distribution approximately follows a power law; its lower bound is a
//! constructive embedding into the rigid family `P_l` of Definition 2. This
//! crate builds all of the required graph sources from scratch:
//!
//! * [`degree_sequence`] — power-law (zipf) degree-sequence samplers and the
//!   deterministic "ideal" counts `⌊C·n/k^α⌋`.
//! * [`configuration`] — the erased configuration model realizing a given
//!   degree sequence.
//! * [`mod@chung_lu`] — the Chung–Lu expected-degree model (reference \[23\] of
//!   the paper), with the near-linear skipping sampler.
//! * [`ba`] — the Barabási–Albert preferential-attachment model, recording
//!   the attachment history that the paper's online `m·log n` scheme
//!   (Proposition 5) consumes.
//! * [`er`] — Erdős–Rényi `G(n,m)` and `G(n,p)` baselines.
//! * [`waxman`] — Waxman's geometric random graphs (Section 6 mentions them
//!   as a model *without* an obvious small labeling).
//! * [`pl_family`] — the paper's own machinery: the constants `C`, `i₁`,
//!   `C'` of Section 3, membership checkers for Definitions 1 and 2, and
//!   the three-phase Section-5 construction embedding an arbitrary graph
//!   `H` into a member of `P_l`.
//! * [`profiles`] — synthetic stand-ins for the real-world datasets of the
//!   paper's full-version evaluation (see DESIGN.md §4 for the
//!   substitution rationale).
//! * [`classic`] — paths, cycles, cliques, stars for tests and calibration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ba;
pub mod chung_lu;
pub mod classic;
pub mod configuration;
pub mod degree_sequence;
pub mod er;
pub mod hierarchical;
pub mod pl_family;
pub mod profiles;
pub mod waxman;

pub use ba::{barabasi_albert, BaGraph};
pub use chung_lu::{chung_lu, chung_lu_power_law};
pub use configuration::configuration_model;
pub use pl_family::{embed_in_p_l, is_in_p_h, is_in_p_l, PaperConstants};
