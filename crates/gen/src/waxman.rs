//! Waxman geometric random graphs.
//!
//! Section 6 of the paper contrasts the BA model with "other generative
//! models such as Waxman's \[53\]" that "do not seem to have an obvious
//! smaller label size". This generator lets the experiments exhibit that
//! contrast: vertices are random points in the unit square and each pair is
//! an edge with probability `β · exp(−dist / (α_w · L))` where `L = √2` is
//! the diameter of the square.
//!
//! Pair enumeration is `Θ(n²)`; intended for the `n ≤ ~20k` sizes the
//! comparison experiments use.

use pl_graph::{Graph, GraphBuilder, VertexId};
use rand::Rng;

/// Samples a Waxman graph with edge probability
/// `β · exp(−d(u,v) / (α_w · √2))` over uniform points in the unit square.
///
/// # Panics
///
/// Panics unless `0 < β ≤ 1` and `α_w > 0`.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(6);
/// let g = pl_gen::waxman::waxman(300, 0.4, 0.1, &mut rng);
/// assert_eq!(g.vertex_count(), 300);
/// assert!(g.edge_count() > 0);
/// ```
#[must_use]
pub fn waxman<R: Rng + ?Sized>(n: usize, beta: f64, alpha_w: f64, rng: &mut R) -> Graph {
    assert!(
        beta > 0.0 && beta <= 1.0,
        "beta must be in (0, 1], got {beta}"
    );
    assert!(alpha_w > 0.0, "alpha_w must be positive, got {alpha_w}");
    let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
    let scale = alpha_w * std::f64::consts::SQRT_2;
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in u + 1..n {
            let dx = pts[u].0 - pts[v].0;
            let dy = pts[u].1 - pts[v].1;
            let d = (dx * dx + dy * dy).sqrt();
            let p = beta * (-d / scale).exp();
            if rng.gen::<f64>() < p {
                b.add_edge(u as VertexId, v as VertexId);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(123)
    }

    #[test]
    fn tiny_inputs() {
        assert_eq!(waxman(0, 0.5, 0.2, &mut rng()).vertex_count(), 0);
        assert_eq!(waxman(1, 0.5, 0.2, &mut rng()).edge_count(), 0);
    }

    #[test]
    fn edge_probability_scales_with_beta() {
        let lo = waxman(400, 0.05, 0.3, &mut rng()).edge_count();
        let hi = waxman(400, 0.8, 0.3, &mut rng()).edge_count();
        assert!(hi > 4 * lo, "hi {hi} lo {lo}");
    }

    #[test]
    fn short_range_parameter_limits_long_edges() {
        // With small alpha_w, nearly all edges connect nearby points, which
        // a crude proxy sees as a lower edge count at fixed beta.
        let local = waxman(500, 0.9, 0.02, &mut rng()).edge_count();
        let global = waxman(500, 0.9, 10.0, &mut rng()).edge_count();
        assert!(global > 5 * local, "global {global} local {local}");
    }

    #[test]
    fn degree_distribution_is_homogeneous_not_power_law() {
        let g = waxman(2000, 0.3, 0.08, &mut rng());
        let avg = g.degree_sum() as f64 / 2000.0;
        let max = g.max_degree() as f64;
        // A power-law graph of this size would have a hub way above 4× avg.
        assert!(max < 4.0 * avg.max(1.0), "max {max} avg {avg}");
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn rejects_bad_beta() {
        let _ = waxman(10, 0.0, 0.1, &mut rng());
    }

    #[test]
    #[should_panic(expected = "alpha_w")]
    fn rejects_bad_alpha() {
        let _ = waxman(10, 0.5, 0.0, &mut rng());
    }
}
