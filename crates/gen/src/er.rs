//! Erdős–Rényi random graphs.

use pl_graph::{Graph, GraphBuilder, VertexId};
use rand::Rng;

/// Uniform `G(n, m)`: exactly `m` distinct edges chosen uniformly among all
/// pairs, by rejection sampling (fine for the sparse regime used here).
///
/// # Panics
///
/// Panics if `m` exceeds `n·(n−1)/2`.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(4);
/// let g = pl_gen::er::gnm(100, 250, &mut rng);
/// assert_eq!(g.vertex_count(), 100);
/// assert_eq!(g.edge_count(), 250);
/// ```
#[must_use]
pub fn gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    let max = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        m <= max,
        "G(n,m) with n={n} admits at most {max} edges, asked {m}"
    );
    let mut set = std::collections::HashSet::with_capacity(m * 2);
    let mut b = GraphBuilder::with_edge_capacity(n, m);
    while set.len() < m {
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if set.insert(key) {
            b.add_edge(key.0, key.1);
        }
    }
    b.build()
}

/// `G(n, p)`: each pair independently an edge with probability `p`, sampled
/// in expected `O(n + m)` by geometric skipping over the pair ordering.
#[must_use]
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    let mut b = GraphBuilder::new(n);
    if p == 0.0 || n < 2 {
        return b.build();
    }
    if p == 1.0 {
        for u in 0..n as VertexId {
            for v in u + 1..n as VertexId {
                b.add_edge(u, v);
            }
        }
        return b.build();
    }
    // Enumerate pairs (u, v), u < v, as a flat index and skip geometrically.
    let log1p = (1.0 - p).ln();
    let mut u = 0usize;
    let mut v = 0usize; // interpreted as "current column", advanced before use
    loop {
        let r: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let skip = (r.ln() / log1p).floor() as usize + 1;
        v += skip;
        while v >= n {
            u += 1;
            if u >= n - 1 {
                return b.build();
            }
            v = u + 1 + (v - n);
        }
        if v > u {
            b.add_edge(u as VertexId, v as VertexId);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    #[test]
    fn gnm_exact_edges() {
        let g = gnm(50, 100, &mut rng());
        assert_eq!(g.edge_count(), 100);
    }

    #[test]
    fn gnm_zero_edges() {
        let g = gnm(10, 0, &mut rng());
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn gnm_complete() {
        let g = gnm(6, 15, &mut rng());
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn gnm_too_many_edges() {
        let _ = gnm(4, 7, &mut rng());
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(20, 0.0, &mut rng()).edge_count(), 0);
        assert_eq!(gnp(7, 1.0, &mut rng()).edge_count(), 21);
    }

    #[test]
    fn gnp_edge_count_concentrates() {
        let n = 400usize;
        let p = 0.05;
        let g = gnp(n, p, &mut rng());
        let expect = p * (n * (n - 1) / 2) as f64;
        let got = g.edge_count() as f64;
        assert!(
            (got - expect).abs() < 0.12 * expect,
            "edges {got} vs expected {expect}"
        );
    }

    #[test]
    fn gnp_no_self_loops_or_out_of_range() {
        let g = gnp(50, 0.3, &mut rng());
        for (u, v) in g.edges() {
            assert!(u < v && (v as usize) < 50);
        }
    }

    #[test]
    fn gnp_degrees_roughly_homogeneous() {
        let g = gnp(2000, 0.01, &mut rng());
        let max = g.max_degree() as f64;
        let avg = g.degree_sum() as f64 / 2000.0;
        assert!(max < avg * 3.0, "max {max} vs avg {avg}");
    }
}
