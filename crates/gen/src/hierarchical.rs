//! Two-level hierarchical (transit–stub style) topologies.
//!
//! Section 6 of the paper lists Calvert–Doar–Zegura's N-level hierarchical
//! model among the generators that "do not seem to have an obvious smaller
//! label size" than the general sparse bound. This module implements the
//! classic two-level instance: a *transit* core of domains wired as an
//! Erdős–Rényi graph, each domain expanded into a *stub* Erdős–Rényi
//! subgraph, with one gateway vertex per inter-domain edge endpoint. The
//! result is sparse but neither power-law (degrees are homogeneous) nor of
//! bounded degeneracy in any structured way — the experiment E11 uses it
//! as a contrast class.

use pl_graph::{Graph, GraphBuilder, VertexId};
use rand::Rng;

/// Parameters for [`hierarchical`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchicalParams {
    /// Number of top-level domains.
    pub domains: usize,
    /// Vertices per domain.
    pub domain_size: usize,
    /// Edge probability inside a domain.
    pub p_intra: f64,
    /// Edge probability between a pair of domains (realized as a single
    /// gateway–gateway edge).
    pub p_inter: f64,
}

impl Default for HierarchicalParams {
    fn default() -> Self {
        Self {
            domains: 20,
            domain_size: 50,
            p_intra: 0.1,
            p_inter: 0.3,
        }
    }
}

/// Generates a two-level hierarchical graph with `domains × domain_size`
/// vertices (domain `d` owns ids `d·domain_size .. (d+1)·domain_size`).
///
/// # Panics
///
/// Panics if either probability is outside `[0, 1]` or a level is empty.
#[must_use]
pub fn hierarchical<R: Rng + ?Sized>(params: HierarchicalParams, rng: &mut R) -> Graph {
    let HierarchicalParams {
        domains,
        domain_size,
        p_intra,
        p_inter,
    } = params;
    assert!(domains > 0 && domain_size > 0, "levels must be non-empty");
    assert!((0.0..=1.0).contains(&p_intra), "p_intra out of range");
    assert!((0.0..=1.0).contains(&p_inter), "p_inter out of range");

    let n = domains * domain_size;
    let mut b = GraphBuilder::new(n);
    // Stub level: ER inside each domain.
    for d in 0..domains {
        let base = (d * domain_size) as VertexId;
        for i in 0..domain_size as VertexId {
            for j in i + 1..domain_size as VertexId {
                if rng.gen::<f64>() < p_intra {
                    b.add_edge(base + i, base + j);
                }
            }
        }
    }
    // Transit level: one gateway pair per selected domain pair.
    for d1 in 0..domains {
        for d2 in d1 + 1..domains {
            if rng.gen::<f64>() < p_inter {
                let g1 = (d1 * domain_size) as VertexId + rng.gen_range(0..domain_size) as VertexId;
                let g2 = (d2 * domain_size) as VertexId + rng.gen_range(0..domain_size) as VertexId;
                b.add_edge(g1, g2);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x41E7)
    }

    #[test]
    fn vertex_count_and_id_layout() {
        let g = hierarchical(
            HierarchicalParams {
                domains: 4,
                domain_size: 10,
                p_intra: 1.0,
                p_inter: 0.0,
            },
            &mut rng(),
        );
        assert_eq!(g.vertex_count(), 40);
        // p_inter = 0: four disjoint 10-cliques.
        let comps = pl_graph::components::connected_components(&g);
        assert_eq!(comps.count(), 4);
        assert_eq!(g.edge_count(), 4 * 45);
    }

    #[test]
    fn inter_domain_edges_connect_everything() {
        let g = hierarchical(
            HierarchicalParams {
                domains: 6,
                domain_size: 20,
                p_intra: 0.4,
                p_inter: 1.0,
            },
            &mut rng(),
        );
        // With p_inter = 1 every domain pair gets a gateway edge; domains
        // themselves are a.a.s. connected at p_intra = 0.4, n = 20.
        assert!(pl_graph::components::is_connected(&g));
    }

    #[test]
    fn degrees_are_homogeneous_not_power_law() {
        let g = hierarchical(
            HierarchicalParams {
                domains: 10,
                domain_size: 60,
                p_intra: 0.15,
                p_inter: 0.5,
            },
            &mut rng(),
        );
        let avg = g.degree_sum() as f64 / g.vertex_count() as f64;
        assert!(
            (g.max_degree() as f64) < 4.0 * avg,
            "max {} avg {avg}",
            g.max_degree()
        );
    }

    #[test]
    fn default_params_sane() {
        let g = hierarchical(HierarchicalParams::default(), &mut rng());
        assert_eq!(g.vertex_count(), 1000);
        assert!(g.edge_count() > 500);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_levels() {
        let _ = hierarchical(
            HierarchicalParams {
                domains: 0,
                domain_size: 5,
                p_intra: 0.5,
                p_inter: 0.5,
            },
            &mut rng(),
        );
    }
}
