//! The erased configuration model.

use pl_graph::{Graph, GraphBuilder, VertexId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Realizes a degree sequence with the *erased* configuration model:
/// create `deg(v)` stubs per vertex, shuffle, pair consecutive stubs, and
/// drop the self-loops and parallel edges that arise.
///
/// The realized degrees are therefore at most the requested ones; for
/// power-law sequences with `α > 2` the expected erasure is a vanishing
/// fraction of edges, preserving the degree-distribution shape (which is
/// all the labeling experiments need).
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let g = pl_gen::configuration_model(&[3, 3, 2, 2, 1, 1], &mut rng);
/// assert_eq!(g.vertex_count(), 6);
/// assert!(g.edge_count() <= 6);
/// ```
#[must_use]
pub fn configuration_model<R: Rng + ?Sized>(degrees: &[usize], rng: &mut R) -> Graph {
    let n = degrees.len();
    let total: usize = degrees.iter().sum();
    assert!(
        total.is_multiple_of(2),
        "degree sum must be even, got {total}"
    );
    let mut stubs: Vec<VertexId> = Vec::with_capacity(total);
    for (v, &d) in degrees.iter().enumerate() {
        stubs.extend(std::iter::repeat_n(v as VertexId, d));
    }
    stubs.shuffle(rng);
    let mut b = GraphBuilder::with_edge_capacity(n, total / 2);
    for pair in stubs.chunks_exact(2) {
        // Self-loops rejected by the builder; parallels deduplicated at build.
        b.add_edge(pair[0], pair[1]);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn zero_degrees_gives_empty_graph() {
        let g = configuration_model(&[0, 0, 0], &mut rng());
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_sum_rejected() {
        let _ = configuration_model(&[1, 1, 1], &mut rng());
    }

    #[test]
    fn degrees_never_exceed_requested() {
        let degrees = [5usize, 4, 3, 3, 2, 2, 2, 1, 1, 1];
        let mut r = rng();
        for _ in 0..20 {
            let g = configuration_model(&degrees, &mut r);
            for (v, &d) in degrees.iter().enumerate() {
                assert!(g.degree(v as u32) <= d);
            }
        }
    }

    #[test]
    fn large_sequence_loses_few_edges() {
        let mut r = rng();
        let degrees = crate::degree_sequence::power_law_degrees(20_000, 2.5, 1, 100, &mut r);
        let g = configuration_model(&degrees, &mut r);
        let requested: usize = degrees.iter().sum::<usize>() / 2;
        let lost = requested - g.edge_count();
        assert!(
            (lost as f64) < 0.02 * requested as f64,
            "lost {lost} of {requested} edges"
        );
    }

    #[test]
    fn matching_realizes_exactly_for_two_vertices() {
        let g = configuration_model(&[1, 1], &mut rng());
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(0, 1));
    }
}
