//! Property-based tests for the generators, most importantly that the
//! Section-5 construction always lands in `P_l` with `H` induced.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn p_l_embedding_always_valid(
        n in 500usize..6_000,
        alpha_ticks in 0usize..4,
        seed in any::<u64>(),
    ) {
        let alpha = [2.1, 2.5, 2.8, 3.2][alpha_ticks];
        let mut rng = StdRng::seed_from_u64(seed);
        let k = pl_gen::PaperConstants::new(n, alpha);
        let h = pl_gen::er::gnp(k.i1, 0.5, &mut rng);
        let emb = pl_gen::embed_in_p_l(&h, n, alpha, &mut rng);

        // Membership in P_l (Definition 2, all four clauses).
        if let Err(v) = pl_gen::is_in_p_l(&emb.graph, alpha) {
            prop_assert!(false, "n={} alpha={}: {}", n, alpha, v);
        }
        // H appears induced on the host vertices.
        let sub = pl_graph::view::induced_subgraph(&emb.graph, &emb.host);
        prop_assert_eq!(sub.graph, h);
        // Proposition 3: also in P_h with the paper constant.
        prop_assert!(pl_gen::is_in_p_h(&emb.graph, alpha, 1, k.c_prime));
    }

    #[test]
    fn configuration_model_respects_degrees(
        n in 4usize..200,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let degrees = pl_gen::degree_sequence::power_law_degrees(n, 2.5, 1, 20, &mut rng);
        let g = pl_gen::configuration_model(&degrees, &mut rng);
        prop_assert_eq!(g.vertex_count(), n);
        for (v, &d) in degrees.iter().enumerate() {
            prop_assert!(g.degree(v as u32) <= d);
        }
    }

    #[test]
    fn ba_history_is_exactly_the_edge_set(
        n in 10usize..300,
        m in 1usize..6,
        seed in any::<u64>(),
    ) {
        prop_assume!(m < n);
        let mut rng = StdRng::seed_from_u64(seed);
        let ba = pl_gen::barabasi_albert(n, m, &mut rng);
        // Every history entry is an edge to an older vertex…
        let mut from_history = 0usize;
        for v in ba.seed_size..n {
            prop_assert_eq!(ba.history[v].len(), m);
            for &t in &ba.history[v] {
                prop_assert!((t as usize) < v);
                prop_assert!(ba.graph.has_edge(v as u32, t));
            }
            from_history += m;
        }
        // …and together with the seed clique they cover every edge.
        let seed_edges = ba.seed_size * (ba.seed_size - 1) / 2;
        prop_assert_eq!(ba.graph.edge_count(), seed_edges + from_history);
    }

    #[test]
    fn gnm_has_exact_count(n in 5usize..100, seed in any::<u64>()) {
        let max = n * (n - 1) / 2;
        let m = max / 3;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = pl_gen::er::gnm(n, m, &mut rng);
        prop_assert_eq!(g.edge_count(), m);
    }

    #[test]
    fn zipf_sampler_in_range(
        alpha_ticks in 0usize..3,
        lo in 1u64..5,
        span in 1u64..50,
        seed in any::<u64>(),
    ) {
        let alpha = [1.5, 2.5, 3.5][alpha_ticks];
        let s = pl_gen::degree_sequence::ZipfSampler::new(alpha, lo, lo + span);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let x = s.sample(&mut rng);
            prop_assert!(x >= lo && x <= lo + span);
        }
    }

    #[test]
    fn chung_lu_graph_is_simple(n in 10usize..300, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = pl_gen::chung_lu_power_law(n, 2.5, 3.0, &mut rng);
        // No self-loops by construction; check edge list sanity.
        for (u, v) in g.edges() {
            prop_assert!(u < v);
            prop_assert!((v as usize) < n);
        }
    }
}
