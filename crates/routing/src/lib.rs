//! Landmark-tree compact routing for power-law graphs.
//!
//! The paper's introduction motivates labeling schemes with internet
//! routing, and its related work cites Brady and Cowen's compact routing
//! on power-law graphs with additive stretch (reference \[17\]). This crate
//! implements that family of schemes in its simplest robust form, reusing
//! the paper's own *fat vertex* idea for the landmark set:
//!
//! 1. pick the `k` highest-degree vertices as **landmarks** (power-law
//!    graphs concentrate shortest paths through their hubs);
//! 2. grow one BFS tree per landmark spanning its component;
//! 3. give every vertex a DFS **interval address** in the tree of its
//!    *home* landmark (the nearest one);
//! 4. to route to `w`, a packet is forwarded inside `w`'s home tree using
//!    only interval containment — a purely local decision.
//!
//! The routed path between `u` and `w` is the tree path in `w`'s home
//! tree, so its length is at most `d(u, ℓ) + d(ℓ, w)` for `w`'s landmark
//! `ℓ` (both tree branches are shortest paths, the trees being BFS trees).
//! On power-law graphs, where a shortest path through a hub is nearly
//! optimal, the measured stretch stays close to 1 — experiment E13
//! quantifies it. Addresses are `O(log n)` bits ([`Address::bits`]); the
//! per-vertex routing state is `O(k + deg)` words.
//!
//! ```
//! use pl_routing::RoutedNetwork;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let g = pl_gen::chung_lu_power_law(2000, 2.5, 6.0, &mut rng);
//! let giant = pl_graph::view::largest_component(&g);
//! let net = RoutedNetwork::build(&giant.graph, 16);
//!
//! let (u, w) = (0u32, (giant.graph.vertex_count() - 1) as u32);
//! let path = net.route(u, w).expect("connected");
//! assert_eq!(path.first(), Some(&u));
//! assert_eq!(path.last(), Some(&w));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pl_graph::degree::vertices_by_degree_desc;
use pl_graph::{Graph, VertexId, UNREACHABLE};
use std::collections::VecDeque;

/// A routable address: the destination's home tree and its DFS interval
/// within it. This is the only information a packet header carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Address {
    /// Index of the destination's home landmark tree.
    pub tree: u32,
    /// DFS preorder number in that tree.
    pub pre: u32,
    /// End (exclusive) of the destination's DFS interval.
    pub post: u32,
}

impl Address {
    /// Header size in bits: tree id plus two interval endpoints, at the
    /// natural widths for `k` landmarks and `n` vertices.
    #[must_use]
    pub fn bits(k: usize, n: usize) -> usize {
        let w = |x: usize| (usize::BITS - x.saturating_sub(1).leading_zeros()).max(1) as usize;
        w(k) + 2 * w(n)
    }
}

/// One landmark's BFS tree with DFS interval labels.
#[derive(Debug, Clone)]
struct Tree {
    /// Parent of each vertex (`None` for the root or unreachable vertices).
    parent: Vec<Option<VertexId>>,
    /// DFS preorder number, `u32::MAX` if the vertex is not in this tree.
    pre: Vec<u32>,
    /// Exclusive end of the DFS interval.
    post: Vec<u32>,
    /// Children in DFS order (CSR layout), sorted by `pre`.
    child_offsets: Vec<usize>,
    children: Vec<VertexId>,
    /// BFS depth (root = 0), `u32::MAX` if unreachable.
    depth: Vec<u32>,
}

impl Tree {
    fn contains(&self, v: VertexId) -> bool {
        self.pre[v as usize] != u32::MAX
    }

    fn children_of(&self, v: VertexId) -> &[VertexId] {
        &self.children[self.child_offsets[v as usize]..self.child_offsets[v as usize + 1]]
    }

    /// Builds the BFS tree rooted at `root`, then assigns DFS intervals.
    fn build(g: &Graph, root: VertexId) -> Self {
        let n = g.vertex_count();
        let mut parent = vec![None; n];
        let mut depth = vec![UNREACHABLE; n];
        let mut order = Vec::with_capacity(n);
        let mut queue = VecDeque::new();
        depth[root as usize] = 0;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in g.neighbors(u) {
                if depth[v as usize] == UNREACHABLE {
                    depth[v as usize] = depth[u as usize] + 1;
                    parent[v as usize] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        // Children lists in CSR form.
        let mut counts = vec![0usize; n];
        for &v in &order {
            if let Some(p) = parent[v as usize] {
                counts[p as usize] += 1;
            }
        }
        let mut child_offsets = vec![0usize; n + 1];
        for i in 0..n {
            child_offsets[i + 1] = child_offsets[i] + counts[i];
        }
        let mut cursor = child_offsets[..n].to_vec();
        let mut children = vec![0 as VertexId; order.len().saturating_sub(1)];
        for &v in &order {
            if let Some(p) = parent[v as usize] {
                children[cursor[p as usize]] = v;
                cursor[p as usize] += 1;
            }
        }
        // Iterative DFS for intervals; children get consecutive subranges.
        let mut pre = vec![u32::MAX; n];
        let mut post = vec![u32::MAX; n];
        let mut counter = 0u32;
        let mut stack = vec![(root, false)];
        while let Some((v, expanded)) = stack.pop() {
            if expanded {
                post[v as usize] = counter;
                continue;
            }
            pre[v as usize] = counter;
            counter += 1;
            stack.push((v, true));
            let lo = child_offsets[v as usize];
            let hi = child_offsets[v as usize + 1];
            for i in (lo..hi).rev() {
                stack.push((children[i], false));
            }
        }
        // Children were produced in BFS order; re-sort each list by pre so
        // next-hop binary search works.
        let mut t = Self {
            parent,
            pre,
            post,
            child_offsets,
            children,
            depth,
        };
        for v in 0..n {
            let lo = t.child_offsets[v];
            let hi = t.child_offsets[v + 1];
            let pre_ref = &t.pre;
            t.children[lo..hi].sort_by_key(|&c| pre_ref[c as usize]);
        }
        t
    }
}

/// A network prepared for landmark-tree routing.
#[derive(Debug, Clone)]
pub struct RoutedNetwork {
    trees: Vec<Tree>,
    addresses: Vec<Address>,
    landmarks: Vec<VertexId>,
    n: usize,
}

impl RoutedNetwork {
    /// Prepares routing state with a budget of `k` landmarks: the `k`
    /// highest-degree vertices (the paper's fat vertices). Every connected
    /// component additionally gets its own highest-degree vertex as a
    /// landmark if the budget missed it, so delivery is guaranteed between
    /// *all* connected pairs.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty or `k == 0`.
    #[must_use]
    pub fn build(g: &Graph, k: usize) -> Self {
        assert!(k >= 1, "need at least one landmark");
        assert!(!g.is_empty(), "cannot route in an empty graph");
        let by_degree = vertices_by_degree_desc(g);
        let mut landmarks: Vec<VertexId> = by_degree.iter().copied().take(k).collect();
        // Cover components the degree-ranked budget missed (their local
        // hub becomes a landmark). `by_degree` is degree-sorted, so the
        // first vertex seen per component is that component's hub.
        let comps = pl_graph::components::connected_components(g);
        let mut covered = vec![false; comps.count()];
        for &l in &landmarks {
            covered[comps.component_of(l) as usize] = true;
        }
        for &v in &by_degree {
            let c = comps.component_of(v) as usize;
            if !covered[c] {
                covered[c] = true;
                landmarks.push(v);
            }
        }
        let trees: Vec<Tree> = landmarks.iter().map(|&l| Tree::build(g, l)).collect();

        // Home landmark of v = the nearest landmark (ties: lowest index).
        let n = g.vertex_count();
        let mut addresses = Vec::with_capacity(n);
        for v in 0..n as VertexId {
            let mut best: Option<(u32, usize)> = None;
            for (t, tree) in trees.iter().enumerate() {
                let d = tree.depth[v as usize];
                if d != UNREACHABLE && best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, t));
                }
            }
            let addr = match best {
                Some((_, t)) => Address {
                    tree: t as u32,
                    pre: trees[t].pre[v as usize],
                    post: trees[t].post[v as usize],
                },
                // Unreachable from every landmark: self-only address.
                None => Address {
                    tree: u32::MAX,
                    pre: v,
                    post: v,
                },
            };
            addresses.push(addr);
        }
        Self {
            trees,
            addresses,
            landmarks,
            n,
        }
    }

    /// The routable address of `v` — what `v` would publish.
    #[must_use]
    pub fn address(&self, v: VertexId) -> Address {
        self.addresses[v as usize]
    }

    /// The chosen landmark vertices, in tree-index order.
    #[must_use]
    pub fn landmarks(&self) -> &[VertexId] {
        &self.landmarks
    }

    /// Header size in bits for this network's addresses.
    #[must_use]
    pub fn address_bits(&self) -> usize {
        Address::bits(self.trees.len(), self.n)
    }

    /// The local forwarding decision at `cur` for a packet addressed to
    /// `dest`: the next hop, or `None` if `cur` already matches `dest` or
    /// cannot make progress (different component).
    #[must_use]
    pub fn next_hop(&self, cur: VertexId, dest: &Address) -> Option<VertexId> {
        if dest.tree == u32::MAX {
            return None; // self-only address
        }
        let tree = &self.trees[dest.tree as usize];
        if !tree.contains(cur) {
            return None;
        }
        let (cpre, cpost) = (tree.pre[cur as usize], tree.post[cur as usize]);
        if dest.pre == cpre {
            return None; // delivered
        }
        if dest.pre > cpre && dest.pre < cpost {
            // Descend to the child whose interval contains dest.pre.
            let kids = tree.children_of(cur);
            let idx = kids.partition_point(|&c| tree.pre[c as usize] <= dest.pre);
            debug_assert!(idx > 0, "containment implies a covering child");
            return Some(kids[idx - 1]);
        }
        tree.parent[cur as usize]
    }

    /// Simulates routing a packet from `u` to `v`; returns the full path
    /// (both endpoints included) or `None` if undeliverable.
    #[must_use]
    pub fn route(&self, u: VertexId, v: VertexId) -> Option<Vec<VertexId>> {
        let dest = self.address(v);
        if u == v {
            return Some(vec![u]);
        }
        let mut path = vec![u];
        let mut cur = u;
        // A tree path never revisits a vertex; 2n hops is a safe fuse.
        for _ in 0..2 * self.n {
            match self.next_hop(cur, &dest) {
                Some(next) => {
                    path.push(next);
                    cur = next;
                    if cur == v {
                        return Some(path);
                    }
                }
                None => return (cur == v).then_some(path),
            }
        }
        None
    }

    /// Number of hops [`route`](Self::route) would take, or `None`.
    #[must_use]
    pub fn routed_distance(&self, u: VertexId, v: VertexId) -> Option<u32> {
        self.route(u, v).map(|p| (p.len() - 1) as u32)
    }

    /// Total routing-table state across all vertices, in machine words
    /// (parents + children + intervals per tree) — the "compactness" cost.
    #[must_use]
    pub fn table_words(&self) -> usize {
        self.trees
            .iter()
            .map(|t| 4 * self.n + t.children.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_graph::traversal::bfs_distances;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x2077)
    }

    /// Routing must deliver between every connected pair, with path length
    /// at least the true distance.
    fn check_delivery(g: &Graph, net: &RoutedNetwork) {
        for u in g.vertices() {
            let truth = bfs_distances(g, u);
            for v in g.vertices() {
                let routed = net.routed_distance(u, v);
                if truth[v as usize] == UNREACHABLE {
                    if u != v {
                        assert_eq!(routed, None, "({u}, {v}) should be unroutable");
                    }
                } else {
                    let r = routed.unwrap_or_else(|| panic!("({u}, {v}) undelivered"));
                    assert!(
                        r >= truth[v as usize],
                        "({u}, {v}): routed {r} < true {}",
                        truth[v as usize]
                    );
                }
            }
        }
    }

    #[test]
    fn delivers_on_classic_graphs() {
        for g in [
            pl_gen::classic::path(12),
            pl_gen::classic::cycle(9),
            pl_gen::classic::star(14),
            pl_gen::classic::binary_tree(15),
            pl_gen::classic::complete(6),
            pl_gen::classic::grid(4, 5),
        ] {
            for k in [1usize, 2, 4] {
                let net = RoutedNetwork::build(&g, k);
                check_delivery(&g, &net);
            }
        }
    }

    #[test]
    fn tree_routing_is_exact_on_trees() {
        // On a tree the routed path IS the unique path: stretch 1.
        let g = pl_gen::classic::binary_tree(31);
        let net = RoutedNetwork::build(&g, 3);
        for u in g.vertices() {
            let truth = bfs_distances(&g, u);
            for v in g.vertices() {
                assert_eq!(net.routed_distance(u, v), Some(truth[v as usize]));
            }
        }
    }

    #[test]
    fn handles_disconnected_graphs() {
        let g = pl_graph::builder::from_edges(7, [(0, 1), (1, 2), (4, 5), (5, 6)]);
        let net = RoutedNetwork::build(&g, 2);
        check_delivery(&g, &net);
        // Isolated vertex 3 routes only to itself.
        assert_eq!(net.route(3, 3), Some(vec![3]));
        assert_eq!(net.route(0, 3), None);
    }

    #[test]
    fn stretch_bounded_by_landmark_relay() {
        let mut r = rng();
        let g0 = pl_gen::chung_lu_power_law(1_200, 2.5, 6.0, &mut r);
        let giant = pl_graph::view::largest_component(&g0);
        let g = &giant.graph;
        let net = RoutedNetwork::build(g, 8);
        for _ in 0..300 {
            let u = r.gen_range(0..g.vertex_count() as u32);
            let v = r.gen_range(0..g.vertex_count() as u32);
            let routed = net.routed_distance(u, v).expect("giant component");
            // Bound: d(u, l) + d(l, v) where l = v's home landmark root.
            let dest = net.address(v);
            let l = net.landmarks()[dest.tree as usize];
            let du = bfs_distances(g, u)[l as usize];
            let dv = bfs_distances(g, v)[l as usize];
            assert!(routed <= du + dv, "routed {routed} > {du} + {dv}");
        }
    }

    #[test]
    fn average_stretch_is_small_on_power_law_graphs() {
        let mut r = rng();
        let g0 = pl_gen::chung_lu_power_law(2_000, 2.5, 6.0, &mut r);
        let giant = pl_graph::view::largest_component(&g0);
        let g = &giant.graph;
        let net = RoutedNetwork::build(g, 16);
        let mut total_stretch = 0.0;
        let mut count = 0usize;
        for _ in 0..40 {
            let u = r.gen_range(0..g.vertex_count() as u32);
            let truth = bfs_distances(g, u);
            for _ in 0..20 {
                let v = r.gen_range(0..g.vertex_count() as u32);
                if v == u {
                    continue;
                }
                let routed = net.routed_distance(u, v).unwrap();
                total_stretch += f64::from(routed) / f64::from(truth[v as usize]);
                count += 1;
            }
        }
        let avg = total_stretch / count as f64;
        assert!(avg < 1.6, "average stretch {avg}");
    }

    #[test]
    fn addresses_are_unique_within_components() {
        let mut r = rng();
        let g = pl_gen::er::gnm(300, 900, &mut r);
        let net = RoutedNetwork::build(&g, 5);
        let mut seen = std::collections::HashSet::new();
        for v in g.vertices() {
            let a = net.address(v);
            assert!(seen.insert((a.tree, a.pre)), "duplicate address for {v}");
        }
    }

    #[test]
    fn address_bits_are_logarithmic() {
        assert_eq!(Address::bits(16, 1 << 20), 4 + 40);
        let mut r = rng();
        // Use the giant component so the landmark budget is not inflated
        // by per-component coverage landmarks.
        let g0 = pl_gen::chung_lu_power_law(5_000, 2.5, 5.0, &mut r);
        let g = pl_graph::view::largest_component(&g0).graph;
        let net = RoutedNetwork::build(&g, 32);
        assert_eq!(net.landmarks().len(), 32);
        assert!(net.address_bits() <= 5 + 2 * 13);
        assert!(net.table_words() > 0);
    }

    #[test]
    fn every_component_gets_a_landmark() {
        // Three components, budget 1: coverage adds two more landmarks.
        let g = pl_graph::builder::from_edges(
            9,
            [
                (0, 1),
                (1, 2),
                (2, 0),
                (3, 4),
                (4, 5),
                (6, 7),
                (7, 8),
                (0, 4),
            ],
        );
        // Components: {0,1,2,3,4,5} and {6,7,8}.
        let net = RoutedNetwork::build(&g, 1);
        assert_eq!(net.landmarks().len(), 2);
        assert!(net.routed_distance(6, 8).is_some());
    }

    #[test]
    fn next_hop_is_purely_local_and_loop_free() {
        let g = pl_gen::classic::grid(5, 5);
        let net = RoutedNetwork::build(&g, 2);
        let dest = net.address(24);
        let mut cur = 0u32;
        let mut visited = std::collections::HashSet::new();
        while let Some(next) = net.next_hop(cur, &dest) {
            assert!(visited.insert(cur), "routing loop at {cur}");
            assert!(g.has_edge(cur, next), "non-edge hop {cur} -> {next}");
            cur = next;
        }
        assert_eq!(cur, 24);
    }

    #[test]
    #[should_panic(expected = "at least one landmark")]
    fn rejects_zero_landmarks() {
        let g = pl_gen::classic::path(3);
        let _ = RoutedNetwork::build(&g, 0);
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn rejects_empty_graph() {
        let g = pl_graph::GraphBuilder::new(0).build();
        let _ = RoutedNetwork::build(&g, 1);
    }
}
