//! Property tests: landmark-tree routing must deliver between all
//! connected pairs of arbitrary graphs, never traverse a non-edge, and
//! never beat the true shortest path.

use pl_graph::traversal::bfs_distances;
use pl_graph::{Graph, GraphBuilder, UNREACHABLE};
use pl_routing::RoutedNetwork;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..30).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..90).prop_map(move |edges| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in edges {
                if u != v {
                    b.add_edge(u, v);
                }
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn routing_delivers_exactly_the_connected_pairs(g in arb_graph(), k in 1usize..6) {
        let net = RoutedNetwork::build(&g, k);
        for u in g.vertices() {
            let truth = bfs_distances(&g, u);
            for v in g.vertices() {
                let routed = net.routed_distance(u, v);
                if truth[v as usize] == UNREACHABLE {
                    prop_assert!(u == v || routed.is_none());
                } else {
                    let r = routed.expect("connected pair must deliver");
                    prop_assert!(r >= truth[v as usize], "({}, {})", u, v);
                }
            }
        }
    }

    #[test]
    fn routed_paths_are_real_simple_paths(g in arb_graph(), k in 1usize..6) {
        let net = RoutedNetwork::build(&g, k);
        for u in g.vertices() {
            for v in g.vertices() {
                if let Some(path) = net.route(u, v) {
                    prop_assert_eq!(*path.first().unwrap(), u);
                    prop_assert_eq!(*path.last().unwrap(), v);
                    for w in path.windows(2) {
                        prop_assert!(g.has_edge(w[0], w[1]), "hop {:?} is not an edge", w);
                    }
                    // Tree paths are simple.
                    let mut sorted = path.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    prop_assert_eq!(sorted.len(), path.len(), "path revisits a vertex");
                }
            }
        }
    }

    #[test]
    fn addresses_unique_per_component(g in arb_graph(), k in 1usize..6) {
        let net = RoutedNetwork::build(&g, k);
        let mut seen = std::collections::HashSet::new();
        for v in g.vertices() {
            let a = net.address(v);
            prop_assert!(seen.insert((a.tree, a.pre)));
        }
    }
}
