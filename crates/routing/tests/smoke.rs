//! Crate-level smoke test: the whole `pl-routing` surface exercised the
//! way `examples/compact_routing.rs` drives it, at test-friendly scale.
//!
//! (Historical note: an early roadmap item listed this crate as an
//! empty stub. It has long been a complete implementation with property
//! tests; this smoke test pins the public API end to end so the claim
//! can never silently become true again.)

use pl_graph::traversal::bfs_distances;
use pl_graph::view::largest_component;
use pl_routing::RoutedNetwork;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn routes_are_valid_walks_with_bounded_stretch() {
    let mut rng = StdRng::seed_from_u64(29);
    let g0 = pl_gen::chung_lu_power_law(2_000, 2.2, 5.0, &mut rng);
    let giant = largest_component(&g0);
    let g = &giant.graph;
    let n = g.vertex_count() as u32;
    assert!(n > 500, "giant component unexpectedly small: {n}");

    let k = 16;
    let net = RoutedNetwork::build(g, k);
    assert_eq!(net.landmarks().len(), k);
    assert!(
        net.address_bits() <= 64 + 4 * (32 - n.leading_zeros() as usize),
        "addresses not O(log n): {} bits",
        net.address_bits()
    );

    let mut checked = 0u32;
    for _ in 0..8 {
        let u = rng.gen_range(0..n);
        let truth = bfs_distances(g, u);
        for _ in 0..25 {
            let v = rng.gen_range(0..n);
            if u == v {
                continue;
            }
            let path = net.route(u, v).expect("connected pair must route");
            // A route is a real walk: endpoints right, every hop an edge.
            assert_eq!(path.first(), Some(&u));
            assert_eq!(path.last(), Some(&v));
            for w in path.windows(2) {
                assert!(
                    g.has_edge(w[0], w[1]),
                    "{} -> {} is not an edge",
                    w[0],
                    w[1]
                );
            }
            // Never shorter than the truth; landmark routing keeps the
            // detour within an additive 2·ecc-ish bound — assert a loose
            // multiplicative 5× + 2 envelope to stay seed-robust.
            let routed = net.routed_distance(u, v).expect("connected");
            let true_d = truth[v as usize];
            assert!(routed >= true_d, "routed {routed} beats BFS {true_d}");
            assert!(
                u64::from(routed) <= 5 * u64::from(true_d) + 2,
                "stretch blow-up: routed {routed} vs true {true_d}"
            );
            checked += 1;
        }
    }
    assert!(checked > 100, "too few pairs checked: {checked}");

    // Addresses and next_hop agree with route(): replaying hops lands
    // on the destination.
    let (u, v) = (0u32, n - 1);
    let dest = net.address(v);
    let mut cur = u;
    for _ in 0..n {
        if cur == v {
            break;
        }
        cur = net.next_hop(cur, &dest).expect("giant component");
    }
    assert_eq!(cur, v, "next_hop replay never arrived");
}
