//! The live-rebalance coordinator: epoch `E` → `E+1` without dropping
//! a query.
//!
//! The rollout is a prepare/commit protocol over the v6 `MAP_SET` and
//! `LABELS` opcodes (see RELIABILITY.md §Reconfiguration):
//!
//! 1. **Prepare backends.** Every backend of the *new* map gets the
//!    epoch-bumped map (`MAP_SET PREPARE`). Backends validate it
//!    (checksum, `n`, tag, their own index) and stage it; queries are
//!    untouched.
//! 2. **Prepare the router.** The router stages the new map and opens
//!    the *dual-routing window*: every query now tries the new map's
//!    owners first and falls back to the old owners on `NOT_OWNED`. A
//!    vertex whose labels are still in flight keeps answering from its
//!    old owner; one already migrated answers from its new owner.
//! 3. **Stream labels.** Each vertex whose ownership *moves* (a new
//!    owner address that was not an old owner of it) has its full label
//!    streamed to the gaining backend in `LABELS` chunks. The backend
//!    re-decodes every label and re-encodes it byte-identically before
//!    buffering — a frame that fails verification rejects wholesale.
//! 4. **Commit backends, then router.** Gaining backends commit first
//!    (an extra full label can only make a backend answer *more*, never
//!    wrongly), the router commits last (closing the window and
//!    retiring the old map), and only then do losing backends
//!    **shrink** their no-longer-owned labels down to prelude stubs.
//!
//! Any failure in steps 1–3 rolls the whole cluster back: `ABORT` to
//! the router (closing the window, `plcluster_reconfig_rollbacks_total`
//! increments) and to every prepared backend (dropping staged state).
//! The cluster is left exactly at epoch `E`; the push never observably
//! happened.

use std::collections::HashMap;

use pl_serve::{Client, ClusterMap, MapError, TaggedLabeling};
use pl_wire::protocol::{LabelsStatus, MapSetMode, MapSetStatus, MAP_TARGET_ROUTER};

/// What the rebalance should do to the current map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RebalanceAction {
    /// Append one backend address (scale out).
    Add(String),
    /// Remove the backend at this index of the *current* map (scale
    /// in). The remaining backends must still cover the replication
    /// factor.
    Remove(u32),
    /// Install an explicit next map (same `n`, same tag; the epoch is
    /// bumped past the current one if the file's is not already).
    Map(ClusterMap),
}

/// Coordinator tuning.
#[derive(Debug, Clone)]
pub struct RebalanceOptions {
    /// Soft cap on one `LABELS` frame's payload bytes (the hard cap is
    /// the wire's `MAX_FRAME`).
    pub chunk_bytes: usize,
}

impl Default for RebalanceOptions {
    fn default() -> Self {
        Self {
            chunk_bytes: 256 * 1024,
        }
    }
}

/// What a committed rebalance did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconfigReport {
    /// The epoch the cluster was at.
    pub old_epoch: u64,
    /// The committed epoch.
    pub new_epoch: u64,
    /// Vertex-replica moves: `(backend, vertex)` pairs whose full label
    /// was streamed to a gaining backend.
    pub moved: u64,
    /// Per gaining backend: `(address, vertices streamed)`.
    pub gained: Vec<(String, u64)>,
    /// Backends that shrank no-longer-owned labels to stubs.
    pub shrunk: Vec<String>,
}

/// Why a rebalance did not commit. `Refused` and `Io` during the
/// prepare/stream phases mean the rollout was *rolled back* — the
/// cluster is still at the old epoch.
#[derive(Debug)]
pub enum ReconfigError {
    /// Transport failure talking to the router or a backend.
    Io(std::io::Error),
    /// The router's current map did not parse.
    Map(MapError),
    /// The requested action is unsatisfiable (index out of range,
    /// replica floor violated, map mismatch).
    Invalid(String),
    /// A participant refused a prepare, push, or commit.
    Refused(String),
}

impl From<std::io::Error> for ReconfigError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl std::fmt::Display for ReconfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "reconfiguration transport error: {e}"),
            Self::Map(e) => write!(f, "router cluster map unreadable: {e}"),
            Self::Invalid(why) => write!(f, "invalid rebalance: {why}"),
            Self::Refused(why) => write!(f, "rebalance refused: {why}"),
        }
    }
}

impl std::error::Error for ReconfigError {}

/// Derives the next-epoch map from the current one and the action.
fn next_map(old: &ClusterMap, action: RebalanceAction) -> Result<ClusterMap, ReconfigError> {
    match action {
        RebalanceAction::Add(addr) => {
            if old.backends.contains(&addr) {
                return Err(ReconfigError::Invalid(format!(
                    "backend {addr} is already in the map"
                )));
            }
            let mut map = old.clone();
            map.epoch += 1;
            map.backends.push(addr);
            Ok(map)
        }
        RebalanceAction::Remove(i) => {
            if i as usize >= old.backends.len() {
                return Err(ReconfigError::Invalid(format!(
                    "backend index {i} out of range (map has {})",
                    old.backends.len()
                )));
            }
            if old.backends.len() - 1 < old.replicas as usize {
                return Err(ReconfigError::Invalid(format!(
                    "removing a backend would leave {} backends for {} replicas",
                    old.backends.len() - 1,
                    old.replicas
                )));
            }
            let mut map = old.clone();
            map.epoch += 1;
            map.backends.remove(i as usize);
            Ok(map)
        }
        RebalanceAction::Map(mut map) => {
            if map.n != old.n || map.tag != old.tag {
                return Err(ReconfigError::Invalid(format!(
                    "next map disagrees with the cluster: n {} vs {}, tag {} vs {}",
                    map.n, old.n, map.tag, old.tag
                )));
            }
            if map.backends.is_empty() || map.backends.len() < map.replicas as usize {
                return Err(ReconfigError::Invalid(format!(
                    "{} backends cannot carry {} replicas",
                    map.backends.len(),
                    map.replicas
                )));
            }
            if map.epoch <= old.epoch {
                map.epoch = old.epoch + 1;
            }
            Ok(map)
        }
    }
}

/// Address-based ownership diff between two maps: for each backend of
/// `new`, the vertices it owns there that its *address* did not own
/// under `old` (`gained`), and whether it holds any vertex it no longer
/// owns (`lost`, the shrink set).
fn ownership_diff(old: &ClusterMap, new: &ClusterMap) -> (Vec<Vec<u32>>, Vec<bool>) {
    let old_part = old.partitioner();
    let new_part = new.partitioner();
    // Address → new-map index, for the lost side of the diff.
    let new_index: HashMap<&str, usize> = new
        .backends
        .iter()
        .enumerate()
        .map(|(i, a)| (a.as_str(), i))
        .collect();
    let mut gained: Vec<Vec<u32>> = vec![Vec::new(); new.backends.len()];
    let mut lost = vec![false; new.backends.len()];
    for v in 0..new.n {
        let old_owners: Vec<&str> = old_part
            .owners(v)
            .into_iter()
            .map(|b| old.backends[b as usize].as_str())
            .collect();
        let new_owners = new_part.owners(v);
        for &b in &new_owners {
            if !old_owners.contains(&new.backends[b as usize].as_str()) {
                gained[b as usize].push(v);
            }
        }
        for addr in old_owners {
            if let Some(&i) = new_index.get(addr) {
                if !new_owners.contains(&(i as u32)) {
                    lost[i] = true;
                }
            }
        }
    }
    (gained, lost)
}

/// Best-effort rollback: `ABORT` every prepared backend and the router.
fn abort_all(router: &mut Client, backends: &mut [Client], map_bytes: &[u8]) {
    for client in backends.iter_mut() {
        let _ = client.map_set(MapSetMode::Abort, 0, 0, map_bytes);
    }
    let _ = router.map_set(MapSetMode::Abort, MAP_TARGET_ROUTER, 0, map_bytes);
}

/// One verified `LABELS` chunk to one gaining backend.
fn push_chunk(
    client: &mut Client,
    addr: &str,
    epoch: u64,
    chunk: &[(u32, Vec<u8>)],
) -> Result<(), ReconfigError> {
    let refs: Vec<(u32, &[u8])> = chunk.iter().map(|(v, b)| (*v, b.as_slice())).collect();
    let (status, _received) = client.push_labels(epoch, &refs)?;
    if status != LabelsStatus::Ok {
        return Err(ReconfigError::Refused(format!(
            "backend {addr} rejected a label chunk: {status:?}"
        )));
    }
    Ok(())
}

/// The rollback-covered phases: prepare every backend, prepare the
/// router (opening the dual window), stream every moved label. Leaves
/// the prepared backend connections in `backends` (new-map order) for
/// the commit phase — and for [`abort_all`] if this returns `Err`.
fn run_rollout(
    tagged: &TaggedLabeling,
    router: &mut Client,
    backends: &mut Vec<Client>,
    new_map: &ClusterMap,
    map_bytes: &[u8],
    gained: &[Vec<u32>],
    options: &RebalanceOptions,
) -> Result<(), ReconfigError> {
    for (i, addr) in new_map.backends.iter().enumerate() {
        let mut client = Client::connect(addr)?;
        let (status, epoch) = client.map_set(MapSetMode::Prepare, i as u32, 0, map_bytes)?;
        if status != MapSetStatus::Prepared {
            return Err(ReconfigError::Refused(format!(
                "backend {addr} refused prepare for epoch {}: {status:?} (at epoch {epoch})",
                new_map.epoch
            )));
        }
        backends.push(client);
    }
    let (status, epoch) = router.map_set(MapSetMode::Prepare, MAP_TARGET_ROUTER, 0, map_bytes)?;
    if status != MapSetStatus::Prepared {
        return Err(ReconfigError::Refused(format!(
            "router refused prepare for epoch {}: {status:?} (at epoch {epoch})",
            new_map.epoch
        )));
    }
    for (i, verts) in gained.iter().enumerate() {
        if verts.is_empty() {
            continue;
        }
        let addr = &new_map.backends[i];
        let mut chunk: Vec<(u32, Vec<u8>)> = Vec::new();
        let mut chunk_bytes = 0usize;
        for &v in verts {
            let bytes = tagged.labeling.label(v).to_label().to_bytes();
            let cost = bytes.len() + 8;
            if !chunk.is_empty()
                && (chunk_bytes + cost > options.chunk_bytes || chunk.len() == u16::MAX as usize)
            {
                push_chunk(&mut backends[i], addr, new_map.epoch, &chunk)?;
                chunk.clear();
                chunk_bytes = 0;
            }
            chunk_bytes += cost;
            chunk.push((v, bytes));
        }
        if !chunk.is_empty() {
            push_chunk(&mut backends[i], addr, new_map.epoch, &chunk)?;
        }
    }
    Ok(())
}

/// Rebalances the cluster behind `router_addr` from its current map to
/// the `action`-derived next map, streaming moved labels from `tagged`
/// (the *full* labeling the cluster serves). On `Ok` the cluster is
/// committed at the new epoch; on `Err` during prepare/streaming it was
/// rolled back to the old one.
pub fn rebalance(
    tagged: &TaggedLabeling,
    router_addr: &str,
    action: RebalanceAction,
    options: &RebalanceOptions,
) -> Result<ReconfigReport, ReconfigError> {
    let mut router = Client::connect(router_addr)?;
    let old_bytes = router.map_get()?.ok_or_else(|| {
        ReconfigError::Invalid("router serves no cluster map (protocol v6 required)".into())
    })?;
    let old_map = ClusterMap::from_bytes(&old_bytes).map_err(ReconfigError::Map)?;
    let new_map = next_map(&old_map, action)?;
    if new_map.n as usize != tagged.labeling.len() {
        return Err(ReconfigError::Invalid(format!(
            "labeling has {} vertices but the cluster serves {}",
            tagged.labeling.len(),
            new_map.n
        )));
    }
    if new_map.tag != tagged.tag.as_u8() {
        return Err(ReconfigError::Invalid(format!(
            "labeling tag {} but the cluster serves tag {}",
            tagged.tag.as_u8(),
            new_map.tag
        )));
    }

    let (gained, lost) = ownership_diff(&old_map, &new_map);
    let moved: u64 = gained.iter().map(|g| g.len() as u64).sum();
    let map_bytes = new_map.to_bytes();

    let mut backends: Vec<Client> = Vec::with_capacity(new_map.backends.len());
    if let Err(e) = run_rollout(
        tagged,
        &mut router,
        &mut backends,
        &new_map,
        &map_bytes,
        &gained,
        options,
    ) {
        abort_all(&mut router, &mut backends, &map_bytes);
        return Err(e);
    }

    // Commit: gaining backends first (their extra labels only ever add
    // answers), every other backend next, the router last — the moment
    // it flips, every new owner already holds its labels. A failure
    // from here on is reported, not rolled back: committed backends
    // merely hold supersets of what they need, which is always safe.
    let mut order: Vec<usize> = (0..backends.len()).collect();
    order.sort_by_key(|&i| gained[i].is_empty());
    for i in order {
        let addr = &new_map.backends[i];
        let (status, epoch) = backends[i].map_set(MapSetMode::Commit, i as u32, 0, &map_bytes)?;
        if status != MapSetStatus::Committed {
            return Err(ReconfigError::Refused(format!(
                "backend {addr} refused commit for epoch {}: {status:?} (at epoch {epoch})",
                new_map.epoch
            )));
        }
    }
    let (status, epoch) =
        router.map_set(MapSetMode::Commit, MAP_TARGET_ROUTER, moved, &map_bytes)?;
    if status != MapSetStatus::Committed {
        return Err(ReconfigError::Refused(format!(
            "router refused commit for epoch {}: {status:?} (at epoch {epoch})",
            new_map.epoch
        )));
    }

    // Shrink the losers. Failures here cost only memory on that
    // backend (it answers from labels it no longer owns — correctly),
    // so they drop the backend from the report instead of failing the
    // committed rebalance.
    let mut shrunk = Vec::new();
    for (i, addr) in new_map.backends.iter().enumerate() {
        if !lost[i] {
            continue;
        }
        if let Ok((MapSetStatus::Shrunk, _)) =
            backends[i].map_set(MapSetMode::Shrink, i as u32, 0, &map_bytes)
        {
            shrunk.push(addr.clone());
        }
    }

    Ok(ReconfigReport {
        old_epoch: old_map.epoch,
        new_epoch: new_map.epoch,
        moved,
        gained: new_map
            .backends
            .iter()
            .zip(&gained)
            .filter(|(_, g)| !g.is_empty())
            .map(|(a, g)| (a.clone(), g.len() as u64))
            .collect(),
        shrunk,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(epoch: u64, backends: &[&str]) -> ClusterMap {
        ClusterMap {
            epoch,
            seed: 7,
            replicas: 2,
            n: 100,
            tag: 2,
            backends: backends.iter().map(|s| (*s).to_string()).collect(),
        }
    }

    #[test]
    fn next_map_actions() {
        let old = map(3, &["a:1", "b:2", "c:3"]);
        let added = next_map(&old, RebalanceAction::Add("d:4".into())).expect("add");
        assert_eq!(added.epoch, 4);
        assert_eq!(added.backends.len(), 4);
        assert!(matches!(
            next_map(&old, RebalanceAction::Add("a:1".into())),
            Err(ReconfigError::Invalid(_))
        ));
        let removed = next_map(&old, RebalanceAction::Remove(1)).expect("remove");
        assert_eq!(removed.backends, vec!["a:1", "c:3"]);
        assert!(matches!(
            next_map(&removed, RebalanceAction::Remove(0)),
            Err(ReconfigError::Invalid(_)) // would drop below the replica floor
        ));
        assert!(matches!(
            next_map(&old, RebalanceAction::Remove(9)),
            Err(ReconfigError::Invalid(_))
        ));
        // An explicit map with a lagging epoch gets bumped past the
        // current one; a mismatched one is refused.
        let explicit = next_map(&old, RebalanceAction::Map(map(1, &["a:1", "b:2"]))).expect("map");
        assert_eq!(explicit.epoch, 4);
        let mut wrong_n = map(9, &["a:1", "b:2"]);
        wrong_n.n = 5;
        assert!(matches!(
            next_map(&old, RebalanceAction::Map(wrong_n)),
            Err(ReconfigError::Invalid(_))
        ));
    }

    #[test]
    fn ownership_diff_add_and_remove() {
        let old = map(1, &["a:1", "b:2", "c:3"]);
        // Scale out: only the new backend gains, and it gains exactly
        // the vertices it owns under the new map.
        let new = next_map(&old, RebalanceAction::Add("d:4".into())).expect("add");
        let (gained, lost) = ownership_diff(&old, &new);
        let new_part = new.partitioner();
        assert_eq!(gained[3].len(), {
            (0..new.n).filter(|&v| new_part.owns(3, v)).count()
        });
        for (b, g) in gained.iter().enumerate().take(3) {
            assert!(g.is_empty(), "surviving backend {b} gained {g:?}");
        }
        // Every vertex the joiner gained displaced one old owner, so
        // some survivor must shrink — but the joiner (which owned
        // nothing before) never does.
        assert!(!gained[3].is_empty());
        assert!(lost[..3].iter().any(|&l| l), "no survivor lost anything");
        assert!(!lost[3]);

        // Scale in: survivors gain the removed backend's share.
        let shrunk = next_map(&old, RebalanceAction::Remove(2)).expect("remove");
        let (gained, _) = ownership_diff(&old, &shrunk);
        let total: usize = gained.iter().map(Vec::len).sum();
        assert!(total > 0, "removing a backend must move vertices");
    }
}
