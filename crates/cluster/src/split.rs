//! Cutting one labeling into per-partition sub-stores.
//!
//! Each backend's sub-store keeps all `n` label slots so vertex ids
//! stay global (the wire protocol's `u32` ids need no translation):
//! vertices the backend *owns* (HRW top-`R` includes it) carry their
//! full label, bit for bit; every other vertex carries only a **prelude
//! stub** — the 6-bit id width, the `w`-bit scheme id, and the fat
//! flag, with nothing after. A stub is distinguishable from any real
//! label (even a degree-0 thin label carries a γ-coded list length
//! after the flag), satisfies the partial store's checked prelude peek,
//! and fails every checked content read — which is exactly the
//! `NotOwned` signal the router keys failover on.
//!
//! The payoff: a stub costs `7 + ⌈log₂ n⌉` bits regardless of degree,
//! so a partition's store shrinks toward `(R/B)·|labels| + n·O(log n)`
//! bits while still answering every query some owner can answer.
//!
//! Only the threshold scheme is splittable — it is the one whose
//! decoder reads the *other* endpoint's scheme id from the prelude
//! alone. Other tags are refused rather than silently mis-served.

use pl_labeling::bits::BitWriter;
use pl_labeling::{Label, LabelingBuilder};
use pl_serve::{SchemeTag, TaggedLabeling};

use crate::partition::Partitioner;

/// Why a labeling could not be split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SplitError {
    /// Only [`SchemeTag::Threshold`] labelings are splittable.
    UnsupportedScheme(SchemeTag),
    /// Vertex's label is too short to carry even a prelude.
    Malformed(u32),
}

impl std::fmt::Display for SplitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnsupportedScheme(tag) => {
                write!(f, "cannot split a {} labeling (threshold only)", tag.name())
            }
            Self::Malformed(v) => write!(f, "label of vertex {v} has no readable prelude"),
        }
    }
}

impl std::error::Error for SplitError {}

/// Size accounting for one backend's sub-store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitReport {
    /// Vertices whose full label this backend carries.
    pub owned: u32,
    /// Vertices reduced to prelude stubs.
    pub stubbed: u32,
    /// Total bits of the sub-store's labels.
    pub bits: u64,
}

/// Cuts the sub-store of one backend: full labels for vertices `backend`
/// owns, prelude stubs for the rest. Owned labels are bit-identical to
/// the input's (the tests pin byte equality per vertex).
pub fn split_one(
    tagged: &TaggedLabeling,
    part: &Partitioner,
    backend: u32,
) -> Result<(TaggedLabeling, SplitReport), SplitError> {
    if tagged.tag != SchemeTag::Threshold {
        return Err(SplitError::UnsupportedScheme(tagged.tag));
    }
    let mut builder = LabelingBuilder::new();
    let mut report = SplitReport {
        owned: 0,
        stubbed: 0,
        bits: 0,
    };
    for (v, label) in tagged.labeling.iter() {
        if part.owns(backend, v) {
            let full = label.to_label();
            report.owned += 1;
            report.bits += label.bit_len() as u64;
            builder.push_label(&full);
            continue;
        }
        // Prelude stub: id width, scheme id, fat flag — nothing after.
        let mut r = label.reader();
        let stub = (|| {
            let w = r.try_read_bits(6)? as usize;
            let id = r.try_read_bits(w)?;
            let fat = r.try_read_bit()?;
            let mut wr = BitWriter::new();
            wr.write_bits(w as u64, 6);
            wr.write_bits(id, w);
            wr.write_bit(fat);
            Some(Label::from(wr))
        })()
        .ok_or(SplitError::Malformed(v))?;
        report.stubbed += 1;
        report.bits += stub.bit_len() as u64;
        builder.push_label(&stub);
    }
    Ok((
        TaggedLabeling {
            tag: tagged.tag,
            labeling: builder.finish(),
        },
        report,
    ))
}

/// Reduces *every* vertex to a prelude stub — the sub-store of a
/// backend that owns nothing yet. A joining backend serves this store
/// (answering `NotOwned` to everything, which the router fails over)
/// until a reconfiguration streams its share of full labels in.
pub fn stub_all(tagged: &TaggedLabeling) -> Result<(TaggedLabeling, SplitReport), SplitError> {
    if tagged.tag != SchemeTag::Threshold {
        return Err(SplitError::UnsupportedScheme(tagged.tag));
    }
    let mut builder = LabelingBuilder::new();
    let mut report = SplitReport {
        owned: 0,
        stubbed: 0,
        bits: 0,
    };
    for (v, label) in tagged.labeling.iter() {
        let mut r = label.reader();
        let stub = (|| {
            let w = r.try_read_bits(6)? as usize;
            let id = r.try_read_bits(w)?;
            let fat = r.try_read_bit()?;
            let mut wr = BitWriter::new();
            wr.write_bits(w as u64, 6);
            wr.write_bits(id, w);
            wr.write_bit(fat);
            Some(Label::from(wr))
        })()
        .ok_or(SplitError::Malformed(v))?;
        report.stubbed += 1;
        report.bits += stub.bit_len() as u64;
        builder.push_label(&stub);
    }
    Ok((
        TaggedLabeling {
            tag: tagged.tag,
            labeling: builder.finish(),
        },
        report,
    ))
}

/// Cuts every backend's sub-store. `reports[b]` accounts for
/// `parts[b]`.
pub fn split_all(
    tagged: &TaggedLabeling,
    part: &Partitioner,
) -> Result<(Vec<TaggedLabeling>, Vec<SplitReport>), SplitError> {
    let mut parts = Vec::with_capacity(part.backends());
    let mut reports = Vec::with_capacity(part.backends());
    for b in 0..part.backends() as u32 {
        let (sub, report) = split_one(tagged, part, b)?;
        parts.push(sub);
        reports.push(report);
    }
    Ok((parts, reports))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_labeling::scheme::AdjacencyScheme;
    use pl_labeling::ThresholdScheme;
    use pl_serve::{LabelStore, StoreConfig, StoreError};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn encode(g: &pl_graph::Graph, tau: usize) -> TaggedLabeling {
        TaggedLabeling {
            tag: SchemeTag::Threshold,
            labeling: ThresholdScheme::with_tau(tau).encode(g),
        }
    }

    fn power_law(n: usize, seed: u64) -> pl_graph::Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        pl_gen::chung_lu_power_law(n, 2.5, 4.0, &mut rng)
    }

    #[test]
    fn owned_labels_are_byte_identical_and_stubs_are_prelude_only() {
        let g = power_law(400, 11);
        let tagged = encode(&g, 6);
        let part = Partitioner::new(0x51, 4, 2);
        let (parts, reports) = split_all(&tagged, &part).expect("split");
        assert_eq!(parts.len(), 4);
        for (b, (sub, report)) in parts.iter().zip(&reports).enumerate() {
            assert_eq!(sub.labeling.len(), tagged.labeling.len());
            let mut owned = 0u32;
            for v in 0..tagged.labeling.len() as u32 {
                let full = tagged.labeling.label(v);
                let cut = sub.labeling.label(v);
                if part.owns(b as u32, v) {
                    owned += 1;
                    // Bit-identical, and byte-identical once serialized.
                    assert_eq!(cut, full, "backend {b} vertex {v} not bit-identical");
                    assert_eq!(
                        cut.to_label().to_bytes(),
                        full.to_label().to_bytes(),
                        "backend {b} vertex {v} bytes differ"
                    );
                } else {
                    assert!(
                        cut.bit_len() < full.bit_len() || full.bit_len() <= cut.bit_len() + 1,
                        "stub of {v} not smaller: {} vs {}",
                        cut.bit_len(),
                        full.bit_len()
                    );
                    // Prelude parses; the first content read fails.
                    let mut r = cut.reader();
                    let w = r.try_read_bits(6).expect("stub id width") as usize;
                    r.try_read_bits(w).expect("stub scheme id");
                    r.try_read_bit().expect("stub fat flag");
                    assert_eq!(r.try_read_gamma(), None, "stub of {v} carries content");
                }
            }
            assert_eq!(report.owned, owned);
            assert_eq!(report.stubbed + report.owned, 400);
            assert!(report.bits < tagged.labeling.total_bits() as u64);
        }
        // Every vertex is owned by exactly R backends.
        let total_owned: u32 = reports.iter().map(|r| r.owned).sum();
        assert_eq!(total_owned, 2 * 400);
    }

    #[test]
    fn sub_stores_round_trip_through_plab_bytes() {
        let g = power_law(200, 3);
        let tagged = encode(&g, 5);
        let part = Partitioner::new(9, 3, 2);
        let (sub, _) = split_one(&tagged, &part, 1).expect("split");
        let bytes = sub.to_bytes();
        let back = TaggedLabeling::from_bytes(&bytes).expect("parse");
        assert_eq!(back, sub);
    }

    #[test]
    fn every_query_is_answerable_at_some_candidate() {
        let g = power_law(300, 21);
        let tagged = encode(&g, 5);
        let part = Partitioner::new(77, 3, 2);
        let (parts, _) = split_all(&tagged, &part).expect("split");
        let stores: Vec<LabelStore> = parts
            .into_iter()
            .map(|sub| LabelStore::new(sub, StoreConfig::default()).with_partial(true))
            .collect();
        let n = g.vertex_count() as u32;
        for u in 0..n {
            for v in 0..n {
                let want = g.has_edge(u, v);
                let mut answered = false;
                for b in part.candidates(u, v) {
                    match stores[b as usize].adjacent(u, v) {
                        Ok(got) => {
                            assert_eq!(got, want, "({u},{v}) wrong at backend {b}");
                            answered = true;
                            break;
                        }
                        Err(StoreError::NotOwned) => continue,
                        Err(e) => panic!("({u},{v}) at backend {b}: {e:?}"),
                    }
                }
                assert!(answered, "({u},{v}) unanswerable along candidate list");
            }
        }
    }

    #[test]
    fn non_threshold_schemes_are_refused() {
        let g = power_law(50, 1);
        let tagged = TaggedLabeling {
            tag: SchemeTag::AdjList,
            labeling: encode(&g, 4).labeling,
        };
        let part = Partitioner::new(1, 2, 1);
        assert_eq!(
            split_one(&tagged, &part, 0).unwrap_err(),
            SplitError::UnsupportedScheme(SchemeTag::AdjList)
        );
    }
}
