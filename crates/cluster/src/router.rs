//! The scatter-gather router.
//!
//! Upward the router *is* a wire-protocol server — `plab loadgen`, the
//! blocking client, and every existing tool connect to it unchanged.
//! The upward transport is not the router's own: it is the shared
//! hardened front-end of [`pl_wire::frontend`], the same accept loop,
//! handshake, shedding, deadlines, drain-on-shutdown, and fault
//! injection that `pl_serve` uses, parameterized here over
//! [`RouterEngine`]. The router itself is *only* an engine: candidate
//! chains, failover, quarantine, and stat merging.
//!
//! Downward it speaks the same protocol to the backends through
//! [`pl_serve::ResilientClient`], so transport-level trouble (dropped
//! connections, truncated frames, checksum-failing flipped bytes) is
//! already retried against the *same* backend before the router ever
//! sees it.
//!
//! What the router adds is **replica failover**. Each query `{u, v}`
//! carries its HRW candidate list `owners(u) ∪ owners(v)`; the query is
//! first sent to its foremost live candidate (batched per backend —
//! the scatter), and any slot that comes back `NOT_OWNED` (the partial
//! store could not answer one-sidedly), `OVERLOADED` (the backend's own
//! retries were exhausted), or on a dead connection advances to its
//! next candidate for the following round. A query whose candidates are
//! exhausted answers `OVERLOADED` upward — never a wrong answer.
//!
//! Backends that fail are **quarantined**: skipped when ordering
//! candidates (still usable as a last resort) and re-probed by a
//! background prober with `HEALTH`, paced by the retry policy's seeded
//! exponential backoff, so a SIGKILLed backend stops eating a connect
//! timeout per batch within one round-trip of dying.
//!
//! Observability (`pl-obs` registry, scrapeable via
//! [`RouterHandle::prometheus_text`]):
//! `plcluster_fanout_total{partition}`, `plcluster_failover_total{backend}`,
//! `plcluster_quarantine_total{backend}`, per-backend round-trip
//! histograms `plcluster_backend_ns{backend}`, and the batch histogram
//! `plcluster_batch_ns` — plus, because the front-end's instruments
//! land in the same registry, the full `plserve_*` transport families
//! (sheds, faults, deadline closes, bytes). A `STATS` request upward
//! returns the *merged* cluster snapshot: counters summed across live
//! backends, latency quantiles from the router's own observations, the
//! per-"shard" slots repurposed to carry per-backend cache counters,
//! and the router front-end's own shed/fault counters folded in.

use std::collections::HashMap;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pl_obs::hist::Histogram;
use pl_obs::registry::Counter;
use pl_obs::trace::{self, TraceContext};
use pl_obs::MetricsRegistry;
use pl_serve::{ClientError, ResilientClient, RetryPolicy};
use pl_wire::frontend::{self, FrontStats, FrontendHandle, FrontendOptions, QueryEngine};
use pl_wire::protocol::trace_dump_flags;
use pl_wire::{Answer, Query, Snapshot};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::map::ClusterMap;
use crate::partition::Partitioner;
use crate::trace_merge;

/// Prober pacing floor (the front-end has its own accept-loop poll).
const POLL: Duration = Duration::from_millis(20);

/// Router tuning.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Downward transport policy (per-backend retries, deadline) — also
    /// the source of the quarantine re-probe backoff.
    pub retry: RetryPolicy,
    /// How often the prober wakes to re-check quarantined backends.
    pub probe_interval: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            retry: RetryPolicy {
                max_retries: 2,
                deadline: Some(Duration::from_millis(500)),
                backoff_base: Duration::from_millis(5),
                backoff_cap: Duration::from_millis(100),
                seed: 0xC105,
            },
            probe_interval: Duration::from_millis(100),
        }
    }
}

/// Health state of one backend.
struct BackendState {
    addr: String,
    /// Skipped when ordering candidates; re-probed by the prober.
    quarantined: AtomicBool,
    /// Consecutive failed probes/serves — the backoff exponent.
    strikes: AtomicU64,
    /// Earliest next probe, in ns since router start.
    next_probe_ns: AtomicU64,
}

struct Shared {
    map: ClusterMap,
    part: Partitioner,
    config: RouterConfig,
    backends: Vec<BackendState>,
    registry: Arc<MetricsRegistry>,
    /// Sub-batches sent to each partition (`plcluster_fanout_total`).
    fanout: Vec<Arc<Counter>>,
    /// Queries moved *off* each backend (`plcluster_failover_total`).
    failover: Vec<Arc<Counter>>,
    /// Quarantine entries per backend.
    quarantines: Vec<Arc<Counter>>,
    /// Downward round-trip ns per backend.
    backend_ns: Vec<Arc<Histogram>>,
    /// Upward batch service time, ns.
    batch_ns: Arc<Histogram>,
    batches: Arc<Counter>,
    queries: Arc<Counter>,
    /// Queries whose whole candidate list failed (answered Overloaded).
    exhausted: Arc<Counter>,
    connections: Arc<Counter>,
    shutdown: AtomicBool,
    started: Instant,
}

impl Shared {
    fn now_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    fn quarantine(&self, b: u32) {
        let state = &self.backends[b as usize];
        if !state.quarantined.swap(true, Ordering::Relaxed) {
            self.quarantines[b as usize].inc();
        }
        let strikes = state.strikes.fetch_add(1, Ordering::Relaxed) + 1;
        let mut rng = StdRng::seed_from_u64(self.config.retry.seed ^ u64::from(b) ^ strikes);
        let delay = self
            .config
            .retry
            .backoff(strikes.min(u64::from(u32::MAX)) as u32, &mut rng);
        state
            .next_probe_ns
            .store(self.now_ns() + delay.as_nanos() as u64, Ordering::Relaxed);
    }

    fn mark_healthy(&self, b: u32) {
        let state = &self.backends[b as usize];
        state.quarantined.store(false, Ordering::Relaxed);
        state.strikes.store(0, Ordering::Relaxed);
    }

    fn is_quarantined(&self, b: u32) -> bool {
        self.backends[b as usize]
            .quarantined
            .load(Ordering::Relaxed)
    }

    /// Per-backend liveness flags, the upward HEALTH payload.
    fn liveness(&self) -> Vec<bool> {
        (0..self.backends.len() as u32)
            .map(|b| !self.is_quarantined(b))
            .collect()
    }
}

/// The router as a [`QueryEngine`]: the shared front-end owns the
/// upward transport, this engine owns candidate chains, failover, and
/// stat merging. Its per-connection session is the [`Downstream`]
/// client pool, so each upward connection keeps its own lazily dialed
/// backend connections, exactly as before the front-end was extracted.
pub struct RouterEngine {
    shared: Arc<Shared>,
}

impl QueryEngine for RouterEngine {
    type Session = Downstream;

    fn new_session(&self) -> Downstream {
        self.shared.connections.inc();
        Downstream::new()
    }

    fn scheme_tag(&self) -> u8 {
        self.shared.map.tag
    }

    fn n(&self) -> u32 {
        self.shared.map.n
    }

    fn answer_batch(&self, session: &mut Downstream, queries: &[Query], answers: &mut Vec<Answer>) {
        answers.extend(answer_batch(&self.shared, session, queries));
    }

    fn health(&self) -> Vec<bool> {
        self.shared.liveness()
    }

    /// A cluster-wide trace dump: the router's own rings tagged
    /// `origin:"router"` plus every reachable backend's rings (dumped
    /// over this session's pooled connections and tagged
    /// `origin:"b{i}"`), merged causally by trace id. `snapshot`
    /// propagates downward, so a non-consuming read consumes nothing
    /// anywhere in the cluster.
    fn trace_jsonl(&self, session: &mut Downstream, snapshot: bool) -> String {
        cluster_trace_jsonl(&self.shared, session, snapshot)
    }

    fn wire_stats(&self, session: &mut Downstream, front: &FrontStats) -> Snapshot {
        let mut merged = merged_stats(&self.shared, session);
        // Fold in the router front-end's own transport counters so a
        // client asking the *router* for STATS sees router-side sheds
        // and injected faults, not only the backends' sums.
        merged.faults_injected += front.faults.total();
        merged.shed += front.metrics.shed.get();
        merged.protocol_errors += front.metrics.protocol_errors.get();
        merged.open_conns += front.metrics.open_conns.get().max(0) as u64;
        merged
    }

    fn local_snapshot(&self, _front: &FrontStats) -> Snapshot {
        router_snapshot(&self.shared)
    }
}

/// A handle to a running router; dropping it does *not* stop the
/// router — call [`shutdown`](Self::shutdown).
pub struct RouterHandle {
    front: FrontendHandle<RouterEngine>,
    shared: Arc<Shared>,
    prober_thread: Option<std::thread::JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound upward address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.front.addr()
    }

    /// The router's metrics registry (the `plcluster_*` families, plus
    /// the shared front-end's `plserve_*` transport families).
    #[must_use]
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.shared.registry)
    }

    /// Renders the router registry as Prometheus text, plus the
    /// scrape-time `plcluster_cache_hit_ratio{backend}` gauges computed
    /// from each reachable backend's STATS.
    #[must_use]
    pub fn prometheus_text(&self) -> String {
        prometheus_with_ratios(&self.shared)
    }

    /// A boxed renderer for [`pl_obs::http::expose`].
    #[must_use]
    pub fn prometheus_renderer(&self) -> Arc<dyn Fn() -> String + Send + Sync> {
        let shared = Arc::clone(&self.shared);
        Arc::new(move || prometheus_with_ratios(&shared))
    }

    /// Per-backend liveness as the router currently believes it.
    #[must_use]
    pub fn backend_liveness(&self) -> Vec<bool> {
        self.shared.liveness()
    }

    /// Queries that exhausted their whole candidate list.
    #[must_use]
    pub fn exhausted(&self) -> u64 {
        self.shared.exhausted.get()
    }

    /// Signals shutdown, drains the front-end and joins the prober, and
    /// returns the router's own merged view of its counters.
    pub fn shutdown(self) -> Snapshot {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let snap = self.front.shutdown();
        if let Some(t) = self.prober_thread {
            t.join().ok();
        }
        snap
    }
}

/// Router registry as Prometheus text plus per-backend cache hit-ratio
/// gauges. The ratios are computed *at scrape time* from each backend's
/// STATS over a short-deadline throwaway connection; quarantined or
/// unreachable backends are skipped (no sample) rather than reported as
/// zero, so a dead backend cannot masquerade as a cold cache.
fn prometheus_with_ratios(shared: &Shared) -> String {
    let mut p = pl_obs::prom::PromText::new();
    p.registry(&shared.registry);
    let deadline = shared
        .config
        .retry
        .deadline
        .unwrap_or(Duration::from_millis(500));
    for (b, state) in shared.backends.iter().enumerate() {
        if shared.is_quarantined(b as u32) {
            continue;
        }
        let Ok(mut client) = pl_serve::Client::connect(&state.addr) else {
            continue;
        };
        if client.set_io_deadline(Some(deadline)).is_err() {
            continue;
        }
        let Ok(s) = client.stats() else {
            continue;
        };
        let total = s.cache_hits + s.cache_misses;
        let ratio = if total == 0 {
            0.0
        } else {
            s.cache_hits as f64 / total as f64
        };
        p.gauge_f64(
            "plcluster_cache_hit_ratio",
            &vec![("backend".to_string(), b.to_string())],
            ratio,
        );
    }
    p.finish()
}

/// The cluster-wide trace dump behind an upward `TRACE_DUMP`: the
/// router's own rings plus each reachable backend's, origin-tagged and
/// causally merged (see [`trace_merge`]). Backend dumps ride the
/// session's pooled downward connections; a backend that fails the dump
/// is quarantined exactly like a failed STATS dial.
fn cluster_trace_jsonl(shared: &Shared, down: &mut Downstream, snapshot: bool) -> String {
    let own = if snapshot {
        trace::snapshot_jsonl()
    } else {
        trace::drain_jsonl()
    };
    let mut streams = vec![("router".to_string(), own)];
    let flags = if snapshot {
        trace_dump_flags::SNAPSHOT
    } else {
        0
    };
    for b in 0..shared.backends.len() as u32 {
        let Ok(mut client) = down.take(shared, b) else {
            continue;
        };
        match client.trace_dump_with(flags) {
            Ok(jsonl) => {
                streams.push((format!("b{b}"), jsonl));
                down.put(b, client);
            }
            Err(_) => shared.quarantine(b),
        }
    }
    trace_merge::merge(&streams)
}

/// The router's own counters as a wire snapshot (no backend merge —
/// that needs live connections; see the upward `STATS` path).
fn router_snapshot(shared: &Shared) -> Snapshot {
    let h = shared.batch_ns.snapshot();
    let uptime = shared.started.elapsed().as_secs_f64().max(1e-9);
    let queries = shared.queries.get();
    Snapshot {
        adj_queries: queries,
        batches: shared.batches.get(),
        connections: shared.connections.get(),
        p50_ns: h.quantile_ns(0.50),
        p90_ns: h.quantile_ns(0.90),
        p99_ns: h.quantile_ns(0.99),
        p999_ns: h.quantile_ns(0.999),
        min_ns: h.min,
        max_ns: h.max,
        qps_milli: (queries as f64 / uptime * 1_000.0) as u64,
        shard_cache: shared
            .fanout
            .iter()
            .zip(&shared.failover)
            .map(|(f, o)| (f.get(), o.get()))
            .collect(),
        ..Snapshot::default()
    }
}

/// Starts a router for `map`, listening upward on `addr`, with default
/// transport options (no shedding cap, no deadlines, no faults).
pub fn route(
    map: ClusterMap,
    addr: impl ToSocketAddrs,
    config: RouterConfig,
) -> std::io::Result<RouterHandle> {
    route_with(map, addr, config, FrontendOptions::default())
}

/// Starts a router with explicit front-end transport options. The
/// router inherits shedding (`max_conns`), idle/stall deadlines, and
/// fault injection from the shared front-end — the same hardening as
/// the single-node server, configured the same way.
pub fn route_with(
    map: ClusterMap,
    addr: impl ToSocketAddrs,
    config: RouterConfig,
    front: FrontendOptions,
) -> std::io::Result<RouterHandle> {
    let registry = front
        .registry
        .clone()
        .unwrap_or_else(|| Arc::new(MetricsRegistry::new()));
    let per_backend_counter = |name: &str| -> Vec<Arc<Counter>> {
        (0..map.backends.len())
            .map(|b| registry.counter_with(name, &[("backend", &b.to_string())]))
            .collect()
    };
    let fanout = (0..map.backends.len())
        .map(|b| registry.counter_with("plcluster_fanout_total", &[("partition", &b.to_string())]))
        .collect();
    let failover = per_backend_counter("plcluster_failover_total");
    let quarantines = per_backend_counter("plcluster_quarantine_total");
    let backend_ns = (0..map.backends.len())
        .map(|b| registry.histogram_with("plcluster_backend_ns", &[("backend", &b.to_string())]))
        .collect();
    let part = map.partitioner();
    let shared = Arc::new(Shared {
        backends: map
            .backends
            .iter()
            .map(|addr| BackendState {
                addr: addr.clone(),
                quarantined: AtomicBool::new(false),
                strikes: AtomicU64::new(0),
                next_probe_ns: AtomicU64::new(0),
            })
            .collect(),
        part,
        config,
        registry: Arc::clone(&registry),
        fanout,
        failover,
        quarantines,
        backend_ns,
        batch_ns: registry.histogram("plcluster_batch_ns"),
        batches: registry.counter("plcluster_batches_total"),
        queries: registry.counter("plcluster_queries_total"),
        exhausted: registry.counter("plcluster_exhausted_total"),
        connections: registry.counter("plcluster_connections_total"),
        shutdown: AtomicBool::new(false),
        started: Instant::now(),
        map,
    });

    let engine = Arc::new(RouterEngine {
        shared: Arc::clone(&shared),
    });
    let front = frontend::bind(
        engine,
        addr,
        FrontendOptions {
            registry: Some(Arc::clone(&registry)),
            ..front
        },
    )?;
    let prober_shared = Arc::clone(&shared);
    let prober_thread = std::thread::Builder::new()
        .name("plcluster-probe".into())
        .spawn(move || prober_loop(&prober_shared))?;
    Ok(RouterHandle {
        front,
        shared,
        prober_thread: Some(prober_thread),
    })
}

/// Background health prober: quarantined backends whose backoff expired
/// get a `HEALTH` round-trip; success lifts the quarantine, failure
/// doubles the pause (seeded jitter included, via the retry policy).
fn prober_loop(shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(shared.config.probe_interval.min(POLL * 5));
        let now = shared.now_ns();
        for b in 0..shared.backends.len() as u32 {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let state = &shared.backends[b as usize];
            if !state.quarantined.load(Ordering::Relaxed)
                || state.next_probe_ns.load(Ordering::Relaxed) > now
            {
                continue;
            }
            if probe(shared, &state.addr) {
                shared.mark_healthy(b);
            } else {
                shared.quarantine(b);
            }
        }
    }
}

/// One health probe: connect, HELLO, HEALTH, all under a short deadline.
fn probe(shared: &Shared, addr: &str) -> bool {
    let deadline = shared
        .config
        .retry
        .deadline
        .unwrap_or(Duration::from_millis(500));
    let Ok(mut client) = pl_serve::Client::connect(addr) else {
        return false;
    };
    if client.set_io_deadline(Some(deadline)).is_err() {
        return false;
    }
    client.health().map(|r| r.healthy).unwrap_or(false)
}

/// Lazily connected downward clients, one per backend, owned by one
/// upward connection's thread (it is the [`RouterEngine`] session).
pub struct Downstream {
    clients: HashMap<u32, ResilientClient>,
}

impl Downstream {
    fn new() -> Self {
        Self {
            clients: HashMap::new(),
        }
    }

    fn take(&mut self, shared: &Shared, b: u32) -> Result<ResilientClient, ClientError> {
        if let Some(c) = self.clients.remove(&b) {
            return Ok(c);
        }
        ResilientClient::connect(
            &shared.backends[b as usize].addr,
            shared.config.retry.clone(),
        )
    }

    fn put(&mut self, b: u32, client: ResilientClient) {
        self.clients.insert(b, client);
    }
}

/// One round of the scatter: the pending queries grouped per backend,
/// each group sent as its own BATCH on that backend's connection,
/// concurrently.
#[allow(clippy::type_complexity)]
fn scatter_round(
    shared: &Shared,
    down: &mut Downstream,
    groups: Vec<(u32, Vec<(usize, Query)>)>,
    ctx: Option<TraceContext>,
) -> Vec<(u32, Vec<(usize, Query)>, Result<Vec<Answer>, ClientError>)> {
    // Pull each group's client out of the per-connection pool so every
    // scoped thread owns its connection exclusively.
    let work: Vec<(
        u32,
        Vec<(usize, Query)>,
        Result<ResilientClient, ClientError>,
    )> = groups
        .into_iter()
        .map(|(b, queries)| {
            let client = down.take(shared, b);
            (b, queries, client)
        })
        .collect();
    let results: Vec<(
        u32,
        Vec<(usize, Query)>,
        Result<Vec<Answer>, ClientError>,
        Option<ResilientClient>,
    )> = std::thread::scope(|scope| {
        let threads: Vec<_> = work
            .into_iter()
            .map(|(b, queries, client)| {
                scope.spawn(move || {
                    // TLS does not cross threads: the leg adopts the
                    // batch's context, opens its own span, and forwards
                    // the context (with the leg span as parent) on the
                    // wire, so backend spans parent to this leg.
                    let _ctx_guard = ctx.map(trace::adopt);
                    let mut client = match client {
                        Ok(c) => c,
                        Err(e) => return (b, queries, Err(e), None),
                    };
                    shared.fanout[b as usize].inc();
                    let batch: Vec<Query> = queries.iter().map(|&(_, q)| q).collect();
                    let leg_span = pl_obs::span!("router.leg", u64::from(b), batch.len());
                    let forward = trace::current();
                    let t0 = Instant::now();
                    let out = client.batch_ctx(&batch, forward.as_ref());
                    shared.backend_ns[b as usize].record(t0.elapsed().as_nanos() as u64);
                    drop(leg_span);
                    match out {
                        Ok(answers) => (b, queries, Ok(answers), Some(client)),
                        Err(e) => (b, queries, Err(e), None),
                    }
                })
            })
            .collect();
        threads
            .into_iter()
            .map(|t| t.join().expect("scatter thread panicked"))
            .collect()
    });
    results
        .into_iter()
        .map(|(b, queries, out, client)| {
            match (&out, client) {
                (Ok(_), Some(c)) => {
                    down.put(b, c);
                    shared.mark_healthy(b);
                }
                _ => shared.quarantine(b),
            }
            (b, queries, out)
        })
        .collect()
}

/// Answers one upward BATCH: scatter along each query's candidate list,
/// gather in request order, failing over per query until its list is
/// exhausted.
fn answer_batch(shared: &Shared, down: &mut Downstream, queries: &[Query]) -> Vec<Answer> {
    shared.batches.inc();
    shared.queries.add(queries.len() as u64);
    // The scatter span parents every leg; capture the live context here
    // (scatter span as parent) because thread-local trace state does
    // not cross into the scoped leg threads.
    let _scatter_span = pl_obs::span!("router.scatter", queries.len());
    let ctx = trace::current();
    let t0 = Instant::now();
    // Candidate lists in HRW order, live backends first (stable, so the
    // HRW preference is kept within each liveness class).
    let candidates: Vec<Vec<u32>> = queries
        .iter()
        .map(|q| {
            let cand = shared.part.candidates(q.u, q.v);
            let (live, dead): (Vec<u32>, Vec<u32>) =
                cand.into_iter().partition(|&b| !shared.is_quarantined(b));
            live.into_iter().chain(dead).collect()
        })
        .collect();
    let mut next_candidate = vec![0usize; queries.len()];
    let mut answers: Vec<Option<Answer>> = vec![None; queries.len()];
    let max_rounds = candidates.iter().map(Vec::len).max().unwrap_or(0);
    for _round in 0..=max_rounds {
        let mut groups: HashMap<u32, Vec<(usize, Query)>> = HashMap::new();
        for (i, q) in queries.iter().enumerate() {
            if answers[i].is_some() {
                continue;
            }
            match candidates[i].get(next_candidate[i]) {
                Some(&b) => groups.entry(b).or_default().push((i, *q)),
                None => {
                    shared.exhausted.inc();
                    answers[i] = Some(Answer::Overloaded);
                }
            }
        }
        if groups.is_empty() {
            break;
        }
        let mut groups: Vec<_> = groups.into_iter().collect();
        groups.sort_unstable_by_key(|(b, _)| *b);
        for (b, queries, out) in scatter_round(shared, down, groups, ctx) {
            match out {
                Ok(got) => {
                    for ((i, _), answer) in queries.iter().zip(got) {
                        match answer {
                            // The partial store couldn't answer there, or
                            // the backend's own retries ran dry: move the
                            // query to its next candidate.
                            Answer::NotOwned | Answer::Overloaded => {
                                shared.failover[b as usize].inc();
                                next_candidate[*i] += 1;
                            }
                            settled => answers[*i] = Some(settled),
                        }
                    }
                }
                Err(_) => {
                    // The whole connection failed (backend dead?): every
                    // query in the group fails over.
                    for (i, _) in &queries {
                        shared.failover[b as usize].inc();
                        next_candidate[*i] += 1;
                    }
                }
            }
        }
    }
    shared.batch_ns.record(t0.elapsed().as_nanos() as u64);
    answers
        .into_iter()
        .map(|a| a.unwrap_or(Answer::Overloaded))
        .collect()
}

/// Merged cluster STATS: counters summed over reachable backends,
/// quantiles from the router's own batch histogram, per-backend cache
/// counters in the per-shard slots.
fn merged_stats(shared: &Shared, down: &mut Downstream) -> Snapshot {
    let mut merged = router_snapshot(shared);
    merged.adj_queries = 0;
    merged.shard_cache.clear();
    for b in 0..shared.backends.len() as u32 {
        let Ok(mut client) = down.take(shared, b) else {
            merged.shard_cache.push((0, 0));
            continue;
        };
        match client.stats() {
            Ok(s) => {
                merged.adj_queries += s.adj_queries;
                merged.dist_queries += s.dist_queries;
                merged.connections += s.connections;
                merged.cache_hits += s.cache_hits;
                merged.cache_misses += s.cache_misses;
                merged.bytes_in += s.bytes_in;
                merged.bytes_out += s.bytes_out;
                merged.protocol_errors += s.protocol_errors;
                merged.slow_queries += s.slow_queries;
                merged.faults_injected += s.faults_injected;
                merged.shed += s.shed;
                merged.open_conns += s.open_conns;
                merged.shard_cache.push((s.cache_hits, s.cache_misses));
                down.put(b, client);
            }
            Err(_) => {
                merged.shard_cache.push((0, 0));
                shared.quarantine(b);
            }
        }
    }
    merged
}

// Re-exported for the `plab cluster stats` pretty-printer.
pub use pl_wire::protocol::HealthReport;
