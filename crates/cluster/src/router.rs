//! The scatter-gather router.
//!
//! Upward the router *is* a wire-protocol server — `plab loadgen`, the
//! blocking client, and every existing tool connect to it unchanged.
//! The upward transport is not the router's own: it is the shared
//! hardened front-end of [`pl_wire::frontend`], the same accept loop,
//! handshake, shedding, deadlines, drain-on-shutdown, and fault
//! injection that `pl_serve` uses, parameterized here over
//! [`RouterEngine`]. The router itself is *only* an engine: candidate
//! chains, failover, quarantine, and stat merging.
//!
//! Downward it speaks the same protocol to the backends through
//! [`pl_serve::ResilientClient`], so transport-level trouble (dropped
//! connections, truncated frames, checksum-failing flipped bytes) is
//! already retried against the *same* backend before the router ever
//! sees it.
//!
//! What the router adds is **replica failover**. Each query `{u, v}`
//! carries its HRW candidate list `owners(u) ∪ owners(v)`; the query is
//! first sent to its foremost live candidate (batched per backend —
//! the scatter), and any slot that comes back `NOT_OWNED` (the partial
//! store could not answer one-sidedly), `OVERLOADED` (the backend's own
//! retries were exhausted), or on a dead connection advances to its
//! next candidate for the following round. A query whose candidates are
//! exhausted answers `OVERLOADED` upward — never a wrong answer.
//!
//! Backends that fail are **quarantined**: skipped when ordering
//! candidates (still usable as a last resort) and re-probed by a
//! background prober with `HEALTH`, paced by the retry policy's seeded
//! exponential backoff, so a SIGKILLed backend stops eating a connect
//! timeout per batch within one round-trip of dying.
//!
//! Observability (`pl-obs` registry, scrapeable via
//! [`RouterHandle::prometheus_text`]):
//! `plcluster_fanout_total{partition}`, `plcluster_failover_total{backend}`,
//! `plcluster_quarantine_total{backend}`, per-backend round-trip
//! histograms `plcluster_backend_ns{backend}`, and the batch histogram
//! `plcluster_batch_ns` — plus, because the front-end's instruments
//! land in the same registry, the full `plserve_*` transport families
//! (sheds, faults, deadline closes, bytes). A `STATS` request upward
//! returns the *merged* cluster snapshot: counters summed across live
//! backends, latency quantiles from the router's own observations, the
//! per-"shard" slots repurposed to carry per-backend cache counters,
//! and the router front-end's own shed/fault counters folded in.

use std::collections::HashMap;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use pl_obs::hist::Histogram;
use pl_obs::registry::Counter;
use pl_obs::trace::{self, TraceContext};
use pl_obs::MetricsRegistry;
use pl_serve::{ClientError, ResilientClient, RetryPolicy};
use pl_wire::frontend::{self, FrontStats, FrontendHandle, FrontendOptions, QueryEngine};
use pl_wire::protocol::{trace_dump_flags, MapSetMode, MapSetRequest, MapSetStatus};
use pl_wire::{Answer, Query, Snapshot};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::map::ClusterMap;
use crate::partition::Partitioner;
use crate::trace_merge;

/// Prober pacing floor (the front-end has its own accept-loop poll).
const POLL: Duration = Duration::from_millis(20);

/// Router tuning.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Downward transport policy (per-backend retries, deadline) — also
    /// the source of the quarantine re-probe backoff.
    pub retry: RetryPolicy,
    /// How often the prober wakes to re-check quarantined backends.
    pub probe_interval: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            retry: RetryPolicy {
                max_retries: 2,
                deadline: Some(Duration::from_millis(500)),
                backoff_base: Duration::from_millis(5),
                backoff_cap: Duration::from_millis(100),
                seed: 0xC105,
            },
            probe_interval: Duration::from_millis(100),
        }
    }
}

/// Health state and instruments of one backend, identified by its
/// *slot* in the router's append-only backend table. Slots are stable
/// across reconfigurations: a backend that survives an epoch change
/// keeps its slot (and its counters); a joining backend gets a new one.
struct BackendState {
    addr: String,
    /// Skipped when ordering candidates; re-probed by the prober.
    quarantined: AtomicBool,
    /// Consecutive failed probes/serves — the backoff exponent.
    strikes: AtomicU64,
    /// Earliest next probe, in ns since router start.
    next_probe_ns: AtomicU64,
    /// Sub-batches sent here (`plcluster_fanout_total{partition}`).
    fanout: Arc<Counter>,
    /// Queries moved *off* this backend (`plcluster_failover_total`).
    failover: Arc<Counter>,
    /// Quarantine entries (`plcluster_quarantine_total`).
    quarantines: Arc<Counter>,
    /// Downward round-trip ns (`plcluster_backend_ns`).
    backend_ns: Arc<Histogram>,
}

impl BackendState {
    fn new(addr: String, slot: usize, registry: &MetricsRegistry) -> Self {
        let label = slot.to_string();
        Self {
            addr,
            quarantined: AtomicBool::new(false),
            strikes: AtomicU64::new(0),
            next_probe_ns: AtomicU64::new(0),
            fanout: registry.counter_with("plcluster_fanout_total", &[("partition", &label)]),
            failover: registry.counter_with("plcluster_failover_total", &[("backend", &label)]),
            quarantines: registry
                .counter_with("plcluster_quarantine_total", &[("backend", &label)]),
            backend_ns: registry.histogram_with("plcluster_backend_ns", &[("backend", &label)]),
        }
    }
}

/// One map's routing view: the parsed map, its serialized bytes (the
/// `MAP_GET` payload), its partitioner, and the translation from map
/// backend indices to backend-table slots.
struct RouteView {
    map: ClusterMap,
    map_bytes: Vec<u8>,
    part: Partitioner,
    /// `ids[i]` is the table slot of the map's backend `i`.
    ids: Vec<u32>,
}

/// The router's routing state: the committed map plus, during a
/// reconfiguration window, the prepared next-epoch map. While `pending`
/// is set the router *dual-routes*: each query tries the new map's
/// owners first and falls back to the old owners on `NOT_OWNED` — so
/// a vertex whose labels are still in flight keeps answering from its
/// old owner, and one already migrated answers from its new owner.
struct RouteState {
    current: RouteView,
    pending: Option<RouteView>,
}

struct Shared {
    route: RwLock<RouteState>,
    /// Append-only backend table; candidate lists and `Downstream`
    /// pools are keyed by slot, never by map index.
    table: RwLock<Vec<Arc<BackendState>>>,
    config: RouterConfig,
    registry: Arc<MetricsRegistry>,
    /// Upward batch service time, ns.
    batch_ns: Arc<Histogram>,
    batches: Arc<Counter>,
    queries: Arc<Counter>,
    /// Queries whose whole candidate list failed (answered Overloaded).
    exhausted: Arc<Counter>,
    connections: Arc<Counter>,
    /// Committed epoch bumps (`plcluster_reconfig_epochs_total`).
    reconfig_epochs: Arc<Counter>,
    /// Vertices whose ownership moved across committed epochs.
    reconfig_moved: Arc<Counter>,
    /// Queries routed during a dual-map window.
    reconfig_dual: Arc<Counter>,
    /// Prepared windows torn down by ABORT.
    reconfig_rollbacks: Arc<Counter>,
    shutdown: AtomicBool,
    started: Instant,
}

impl Shared {
    fn now_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    fn backend(&self, slot: u32) -> Arc<BackendState> {
        Arc::clone(&pl_wire::sync::read_recover(&self.table)[slot as usize])
    }

    fn table_len(&self) -> usize {
        pl_wire::sync::read_recover(&self.table).len()
    }

    /// The table slot serving `addr`, appending a fresh entry (with
    /// fresh counters) the first time an address is seen.
    fn slot_for(&self, addr: &str) -> u32 {
        {
            let table = pl_wire::sync::read_recover(&self.table);
            if let Some(slot) = table.iter().position(|s| s.addr == addr) {
                return slot as u32;
            }
        }
        let mut table = pl_wire::sync::write_recover(&self.table);
        if let Some(slot) = table.iter().position(|s| s.addr == addr) {
            return slot as u32;
        }
        let slot = table.len();
        table.push(Arc::new(BackendState::new(
            addr.to_string(),
            slot,
            &self.registry,
        )));
        slot as u32
    }

    fn quarantine(&self, b: u32) {
        let state = self.backend(b);
        if !state.quarantined.swap(true, Ordering::Relaxed) {
            state.quarantines.inc();
        }
        let strikes = state.strikes.fetch_add(1, Ordering::Relaxed) + 1; // lint: relaxed-ok(strike count only feeds jittered backoff; an approximate read is fine and the value is never a synchronization signal)
        let mut rng = StdRng::seed_from_u64(self.config.retry.seed ^ u64::from(b) ^ strikes);
        let delay = self
            .config
            .retry
            .backoff(strikes.min(u64::from(u32::MAX)) as u32, &mut rng);
        state
            .next_probe_ns
            .store(self.now_ns() + delay.as_nanos() as u64, Ordering::Relaxed);
    }

    fn mark_healthy(&self, b: u32) {
        let state = self.backend(b);
        state.quarantined.store(false, Ordering::Relaxed);
        state.strikes.store(0, Ordering::Relaxed);
    }

    fn is_quarantined(&self, b: u32) -> bool {
        self.backend(b).quarantined.load(Ordering::Relaxed)
    }

    /// Per-backend liveness flags in current-map order, the upward
    /// HEALTH payload.
    fn liveness(&self) -> Vec<bool> {
        let route = pl_wire::sync::read_recover(&self.route);
        route
            .current
            .ids
            .iter()
            .map(|&slot| !self.is_quarantined(slot))
            .collect()
    }

    /// The table slots of the current map's backends, in map order.
    fn current_slots(&self) -> Vec<u32> {
        pl_wire::sync::read_recover(&self.route).current.ids.clone()
    }

    /// One query's candidate slots. Outside a reconfiguration window
    /// this is the current map's HRW candidate list translated to
    /// slots; inside the window the pending map's candidates come
    /// first (new owners may already hold the migrated labels) with
    /// the current map's as fallback — `NOT_OWNED` failover walks from
    /// new owners to old owners automatically.
    fn candidate_slots(&self, u: u32, v: u32) -> Vec<u32> {
        let route = pl_wire::sync::read_recover(&self.route);
        let to_slots = |view: &RouteView| -> Vec<u32> {
            view.part
                .candidates(u, v)
                .into_iter()
                .map(|b| view.ids[b as usize])
                .collect()
        };
        let mut slots = match route.pending.as_ref() {
            Some(pending) => {
                self.reconfig_dual.inc();
                let mut out = to_slots(pending);
                for slot in to_slots(&route.current) {
                    if !out.contains(&slot) {
                        out.push(slot);
                    }
                }
                out
            }
            None => to_slots(&route.current),
        };
        slots.dedup();
        slots
    }
}

/// The router as a [`QueryEngine`]: the shared front-end owns the
/// upward transport, this engine owns candidate chains, failover, and
/// stat merging. Its per-connection session is the [`Downstream`]
/// client pool, so each upward connection keeps its own lazily dialed
/// backend connections, exactly as before the front-end was extracted.
pub struct RouterEngine {
    shared: Arc<Shared>,
}

impl QueryEngine for RouterEngine {
    type Session = Downstream;

    fn new_session(&self) -> Downstream {
        self.shared.connections.inc();
        Downstream::new()
    }

    fn scheme_tag(&self) -> u8 {
        pl_wire::sync::read_recover(&self.shared.route)
            .current
            .map
            .tag
    }

    fn n(&self) -> u32 {
        pl_wire::sync::read_recover(&self.shared.route)
            .current
            .map
            .n
    }

    fn answer_batch(&self, session: &mut Downstream, queries: &[Query], answers: &mut Vec<Answer>) {
        answers.extend(answer_batch(&self.shared, session, queries));
    }

    fn health(&self) -> Vec<bool> {
        self.shared.liveness()
    }

    fn map_payload(&self, _session: &mut Downstream) -> Option<Vec<u8>> {
        Some(
            pl_wire::sync::read_recover(&self.shared.route)
                .current
                .map_bytes
                .clone(),
        )
    }

    /// The router's side of the reconfiguration state machine:
    /// `Prepare` opens the dual-routing window for an epoch-bumped map,
    /// `Commit` retires the old map, `Abort` rolls the window back.
    /// Routers never `Shrink` (they hold no labels).
    fn map_install(&self, _session: &mut Downstream, req: &MapSetRequest) -> (MapSetStatus, u64) {
        let shared = &self.shared;
        let Ok(map) = ClusterMap::from_bytes(&req.map) else {
            let route = pl_wire::sync::read_recover(&shared.route);
            return (MapSetStatus::Failed, route.current.map.epoch);
        };
        match req.mode {
            MapSetMode::Prepare => {
                let _span = pl_obs::span!("router.reconfig", map.epoch, 0u64);
                // Resolve slots before taking the route lock: slot_for
                // may append to the table.
                if map.backends.is_empty()
                    || map.replicas == 0
                    || map.replicas as usize > map.backends.len()
                {
                    let route = pl_wire::sync::read_recover(&shared.route);
                    return (MapSetStatus::Failed, route.current.map.epoch);
                }
                let ids: Vec<u32> = map.backends.iter().map(|a| shared.slot_for(a)).collect();
                let mut route = pl_wire::sync::write_recover(&shared.route);
                if map.n != route.current.map.n || map.tag != route.current.map.tag {
                    return (MapSetStatus::Failed, route.current.map.epoch);
                }
                if map.epoch <= route.current.map.epoch {
                    return (MapSetStatus::Stale, route.current.map.epoch);
                }
                let epoch = map.epoch;
                let part = map.partitioner();
                route.pending = Some(RouteView {
                    map,
                    map_bytes: req.map.clone(),
                    part,
                    ids,
                });
                pl_obs::event!("router.reconfig.prepare", epoch);
                (MapSetStatus::Prepared, epoch)
            }
            MapSetMode::Commit => {
                let _span = pl_obs::span!("router.reconfig", map.epoch, 1u64);
                let mut route = pl_wire::sync::write_recover(&shared.route);
                if map.epoch <= route.current.map.epoch {
                    return (MapSetStatus::Stale, route.current.map.epoch);
                }
                match route.pending.take() {
                    Some(pending) if pending.map.epoch == map.epoch => {
                        route.current = pending;
                        shared.reconfig_epochs.inc();
                        shared.reconfig_moved.add(req.moved);
                        pl_obs::event!("router.reconfig.commit", map.epoch, req.moved);
                        (MapSetStatus::Committed, map.epoch)
                    }
                    other => {
                        route.pending = other;
                        (MapSetStatus::Failed, route.current.map.epoch)
                    }
                }
            }
            MapSetMode::Abort => {
                let _span = pl_obs::span!("router.reconfig", map.epoch, 2u64);
                let mut route = pl_wire::sync::write_recover(&shared.route);
                if route.pending.take().is_some() {
                    shared.reconfig_rollbacks.inc();
                    pl_obs::event!("router.reconfig.abort", map.epoch);
                }
                (MapSetStatus::Aborted, route.current.map.epoch)
            }
            MapSetMode::Shrink => {
                let route = pl_wire::sync::read_recover(&shared.route);
                (MapSetStatus::Unsupported, route.current.map.epoch)
            }
        }
    }

    /// A cluster-wide trace dump: the router's own rings tagged
    /// `origin:"router"` plus every reachable backend's rings (dumped
    /// over this session's pooled connections and tagged
    /// `origin:"b{i}"`), merged causally by trace id. `snapshot`
    /// propagates downward, so a non-consuming read consumes nothing
    /// anywhere in the cluster.
    fn trace_jsonl(&self, session: &mut Downstream, snapshot: bool) -> String {
        cluster_trace_jsonl(&self.shared, session, snapshot)
    }

    fn wire_stats(&self, session: &mut Downstream, front: &FrontStats) -> Snapshot {
        let mut merged = merged_stats(&self.shared, session);
        // Fold in the router front-end's own transport counters so a
        // client asking the *router* for STATS sees router-side sheds
        // and injected faults, not only the backends' sums.
        merged.faults_injected += front.faults.total();
        merged.shed += front.metrics.shed.get();
        merged.protocol_errors += front.metrics.protocol_errors.get();
        merged.open_conns += front.metrics.open_conns.get().max(0) as u64;
        merged
    }

    fn local_snapshot(&self, _front: &FrontStats) -> Snapshot {
        router_snapshot(&self.shared)
    }
}

/// A handle to a running router; dropping it does *not* stop the
/// router — call [`shutdown`](Self::shutdown).
pub struct RouterHandle {
    front: FrontendHandle<RouterEngine>,
    shared: Arc<Shared>,
    prober_thread: Option<std::thread::JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound upward address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.front.addr()
    }

    /// The router's metrics registry (the `plcluster_*` families, plus
    /// the shared front-end's `plserve_*` transport families).
    #[must_use]
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.shared.registry)
    }

    /// Renders the router registry as Prometheus text, plus the
    /// scrape-time `plcluster_cache_hit_ratio{backend}` gauges computed
    /// from each reachable backend's STATS.
    #[must_use]
    pub fn prometheus_text(&self) -> String {
        prometheus_with_ratios(&self.shared)
    }

    /// A boxed renderer for [`pl_obs::http::expose`].
    #[must_use]
    pub fn prometheus_renderer(&self) -> Arc<dyn Fn() -> String + Send + Sync> {
        let shared = Arc::clone(&self.shared);
        Arc::new(move || prometheus_with_ratios(&shared))
    }

    /// Per-backend liveness as the router currently believes it.
    #[must_use]
    pub fn backend_liveness(&self) -> Vec<bool> {
        self.shared.liveness()
    }

    /// Queries that exhausted their whole candidate list.
    #[must_use]
    pub fn exhausted(&self) -> u64 {
        self.shared.exhausted.get()
    }

    /// The committed cluster-map epoch the router is routing on.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        pl_wire::sync::read_recover(&self.shared.route)
            .current
            .map
            .epoch
    }

    /// Whether a prepared (dual-routing) reconfiguration window is open.
    #[must_use]
    pub fn reconfiguring(&self) -> bool {
        pl_wire::sync::read_recover(&self.shared.route)
            .pending
            .is_some()
    }

    /// Signals shutdown, drains the front-end and joins the prober, and
    /// returns the router's own merged view of its counters.
    pub fn shutdown(self) -> Snapshot {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let snap = self.front.shutdown();
        if let Some(t) = self.prober_thread {
            t.join().ok();
        }
        snap
    }
}

/// Router registry as Prometheus text plus per-backend cache hit-ratio
/// gauges. The ratios are computed *at scrape time* from each backend's
/// STATS over a short-deadline throwaway connection; quarantined or
/// unreachable backends are skipped (no sample) rather than reported as
/// zero, so a dead backend cannot masquerade as a cold cache.
fn prometheus_with_ratios(shared: &Shared) -> String {
    let mut p = pl_obs::prom::PromText::new();
    p.registry(&shared.registry);
    let deadline = shared
        .config
        .retry
        .deadline
        .unwrap_or(Duration::from_millis(500));
    for slot in shared.current_slots() {
        if shared.is_quarantined(slot) {
            continue;
        }
        let state = shared.backend(slot);
        let Ok(mut client) = pl_serve::Client::connect(&state.addr) else {
            continue;
        };
        if client.set_io_deadline(Some(deadline)).is_err() {
            continue;
        }
        let Ok(s) = client.stats() else {
            continue;
        };
        let total = s.cache_hits + s.cache_misses;
        let ratio = if total == 0 {
            0.0
        } else {
            s.cache_hits as f64 / total as f64
        };
        p.gauge_f64(
            "plcluster_cache_hit_ratio",
            &vec![("backend".to_string(), slot.to_string())],
            ratio,
        );
    }
    p.finish()
}

/// The cluster-wide trace dump behind an upward `TRACE_DUMP`: the
/// router's own rings plus each reachable backend's, origin-tagged and
/// causally merged (see [`trace_merge`]). Backend dumps ride the
/// session's pooled downward connections; a backend that fails the dump
/// is quarantined exactly like a failed STATS dial.
fn cluster_trace_jsonl(shared: &Shared, down: &mut Downstream, snapshot: bool) -> String {
    let own = if snapshot {
        trace::snapshot_jsonl()
    } else {
        trace::drain_jsonl()
    };
    let mut streams = vec![("router".to_string(), own)];
    let flags = if snapshot {
        trace_dump_flags::SNAPSHOT
    } else {
        0
    };
    for b in shared.current_slots() {
        let Ok(mut client) = down.take(shared, b) else {
            continue;
        };
        match client.trace_dump_with(flags) {
            Ok(jsonl) => {
                streams.push((format!("b{b}"), jsonl));
                down.put(b, client);
            }
            Err(_) => shared.quarantine(b),
        }
    }
    trace_merge::merge(&streams)
}

/// The router's own counters as a wire snapshot (no backend merge —
/// that needs live connections; see the upward `STATS` path).
fn router_snapshot(shared: &Shared) -> Snapshot {
    let h = shared.batch_ns.snapshot();
    let uptime = shared.started.elapsed().as_secs_f64().max(1e-9);
    let queries = shared.queries.get();
    Snapshot {
        adj_queries: queries,
        batches: shared.batches.get(),
        connections: shared.connections.get(),
        p50_ns: h.quantile_ns(0.50),
        p90_ns: h.quantile_ns(0.90),
        p99_ns: h.quantile_ns(0.99),
        p999_ns: h.quantile_ns(0.999),
        min_ns: h.min,
        max_ns: h.max,
        qps_milli: (queries as f64 / uptime * 1_000.0) as u64,
        shard_cache: shared
            .current_slots()
            .into_iter()
            .map(|slot| {
                let state = shared.backend(slot);
                (state.fanout.get(), state.failover.get())
            })
            .collect(),
        ..Snapshot::default()
    }
}

/// Starts a router for `map`, listening upward on `addr`, with default
/// transport options (no shedding cap, no deadlines, no faults).
pub fn route(
    map: ClusterMap,
    addr: impl ToSocketAddrs,
    config: RouterConfig,
) -> std::io::Result<RouterHandle> {
    route_with(map, addr, config, FrontendOptions::default())
}

/// Starts a router with explicit front-end transport options. The
/// router inherits shedding (`max_conns`), idle/stall deadlines, and
/// fault injection from the shared front-end — the same hardening as
/// the single-node server, configured the same way.
pub fn route_with(
    map: ClusterMap,
    addr: impl ToSocketAddrs,
    config: RouterConfig,
    front: FrontendOptions,
) -> std::io::Result<RouterHandle> {
    let registry = front
        .registry
        .clone()
        .unwrap_or_else(|| Arc::new(MetricsRegistry::new()));
    let table: Vec<Arc<BackendState>> = map
        .backends
        .iter()
        .enumerate()
        .map(|(slot, addr)| Arc::new(BackendState::new(addr.clone(), slot, &registry)))
        .collect();
    let part = map.partitioner();
    let map_bytes = map.to_bytes();
    let ids: Vec<u32> = (0..map.backends.len() as u32).collect();
    let shared = Arc::new(Shared {
        route: RwLock::new(RouteState {
            current: RouteView {
                map,
                map_bytes,
                part,
                ids,
            },
            pending: None,
        }),
        table: RwLock::new(table),
        config,
        registry: Arc::clone(&registry),
        batch_ns: registry.histogram("plcluster_batch_ns"),
        batches: registry.counter("plcluster_batches_total"),
        queries: registry.counter("plcluster_queries_total"),
        exhausted: registry.counter("plcluster_exhausted_total"),
        connections: registry.counter("plcluster_connections_total"),
        reconfig_epochs: registry.counter("plcluster_reconfig_epochs_total"),
        reconfig_moved: registry.counter("plcluster_reconfig_vertices_moved_total"),
        reconfig_dual: registry.counter("plcluster_reconfig_dual_routed_total"),
        reconfig_rollbacks: registry.counter("plcluster_reconfig_rollbacks_total"),
        shutdown: AtomicBool::new(false),
        started: Instant::now(),
    });

    let engine = Arc::new(RouterEngine {
        shared: Arc::clone(&shared),
    });
    let front = frontend::bind(
        engine,
        addr,
        FrontendOptions {
            registry: Some(Arc::clone(&registry)),
            ..front
        },
    )?;
    let prober_shared = Arc::clone(&shared);
    let prober_thread = std::thread::Builder::new()
        .name("plcluster-probe".into())
        .spawn(move || prober_loop(&prober_shared))?;
    Ok(RouterHandle {
        front,
        shared,
        prober_thread: Some(prober_thread),
    })
}

/// Background health prober: quarantined backends whose backoff expired
/// get a `HEALTH` round-trip; success lifts the quarantine, failure
/// doubles the pause (seeded jitter included, via the retry policy).
fn prober_loop(shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(shared.config.probe_interval.min(POLL * 5));
        let now = shared.now_ns();
        for b in 0..shared.table_len() as u32 {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let state = shared.backend(b);
            if !state.quarantined.load(Ordering::Relaxed)
                || state.next_probe_ns.load(Ordering::Relaxed) > now
            {
                continue;
            }
            if probe(shared, &state.addr) {
                shared.mark_healthy(b);
            } else {
                shared.quarantine(b);
            }
        }
    }
}

/// One health probe: connect, HELLO, HEALTH, all under a short deadline.
fn probe(shared: &Shared, addr: &str) -> bool {
    let deadline = shared
        .config
        .retry
        .deadline
        .unwrap_or(Duration::from_millis(500));
    let Ok(mut client) = pl_serve::Client::connect(addr) else {
        return false;
    };
    if client.set_io_deadline(Some(deadline)).is_err() {
        return false;
    }
    client.health().map(|r| r.healthy).unwrap_or(false)
}

/// Lazily connected downward clients, one per backend, owned by one
/// upward connection's thread (it is the [`RouterEngine`] session).
pub struct Downstream {
    clients: HashMap<u32, ResilientClient>,
}

impl Downstream {
    fn new() -> Self {
        Self {
            clients: HashMap::new(),
        }
    }

    fn take(&mut self, shared: &Shared, b: u32) -> Result<ResilientClient, ClientError> {
        if let Some(c) = self.clients.remove(&b) {
            return Ok(c);
        }
        ResilientClient::connect(&shared.backend(b).addr, shared.config.retry.clone())
    }

    fn put(&mut self, b: u32, client: ResilientClient) {
        self.clients.insert(b, client);
    }
}

/// One round of the scatter: the pending queries grouped per backend,
/// each group sent as its own BATCH on that backend's connection,
/// concurrently.
#[allow(clippy::type_complexity)]
fn scatter_round(
    shared: &Shared,
    down: &mut Downstream,
    groups: Vec<(u32, Vec<(usize, Query)>)>,
    ctx: Option<TraceContext>,
) -> Vec<(u32, Vec<(usize, Query)>, Result<Vec<Answer>, ClientError>)> {
    // Pull each group's client out of the per-connection pool so every
    // scoped thread owns its connection exclusively.
    let work: Vec<(
        u32,
        Vec<(usize, Query)>,
        Result<ResilientClient, ClientError>,
    )> = groups
        .into_iter()
        .map(|(b, queries)| {
            let client = down.take(shared, b);
            (b, queries, client)
        })
        .collect();
    let results: Vec<(
        u32,
        Vec<(usize, Query)>,
        Result<Vec<Answer>, ClientError>,
        Option<ResilientClient>,
    )> = std::thread::scope(|scope| {
        let threads: Vec<_> = work
            .into_iter()
            .map(|(b, queries, client)| {
                scope.spawn(move || {
                    // TLS does not cross threads: the leg adopts the
                    // batch's context, opens its own span, and forwards
                    // the context (with the leg span as parent) on the
                    // wire, so backend spans parent to this leg.
                    let _ctx_guard = ctx.map(trace::adopt);
                    let mut client = match client {
                        Ok(c) => c,
                        Err(e) => return (b, queries, Err(e), None),
                    };
                    let state = shared.backend(b);
                    state.fanout.inc();
                    let batch: Vec<Query> = queries.iter().map(|&(_, q)| q).collect();
                    let leg_span = pl_obs::span!("router.leg", u64::from(b), batch.len());
                    let forward = trace::current();
                    let t0 = Instant::now();
                    let out = client.batch_ctx(&batch, forward.as_ref());
                    state.backend_ns.record(t0.elapsed().as_nanos() as u64);
                    drop(leg_span);
                    match out {
                        Ok(answers) => (b, queries, Ok(answers), Some(client)),
                        Err(e) => (b, queries, Err(e), None),
                    }
                })
            })
            .collect();
        threads
            .into_iter()
            .map(|t| t.join().expect("scatter thread panicked")) // lint: panic-ok(scatter workers catch per-backend errors into Results; a panic here is a router bug that must not be silently dropped)
            .collect()
    });
    results
        .into_iter()
        .map(|(b, queries, out, client)| {
            match (&out, client) {
                (Ok(_), Some(c)) => {
                    down.put(b, c);
                    shared.mark_healthy(b);
                }
                _ => shared.quarantine(b),
            }
            (b, queries, out)
        })
        .collect()
}

/// Answers one upward BATCH: scatter along each query's candidate list,
/// gather in request order, failing over per query until its list is
/// exhausted.
fn answer_batch(shared: &Shared, down: &mut Downstream, queries: &[Query]) -> Vec<Answer> {
    shared.batches.inc();
    shared.queries.add(queries.len() as u64);
    // The scatter span parents every leg; capture the live context here
    // (scatter span as parent) because thread-local trace state does
    // not cross into the scoped leg threads.
    let _scatter_span = pl_obs::span!("router.scatter", queries.len());
    let ctx = trace::current();
    let t0 = Instant::now();
    // Candidate lists in HRW order, live backends first (stable, so the
    // HRW preference is kept within each liveness class).
    let candidates: Vec<Vec<u32>> = queries
        .iter()
        .map(|q| {
            let cand = shared.candidate_slots(q.u, q.v);
            let (live, dead): (Vec<u32>, Vec<u32>) =
                cand.into_iter().partition(|&b| !shared.is_quarantined(b));
            live.into_iter().chain(dead).collect()
        })
        .collect();
    let mut next_candidate = vec![0usize; queries.len()];
    let mut answers: Vec<Option<Answer>> = vec![None; queries.len()];
    let max_rounds = candidates.iter().map(Vec::len).max().unwrap_or(0);
    for _round in 0..=max_rounds {
        let mut groups: HashMap<u32, Vec<(usize, Query)>> = HashMap::new();
        for (i, q) in queries.iter().enumerate() {
            if answers[i].is_some() {
                continue;
            }
            match candidates[i].get(next_candidate[i]) {
                Some(&b) => groups.entry(b).or_default().push((i, *q)),
                None => {
                    shared.exhausted.inc();
                    answers[i] = Some(Answer::Overloaded);
                }
            }
        }
        if groups.is_empty() {
            break;
        }
        let mut groups: Vec<_> = groups.into_iter().collect();
        groups.sort_unstable_by_key(|(b, _)| *b);
        for (b, queries, out) in scatter_round(shared, down, groups, ctx) {
            match out {
                Ok(got) => {
                    for ((i, _), answer) in queries.iter().zip(got) {
                        match answer {
                            // The partial store couldn't answer there, or
                            // the backend's own retries ran dry: move the
                            // query to its next candidate.
                            Answer::NotOwned | Answer::Overloaded => {
                                shared.backend(b).failover.inc();
                                next_candidate[*i] += 1;
                            }
                            settled => answers[*i] = Some(settled),
                        }
                    }
                }
                Err(_) => {
                    // The whole connection failed (backend dead?): every
                    // query in the group fails over.
                    for (i, _) in &queries {
                        shared.backend(b).failover.inc();
                        next_candidate[*i] += 1;
                    }
                }
            }
        }
    }
    shared.batch_ns.record(t0.elapsed().as_nanos() as u64);
    answers
        .into_iter()
        .map(|a| a.unwrap_or(Answer::Overloaded))
        .collect()
}

/// Merged cluster STATS: counters summed over reachable backends,
/// quantiles from the router's own batch histogram, per-backend cache
/// counters in the per-shard slots.
fn merged_stats(shared: &Shared, down: &mut Downstream) -> Snapshot {
    let mut merged = router_snapshot(shared);
    merged.adj_queries = 0;
    merged.shard_cache.clear();
    for b in shared.current_slots() {
        let Ok(mut client) = down.take(shared, b) else {
            merged.shard_cache.push((0, 0));
            continue;
        };
        match client.stats() {
            Ok(s) => {
                merged.adj_queries += s.adj_queries;
                merged.dist_queries += s.dist_queries;
                merged.connections += s.connections;
                merged.cache_hits += s.cache_hits;
                merged.cache_misses += s.cache_misses;
                merged.bytes_in += s.bytes_in;
                merged.bytes_out += s.bytes_out;
                merged.protocol_errors += s.protocol_errors;
                merged.slow_queries += s.slow_queries;
                merged.faults_injected += s.faults_injected;
                merged.shed += s.shed;
                merged.open_conns += s.open_conns;
                merged.shard_cache.push((s.cache_hits, s.cache_misses));
                down.put(b, client);
            }
            Err(_) => {
                merged.shard_cache.push((0, 0));
                shared.quarantine(b);
            }
        }
    }
    merged
}

// Re-exported for the `plab cluster stats` pretty-printer.
pub use pl_wire::protocol::HealthReport;
