//! A local cluster process group.
//!
//! `plab cluster launch` funnels here: split the labeling, spawn one
//! `plab serve <part> --addr 127.0.0.1:0 --partial` child per backend,
//! read each child's bound address off its stderr (`listening on …`),
//! assemble the [`ClusterMap`], and start the [router](crate::router)
//! in-process. Children bind ephemeral ports themselves, so there is no
//! pick-a-port race; the map is written to the working directory for
//! post-mortem tooling.
//!
//! Shutdown is drain-then-kill: the router stops accepting and joins
//! its threads first (in-flight upward batches finish), then every
//! child is killed and reaped. The launcher prints child pids up front
//! precisely so chaos tests can SIGKILL one mid-load.

use std::io::BufRead as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use pl_serve::TaggedLabeling;
use pl_wire::fault::FaultPlan;
use pl_wire::FrontendOptions;

use crate::map::ClusterMap;
use crate::partition::Partitioner;
use crate::router::{route_with, RouterConfig, RouterHandle};
use crate::split::{split_all, SplitReport};

/// What to launch.
#[derive(Debug, Clone)]
pub struct LaunchOptions {
    /// Binary to spawn backends with (normally `plab` itself, via
    /// `std::env::current_exe()`).
    pub exe: PathBuf,
    /// Working directory for part files and the map.
    pub dir: PathBuf,
    /// Number of backends.
    pub backends: usize,
    /// Owners per vertex.
    pub replicas: usize,
    /// HRW seed.
    pub seed: u64,
    /// Upward router address (e.g. `127.0.0.1:0`).
    pub router_addr: String,
    /// Fault-plan spec forwarded to every backend (chaos mode).
    pub fault_plan: Option<String>,
    /// Router tuning.
    pub config: RouterConfig,
    /// Router-side connection cap; excess upward connections are shed
    /// with `OVERLOADED` by the shared front-end.
    pub max_conns: Option<usize>,
    /// Router-side idle-connection reap deadline.
    pub idle_timeout: Option<Duration>,
    /// Router-side mid-frame stall (and write) deadline.
    pub stall_timeout: Option<Duration>,
    /// Fault plan injected at the *router's* front-end (the backends
    /// get [`fault_plan`](Self::fault_plan) via their CLI flag).
    pub router_fault_plan: Option<FaultPlan>,
    /// Enable trace rings cluster-wide: the router process turns its own
    /// tracing on and every backend is spawned with `--trace`, so a
    /// traced batch yields spans on both sides of the wire.
    pub trace: bool,
}

/// A running cluster: the router handle plus the backend children.
pub struct ClusterHandle {
    /// `(backend id, child, bound address)` per backend.
    pub children: Vec<(u32, Child, String)>,
    /// The in-process router.
    pub router: RouterHandle,
    /// The assembled (and saved) map.
    pub map: ClusterMap,
    /// Split accounting per backend.
    pub reports: Vec<SplitReport>,
}

impl ClusterHandle {
    /// Drains the router, then kills and reaps every backend child.
    pub fn shutdown(self) -> pl_wire::Snapshot {
        let stats = self.router.shutdown();
        for (_, mut child, _) in self.children {
            child.kill().ok();
            child.wait().ok();
        }
        stats
    }
}

/// Reads the child's stderr until the `listening on ADDR` line, then
/// detaches a drainer thread so the pipe can never fill and block the
/// backend.
fn wait_for_addr(backend: u32, child: &mut Child) -> Result<String, String> {
    let stderr = child
        .stderr
        .take()
        .ok_or_else(|| format!("backend {backend}: no stderr pipe"))?;
    let mut reader = std::io::BufReader::new(stderr);
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut line = String::new();
    loop {
        if Instant::now() > deadline {
            return Err(format!("backend {backend}: no listening line in 30s"));
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Err(format!("backend {backend}: exited before binding")),
            Ok(_) => {
                if let Some(addr) = line.trim().strip_prefix("listening on ") {
                    let addr = addr.trim().to_string();
                    std::thread::Builder::new()
                        .name(format!("plcluster-drain-{backend}"))
                        .spawn(move || {
                            let mut sink = String::new();
                            while matches!(reader.read_line(&mut sink), Ok(k) if k > 0) {
                                sink.clear();
                            }
                        })
                        .ok();
                    return Ok(addr);
                }
            }
            Err(e) => return Err(format!("backend {backend}: reading stderr: {e}")),
        }
    }
}

/// Splits `tagged`, spawns the backends, waits for their addresses, and
/// starts the router. The map is saved as `cluster.plcm` in
/// `opts.dir`.
pub fn launch(tagged: &TaggedLabeling, opts: &LaunchOptions) -> Result<ClusterHandle, String> {
    std::fs::create_dir_all(&opts.dir).map_err(|e| format!("creating {:?}: {e}", opts.dir))?;
    let part = Partitioner::new(opts.seed, opts.backends, opts.replicas);
    let (parts, reports) = split_all(tagged, &part).map_err(|e| e.to_string())?;
    let mut part_paths: Vec<PathBuf> = Vec::with_capacity(parts.len());
    for (b, sub) in parts.iter().enumerate() {
        let path = opts.dir.join(format!("part_{b}.plab"));
        sub.save(&path)
            .map_err(|e| format!("writing {path:?}: {e}"))?;
        part_paths.push(path);
    }

    let mut children: Vec<(u32, Child, String)> = Vec::with_capacity(opts.backends);
    let spawn_one = |b: u32, path: &Path| -> Result<(u32, Child, String), String> {
        let mut cmd = Command::new(&opts.exe);
        cmd.arg("serve")
            .arg(path)
            .arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--partial")
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        if let Some(plan) = &opts.fault_plan {
            cmd.arg("--fault-plan").arg(plan);
        }
        if opts.trace {
            cmd.arg("--trace");
        }
        let mut child = cmd
            .spawn()
            .map_err(|e| format!("spawning backend {b}: {e}"))?;
        let addr = wait_for_addr(b, &mut child)?;
        Ok((b, child, addr))
    };
    for (b, path) in part_paths.iter().enumerate() {
        match spawn_one(b as u32, path) {
            Ok(entry) => children.push(entry),
            Err(e) => {
                for (_, mut child, _) in children {
                    child.kill().ok();
                    child.wait().ok();
                }
                return Err(e);
            }
        }
    }

    let map = ClusterMap {
        epoch: 1,
        seed: opts.seed,
        replicas: part.replicas() as u32,
        n: u32::try_from(tagged.labeling.len()).expect("more than u32::MAX labels"), // lint: panic-ok(launch is operator tooling; vertex ids are u32 on the wire, so a larger graph cannot be served at all)
        tag: tagged.tag as u8,
        backends: children.iter().map(|(_, _, addr)| addr.clone()).collect(),
    };
    map.save(opts.dir.join("cluster.plcm"))
        .map_err(|e| format!("writing cluster.plcm: {e}"))?;

    if opts.trace {
        pl_obs::set_tracing(true);
    }
    let front = FrontendOptions {
        registry: None,
        max_conns: opts.max_conns,
        fault_plan: opts.router_fault_plan.clone(),
        idle_timeout: opts.idle_timeout,
        stall_timeout: opts.stall_timeout,
        max_version: None,
    };
    match route_with(map.clone(), &opts.router_addr, opts.config.clone(), front) {
        Ok(router) => Ok(ClusterHandle {
            children,
            router,
            map,
            reports,
        }),
        Err(e) => {
            for (_, mut child, _) in children {
                child.kill().ok();
                child.wait().ok();
            }
            Err(format!("binding router on {}: {e}", opts.router_addr))
        }
    }
}
