//! Cluster-wide trace assembly: origin tagging, causal merge, and the
//! per-hop latency decomposition behind `plab trace --explain`.
//!
//! Each process in a cluster (router + backends) drains its own
//! `pl_obs` rings as JSONL. Those streams cannot simply be
//! concatenated and sorted: every process timestamps events against its
//! *own* trace epoch, so `start_ns` values are comparable within one
//! origin but not across origins. What *is* comparable across processes
//! are the propagated trace ids and span/parent links (span ids are
//! globally unique — each process seeds its id generator with
//! process-local entropy, and the parent link crosses the wire inside
//! `TRACE_CTX`).
//!
//! [`merge`] therefore tags every line with its origin, groups lines by
//! trace id, and orders each trace *causally*: parents before children
//! (breadth-first over the span tree), ties broken by origin then
//! start time. Untraced events lead, sorted per origin; traced groups
//! follow, so front-truncation at the wire's frame cap sacrifices
//! untraced noise before traced spans. The output is one JSONL stream —
//! what the router returns for a cluster-wide `TRACE_DUMP` and what
//! `plab trace --cluster` writes.
//!
//! [`explain`] renders one trace from such a stream as an indented span
//! tree plus a latency decomposition. Cross-process *timestamps* are
//! meaningless, but cross-process *durations* are not, so the
//! decomposition is all durations: router batch time, scatter time,
//! router queue (batch − scatter), per-leg round trip, backend batch
//! time, wire overhead (leg − backend batch), and backend store time.

use std::collections::{BTreeMap, HashMap};

/// One parsed (and origin-tagged) trace line.
#[derive(Debug, Clone)]
pub struct TraceLine {
    /// Which process drained it: `router`, `b0`, `b1`, … or `local`.
    pub origin: String,
    /// 32-hex-digit trace id; empty for untraced events.
    pub trace: String,
    /// The event's own span id (0 for pre-v5 streams).
    pub span: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Start time in the *origin's* epoch — only comparable within one
    /// origin.
    pub start_ns: u64,
    /// Duration (comparable across origins).
    pub dur_ns: u64,
    /// Span name.
    pub name: String,
    /// First payload word (`router.leg` stores the backend id here).
    pub a: u64,
    /// The tagged JSON line (no trailing newline).
    pub raw: String,
}

/// Extracts the raw text of `"key":…` from a single JSON line. Values
/// are either quoted strings (no escapes — `pl_obs` never emits any) or
/// bare numbers. Hand-rolled because the workspace is dependency-free.
fn field_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let i = line.find(&pat)? + pat.len();
    let rest = &line[i..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.find('"').map(|end| &stripped[..end])
    } else {
        rest.find([',', '}']).map(|end| rest[..end].trim())
    }
}

fn field_u64(line: &str, key: &str) -> u64 {
    field_raw(line, key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Inserts `"origin":"…"` as the first key of a JSON object line.
/// Idempotent: a line that already carries an origin is returned as-is
/// (a router merging an already-tagged backend stream must not
/// double-tag).
#[must_use]
pub fn tag_origin(line: &str, origin: &str) -> String {
    let line = line.trim_end();
    if field_raw(line, "origin").is_some() {
        return line.to_string();
    }
    match line.strip_prefix('{') {
        Some("}") => format!("{{\"origin\":\"{origin}\"}}"),
        Some(rest) => format!("{{\"origin\":\"{origin}\",{rest}"),
        None => line.to_string(),
    }
}

/// Parses one JSONL stream, tagging every line with `origin` (unless it
/// already carries one, which wins).
#[must_use]
pub fn parse_stream(jsonl: &str, origin: &str) -> Vec<TraceLine> {
    jsonl
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|line| {
            let raw = tag_origin(line, origin);
            TraceLine {
                origin: field_raw(&raw, "origin").unwrap_or(origin).to_string(),
                trace: field_raw(&raw, "trace").unwrap_or("").to_string(),
                span: field_u64(&raw, "span"),
                parent: field_u64(&raw, "parent"),
                start_ns: field_u64(&raw, "start_ns"),
                dur_ns: field_u64(&raw, "dur_ns"),
                name: field_raw(&raw, "name").unwrap_or("?").to_string(),
                a: field_u64(&raw, "a"),
                raw,
            }
        })
        .collect()
}

/// Orders one trace's lines causally: breadth-first over the span tree
/// (every parent precedes all its children), roots first. Lines whose
/// parent is not in the trace (e.g. ring-wrapped away) count as roots.
/// Ties order by origin then start time — never across origins by
/// timestamp alone.
fn causal_order(mut lines: Vec<TraceLine>) -> Vec<TraceLine> {
    lines.sort_by(|x, y| {
        x.origin
            .cmp(&y.origin)
            .then(x.start_ns.cmp(&y.start_ns))
            .then(x.span.cmp(&y.span))
    });
    let present: HashMap<u64, usize> = lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.span != 0)
        .map(|(i, l)| (l.span, i))
        .collect();
    let mut children: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut roots: Vec<usize> = Vec::new();
    for (i, l) in lines.iter().enumerate() {
        if l.parent != 0 && present.contains_key(&l.parent) && present.get(&l.parent) != Some(&i) {
            children.entry(l.parent).or_default().push(i);
        } else {
            roots.push(i);
        }
    }
    let mut order: Vec<usize> = Vec::with_capacity(lines.len());
    let mut queue: std::collections::VecDeque<usize> = roots.into();
    while let Some(i) = queue.pop_front() {
        order.push(i);
        if let Some(kids) = children.remove(&lines[i].span) {
            queue.extend(kids);
        }
    }
    // Cycles (torn events) never reach the queue; append them so no
    // line is silently dropped.
    if order.len() < lines.len() {
        let mut seen = vec![false; lines.len()];
        for &i in &order {
            seen[i] = true;
        }
        order.extend((0..lines.len()).filter(|&i| !seen[i]));
    }
    let mut by_index: Vec<Option<TraceLine>> = lines.drain(..).map(Some).collect();
    order
        .into_iter()
        .map(|i| by_index[i].take().expect("each index emitted once")) // lint: panic-ok(order is a permutation of 0..lines.len() by construction — dedup plus the fill loop above)
        .collect()
}

/// Merges per-origin JSONL streams into one causally-ordered stream:
/// untraced events per origin in start order first, then traced events
/// grouped by trace id (parents before children). Traced groups come
/// *last* because the wire truncates oversized dumps from the front —
/// the traced spans are the lines that must survive. `streams` is
/// `(origin, jsonl)` — typically `("router", …)` plus one `("b{i}", …)`
/// per backend.
#[must_use]
pub fn merge(streams: &[(String, String)]) -> String {
    let mut traced: BTreeMap<String, Vec<TraceLine>> = BTreeMap::new();
    let mut untraced: Vec<TraceLine> = Vec::new();
    for (origin, jsonl) in streams {
        for line in parse_stream(jsonl, origin) {
            if line.trace.is_empty() {
                untraced.push(line);
            } else {
                traced.entry(line.trace.clone()).or_default().push(line);
            }
        }
    }
    let mut out = String::new();
    untraced.sort_by(|x, y| {
        x.origin
            .cmp(&y.origin)
            .then(x.start_ns.cmp(&y.start_ns))
            .then(x.span.cmp(&y.span))
    });
    for l in untraced {
        out.push_str(&l.raw);
        out.push('\n');
    }
    for (_, lines) in traced {
        for l in causal_order(lines) {
            out.push_str(&l.raw);
            out.push('\n');
        }
    }
    out
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders one trace from a merged JSONL stream: an indented causal
/// span tree plus the per-hop latency decomposition (all durations —
/// cross-process timestamps are not comparable, durations are).
/// Returns `None` when the stream has no line with that trace id.
#[must_use]
pub fn explain(merged_jsonl: &str, trace_hex: &str) -> Option<String> {
    let lines: Vec<TraceLine> = parse_stream(merged_jsonl, "local")
        .into_iter()
        .filter(|l| l.trace == trace_hex)
        .collect();
    if lines.is_empty() {
        return None;
    }
    let ordered = causal_order(lines);
    let mut depth: HashMap<u64, usize> = HashMap::new();
    let mut out = format!("trace {trace_hex}: {} spans\n", ordered.len());
    for l in &ordered {
        let d = l
            .parent
            .checked_sub(1)
            .and_then(|_| depth.get(&l.parent).copied())
            .map_or(0, |pd| pd + 1);
        if l.span != 0 {
            depth.insert(l.span, d);
        }
        let extra = if l.name == "router.leg" {
            format!(" backend={}", l.a)
        } else {
            String::new()
        };
        out.push_str(&format!(
            "{:indent$}{} [{}] {}{}\n",
            "",
            l.name,
            l.origin,
            fmt_ns(l.dur_ns),
            extra,
            indent = 2 * d
        ));
    }

    // Decomposition. Router-side spans:
    let router_batch: u64 = ordered
        .iter()
        .filter(|l| l.origin == "router" && l.name == "serve.batch")
        .map(|l| l.dur_ns)
        .max()
        .unwrap_or(0);
    let scatter: u64 = ordered
        .iter()
        .filter(|l| l.name == "router.scatter")
        .map(|l| l.dur_ns)
        .max()
        .unwrap_or(0);
    out.push_str("\nper-hop decomposition (durations; clocks differ per process):\n");
    if router_batch > 0 {
        out.push_str(&format!(
            "  router batch total     {}\n",
            fmt_ns(router_batch)
        ));
        out.push_str(&format!(
            "  router queue/assemble  {}  (batch − scatter)\n",
            fmt_ns(router_batch.saturating_sub(scatter))
        ));
    }
    if scatter > 0 {
        out.push_str(&format!("  router scatter         {}\n", fmt_ns(scatter)));
    }
    // Per-leg: leg span (round trip) vs that backend's serve.batch.
    let legs: Vec<&TraceLine> = ordered.iter().filter(|l| l.name == "router.leg").collect();
    for leg in legs {
        let backend_origin = format!("b{}", leg.a);
        let backend_batch: u64 = ordered
            .iter()
            .filter(|l| l.origin == backend_origin && l.name == "serve.batch")
            .map(|l| l.dur_ns)
            .max()
            .unwrap_or(0);
        let store_ns: u64 = ordered
            .iter()
            .filter(|l| l.origin == backend_origin && l.name == "store.adjacent")
            .map(|l| l.dur_ns)
            .sum();
        out.push_str(&format!(
            "  leg → backend {}        rtt {}  backend batch {}  wire/queue {}  store {}\n",
            leg.a,
            fmt_ns(leg.dur_ns),
            fmt_ns(backend_batch),
            fmt_ns(leg.dur_ns.saturating_sub(backend_batch)),
            fmt_ns(store_ns),
        ));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_origin_inserts_once() {
        let line = r#"{"name":"serve.batch","tid":0,"start_ns":5,"dur_ns":9,"a":1,"b":0,"span":3,"parent":2}"#;
        let tagged = tag_origin(line, "b0");
        assert!(tagged.starts_with(r#"{"origin":"b0","name""#));
        // Idempotent, and an existing origin wins.
        assert_eq!(tag_origin(&tagged, "router"), tagged);
    }

    #[test]
    fn field_extraction_handles_strings_and_numbers() {
        let line = r#"{"origin":"b1","name":"x","trace":"00ff","span":12,"parent":7,"start_ns":123,"dur_ns":4,"a":9,"b":0}"#;
        assert_eq!(field_raw(line, "origin"), Some("b1"));
        assert_eq!(field_raw(line, "trace"), Some("00ff"));
        assert_eq!(field_u64(line, "span"), 12);
        assert_eq!(field_u64(line, "parent"), 7);
        assert_eq!(field_u64(line, "b"), 0);
        assert_eq!(field_raw(line, "missing"), None);
    }

    #[test]
    fn merge_orders_parents_before_children_across_origins() {
        let t = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa";
        // Backend events have *smaller* timestamps than the router's
        // (different epochs); a timestamp sort would invert causality.
        let router = format!(
            "{{\"name\":\"serve.batch\",\"tid\":0,\"start_ns\":900,\"dur_ns\":50,\"a\":1,\"b\":0,\"trace\":\"{t}\",\"span\":1,\"parent\":0}}\n\
             {{\"name\":\"router.scatter\",\"tid\":0,\"start_ns\":910,\"dur_ns\":40,\"a\":1,\"b\":0,\"trace\":\"{t}\",\"span\":2,\"parent\":1}}\n\
             {{\"name\":\"router.leg\",\"tid\":1,\"start_ns\":915,\"dur_ns\":30,\"a\":0,\"b\":1,\"trace\":\"{t}\",\"span\":3,\"parent\":2}}\n"
        );
        let backend = format!(
            "{{\"name\":\"serve.batch\",\"tid\":0,\"start_ns\":5,\"dur_ns\":20,\"a\":1,\"b\":0,\"trace\":\"{t}\",\"span\":4,\"parent\":3}}\n\
             {{\"name\":\"store.adjacent\",\"tid\":0,\"start_ns\":7,\"dur_ns\":10,\"a\":1,\"b\":2,\"trace\":\"{t}\",\"span\":5,\"parent\":4}}\n\
             {{\"name\":\"other.local\",\"tid\":0,\"start_ns\":1,\"dur_ns\":1,\"a\":0,\"b\":0,\"span\":6,\"parent\":0}}\n"
        );
        let merged = merge(&[("router".to_string(), router), ("b0".to_string(), backend)]);
        let names: Vec<&str> = merged
            .lines()
            .map(|l| field_raw(l, "name").unwrap())
            .collect();
        assert_eq!(
            names,
            vec![
                "other.local",
                "serve.batch",
                "router.scatter",
                "router.leg",
                "serve.batch",
                "store.adjacent"
            ]
        );
        // Origin tags present on every line; untraced events lead (the
        // wire front-truncates oversized dumps, so traced spans sit at
        // the surviving end).
        assert!(merged.lines().all(|l| field_raw(l, "origin").is_some()));
        let first = merged.lines().next().unwrap();
        assert_eq!(field_raw(first, "trace"), None);

        // The explain view resolves the same trace.
        let text = explain(&merged, t).expect("trace present");
        assert!(text.contains("router.leg"), "{text}");
        assert!(text.contains("leg → backend 0"), "{text}");
        assert!(explain(&merged, "ffffffffffffffffffffffffffffffff").is_none());
    }
}
