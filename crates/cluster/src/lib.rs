//! pl-cluster: distributed label serving.
//!
//! The labels of Theorems 3/4 are tiny and self-contained — adjacency is
//! answered from two labels alone, no graph in sight — which makes a
//! labeling a natural unit to partition and replicate. This crate turns
//! one `.plab` file into a serving *cluster*:
//!
//! * [`partition`] — a deterministic rendezvous (HRW) vertex
//!   partitioner over a seeded universal hash family: every vertex
//!   ranks all backends by a seeded score and is *owned* by the top `R`
//!   (the replication factor). No directory service, no state — any
//!   party with the seed computes the same assignment. Since the
//!   reconfiguration work it lives in [`pl_serve::partition`] (backends
//!   validate pushed maps themselves) and is re-exported here.
//! * [`map`] — the serializable [`ClusterMap`]: epoch-numbered,
//!   FNV-checksummed description of the partitioning plus the
//!   backend-address list, small enough to hand to every router (and,
//!   since protocol v6, to push to every backend over `MAP_SET`).
//!   Likewise re-exported from [`pl_serve::map`].
//! * [`reconfig`] — the live-rebalance coordinator: takes the cluster
//!   from epoch `E` to `E+1` without dropping a query by preparing the
//!   new map everywhere, streaming re-owned labels into the gaining
//!   backends while the router dual-routes against both maps, then
//!   committing backends-first and shrinking the losers (see
//!   RELIABILITY.md §Reconfiguration).
//! * [`split`] — cuts a threshold labeling into per-partition PLL2
//!   sub-stores: owned vertices keep their full, bit-identical label;
//!   every other vertex shrinks to a *prelude stub* (id width + scheme
//!   id + fat flag). Stubs are what make one-sided decoding work: a
//!   thin owned label scans its own neighbour list for the stub's
//!   scheme id, and a fat owned bitmap is tested against it.
//! * [`router`] — a scatter-gather engine behind the *shared*
//!   [`pl_wire::frontend`] transport: clients connect to it exactly as
//!   to a single backend, and the router inherits shedding, idle/stall
//!   deadlines, drain-on-shutdown, and fault injection from the same
//!   hardened front-end `pl_serve` uses. Downward it speaks the same
//!   protocol through [`pl_serve`]'s resilient client, fanning each
//!   `BATCH` out per-partition and re-asking per-query failures
//!   (`NOT_OWNED`, overload, dead backend) along the HRW candidate
//!   list `owners(u) ∪ owners(v)`, with quarantine and seeded-backoff
//!   re-probing for unhealthy backends.
//! * [`launch`] — a local process group: split, spawn one `plab serve
//!   --partial` child per backend, start the router in-process, drain
//!   and kill on shutdown. This is what `plab cluster launch` runs and
//!   what CI chaos-tests by SIGKILLing a backend mid-load.
//! * [`trace_merge`] — cluster-wide trace assembly: per-origin tagging
//!   and the causal (parent-before-child) merge of router + backend
//!   trace rings behind the router's `TRACE_DUMP` and
//!   `plab trace --cluster` / `--explain` (protocol v5 trace context).
//!
//! With `R ≥ 2` the candidate list survives any single backend death:
//! the killed backend owned at most one of each endpoint's replica
//! slots, so a live owner of `u` and a live owner of `v` both remain —
//! and between them every fat/thin case of the threshold decoder is
//! answerable (see `pl_serve::store`'s partial-store docs).

pub mod launch;
pub mod reconfig;
pub mod router;
pub mod split;
pub mod trace_merge;

// The map and partitioner moved down into pl-serve so backends can
// validate pushed maps and compute ownership during reconfiguration;
// the historical pl_cluster paths keep working through these shims.
pub use pl_serve::{map, partition};

pub use launch::{launch, ClusterHandle, LaunchOptions};
pub use map::{ClusterMap, MapError};
pub use partition::Partitioner;
pub use reconfig::{rebalance, RebalanceAction, RebalanceOptions, ReconfigError, ReconfigReport};
pub use router::{route, route_with, RouterConfig, RouterEngine, RouterHandle};
pub use split::{split_all, split_one, stub_all, SplitError, SplitReport};
pub use trace_merge::{explain as explain_trace, merge as merge_traces, tag_origin};
