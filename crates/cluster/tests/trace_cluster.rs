//! Distributed-tracing acceptance at the cluster layer: one traced
//! batch through a 3×2 router must come back out of TRACE_DUMP as a
//! single trace with an unbroken parent chain
//! `client ctx → serve.batch → router.scatter → router.leg → serve.batch
//! → store.adjacent`.
//!
//! The backends here are in-process (same trace rings as the router),
//! so the *origin* tagging all says `router` — the multi-process origin
//! split is exercised by the CI tracing smoke via `plab cluster
//! launch`. What this test pins is the wire propagation and the parent
//! links, which are process-independent.

use std::sync::Arc;
use std::time::Duration;

use pl_cluster::{route, split_all, ClusterMap, Partitioner, RouterConfig};
use pl_labeling::scheme::AdjacencyScheme;
use pl_labeling::ThresholdScheme;
use pl_obs::TraceContext;
use pl_serve::{
    Client, LabelStore, Query, RetryPolicy, SchemeTag, ServeOptions, ServerHandle, StoreConfig,
    TaggedLabeling,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 0x7ACE;

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let i = line.find(&pat)? + pat.len();
    let rest = &line[i..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.find('"').map(|end| &stripped[..end])
    } else {
        rest.find([',', '}']).map(|end| rest[..end].trim())
    }
}

fn spin_cluster(backends: usize, replicas: usize) -> (Vec<ServerHandle>, ClusterMap) {
    let mut rng = StdRng::seed_from_u64(5);
    let g = pl_gen::chung_lu_power_law(300, 2.5, 4.0, &mut rng);
    let tagged = TaggedLabeling {
        tag: SchemeTag::Threshold,
        labeling: ThresholdScheme::with_tau(5).encode(&g),
    };
    let part = Partitioner::new(SEED, backends, replicas);
    let (parts, _) = split_all(&tagged, &part).expect("split");
    let handles: Vec<ServerHandle> = parts
        .into_iter()
        .map(|sub| {
            let store = Arc::new(LabelStore::new(sub, StoreConfig::default()).with_partial(true));
            pl_serve::serve_with(store, "127.0.0.1:0", ServeOptions::default()).expect("bind")
        })
        .collect();
    let map = ClusterMap {
        epoch: 1,
        seed: SEED,
        replicas: replicas as u32,
        n: tagged.labeling.len() as u32,
        tag: tagged.tag as u8,
        backends: handles.iter().map(|h| h.addr().to_string()).collect(),
    };
    (handles, map)
}

#[test]
fn traced_batch_through_router_links_every_hop() {
    let (backends, map) = spin_cluster(3, 2);
    let config = RouterConfig {
        retry: RetryPolicy {
            max_retries: 3,
            deadline: Some(Duration::from_millis(400)),
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(40),
            seed: SEED,
        },
        probe_interval: Duration::from_millis(50),
    };
    let router = route(map, "127.0.0.1:0", config).expect("router");

    let _ = pl_obs::trace::drain_jsonl();
    pl_obs::set_tracing(true);
    let ctx = TraceContext {
        parent_span: 7,
        ..TraceContext::root()
    };
    let mut client = Client::connect(router.addr()).expect("connect");
    let queries = [
        Query::adjacent(0, 1),
        Query::adjacent(5, 9),
        Query::adjacent(200, 100),
    ];
    let answers = client
        .batch_ctx(&queries, Some(&ctx))
        .expect("traced batch");
    assert_eq!(answers.len(), 3);

    // The router's TRACE_DUMP is the *merged* cluster stream.
    let jsonl = client.trace_dump().expect("cluster dump");
    pl_obs::set_tracing(false);

    let hex = ctx.trace_hex();
    let ours: Vec<&str> = jsonl
        .lines()
        .filter(|l| field(l, "trace") == Some(&hex))
        .collect();
    assert!(
        ours.len() >= 4,
        "expected the full span chain, got {} lines:\n{jsonl}",
        ours.len()
    );
    assert!(
        ours.iter().all(|l| field(l, "origin").is_some()),
        "every merged line must be origin-tagged"
    );

    let find = |name: &str| -> Vec<&&str> {
        ours.iter()
            .filter(|l| field(l, "name") == Some(name))
            .collect()
    };
    let batch_router = find("serve.batch");
    let batch_router = batch_router
        .iter()
        .find(|l| field(l, "parent") == Some("7"))
        .expect("router serve.batch parenting to the client context");
    let router_batch_span = field(batch_router, "span").expect("span");

    let scatters = find("router.scatter");
    let scatter = scatters
        .iter()
        .find(|l| field(l, "parent") == Some(router_batch_span))
        .expect("router.scatter parenting to serve.batch");
    let scatter_span = field(scatter, "span").expect("span");

    let legs = find("router.leg");
    assert!(
        !legs.is_empty()
            && legs
                .iter()
                .all(|l| field(l, "parent") == Some(scatter_span)),
        "every router.leg must parent to router.scatter"
    );
    let leg_spans: Vec<&str> = legs.iter().filter_map(|l| field(l, "span")).collect();

    let backend_batches: Vec<&&str> = find("serve.batch")
        .into_iter()
        .filter(|l| leg_spans.contains(&field(l, "parent").unwrap_or("")))
        .collect();
    assert!(
        !backend_batches.is_empty(),
        "backend serve.batch must parent to a router.leg span:\n{jsonl}"
    );
    let backend_spans: Vec<&str> = backend_batches
        .iter()
        .filter_map(|l| field(l, "span"))
        .collect();
    assert!(
        find("store.adjacent")
            .iter()
            .any(|l| backend_spans.contains(&field(l, "parent").unwrap_or(""))),
        "store.adjacent must parent to a backend serve.batch:\n{jsonl}"
    );

    // Causal merge order: a parent never appears after its child.
    let mut seen: Vec<&str> = vec![];
    for l in &ours {
        if let Some(span) = field(l, "span") {
            seen.push(span);
        }
        if let Some(parent) = field(l, "parent") {
            if parent != "0"
                && parent != "7"
                && ours.iter().any(|x| field(x, "span") == Some(parent))
            {
                assert!(
                    seen.contains(&parent),
                    "line with parent {parent} appeared before its parent:\n{jsonl}"
                );
            }
        }
    }

    client.goodbye().ok();
    router.shutdown();
    for b in backends {
        b.shutdown();
    }
}
