//! The router's upward transport is the shared `pl_wire` front-end.
//!
//! These tests pin the behaviours the router inherited from the
//! refactor rather than implementing itself: byte-identical wire
//! replies across every protocol version, connection shedding at
//! `max_conns`, and front-end fault injection — all of which the old
//! private router transport lacked (shedding, faults) or duplicated
//! (framing).

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use pl_cluster::{route_with, split_all, ClusterMap, Partitioner, RouterConfig, RouterHandle};
use pl_labeling::scheme::AdjacencyScheme;
use pl_labeling::ThresholdScheme;
use pl_serve::client::loadgen::{self, LoadgenConfig, Skew};
use pl_serve::protocol::{encode_batch, encode_hello_version, opcode, read_frame, write_frame};
use pl_serve::{
    Client, LabelStore, Query, RetryPolicy, SchemeTag, ServerHandle, StoreConfig, TaggedLabeling,
};
use pl_wire::fault::FaultPlan;
use pl_wire::FrontendOptions;

const SEED: u64 = 0xF00D;

fn retry_config() -> RouterConfig {
    RouterConfig {
        retry: RetryPolicy {
            max_retries: 3,
            deadline: Some(Duration::from_millis(400)),
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(40),
            seed: SEED,
        },
        probe_interval: Duration::from_millis(50),
    }
}

/// One-backend, one-replica cluster over `tagged`; every vertex is
/// owned, so the router's answers match a single server's exactly.
fn single_backend_cluster(
    tagged: &TaggedLabeling,
    front: FrontendOptions,
) -> (Vec<ServerHandle>, RouterHandle) {
    let part = Partitioner::new(SEED, 1, 1);
    let (parts, _) = split_all(tagged, &part).expect("split");
    let backends: Vec<ServerHandle> = parts
        .into_iter()
        .map(|sub| {
            let store = Arc::new(LabelStore::new(sub, StoreConfig::default()).with_partial(true));
            pl_serve::serve(store, "127.0.0.1:0").expect("bind backend")
        })
        .collect();
    let map = ClusterMap {
        epoch: 1,
        seed: SEED,
        replicas: 1,
        n: tagged.labeling.len() as u32,
        tag: tagged.tag as u8,
        backends: backends.iter().map(|h| h.addr().to_string()).collect(),
    };
    let router = route_with(map, "127.0.0.1:0", retry_config(), front).expect("router");
    (backends, router)
}

fn path_labeling() -> TaggedLabeling {
    let g = pl_graph::builder::from_edges(8, [(0, 1), (1, 2), (2, 3)]);
    TaggedLabeling {
        tag: SchemeTag::Threshold,
        labeling: ThresholdScheme::with_tau(4).encode(&g),
    }
}

fn counter_sum(registry: &pl_obs::MetricsRegistry, name: &str) -> u64 {
    registry
        .samples()
        .iter()
        .filter(|s| s.name == name)
        .map(|s| match s.value {
            pl_obs::registry::MetricValue::Counter(c) => c,
            _ => 0,
        })
        .sum()
}

/// The router must put the same bytes on the wire as a single server:
/// the identical golden frames `front_equivalence.rs` pins for
/// `pl_serve`, here through the scatter-gather path, on every version.
#[test]
fn router_replies_with_the_same_golden_bytes_as_a_server() {
    let (backends, router) = single_backend_cluster(&path_labeling(), FrontendOptions::default());
    for version in 1..=4u8 {
        let mut stream = TcpStream::connect(router.addr()).expect("connect");
        write_frame(&mut stream, &encode_hello_version(version)).expect("hello");
        let hello_ok = read_frame(&mut stream).expect("hello_ok");
        assert_eq!(
            hello_ok,
            vec![0x80, version, 0x01, 0x08, 0x00, 0x00, 0x00],
            "router HELLO_OK drifted on v{version}"
        );

        let queries = [Query::adjacent(0, 1), Query::adjacent(0, 3)];
        write_frame(&mut stream, &encode_batch(&queries).expect("encode")).expect("batch");
        let reply = read_frame(&mut stream).expect("reply");
        let mut golden = vec![0x81, 0x02, 0x00, 0x01, 0x00];
        if version >= 3 {
            golden.extend_from_slice(&[0x57, 0x9F, 0x20, 0x3E]); // FNV-1a-32 LE
        }
        assert_eq!(reply, golden, "router BATCH_REPLY drifted on v{version}");

        write_frame(&mut stream, &[opcode::GOODBYE]).expect("goodbye");
        assert_eq!(
            read_frame(&mut stream).expect("bye"),
            vec![opcode::GOODBYE_OK]
        );
    }
    router.shutdown();
    for b in backends {
        b.shutdown();
    }
}

/// `--max-conns` now works on the router: with a cap of 1 and one
/// handshaken client holding the slot, the next connection is shed with
/// a single `OVERLOADED` frame and the shed counters move — both in the
/// router's registry and in the merged upward STATS.
#[test]
fn router_sheds_connections_over_max_conns() {
    let (backends, router) = single_backend_cluster(
        &path_labeling(),
        FrontendOptions {
            max_conns: Some(1),
            ..FrontendOptions::default()
        },
    );

    // A fully handshaken client guarantees the one slot is claimed.
    let mut client = Client::connect(router.addr()).expect("first connection");
    assert_eq!(client.n(), 8);

    let mut extra = TcpStream::connect(router.addr()).expect("connect over cap");
    let shed = read_frame(&mut extra).expect("shed frame");
    assert_eq!(shed, vec![opcode::OVERLOADED], "expected a shed notice");

    assert!(
        counter_sum(&router.registry(), "plserve_shed_total") >= 1,
        "router registry must count the shed"
    );
    let stats = client.stats().expect("stats via router");
    assert!(stats.shed >= 1, "shed missing from merged STATS: {stats}");

    client.goodbye().ok();
    router.shutdown();
    for b in backends {
        b.shutdown();
    }
}

/// `--fault-plan` now works on the router: per-query `store_err` faults
/// injected at the router's own front-end answer `OVERLOADED` upward,
/// the retrying load generator re-asks them to correct answers, and
/// `plserve_faults_injected_total` moves in the router registry and in
/// the merged upward STATS.
#[test]
fn router_injects_faults_under_a_fault_plan() {
    let mut rng_free_graph = {
        use rand::SeedableRng as _;
        rand::rngs::StdRng::seed_from_u64(21)
    };
    let g = pl_gen::chung_lu_power_law(300, 2.5, 4.0, &mut rng_free_graph);
    let tagged = TaggedLabeling {
        tag: SchemeTag::Threshold,
        labeling: ThresholdScheme::with_tau(5).encode(&g),
    };
    let (backends, router) = single_backend_cluster(
        &tagged,
        FrontendOptions {
            fault_plan: Some(FaultPlan::parse("seed=11,store_err=0.2").expect("plan")),
            ..FrontendOptions::default()
        },
    );

    let report = loadgen::run_verified(
        router.addr(),
        &LoadgenConfig {
            connections: 2,
            requests_per_conn: 60,
            batch: 24,
            skew: Skew::Zipf(1.1),
            seed: 0xD,
            hot_order: None,
            // Generous re-ask budget: each faulted query re-rolls at
            // p=0.2, so 8 rounds make a stuck query vanishingly rare.
            retry: Some(RetryPolicy {
                max_retries: 8,
                ..RetryPolicy::default()
            }),
        },
        &g,
    )
    .expect("loadgen through faulty router");
    assert_eq!(report.mismatches, 0, "a fault leaked a wrong answer");
    assert_eq!(report.failed, 0, "retries must absorb injected store_errs");

    assert!(
        counter_sum(&router.registry(), "plserve_faults_injected_total") > 0,
        "no faults counted — router plan inert"
    );
    let mut client = Client::connect(router.addr()).expect("stats connection");
    let stats = client.stats().expect("stats");
    assert!(
        stats.faults_injected > 0,
        "faults missing from merged STATS: {stats}"
    );
    client.goodbye().ok();

    router.shutdown();
    for b in backends {
        b.shutdown();
    }
}
