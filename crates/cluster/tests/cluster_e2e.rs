//! End-to-end cluster tests: real sockets, in-process backends.
//!
//! The backends are `pl_serve` servers over partial sub-stores cut by
//! [`pl_cluster::split_all`]; the router is started on top and queried
//! through the ordinary [`pl_serve::Client`] / loadgen — exactly the
//! zero-client-changes contract the router promises. The kill test is
//! the acceptance core: with `R = 2`, shutting one backend down
//! mid-workload must not produce a single wrong answer.

use std::sync::Arc;
use std::time::Duration;

use pl_cluster::{route, split_all, ClusterMap, Partitioner, RouterConfig};
use pl_labeling::scheme::AdjacencyScheme;
use pl_labeling::ThresholdScheme;
use pl_serve::client::loadgen::{self, LoadgenConfig, Skew};
use pl_serve::{
    Client, LabelStore, Query, RetryPolicy, SchemeTag, ServeOptions, ServerHandle, StoreConfig,
    TaggedLabeling,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 0xC1E2E;

fn power_law(n: usize, seed: u64) -> pl_graph::Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    pl_gen::chung_lu_power_law(n, 2.5, 4.0, &mut rng)
}

fn encode(g: &pl_graph::Graph, tau: usize) -> TaggedLabeling {
    TaggedLabeling {
        tag: SchemeTag::Threshold,
        labeling: ThresholdScheme::with_tau(tau).encode(g),
    }
}

/// Backends over partial sub-stores + the map pointing at them.
fn spin_backends(
    tagged: &TaggedLabeling,
    backends: usize,
    replicas: usize,
    fault_plan: Option<&str>,
) -> (Vec<ServerHandle>, ClusterMap) {
    let part = Partitioner::new(SEED, backends, replicas);
    let (parts, _) = split_all(tagged, &part).expect("split");
    let handles: Vec<ServerHandle> = parts
        .into_iter()
        .map(|sub| {
            let store = Arc::new(LabelStore::new(sub, StoreConfig::default()).with_partial(true));
            pl_serve::serve_with(
                store,
                "127.0.0.1:0",
                ServeOptions {
                    fault_plan: fault_plan.map(|s| pl_serve::FaultPlan::parse(s).expect("plan")),
                    ..ServeOptions::default()
                },
            )
            .expect("bind backend")
        })
        .collect();
    let map = ClusterMap {
        epoch: 1,
        seed: SEED,
        replicas: replicas as u32,
        n: tagged.labeling.len() as u32,
        tag: tagged.tag as u8,
        backends: handles.iter().map(|h| h.addr().to_string()).collect(),
    };
    (handles, map)
}

fn router_config() -> RouterConfig {
    RouterConfig {
        retry: RetryPolicy {
            max_retries: 3,
            deadline: Some(Duration::from_millis(400)),
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(40),
            seed: SEED,
        },
        probe_interval: Duration::from_millis(50),
    }
}

#[test]
fn router_answers_like_a_single_server() {
    let g = power_law(300, 5);
    let tagged = encode(&g, 5);
    let (backends, map) = spin_backends(&tagged, 3, 2, None);
    let router = route(map, "127.0.0.1:0", router_config()).expect("router");

    let mut client = Client::connect(router.addr()).expect("connect via router");
    assert_eq!(client.n(), 300);
    assert_eq!(client.tag(), SchemeTag::Threshold as u8);

    // Every pair of a vertex sample, in batches, vs graph truth.
    let mut rng = StdRng::seed_from_u64(7);
    let queries: Vec<Query> = (0..2_000)
        .map(|_| Query::adjacent(rng.gen_range(0..300), rng.gen_range(0..300)))
        .collect();
    for chunk in queries.chunks(64) {
        let answers = client.batch(chunk).expect("batch");
        for (q, a) in chunk.iter().zip(answers) {
            let want = if g.has_edge(q.u, q.v) {
                pl_serve::Answer::Adjacent
            } else {
                pl_serve::Answer::NotAdjacent
            };
            assert_eq!(a, want, "({}, {}) through router", q.u, q.v);
        }
    }

    // Out-of-range ids answer per-query statuses, not errors.
    let answers = client
        .batch(&[Query::adjacent(0, 300), Query::adjacent(500, 600)])
        .expect("oor batch");
    assert_eq!(answers[0], pl_serve::Answer::OutOfRange);
    assert_eq!(answers[1], pl_serve::Answer::OutOfRange);

    // HEALTH reports one flag per backend; STATS merges their counters.
    let health = client.health().expect("health");
    assert!(health.healthy);
    assert_eq!(health.shards.len(), 3);
    let stats = client.stats().expect("stats");
    assert!(stats.adj_queries >= 2_000, "merged adj_queries: {stats}");
    assert_eq!(stats.shard_cache.len(), 3, "one slot per backend");

    client.goodbye().expect("goodbye");
    let snap = router.shutdown();
    assert!(snap.batches > 0);
    for b in backends {
        b.shutdown();
    }
}

#[test]
fn killing_one_backend_loses_no_answers_with_two_replicas() {
    let g = power_law(400, 9);
    let tagged = encode(&g, 6);
    let (mut backends, map) = spin_backends(&tagged, 3, 2, None);
    let router = route(map, "127.0.0.1:0", router_config()).expect("router");

    // Warm: prove the cluster answers before the kill.
    let report = loadgen::run_verified(
        router.addr(),
        &LoadgenConfig {
            connections: 2,
            requests_per_conn: 40,
            batch: 32,
            skew: Skew::Uniform,
            seed: 0xA,
            hot_order: None,
            retry: Some(RetryPolicy::default()),
        },
        &g,
    )
    .expect("warm loadgen");
    assert_eq!(report.mismatches, 0);
    assert_eq!(report.failed, 0);

    // Kill backend 0 outright, then hammer the router again: every
    // query must still answer correctly via the surviving replicas.
    backends.remove(0).shutdown();
    let report = loadgen::run_verified(
        router.addr(),
        &LoadgenConfig {
            connections: 4,
            requests_per_conn: 60,
            batch: 32,
            skew: Skew::Zipf(1.1),
            seed: 0xB,
            hot_order: None,
            retry: Some(RetryPolicy::default()),
        },
        &g,
    )
    .expect("post-kill loadgen");
    assert_eq!(report.mismatches, 0, "wrong answers after backend kill");
    assert_eq!(
        report.failed,
        0,
        "failed queries after backend kill (success {:.2}%)",
        report.success_rate() * 100.0
    );

    // The failover counter moved and the metrics surface shows it.
    let prom = router.prometheus_text();
    assert!(
        prom.contains("plcluster_failover_total"),
        "missing family in:\n{prom}"
    );
    let failovers: u64 = router
        .registry()
        .samples()
        .iter()
        .filter(|s| s.name == "plcluster_failover_total")
        .map(|s| match s.value {
            pl_obs::registry::MetricValue::Counter(c) => c,
            _ => 0,
        })
        .sum();
    assert!(failovers > 0, "no failovers counted despite a dead backend");

    // The dead backend lands in quarantine, visible via HEALTH.
    let mut deadline = 100;
    let degraded = loop {
        let live = router.backend_liveness();
        if !live[0] || deadline == 0 {
            break !live[0];
        }
        deadline -= 1;
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(degraded, "backend 0 never quarantined");

    let snap = router.shutdown();
    assert!(snap.batches > 0);
    for b in backends {
        b.shutdown();
    }
}

#[test]
fn chaos_flips_on_survivors_stay_correct() {
    // Byte flips + truncations on every backend: the router's resilient
    // downward clients must absorb them (checksum catch + replay), so
    // zero wrong answers reach the upward client.
    let g = power_law(250, 13);
    let tagged = encode(&g, 5);
    let plan = "seed=3,flip=0.05,truncate=0.03,drop=0.02,delay_ms=1";
    let (backends, map) = spin_backends(&tagged, 3, 2, Some(plan));
    let router = route(map, "127.0.0.1:0", router_config()).expect("router");

    let report = loadgen::run_verified(
        router.addr(),
        &LoadgenConfig {
            connections: 3,
            requests_per_conn: 50,
            batch: 24,
            skew: Skew::Zipf(1.2),
            seed: 0xC,
            hot_order: None,
            retry: Some(RetryPolicy::default()),
        },
        &g,
    )
    .expect("chaos loadgen");
    assert_eq!(report.mismatches, 0, "corruption reached a client");
    assert!(
        report.success_rate() > 0.99,
        "success {:.2}%",
        report.success_rate() * 100.0
    );

    let faults: u64 = backends.iter().map(|b| b.snapshot().faults_injected).sum();
    assert!(faults > 0, "no faults injected — chaos plan inert");

    router.shutdown();
    for b in backends {
        b.shutdown();
    }
}
