//! Live-reconfiguration end-to-end tests: real sockets, in-process
//! backends, a verified workload hammering the router *throughout* the
//! rollout.
//!
//! The acceptance core: a 3-backend × 2-replica cluster scales out to a
//! fourth backend (booted from an all-stub store) and then scales one
//! backend out of rotation — epoch 1 → 2 → 3 — while a continuous
//! `loadgen --verify` workload sees 100% success and zero mismatches.
//! The rollback test kills the gaining backend mid-migration and
//! demands the cluster come back *unchanged* at the old epoch.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pl_cluster::{
    rebalance, route, split_all, stub_all, ClusterMap, Partitioner, RebalanceAction,
    RebalanceOptions, RouterConfig, RouterHandle,
};
use pl_labeling::scheme::AdjacencyScheme;
use pl_labeling::ThresholdScheme;
use pl_serve::client::loadgen::{self, LoadgenConfig, Skew};
use pl_serve::{
    Client, LabelStore, Query, RetryPolicy, SchemeTag, ServeOptions, ServerHandle, StoreConfig,
    TaggedLabeling,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 0xEB0C;

fn power_law(n: usize, seed: u64) -> pl_graph::Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    pl_gen::chung_lu_power_law(n, 2.5, 4.0, &mut rng)
}

fn encode(g: &pl_graph::Graph, tau: usize) -> TaggedLabeling {
    TaggedLabeling {
        tag: SchemeTag::Threshold,
        labeling: ThresholdScheme::with_tau(tau).encode(g),
    }
}

/// Backends over partial sub-stores + the epoch-1 map pointing at them.
fn spin_backends(
    tagged: &TaggedLabeling,
    backends: usize,
    replicas: usize,
) -> (Vec<ServerHandle>, ClusterMap) {
    let part = Partitioner::new(SEED, backends, replicas);
    let (parts, _) = split_all(tagged, &part).expect("split");
    let handles: Vec<ServerHandle> = parts
        .into_iter()
        .map(|sub| {
            let store = Arc::new(LabelStore::new(sub, StoreConfig::default()).with_partial(true));
            pl_serve::serve_with(store, "127.0.0.1:0", ServeOptions::default())
                .expect("bind backend")
        })
        .collect();
    let map = ClusterMap {
        epoch: 1,
        seed: SEED,
        replicas: replicas as u32,
        n: tagged.labeling.len() as u32,
        tag: tagged.tag as u8,
        backends: handles.iter().map(|h| h.addr().to_string()).collect(),
    };
    (handles, map)
}

/// A joining backend: serves the all-stub sub-store (`NotOwned` for
/// everything) until a rebalance streams its share of labels in.
fn spin_joiner(tagged: &TaggedLabeling) -> ServerHandle {
    let (stub, report) = stub_all(tagged).expect("stub");
    assert_eq!(report.owned, 0);
    let store = Arc::new(LabelStore::new(stub, StoreConfig::default()).with_partial(true));
    pl_serve::serve_with(store, "127.0.0.1:0", ServeOptions::default()).expect("bind joiner")
}

fn router_config() -> RouterConfig {
    RouterConfig {
        retry: RetryPolicy {
            max_retries: 3,
            deadline: Some(Duration::from_millis(400)),
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(40),
            seed: SEED,
        },
        probe_interval: Duration::from_millis(50),
    }
}

/// Sums a counter family across its labeled children.
fn counter_total(router: &RouterHandle, name: &str) -> u64 {
    router
        .registry()
        .samples()
        .iter()
        .filter(|s| s.name == name)
        .map(|s| match s.value {
            pl_obs::registry::MetricValue::Counter(c) => c,
            _ => 0,
        })
        .sum()
}

/// Continuous verified load until `stop`: returns the accumulated
/// `(rounds, mismatches, failed)`.
fn background_load(
    addr: std::net::SocketAddr,
    g: Arc<pl_graph::Graph>,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<(u64, u64, u64)> {
    std::thread::spawn(move || {
        let config = LoadgenConfig {
            connections: 2,
            requests_per_conn: 20,
            batch: 32,
            skew: Skew::Uniform,
            seed: 0xF00D,
            hot_order: None,
            retry: Some(RetryPolicy::default()),
        };
        let (mut rounds, mut mismatches, mut failed) = (0u64, 0u64, 0u64);
        while !stop.load(Ordering::Relaxed) {
            let report = loadgen::run_verified(addr, &config, &g).expect("loadgen round");
            rounds += 1;
            mismatches += report.mismatches;
            failed += report.failed;
        }
        (rounds, mismatches, failed)
    })
}

/// A byte-forwarding TCP proxy that can be severed abruptly — unlike
/// [`ServerHandle::shutdown`], which *drains* open connections (and so
/// politely serves a migration to completion), killing this is a crash:
/// established sockets reset mid-frame and new connects are refused.
/// It can also be *paused*: bytes stop flowing but sockets stay open,
/// which freezes a label migration mid-stream and holds the router's
/// dual-routing window provably open.
struct Chopper {
    addr: SocketAddr,
    kill: Arc<AtomicBool>,
    paused: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

/// One proxy direction: forward bytes until EOF/error, stalling while
/// the proxy is paused (a kill unblocks the stall).
fn relay(mut from: TcpStream, mut to: TcpStream, paused: Arc<AtomicBool>, kill: Arc<AtomicBool>) {
    let mut buf = [0u8; 4096];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        while paused.load(Ordering::Relaxed) && !kill.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_micros(200));
        }
        if kill.load(Ordering::Relaxed) || to.write_all(&buf[..n]).is_err() {
            break;
        }
    }
    to.shutdown(Shutdown::Both).ok();
}

impl Chopper {
    fn start(target: SocketAddr) -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
        listener.set_nonblocking(true).expect("nonblocking");
        let addr = listener.local_addr().expect("proxy addr");
        let kill = Arc::new(AtomicBool::new(false));
        let paused = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::default();
        let (kill2, paused2, conns2) = (Arc::clone(&kill), Arc::clone(&paused), Arc::clone(&conns));
        std::thread::spawn(move || {
            while !kill2.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((up, _)) => {
                        let Ok(down) = TcpStream::connect(target) else {
                            continue;
                        };
                        let mut ends = conns2.lock().expect("conns lock");
                        ends.push(up.try_clone().expect("clone"));
                        ends.push(down.try_clone().expect("clone"));
                        drop(ends);
                        let (u, d) = (
                            up.try_clone().expect("clone"),
                            down.try_clone().expect("clone"),
                        );
                        let (p, k) = (Arc::clone(&paused2), Arc::clone(&kill2));
                        std::thread::spawn(move || relay(u, d, p, k));
                        let (p, k) = (Arc::clone(&paused2), Arc::clone(&kill2));
                        std::thread::spawn(move || relay(down, up, p, k));
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    Err(_) => break,
                }
            }
            // Dropping the listener here refuses all later connects.
        });
        Self {
            addr,
            kill,
            paused,
            conns,
        }
    }

    /// Stall every relayed byte until [`Self::resume`] (or a kill).
    fn pause(&self) {
        self.paused.store(true, Ordering::Relaxed);
    }

    fn resume(&self) {
        self.paused.store(false, Ordering::Relaxed);
    }

    /// Crash: sever every established connection and stop listening.
    fn kill(&self) {
        self.kill.store(true, Ordering::Relaxed);
        for end in self.conns.lock().expect("conns lock").drain(..) {
            end.shutdown(Shutdown::Both).ok();
        }
    }
}

#[test]
fn scale_out_then_in_under_continuous_verified_load() {
    let g = Arc::new(power_law(400, 17));
    let tagged = encode(&g, 5);
    let (backends, map) = spin_backends(&tagged, 3, 2);
    let router = route(map, "127.0.0.1:0", router_config()).expect("router");
    assert_eq!(router.epoch(), 1);

    let joiner = spin_joiner(&tagged);
    // The joiner sits behind a pausable proxy so the test can freeze
    // the label migration mid-stream and query *inside* the provably
    // open dual-routing window.
    let chopper = Chopper::start(joiner.addr());
    let joiner_addr = chopper.addr.to_string();

    // Hammer the router for the whole double-rollout.
    let stop = Arc::new(AtomicBool::new(false));
    let load = background_load(router.addr(), Arc::clone(&g), Arc::clone(&stop));

    // Small chunks stretch the dual-routing window across many label
    // round-trips, so the pause below lands mid-migration.
    let options = RebalanceOptions { chunk_bytes: 48 };

    // Scale out: epoch 1 -> 2, the joiner gains its HRW share. Run it
    // in a thread so this one can hold the window open and query it.
    let rollout = {
        let tagged = tagged.clone();
        let router_addr = router.addr().to_string();
        let joiner_addr = joiner_addr.clone();
        let options = options.clone();
        std::thread::spawn(move || {
            rebalance(
                &tagged,
                &router_addr,
                RebalanceAction::Add(joiner_addr),
                &options,
            )
        })
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    while !router.reconfiguring() {
        assert!(Instant::now() < deadline, "dual window never opened");
        std::thread::yield_now();
    }
    // Freeze the migration: the coordinator is stalled mid-stream, so
    // the window cannot close under us. Every query answered now is
    // dual-routed (new owners first, fallback to the old map) and must
    // still be correct — the frozen joiner forces the fallback path.
    chopper.pause();
    let mut during = Client::connect(router.addr()).expect("connect during window");
    let answers = during
        .batch(&[Query::adjacent(0, 1), Query::adjacent(2, 3)])
        .expect("batch during window");
    for (a, (u, v)) in answers.into_iter().zip([(0, 1), (2, 3)]) {
        let want = if g.has_edge(u, v) {
            pl_serve::Answer::Adjacent
        } else {
            pl_serve::Answer::NotAdjacent
        };
        assert_eq!(a, want, "({u},{v}) inside the dual window");
    }
    assert!(
        counter_total(&router, "plcluster_reconfig_dual_routed_total") > 0,
        "no query ever dual-routed"
    );
    chopper.resume();
    let report = rollout
        .join()
        .expect("rollout thread")
        .expect("scale-out rebalance");
    assert_eq!((report.old_epoch, report.new_epoch), (1, 2));
    assert!(report.moved > 0, "scale-out moved no vertices");
    assert_eq!(report.gained.len(), 1, "only the joiner gains on add");
    assert_eq!(report.gained[0].0, joiner_addr);
    assert!(!report.shrunk.is_empty(), "no displaced owner shrank");
    assert_eq!(router.epoch(), 2);
    assert!(!router.reconfiguring(), "window left open after commit");

    // Scale in: epoch 2 -> 3, backend 0 leaves the rotation and the
    // survivors absorb its share.
    let report_in = rebalance(
        &tagged,
        &router.addr().to_string(),
        RebalanceAction::Remove(0),
        &options,
    )
    .expect("scale-in rebalance");
    assert_eq!((report_in.old_epoch, report_in.new_epoch), (2, 3));
    assert!(report_in.moved > 0, "scale-in moved no vertices");
    assert_eq!(router.epoch(), 3);

    stop.store(true, Ordering::Relaxed);
    let (rounds, mismatches, failed) = load.join().expect("load thread");
    assert!(rounds > 0, "workload never ran");
    assert_eq!(mismatches, 0, "wrong answers during reconfiguration");
    assert_eq!(failed, 0, "failed queries during reconfiguration");

    // The reconfiguration counters observed both rollouts.
    assert_eq!(counter_total(&router, "plcluster_reconfig_epochs_total"), 2);
    assert_eq!(
        counter_total(&router, "plcluster_reconfig_vertices_moved_total"),
        report.moved + report_in.moved
    );
    assert_eq!(
        counter_total(&router, "plcluster_reconfig_rollbacks_total"),
        0
    );

    // One last verified pass against the settled epoch-3 cluster.
    let report = loadgen::run_verified(
        router.addr(),
        &LoadgenConfig {
            connections: 2,
            requests_per_conn: 40,
            batch: 32,
            skew: Skew::Zipf(1.1),
            seed: 0xBEEF,
            hot_order: None,
            retry: Some(RetryPolicy::default()),
        },
        &g,
    )
    .expect("settled loadgen");
    assert_eq!(report.mismatches, 0);
    assert_eq!(report.failed, 0);

    router.shutdown();
    joiner.shutdown();
    for b in backends {
        b.shutdown();
    }
}

#[test]
fn killing_the_gaining_backend_rolls_the_cluster_back() {
    let g = Arc::new(power_law(600, 23));
    let tagged = encode(&g, 5);
    let (backends, map) = spin_backends(&tagged, 3, 2);
    let router = route(map, "127.0.0.1:0", router_config()).expect("router");
    let joiner = spin_joiner(&tagged);
    // The cluster reaches the joiner only through the severable proxy.
    let chopper = Chopper::start(joiner.addr());
    let joiner_addr = chopper.addr.to_string();

    let stop = Arc::new(AtomicBool::new(false));
    let load = background_load(router.addr(), Arc::clone(&g), Arc::clone(&stop));

    // Tiny chunks: hundreds of round-trips to the joiner, a wide
    // mid-migration window for the kill below to land in.
    let options = RebalanceOptions { chunk_bytes: 48 };
    let rollout = {
        let tagged = tagged.clone();
        let router_addr = router.addr().to_string();
        std::thread::spawn(move || {
            rebalance(
                &tagged,
                &router_addr,
                RebalanceAction::Add(joiner_addr),
                &options,
            )
        })
    };

    // The dual window opening means every backend prepared and label
    // streaming is under way — freeze the stream so the rollout cannot
    // finish before the crash lands, then crash the gaining backend.
    let deadline = Instant::now() + Duration::from_secs(10);
    while !router.reconfiguring() {
        assert!(Instant::now() < deadline, "dual window never opened");
        std::thread::yield_now();
    }
    chopper.pause();
    chopper.kill();

    let err = rollout
        .join()
        .expect("rollout thread")
        .expect_err("rebalance must fail once the gaining backend dies");
    let msg = err.to_string();
    assert!(
        msg.contains("transport") || msg.contains("refused"),
        "unexpected failure: {msg}"
    );

    // Rolled back: old epoch, window closed, rollback counted — and the
    // aborted push never became observable.
    assert_eq!(router.epoch(), 1, "epoch moved despite the rollback");
    assert!(!router.reconfiguring(), "dual window left open");
    assert!(
        counter_total(&router, "plcluster_reconfig_rollbacks_total") > 0,
        "rollback not counted"
    );
    assert_eq!(counter_total(&router, "plcluster_reconfig_epochs_total"), 0);

    stop.store(true, Ordering::Relaxed);
    let (rounds, mismatches, failed) = load.join().expect("load thread");
    assert!(rounds > 0);
    assert_eq!(mismatches, 0, "wrong answers during the aborted rollout");
    assert_eq!(failed, 0, "failed queries during the aborted rollout");

    router.shutdown();
    joiner.shutdown();
    for b in backends {
        b.shutdown();
    }
}
