//! Golden-bytes tests: the exact wire layout of the v3 resilience
//! additions, pinned as literal byte arrays.
//!
//! Round-trip tests prove encode and parse agree with *each other*;
//! only a byte-literal test proves they agree with the *protocol* — a
//! matched encode/parse bug (reordered fields, flipped endianness, a
//! different checksum polynomial) round-trips clean and would ship a
//! silent wire break for every already-deployed peer. Each array below
//! was written out by hand from the layout documented in
//! `protocol.rs`; if an edit changes any of these bytes, it changes
//! the protocol and must bump the version instead.

use pl_serve::metrics::Snapshot;
use pl_serve::protocol::{
    checksum, encode_batch_reply, encode_stats_reply, parse_batch_reply, parse_stats_reply, Answer,
};

/// BATCH_REPLY on a v3 session: `0x81 | count u16 LE | status bytes |
/// FNV-1a-32 LE of everything before it`.
#[test]
fn batch_reply_v3_golden_bytes() {
    let answers = [
        Answer::Adjacent,
        Answer::NotAdjacent,
        Answer::Distance(0x0102_0304),
        Answer::Overloaded,
    ];
    #[rustfmt::skip]
    let expected: &[u8] = &[
        0x81,                   // opcode BATCH_REPLY
        0x04, 0x00,             // 4 answers, u16 LE
        0x01,                   // Adjacent
        0x00,                   // NotAdjacent
        0x02,                   // Distance tag...
        0x04, 0x03, 0x02, 0x01, // ...payload 0x01020304, u32 LE
        0xFB,                   // Overloaded (v3 status)
        0xEE, 0x6E, 0xBF, 0x5F, // FNV-1a-32 = 0x5FBF6EEE, LE
    ];
    assert_eq!(encode_batch_reply(&answers, 3), expected);
    assert_eq!(parse_batch_reply(expected, 3).unwrap(), answers);

    // The pinned checksum really is FNV-1a over the pinned payload.
    let (payload, sum) = expected.split_at(expected.len() - 4);
    assert_eq!(checksum(payload), 0x5FBF_6EEE);
    assert_eq!(u32::from_le_bytes(sum.try_into().unwrap()), 0x5FBF_6EEE);
}

/// BATCH_REPLY on a v4 session adds exactly one status byte, `0xFA` for
/// `NotOwned`; everything else (including the checksum rule) is v3's.
#[test]
fn batch_reply_v4_golden_bytes() {
    let answers = [Answer::NotOwned, Answer::Adjacent, Answer::OutOfRange];
    #[rustfmt::skip]
    let expected: &[u8] = &[
        0x81,                   // opcode BATCH_REPLY
        0x03, 0x00,             // 3 answers, u16 LE
        0xFA,                   // NotOwned (v4 status)
        0x01,                   // Adjacent
        0xFD,                   // OutOfRange
        0x3D, 0xC3, 0x1D, 0x9B, // FNV-1a-32 = 0x9B1DC33D, LE
    ];
    assert_eq!(encode_batch_reply(&answers, 4), expected);
    assert_eq!(parse_batch_reply(expected, 4).unwrap(), answers);

    // On a v3 session the v4 status must degrade to 0xFC (Malformed),
    // never leak 0xFA to a peer that cannot parse it.
    let v3 = encode_batch_reply(&answers, 3);
    assert_eq!(v3[3], 0xFC);
}

/// A corrupted frame must fail the checksum, not mis-parse: flip every
/// byte of the golden frame in turn and demand rejection.
#[test]
fn batch_reply_v3_rejects_every_single_byte_flip() {
    let good = encode_batch_reply(&[Answer::Adjacent, Answer::Distance(7)], 3);
    assert_eq!(parse_batch_reply(&good, 3).unwrap().len(), 2);
    for i in 0..good.len() {
        for flip in [0x01u8, 0x80] {
            let mut bad = good.clone();
            bad[i] ^= flip;
            assert!(
                parse_batch_reply(&bad, 3).is_err(),
                "flip 0x{flip:02X} at byte {i} parsed"
            );
        }
    }
}

/// STATS_REPLY on a v3 session: `0x82`, then the v2 layout (18 fixed
/// u64 LE words, then two words per shard), then the three-word
/// resilience trailer — faults injected, conns shed, open conns —
/// in exactly that order.
#[test]
fn stats_reply_v3_golden_bytes() {
    let snap = Snapshot {
        adj_queries: 0x0101,
        dist_queries: 0x0202,
        batches: 0x0303,
        connections: 0x0404,
        cache_hits: 0x0505,
        cache_misses: 0x0606,
        bytes_in: 0x0707,
        bytes_out: 0x0808,
        protocol_errors: 0x0909,
        p50_ns: 0x0A0A,
        p90_ns: 0x0B0B,
        p99_ns: 0x0C0C,
        p999_ns: 0x0D0D,
        min_ns: 0x0E0E,
        max_ns: 0x0F0F,
        qps_milli: 0x1010,
        slow_queries: 0x1111,
        shard_cache: vec![(0x2121, 0x2222), (0x2323, 0x2424)],
        faults_injected: 0x3131,
        shed: 0x3232,
        open_conns: 0x3333,
    };

    // The full v3 word sequence, in wire order. Positions 0..=16 are the
    // fixed counters/quantiles, 17 the shard count, then hit/miss pairs,
    // then the v3 trailer.
    #[rustfmt::skip]
    let words: &[u64] = &[
        0x0101, 0x0202, 0x0303, 0x0404,     // adj, dist, batches, conns
        0x0505, 0x0606,                     // cache hits, misses
        0x0707, 0x0808, 0x0909,             // bytes in, bytes out, proto errs
        0x0A0A, 0x0B0B, 0x0C0C, 0x0D0D,     // p50, p90, p99, p999
        0x0E0E, 0x0F0F,                     // min, max
        0x1010, 0x1111,                     // qps_milli, slow queries
        2,                                  // shard count
        0x2121, 0x2222, 0x2323, 0x2424,     // (hits, misses) per shard
        0x3131, 0x3232, 0x3333,             // v3 trailer: faults, shed, open
    ];
    let mut expected = vec![0x82u8]; // opcode STATS_REPLY
    for w in words {
        expected.extend_from_slice(&w.to_le_bytes());
    }
    assert_eq!(expected.len(), 1 + (18 + 2 * 2 + 3) * 8);

    assert_eq!(encode_stats_reply(&snap, 3), expected);
    assert_eq!(parse_stats_reply(&expected).unwrap(), snap);

    // v2 of the same snapshot is the identical prefix minus the trailer:
    // the trailer is strictly appended, never interleaved.
    let v2 = encode_stats_reply(&snap, 2);
    assert_eq!(v2[..], expected[..expected.len() - 3 * 8]);
    let from_v2 = parse_stats_reply(&v2).unwrap();
    assert_eq!(from_v2.faults_injected, 0);
    assert_eq!(from_v2.shed, 0);
    assert_eq!(from_v2.open_conns, 0);
}

/// The v1 twelve-word legacy layout, also byte-pinned (ancient clients
/// still negotiate it).
#[test]
fn stats_reply_v1_golden_bytes() {
    let snap = Snapshot {
        adj_queries: 1,
        dist_queries: 2,
        batches: 3,
        connections: 4,
        cache_hits: 5,
        cache_misses: 6,
        bytes_in: 7,
        bytes_out: 8,
        protocol_errors: 9,
        p50_ns: 10,
        p99_ns: 11,
        qps_milli: 12,
        ..Snapshot::default()
    };
    let mut expected = vec![0x82u8];
    for w in 1u64..=12 {
        expected.extend_from_slice(&w.to_le_bytes());
    }
    assert_eq!(encode_stats_reply(&snap, 1), expected);
    assert_eq!(expected.len(), 1 + 12 * 8);
    let parsed = parse_stats_reply(&expected).unwrap();
    assert_eq!(parsed.adj_queries, 1);
    assert_eq!(parsed.p99_ns, 11);
    // Fields the v1 layout cannot carry come back zeroed.
    assert_eq!(parsed.p90_ns, 0);
    assert_eq!(parsed.faults_injected, 0);
}
