//! End-to-end tests for protocol v5 distributed tracing on a single
//! server: context propagation into the server's rings, the
//! non-consuming snapshot dump, and the v5-client-vs-v4-server
//! downgrade.
//!
//! Every test here touches the process-global trace rings and tracing
//! flag, so they serialize on one mutex — tests within one integration
//! binary run concurrently, and a second drainer would otherwise race
//! the assertions.

use std::sync::{Arc, Mutex};

use pl_labeling::scheme::AdjacencyScheme;
use pl_labeling::ThresholdScheme;
use pl_obs::TraceContext;
use pl_serve::{Client, LabelStore, Query, SchemeTag, ServeOptions, StoreConfig, TaggedLabeling};
use rand::rngs::StdRng;
use rand::SeedableRng;

static RING_LOCK: Mutex<()> = Mutex::new(());

fn serve_small(max_version: Option<u8>) -> (pl_serve::ServerHandle, pl_graph::Graph) {
    let mut rng = StdRng::seed_from_u64(7);
    let g = pl_gen::chung_lu_power_law(500, 2.5, 5.0, &mut rng);
    let store = Arc::new(LabelStore::new(
        TaggedLabeling {
            tag: SchemeTag::Threshold,
            labeling: ThresholdScheme::with_tau(8).encode(&g),
        },
        StoreConfig::default(),
    ));
    let handle = pl_serve::serve_with(
        store,
        "127.0.0.1:0",
        ServeOptions {
            max_version,
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    (handle, g)
}

/// `"key":value` extraction for the JSONL assertions (string values are
/// never escaped by `pl_obs`).
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let i = line.find(&pat)? + pat.len();
    let rest = &line[i..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.find('"').map(|end| &stripped[..end])
    } else {
        rest.find([',', '}']).map(|end| rest[..end].trim())
    }
}

/// A traced batch lands in the server's rings with the propagated trace
/// id and correct parent links: `serve.batch` parents to the client's
/// context span, `store.adjacent` parents to `serve.batch`.
#[test]
fn trace_context_propagates_into_server_rings() {
    let _guard = RING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (handle, g) = serve_small(None);
    let _ = pl_obs::trace::drain_jsonl();
    pl_obs::set_tracing(true);

    let ctx = TraceContext {
        parent_span: 42,
        ..TraceContext::root()
    };
    let (u, v) = g.edges().next().expect("graph has edges");
    let mut client = Client::connect(handle.addr()).expect("connect");
    assert_eq!(client.version(), pl_serve::protocol::VERSION);
    let answers = client
        .batch_ctx(&[Query::adjacent(u, v)], Some(&ctx))
        .expect("traced batch");
    assert_eq!(answers.len(), 1);

    let jsonl = client.trace_dump().expect("trace dump");
    pl_obs::set_tracing(false);
    let hex = ctx.trace_hex();
    let batch_line = jsonl
        .lines()
        .find(|l| field(l, "name") == Some("serve.batch") && field(l, "trace") == Some(&hex))
        .unwrap_or_else(|| panic!("no traced serve.batch in:\n{jsonl}"));
    assert_eq!(
        field(batch_line, "parent"),
        Some("42"),
        "serve.batch must parent to the propagated context span"
    );
    let batch_span = field(batch_line, "span").expect("span id").to_string();
    let store_line = jsonl
        .lines()
        .find(|l| field(l, "name") == Some("store.adjacent") && field(l, "trace") == Some(&hex))
        .unwrap_or_else(|| panic!("no traced store.adjacent in:\n{jsonl}"));
    assert_eq!(
        field(store_line, "parent"),
        Some(batch_span.as_str()),
        "store.adjacent must parent to serve.batch"
    );

    client.goodbye().ok();
    handle.shutdown();
}

/// The v5 `SNAPSHOT` flag reads without consuming: two drainers both
/// see the full stream, a consuming drain afterwards still gets it, and
/// only then is the ring empty.
#[test]
fn snapshot_dump_is_non_consuming() {
    let _guard = RING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (handle, g) = serve_small(None);
    let _ = pl_obs::trace::drain_jsonl();
    pl_obs::set_tracing(true);

    let ctx = TraceContext::root();
    let (u, v) = g.edges().next().expect("graph has edges");
    let mut client = Client::connect(handle.addr()).expect("connect");
    client
        .batch_ctx(&[Query::adjacent(u, v)], Some(&ctx))
        .expect("traced batch");
    pl_obs::set_tracing(false);

    let hex = ctx.trace_hex();
    let snap1 = client.trace_snapshot().expect("first snapshot");
    let snap2 = client.trace_snapshot().expect("second snapshot");
    assert!(snap1.contains(&hex), "first snapshot missing the trace");
    assert_eq!(snap1, snap2, "snapshots must not consume");

    let drained = client.trace_dump().expect("consuming drain");
    assert!(
        drained.contains(&hex),
        "snapshots must leave the events for the consuming drain"
    );
    let empty = client.trace_dump().expect("second consuming drain");
    assert!(
        !empty.contains(&hex),
        "consuming drain must advance the watermark"
    );

    client.goodbye().ok();
    handle.shutdown();
}

/// A current client against a server capped at v4: the handshake
/// negotiates down, traced batches still answer (the context is
/// silently dropped on the wire), and the v5-only dump flags are
/// refused client-side before any bytes move.
#[test]
fn v5_client_downgrades_against_v4_server() {
    let _guard = RING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (handle, g) = serve_small(Some(4));
    let _ = pl_obs::trace::drain_jsonl();
    pl_obs::set_tracing(true);

    let mut client = Client::connect(handle.addr()).expect("connect");
    assert_eq!(client.version(), 4, "handshake must settle on the cap");

    let ctx = TraceContext::root();
    let (u, v) = g.edges().next().expect("graph has edges");
    let answers = client
        .batch_ctx(&[Query::adjacent(u, v), Query::adjacent(v, u)], Some(&ctx))
        .expect("batch with context on a v4 session must still answer");
    assert_eq!(answers.len(), 2);
    assert_eq!(answers[0], answers[1], "adjacency is symmetric");

    // The context never crossed the wire: nothing in the rings carries
    // this trace id.
    let jsonl = client.trace_dump().expect("v4 trace dump still works");
    pl_obs::set_tracing(false);
    assert!(
        !jsonl.contains(&ctx.trace_hex()),
        "a v4 session must not propagate trace context"
    );
    assert!(
        client.trace_snapshot().is_err(),
        "TRACE_DUMP flags must be refused client-side on a v4 session"
    );

    client.goodbye().ok();
    handle.shutdown();
}
