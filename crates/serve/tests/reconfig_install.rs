//! Backend-side protocol v6 map-install state machine: epoch fencing
//! (stale/equal pushes refused), label verification on arrival,
//! commit-swap, abort, shrink, and wire-level rejection of a
//! checksum-tampered map push.

use std::sync::Arc;

use pl_labeling::scheme::AdjacencyScheme;
use pl_labeling::ThresholdScheme;
use pl_serve::protocol::{opcode, LabelsStatus, MapSetMode, MapSetStatus};
use pl_serve::{
    serve_with, Answer, Client, ClusterMap, LabelStore, Query, SchemeTag, ServeOptions,
    StoreConfig, TaggedLabeling,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn power_law(n: usize, seed: u64) -> pl_graph::Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    pl_gen::chung_lu_power_law(n, 2.5, 4.0, &mut rng)
}

fn threshold_labeling(g: &pl_graph::Graph) -> TaggedLabeling {
    TaggedLabeling {
        tag: SchemeTag::Threshold,
        labeling: ThresholdScheme::with_tau(5).encode(g),
    }
}

fn map_for(n: u32, epoch: u64) -> ClusterMap {
    ClusterMap {
        epoch,
        seed: 0xC0FFEE,
        replicas: 1,
        n,
        tag: SchemeTag::Threshold.as_u8(),
        backends: vec!["127.0.0.1:1".into(), "127.0.0.1:2".into()],
    }
}

#[test]
fn map_install_state_machine_end_to_end() {
    let g = power_law(80, 42);
    let tagged = threshold_labeling(&g);
    let n = g.vertex_count() as u32;
    let store = Arc::new(LabelStore::new(tagged.clone(), StoreConfig::default()));
    let server = serve_with(store, "127.0.0.1:0", ServeOptions::default()).expect("serve");
    let mut client = Client::connect(server.addr()).expect("connect");

    // No map yet: MAP_GET is empty, epoch 0.
    assert_eq!(client.map_get().expect("map_get"), None);
    assert_eq!(server.reconfig_epoch(), 0);

    // Labels without a staged map are refused.
    let label3 = tagged.labeling.label(3).to_label().to_bytes();
    assert_eq!(
        client.push_labels(1, &[(3, &label3)]).expect("push"),
        (LabelsStatus::WrongEpoch, 0)
    );

    // Prepare epoch 1.
    let map1 = map_for(n, 1).to_bytes();
    assert_eq!(
        client
            .map_set(MapSetMode::Prepare, 0, 0, &map1)
            .expect("prepare"),
        (MapSetStatus::Prepared, 1)
    );

    // Wrong-epoch and malformed pushes are refused; nothing buffers.
    assert_eq!(
        client.push_labels(2, &[(3, &label3)]).expect("push").0,
        LabelsStatus::WrongEpoch
    );
    assert_eq!(
        client
            .push_labels(1, &[(3, &[0xFF, 0xFF, 0xFF])])
            .expect("push")
            .0,
        LabelsStatus::Rejected
    );
    // A bit-flipped label is not byte-identical and the whole frame
    // (including its valid entry) is discarded.
    let mut flipped = label3.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x10;
    assert_eq!(
        client
            .push_labels(
                1,
                &[
                    (5, &tagged.labeling.label(5).to_label().to_bytes()),
                    (3, &flipped)
                ]
            )
            .expect("push")
            .0,
        LabelsStatus::Rejected
    );

    // A clean push buffers.
    assert_eq!(
        client.push_labels(1, &[(3, &label3)]).expect("push"),
        (LabelsStatus::Ok, 1)
    );

    // Commit: store swaps, epoch advances, MAP_GET serves the map.
    assert_eq!(
        client
            .map_set(MapSetMode::Commit, 0, 0, &map1)
            .expect("commit"),
        (MapSetStatus::Committed, 1)
    );
    assert_eq!(server.reconfig_epoch(), 1);
    assert_eq!(client.map_get().expect("map_get"), Some(map1.clone()));

    // Queries still answer correctly from the rebuilt store.
    for (u, v) in [(0, 1), (3, 7), (10, 20)] {
        let got = client.batch(&[Query::adjacent(u, v)]).expect("batch")[0];
        let want = if g.has_edge(u, v) {
            Answer::Adjacent
        } else {
            Answer::NotAdjacent
        };
        assert_eq!(got, want, "({u},{v}) after commit");
    }

    // Stale and equal epochs are fenced.
    assert_eq!(
        client
            .map_set(MapSetMode::Prepare, 0, 0, &map1)
            .expect("stale prepare"),
        (MapSetStatus::Stale, 1)
    );
    assert_eq!(
        client
            .map_set(MapSetMode::Commit, 0, 0, &map1)
            .expect("stale commit"),
        (MapSetStatus::Stale, 1)
    );

    // Abort is idempotent and leaves the epoch alone.
    assert_eq!(
        client
            .map_set(MapSetMode::Abort, 0, 0, &map1)
            .expect("abort"),
        (MapSetStatus::Aborted, 1)
    );

    // Shrink to this backend's partition of the committed map: owned
    // vertices keep answering, pairs owned elsewhere turn NotOwned.
    assert_eq!(
        client
            .map_set(MapSetMode::Shrink, 0, 0, &map1)
            .expect("shrink"),
        (MapSetStatus::Shrunk, 1)
    );
    let part = map_for(n, 1).partitioner();
    let mut kept = 0;
    let mut shed = 0;
    for u in 0..n {
        for v in (u + 1)..n {
            let got = client.batch(&[Query::adjacent(u, v)]).expect("batch")[0];
            match got {
                Answer::NotOwned => {
                    shed += 1;
                }
                _ => {
                    // Whatever the shrunken store still answers must be
                    // correct — and only pairs it owns a side of.
                    assert!(
                        part.owns(0, u) || part.owns(0, v),
                        "({u},{v}) answered without owning either side"
                    );
                    let want = if g.has_edge(u, v) {
                        Answer::Adjacent
                    } else {
                        Answer::NotAdjacent
                    };
                    assert_eq!(got, want, "({u},{v}) after shrink");
                    kept += 1;
                }
            }
        }
    }
    assert!(kept > 0 && shed > 0, "kept {kept} shed {shed}");
    // Every pair with neither side owned here must have been shed.
    for u in 0..n {
        for v in (u + 1)..n {
            if !part.owns(0, u) && !part.owns(0, v) {
                let got = client.batch(&[Query::adjacent(u, v)]).expect("batch")[0];
                assert_eq!(got, Answer::NotOwned, "({u},{v}) should be shed");
            }
        }
    }

    server.shutdown();
}

#[test]
fn tampered_map_push_is_rejected_at_the_wire() {
    let g = power_law(40, 7);
    let tagged = threshold_labeling(&g);
    let n = g.vertex_count() as u32;
    let store = Arc::new(LabelStore::new(tagged, StoreConfig::default()));
    let server = serve_with(store, "127.0.0.1:0", ServeOptions::default()).expect("serve");
    let mut client = Client::connect(server.addr()).expect("connect");

    // Hand-build a MAP_SET whose embedded map blob has one flipped bit,
    // bypassing the client-side encoder (which would refuse to emit it).
    let map = map_for(n, 1).to_bytes();
    let mut body = vec![opcode::MAP_SET, 0];
    body.extend_from_slice(&0u32.to_le_bytes());
    body.extend_from_slice(&0u64.to_le_bytes());
    body.extend_from_slice(&map);
    body[20] ^= 0x04; // inside the blob
    let reply = client.raw_round_trip(&body).expect("round trip");
    assert_eq!(reply.first(), Some(&opcode::ERROR));
    assert!(
        String::from_utf8_lossy(&reply[1..]).contains("checksum"),
        "unexpected error: {}",
        String::from_utf8_lossy(&reply[1..])
    );

    // The engine never saw it: epoch still 0, nothing staged, and an
    // untampered prepare on a fresh connection succeeds.
    assert_eq!(server.reconfig_epoch(), 0);
    let mut fresh = Client::connect(server.addr()).expect("reconnect");
    assert_eq!(
        fresh
            .map_set(MapSetMode::Prepare, 0, 0, &map)
            .expect("prepare"),
        (MapSetStatus::Prepared, 1)
    );

    server.shutdown();
}
