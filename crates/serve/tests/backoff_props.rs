//! Property tests pinning [`RetryPolicy::backoff`]'s contract.
//!
//! The cluster router schedules quarantine re-probes with this exact
//! function, so the bounds are load-bearing beyond the retry loop: a
//! delay above the cap would stall failover recovery, and jitter
//! escaping the documented `[d/2, d)` band would re-synchronise the
//! thundering herd the jitter exists to break up.

use std::time::Duration;

use pl_serve::RetryPolicy;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The documented nominal delay: `d = min(base · 2^min(attempt, 20),
/// max(cap, 1))`, reimplemented independently of the crate so a drift
/// in either copy fails here.
fn nominal_ns(base: Duration, cap: Duration, attempt: u32) -> u64 {
    let base = base.as_nanos() as u64;
    let cap = (cap.as_nanos() as u64).max(1);
    base.saturating_mul(1u64 << attempt.min(20)).min(cap)
}

fn policy(base_ms: u64, cap_ms: u64, seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_retries: 3,
        deadline: None,
        backoff_base: Duration::from_millis(base_ms),
        backoff_cap: Duration::from_millis(cap_ms),
        seed,
    }
}

proptest! {
    /// Every delay, for every seed, sits in the documented band:
    /// at least half the nominal delay, strictly below the full one
    /// (equal only in the degenerate `d ≤ 1` case), and therefore
    /// always bounded by the cap.
    #[test]
    fn jitter_stays_in_the_lower_half_band(
        base_ms in 0u64..5_000,
        cap_ms in 0u64..5_000,
        attempt in 0u32..64,
        seed in any::<u64>(),
    ) {
        let p = policy(base_ms, cap_ms, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let delay = p.backoff(attempt, &mut rng).as_nanos() as u64;
        let d = nominal_ns(p.backoff_base, p.backoff_cap, attempt);
        prop_assert!(delay >= d / 2, "delay {delay} below d/2 = {}", d / 2);
        if d >= 2 {
            prop_assert!(delay < d, "delay {delay} reached nominal {d}");
        } else {
            prop_assert_eq!(delay, 0, "degenerate d = {} must collapse to 0", d);
        }
        prop_assert!(delay <= (p.backoff_cap.as_nanos() as u64).max(1),
            "delay {delay} above cap");
    }

    /// The nominal envelope is monotone in the attempt number and
    /// saturates exactly at the cap: an observed delay can never shrink
    /// its upper bound as failures accumulate, and never outgrow the cap
    /// no matter how many strikes a backend takes (the router leans on
    /// this for re-probe pacing after long outages).
    #[test]
    fn envelope_is_monotone_and_cap_saturating(
        base_ms in 1u64..2_000,
        cap_ms in 1u64..2_000,
        seed in any::<u64>(),
    ) {
        let p = policy(base_ms, cap_ms, seed);
        let cap = (p.backoff_cap.as_nanos() as u64).max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut prev_env = 0u64;
        for attempt in 0..70 {
            let env = nominal_ns(p.backoff_base, p.backoff_cap, attempt);
            prop_assert!(env >= prev_env, "envelope shrank at attempt {attempt}");
            prop_assert!(env <= cap);
            let delay = p.backoff(attempt, &mut rng).as_nanos() as u64;
            prop_assert!(delay <= cap, "attempt {attempt}: delay {delay} above cap {cap}");
            prev_env = env;
        }
        // 2^20 × any positive base overshoots any cap in range: the
        // tail of the sequence is pinned to the cap exactly.
        prop_assert_eq!(nominal_ns(p.backoff_base, p.backoff_cap, 69), cap);
    }

    /// Same seed, same delays — the jitter is deterministic, which the
    /// tests (and reproducible chaos runs) rely on.
    #[test]
    fn backoff_is_deterministic_per_seed(
        base_ms in 0u64..2_000,
        cap_ms in 0u64..2_000,
        seed in any::<u64>(),
    ) {
        let p = policy(base_ms, cap_ms, seed);
        let run = |s: u64| -> Vec<Duration> {
            let mut rng = StdRng::seed_from_u64(s);
            (0..16).map(|a| p.backoff(a, &mut rng)).collect()
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
