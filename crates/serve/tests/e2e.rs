//! End-to-end acceptance tests: a real server on a real TCP socket,
//! driven by the load generator and raw protocol clients.

use std::net::TcpStream;
use std::sync::Arc;

use pl_graph::degree::vertices_by_degree_desc;
use pl_labeling::scheme::AdjacencyScheme;
use pl_labeling::ThresholdScheme;
use pl_serve::client::loadgen::{self, LoadgenConfig, Skew};
use pl_serve::protocol::{
    encode_batch, encode_hello, opcode, parse_batch_reply, read_frame, write_frame, Query,
};
use pl_serve::{Client, LabelStore, SchemeTag, StoreConfig, TaggedLabeling};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn chung_lu(n: usize, seed: u64) -> pl_graph::Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    pl_gen::chung_lu_power_law(n, 2.5, 5.0, &mut rng)
}

fn threshold_store(g: &pl_graph::Graph, tau: usize, config: StoreConfig) -> Arc<LabelStore> {
    Arc::new(LabelStore::new(
        TaggedLabeling {
            tag: SchemeTag::Threshold,
            labeling: ThresholdScheme::with_tau(tau).encode(g),
        },
        config,
    ))
}

/// The headline acceptance test: a 10⁴-vertex Chung–Lu graph served over
/// TCP to four concurrent Zipf-skewed connections; every answer checked
/// against the graph, cache hits observed, shutdown drains cleanly.
#[test]
fn serves_chung_lu_over_tcp_with_verified_answers() {
    let g = chung_lu(10_000, 42);
    let store = threshold_store(
        &g,
        8,
        StoreConfig {
            shards: 4,
            cache_capacity: 2048,
        },
    );
    let handle = pl_serve::serve(store, "127.0.0.1:0").expect("bind");
    let addr = handle.addr();

    // Zipf-skewed load whose hot set is the hubs (degree-descending
    // rank → vertex map): that is the regime the decode cache targets.
    let config = LoadgenConfig {
        connections: 4,
        requests_per_conn: 5_000,
        batch: 50,
        skew: Skew::Zipf(1.2),
        seed: 7,
        hot_order: Some(vertices_by_degree_desc(&g)),
        retry: None,
    };
    let report = loadgen::run_verified(addr, &config, &g).expect("load run");
    assert_eq!(report.queries, 20_000);
    assert_eq!(
        report.mismatches, 0,
        "every adjacency answer must match Graph::has_edge"
    );
    assert!(
        report.adjacent_true > 0,
        "skewed load over hubs should hit some edges"
    );

    // STATS over the wire: nonzero throughput, warm cache.
    let mut client = Client::connect(addr).expect("stats connection");
    let stats = client.stats().expect("stats fetch");
    assert_eq!(stats.adj_queries, 20_000);
    assert!(stats.qps() > 0.0, "qps should be nonzero: {stats}");
    assert!(
        stats.cache_hit_rate() > 0.0,
        "Zipf load over fat hubs must produce cache hits: {stats}"
    );
    assert!(stats.batches >= 4 * (5_000 / 50));
    assert!(stats.bytes_in > 0 && stats.bytes_out > 0);
    assert_eq!(stats.protocol_errors, 0);
    assert!(stats.p99_ns >= stats.p50_ns);
    client.goodbye().expect("goodbye");

    let final_stats = handle.shutdown();
    assert!(final_stats.adj_queries >= 20_000);
}

/// Graceful shutdown must answer requests already on the wire: write a
/// batch, shut the server down *before reading the reply*, and check the
/// full reply still arrives.
#[test]
fn shutdown_drains_in_flight_requests() {
    let g = chung_lu(2_000, 3);
    let store = threshold_store(&g, 8, StoreConfig::default());
    let handle = pl_serve::serve(store, "127.0.0.1:0").expect("bind");

    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    write_frame(&mut stream, &encode_hello()).expect("hello");
    let hello_ok = read_frame(&mut stream).expect("hello reply");
    assert_eq!(hello_ok.first(), Some(&opcode::HELLO_OK));

    let queries: Vec<Query> = (0..500)
        .map(|i| Query::adjacent(i, (i + 1) % 2_000))
        .collect();
    write_frame(&mut stream, &encode_batch(&queries).expect("encode batch")).expect("send batch");

    // Shutdown blocks until every connection drains; the batch above is
    // in flight and must be answered, not dropped.
    let final_stats = handle.shutdown();
    assert!(
        final_stats.adj_queries >= 500,
        "drained queries must be counted: {final_stats}"
    );

    let reply = read_frame(&mut stream).expect("reply survives shutdown");
    let answers =
        parse_batch_reply(&reply, pl_serve::protocol::VERSION).expect("well-formed reply");
    assert_eq!(answers.len(), 500, "no response may be dropped");
}

/// Protocol-level rejections over a real socket: bad magic and unknown
/// opcodes produce an ERROR frame (and a counted protocol error), not a
/// hang or a crash.
#[test]
fn malformed_frames_get_error_replies() {
    let g = chung_lu(500, 1);
    let store = threshold_store(&g, 8, StoreConfig::default());
    let handle = pl_serve::serve(store, "127.0.0.1:0").expect("bind");

    // Bad magic.
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    write_frame(&mut stream, &[opcode::HELLO, b'N', b'O', b'P', b'E', 1]).expect("send");
    let reply = read_frame(&mut stream).expect("error reply");
    assert_eq!(reply.first(), Some(&opcode::ERROR));

    // Unknown opcode after a good handshake.
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    write_frame(&mut stream, &encode_hello()).expect("hello");
    let _ = read_frame(&mut stream).expect("hello ok");
    write_frame(&mut stream, &[0x77]).expect("send junk");
    let reply = read_frame(&mut stream).expect("error reply");
    assert_eq!(reply.first(), Some(&opcode::ERROR));

    let stats = handle.shutdown();
    assert!(stats.protocol_errors >= 2, "{stats}");
}

/// The server answers distance queries when serving a distance labeling,
/// and reports Unsupported for distance queries against an adjacency
/// scheme.
#[test]
fn distance_scheme_served_end_to_end() {
    use pl_labeling::distance::DistanceScheme;
    use pl_serve::Answer;

    let g = chung_lu(600, 12);
    let scheme = DistanceScheme::new(2.5, 2);
    let store = Arc::new(LabelStore::new(
        TaggedLabeling {
            tag: SchemeTag::Distance,
            labeling: scheme.encode(&g),
        },
        StoreConfig::default(),
    ));
    let handle = pl_serve::serve(store, "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");
    assert_eq!(client.tag(), SchemeTag::Distance.as_u8());

    let (u, v) = g.edges().next().expect("graph has edges");
    assert_eq!(client.distance(u, v).expect("distance"), Some(1));
    assert!(client.adjacent(u, v).expect("adjacency via distance"));

    // An adjacency store must refuse distance queries.
    let adj_store = threshold_store(&g, 8, StoreConfig::default());
    let adj_handle = pl_serve::serve(adj_store, "127.0.0.1:0").expect("bind");
    let mut adj_client = Client::connect(adj_handle.addr()).expect("connect");
    let answers = adj_client
        .batch(&[pl_serve::Query::distance(u, v)])
        .expect("batch");
    assert_eq!(answers[0], Answer::Unsupported);

    client.goodbye().expect("goodbye");
    adj_client.goodbye().expect("goodbye");
    handle.shutdown();
    adj_handle.shutdown();
}

/// Out-of-range vertices come back as a per-query status, not an error
/// that kills the batch.
#[test]
fn out_of_range_is_a_per_query_status() {
    use pl_serve::Answer;

    let g = chung_lu(100, 5);
    let store = threshold_store(&g, 4, StoreConfig::default());
    let handle = pl_serve::serve(store, "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let (u, v) = g.edges().next().expect("graph has edges");
    let answers = client
        .batch(&[
            pl_serve::Query::adjacent(u, v),
            pl_serve::Query::adjacent(0, 100),
            pl_serve::Query::adjacent(u32::MAX, 0),
        ])
        .expect("batch");
    assert_eq!(answers[0], Answer::Adjacent);
    assert_eq!(answers[1], Answer::OutOfRange);
    assert_eq!(answers[2], Answer::OutOfRange);
    client.goodbye().expect("goodbye");
    handle.shutdown();
}

/// A tampered `.plab` file — the container parses, but one fat label
/// declares more bitmap bits than it carries — must surface as a
/// per-query malformed status over the wire, with the server staying up
/// to answer healthy queries afterwards.
#[test]
fn tampered_plab_answers_malformed_and_server_survives() {
    use pl_labeling::bits::BitWriter;
    use pl_labeling::{Label, Labeling};
    use pl_serve::Answer;

    // Vertex 0: fat-flagged, gamma-coded k = 50, but only 3 of the 50
    // declared bitmap bits present. Vertex 1: a healthy fat label whose
    // bitmap marks fat id 0.
    let truncated = {
        let mut w = BitWriter::new();
        w.write_bits(6, 6);
        w.write_bits(0, 6);
        w.write_bit(true);
        w.write_gamma(51);
        for _ in 0..3 {
            w.write_bit(false);
        }
        Label::from(w)
    };
    let good = {
        let mut w = BitWriter::new();
        w.write_bits(6, 6);
        w.write_bits(1, 6);
        w.write_bit(true);
        w.write_gamma(51);
        w.write_bit(true);
        for _ in 1..50 {
            w.write_bit(false);
        }
        Label::from(w)
    };
    let tampered = TaggedLabeling {
        tag: SchemeTag::Threshold,
        labeling: Labeling::new(vec![truncated, good]),
    };

    // Round-trip through a real file: the container itself is valid v2,
    // so loading succeeds — the corruption is inside a label's bits.
    let path = std::env::temp_dir().join(format!("pl-e2e-tampered-{}.plab", std::process::id()));
    tampered.save(&path).expect("write tampered .plab");
    let loaded = TaggedLabeling::load(&path).expect("container still parses");
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded, tampered);

    let store = Arc::new(LabelStore::new(loaded, StoreConfig::default()));
    let handle = pl_serve::serve(store, "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let answers = client
        .batch(&[
            Query::adjacent(0, 1), // needs vertex 0's truncated bitmap
            Query::adjacent(1, 0), // decodes vertex 1's healthy bitmap
        ])
        .expect("batch survives the corrupt label");
    assert_eq!(answers[0], Answer::MalformedLabel);
    assert_eq!(answers[1], Answer::Adjacent);

    // The connection and server are still healthy after the bad answer.
    assert!(client.adjacent(1, 0).expect("follow-up query"));
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.protocol_errors, 0,
        "malformed labels are per-query statuses, not protocol errors"
    );
    client.goodbye().expect("goodbye");
    handle.shutdown();
}

/// The whole observability surface over one live server: per-shard
/// cache counters in the v2 STATS reply, extended latency quantiles,
/// the slow-query log, TRACE_DUMP over the wire, and the Prometheus
/// rendering with derived per-shard hit ratios.
///
/// This is the only test in this binary that drains the trace rings
/// (via TRACE_DUMP) — draining consumes the process-global buffers, so
/// a second drainer would race it.
#[test]
fn observability_surface_end_to_end() {
    use pl_serve::{ServeOptions, StoreConfig};

    let g = chung_lu(3_000, 99);
    let registry = Arc::new(pl_obs::MetricsRegistry::new());
    let store = Arc::new(LabelStore::with_registry(
        TaggedLabeling {
            tag: SchemeTag::Threshold,
            labeling: ThresholdScheme::with_tau(8).encode(&g),
        },
        StoreConfig {
            shards: 4,
            cache_capacity: 512,
        },
        &registry,
    ));
    let handle = pl_serve::serve_with(
        store,
        "127.0.0.1:0",
        ServeOptions {
            registry: Some(Arc::clone(&registry)),
            // Threshold 0: every query is "slow", so the log must fire.
            slow_query_ns: Some(0),
            ..ServeOptions::default()
        },
    )
    .expect("bind");

    pl_obs::set_tracing(true);
    let config = LoadgenConfig {
        connections: 2,
        requests_per_conn: 1_000,
        batch: 50,
        skew: Skew::Zipf(1.2),
        seed: 11,
        hot_order: Some(vertices_by_degree_desc(&g)),
        retry: None,
    };
    loadgen::run(handle.addr(), &config).expect("load run");

    let mut client = Client::connect(handle.addr()).expect("connect");
    assert_eq!(client.version(), pl_serve::protocol::VERSION);

    // v2 snapshot: extended quantiles and per-shard cache provenance.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.adj_queries, 2_000);
    assert_eq!(stats.shard_cache.len(), 4, "{stats}");
    assert_eq!(
        stats.shard_cache.iter().map(|(h, m)| h + m).sum::<u64>(),
        stats.cache_hits + stats.cache_misses,
        "totals must be the shard sums"
    );
    assert!(stats.p50_ns <= stats.p90_ns && stats.p90_ns <= stats.p99_ns);
    assert!(stats.p99_ns <= stats.p999_ns && stats.min_ns <= stats.max_ns);
    assert!(stats.max_ns > 0, "latencies were recorded");
    assert_eq!(stats.slow_queries, 2_000, "threshold 0 flags every query");

    // Trace dump over the wire: the slow-query log and the store spans
    // were recorded while tracing was on.
    let jsonl = client.trace_dump().expect("trace dump");
    assert!(
        jsonl.contains("\"serve.slow_query\""),
        "slow-query events missing from: {}",
        &jsonl[..jsonl.len().min(400)]
    );
    assert!(jsonl
        .lines()
        .all(|l| l.starts_with('{') && l.ends_with('}')));
    pl_obs::set_tracing(false);

    // Prometheus text: server counters, latency summary, per-shard
    // cache families, and the derived hit-ratio gauge.
    let prom = handle.prometheus_text();
    for needle in [
        "plserve_adj_queries_total 2000",
        "plserve_slow_queries_total 2000",
        "plserve_query_latency_ns{quantile=\"0.999\"}",
        "plserve_cache_hits_total{shard=\"0\"}",
        "plserve_cache_misses_total{shard=\"3\"}",
        "plserve_cache_hit_ratio{shard=\"0\"}",
    ] {
        assert!(prom.contains(needle), "missing {needle:?} in:\n{prom}");
    }

    client.goodbye().expect("goodbye");
    handle.shutdown();
}

/// A v1 client still interoperates with the v2 server: the handshake
/// negotiates down and the STATS reply arrives in the legacy 12-field
/// layout (no extended quantiles, no shard breakdown).
#[test]
fn v1_client_negotiates_and_parses_legacy_stats() {
    let g = chung_lu(500, 21);
    let store = threshold_store(&g, 8, StoreConfig::default());
    let handle = pl_serve::serve(store, "127.0.0.1:0").expect("bind");

    let mut client = Client::connect_version(handle.addr(), 1).expect("v1 connect");
    assert_eq!(client.version(), 1);
    let (u, v) = g.edges().next().expect("graph has edges");
    assert!(client.adjacent(u, v).expect("query"));

    let stats = client.stats().expect("v1 stats");
    assert_eq!(stats.adj_queries, 1);
    assert!(
        stats.shard_cache.is_empty(),
        "v1 layout carries no shard breakdown"
    );
    assert!(
        client.trace_dump().is_err(),
        "TRACE_DUMP must be refused client-side on a v1 session"
    );
    client.goodbye().expect("goodbye");
    handle.shutdown();
}
