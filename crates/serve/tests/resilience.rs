//! Resilience acceptance tests: fault-injected servers, reconnecting
//! clients, overload shedding, idle/stall deadlines, and the HEALTH
//! surface — all over real TCP sockets.

use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use pl_graph::degree::vertices_by_degree_desc;
use pl_labeling::scheme::AdjacencyScheme;
use pl_labeling::ThresholdScheme;
use pl_serve::client::loadgen::{self, LoadgenConfig, Skew};
use pl_serve::client::{ClientError, RetryKind};
use pl_serve::protocol::{encode_hello, opcode, read_frame, write_frame};
use pl_serve::{
    Client, FaultPlan, LabelStore, ResilientClient, RetryPolicy, SchemeTag, ServeOptions,
    StoreConfig, TaggedLabeling,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn chung_lu(n: usize, seed: u64) -> pl_graph::Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    pl_gen::chung_lu_power_law(n, 2.5, 5.0, &mut rng)
}

fn threshold_store(g: &pl_graph::Graph, tau: usize, config: StoreConfig) -> Arc<LabelStore> {
    Arc::new(LabelStore::new(
        TaggedLabeling {
            tag: SchemeTag::Threshold,
            labeling: ThresholdScheme::with_tau(tau).encode(g),
        },
        config,
    ))
}

fn fast_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_retries: 6,
        deadline: Some(Duration::from_millis(500)),
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        seed,
    }
}

/// The headline chaos test: a server injecting >10% frame faults plus
/// simulated store errors serves a Chung–Lu graph to retrying Zipf
/// workers; every answer that comes back must match the graph, and the
/// retry loop must absorb (not surface) the injected failures.
#[test]
fn faulted_server_never_answers_wrong() {
    let g = chung_lu(4_000, 42);
    let store = threshold_store(
        &g,
        8,
        StoreConfig {
            shards: 4,
            cache_capacity: 1024,
        },
    );
    let plan = FaultPlan::parse(
        "seed=7,flip=0.05,truncate=0.04,drop=0.03,store_err=0.05,write_delay=0.02,read_delay=0.02,delay_ms=1",
    )
    .expect("plan parses");
    assert!(plan.frame_fault_rate() >= 0.05, "the gate needs ≥5%");
    let handle = pl_serve::serve_with(
        store,
        "127.0.0.1:0",
        ServeOptions {
            fault_plan: Some(plan),
            ..ServeOptions::default()
        },
    )
    .expect("bind");

    let config = LoadgenConfig {
        connections: 4,
        requests_per_conn: 2_000,
        batch: 32,
        skew: Skew::Zipf(1.2),
        seed: 3,
        hot_order: Some(vertices_by_degree_desc(&g)),
        retry: Some(fast_policy(0x7E57)),
    };
    let report = loadgen::run_verified(handle.addr(), &config, &g).expect("chaos run completes");

    assert_eq!(report.mismatches, 0, "a retried answer must never be wrong");
    assert!(
        report.success_rate() >= 0.99,
        "expected ≥99% success after retries, got {:.4} ({} ok, {} failed)",
        report.success_rate(),
        report.queries,
        report.failed
    );
    assert!(report.retries > 0, "the plan must actually bite");

    let stats = handle.shutdown();
    assert!(
        stats.faults_injected > 0,
        "server must report injected faults: {stats}"
    );
}

/// Reconnect-and-replay across a full server restart: the client loses
/// its server mid-workload, keeps retrying through the refused
/// connections, and finishes with correct answers once the same port is
/// serving again.
#[test]
fn client_replays_across_server_restart() {
    let g = chung_lu(1_000, 9);
    let store = threshold_store(&g, 8, StoreConfig::default());
    // Reserve a concrete port, then free it for the server: restarts
    // must land on the *same* address for the replay to mean anything.
    let addr = TcpListener::bind("127.0.0.1:0")
        .expect("probe bind")
        .local_addr()
        .expect("probe addr");

    let handle = pl_serve::serve(Arc::clone(&store), &addr.to_string()).expect("first bind");
    let policy = RetryPolicy {
        max_retries: 60,
        ..fast_policy(11)
    };
    let mut client = ResilientClient::connect(addr, policy).expect("connect");
    let edges: Vec<(u32, u32)> = g.edges().take(50).collect();
    for &(u, v) in &edges {
        assert!(client.adjacent(u, v).expect("pre-restart answer"));
    }
    assert_eq!(client.retries(), 0, "healthy server needs no retries");

    handle.shutdown();
    // Restart on the same port after a visible outage window.
    let restart = std::thread::spawn({
        let store = Arc::clone(&store);
        move || {
            std::thread::sleep(Duration::from_millis(300));
            pl_serve::serve(store, &addr.to_string()).expect("rebind same port")
        }
    });

    // Queries issued into the outage must replay, not fail and not lie.
    for &(u, v) in &edges {
        assert!(
            client.adjacent(u, v).expect("post-restart answer"),
            "replayed query ({u}, {v}) answered wrong"
        );
    }
    assert!(
        client.retries() > 0,
        "the outage must have forced at least one replay"
    );
    client.goodbye();
    restart.join().expect("restart thread").shutdown();
}

/// Regression: finished connection handles used to pile up in the
/// accept loop until shutdown. Open and close many short-lived
/// connections and require the held-handle count to come back down.
#[test]
fn finished_connection_handles_are_reaped() {
    let g = chung_lu(300, 4);
    let store = threshold_store(&g, 8, StoreConfig::default());
    let handle = pl_serve::serve(store, "127.0.0.1:0").expect("bind");

    let total = 60;
    for i in 0..total {
        let mut client = Client::connect(handle.addr()).expect("connect");
        let _ = client.adjacent(i % 300, (i + 1) % 300).expect("query");
        client.goodbye().expect("goodbye");
    }
    assert_eq!(handle.snapshot().connections, u64::from(total));

    // Give the accept loop a few poll ticks to observe the exits.
    let mut held = usize::MAX;
    for _ in 0..50 {
        std::thread::sleep(Duration::from_millis(20));
        held = handle.conn_handle_count();
        if held == 0 {
            break;
        }
    }
    assert!(
        held <= 4,
        "accept loop still holds {held} handles after {total} closed connections"
    );
    assert_eq!(handle.live_connections(), 0);
    handle.shutdown();
}

/// At the connection cap the server sheds: the refused peer gets an
/// OVERLOADED frame (not silence), the shed counter moves, and accepted
/// connections keep working.
#[test]
fn connection_cap_sheds_with_overloaded_frame() {
    let g = chung_lu(300, 6);
    let store = threshold_store(&g, 8, StoreConfig::default());
    let handle = pl_serve::serve_with(
        store,
        "127.0.0.1:0",
        ServeOptions {
            max_conns: Some(1),
            ..ServeOptions::default()
        },
    )
    .expect("bind");

    // First connection owns the only slot.
    let mut first = Client::connect(handle.addr()).expect("first connect");
    assert!(first.adjacent(0, 1).is_ok());

    // Second connection is shed with an explanatory frame. Send nothing:
    // the server sheds at accept, and an unread HELLO at close time
    // would RST away the buffered OVERLOADED frame.
    let mut raw = TcpStream::connect(handle.addr()).expect("tcp connect");
    raw.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    let reply = read_frame(&mut raw).expect("shed frame");
    assert_eq!(reply, vec![opcode::OVERLOADED]);

    // Through the Client it surfaces as a retryable error: Overloaded
    // when the shed frame wins the race with the close, Io when the
    // in-flight HELLO draws a reset instead. Never fatal, never a hang.
    let err = Client::connect(handle.addr()).expect_err("must be shed");
    let classified = ClientError::classify(err);
    assert!(
        matches!(
            classified,
            ClientError::Retryable {
                kind: RetryKind::Overloaded | RetryKind::Io,
                ..
            }
        ),
        "expected retryable shed error, got {classified}"
    );
    // The shed frame itself always classifies as Overloaded.
    let shed_err = std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        "server overloaded, connection shed",
    );
    assert!(matches!(
        ClientError::classify(shed_err),
        ClientError::Retryable {
            kind: RetryKind::Overloaded,
            ..
        }
    ));

    // The surviving connection is unaffected, and the shed is counted.
    assert!(first.adjacent(1, 2).is_ok());
    first.goodbye().expect("goodbye");
    let stats = handle.shutdown();
    assert!(stats.shed >= 2, "{stats}");
}

/// Idle connections are reaped after `idle_timeout`, freeing their
/// threads and cap slots.
#[test]
fn idle_connections_are_reaped() {
    let g = chung_lu(300, 8);
    let store = threshold_store(&g, 8, StoreConfig::default());
    let handle = pl_serve::serve_with(
        store,
        "127.0.0.1:0",
        ServeOptions {
            idle_timeout: Some(Duration::from_millis(100)),
            ..ServeOptions::default()
        },
    )
    .expect("bind");

    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    write_frame(&mut stream, &encode_hello()).expect("hello");
    let _ = read_frame(&mut stream).expect("hello ok");
    // Go quiet past the deadline; the server must close on us.
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let eof = read_frame(&mut stream);
    assert!(eof.is_err(), "server should have closed the idle peer");

    let mut deadline_ok = false;
    for _ in 0..50 {
        if handle.snapshot().open_conns == 0 {
            deadline_ok = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(deadline_ok, "idle connection still counted as open");
    let prom = handle.prometheus_text();
    assert!(
        prom.contains("plserve_idle_reaped_total 1"),
        "idle reap not counted in:\n{prom}"
    );
    let stats = handle.shutdown();
    assert_eq!(stats.open_conns, 0);
    assert_eq!(stats.faults_injected, 0, "no faults were configured");
}

/// A peer that stalls mid-frame (length prefix promising bytes that
/// never come) is closed at `stall_timeout` instead of pinning a thread
/// forever — the wedged-hub scenario from the issue.
#[test]
fn stalled_mid_frame_peer_is_deadline_closed() {
    use std::io::Write;

    let g = chung_lu(300, 10);
    let store = threshold_store(&g, 8, StoreConfig::default());
    let handle = pl_serve::serve_with(
        store,
        "127.0.0.1:0",
        ServeOptions {
            stall_timeout: Some(Duration::from_millis(100)),
            ..ServeOptions::default()
        },
    )
    .expect("bind");

    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    write_frame(&mut stream, &encode_hello()).expect("hello");
    let _ = read_frame(&mut stream).expect("hello ok");
    // Promise a 100-byte frame, deliver 3 bytes, stall.
    stream.write_all(&100u32.to_le_bytes()).unwrap();
    stream.write_all(&[opcode::BATCH, 1, 0]).unwrap();
    stream.flush().unwrap();

    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let eof = read_frame(&mut stream);
    assert!(eof.is_err(), "server should have closed the stalled peer");

    let mut stats = handle.snapshot();
    for _ in 0..50 {
        if stats.open_conns == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
        stats = handle.snapshot();
    }
    let prom = handle.prometheus_text();
    assert!(
        prom.contains("plserve_deadline_closes_total 1"),
        "stall close not counted in:\n{prom}"
    );
    let final_stats = handle.shutdown();
    assert_eq!(final_stats.open_conns, 0, "{final_stats}");
}

/// HEALTH over the wire: a v3 session gets per-shard liveness; a v2
/// session is refused (the opcode is version-gated).
#[test]
fn health_reports_shard_liveness_and_is_version_gated() {
    let g = chung_lu(500, 13);
    let store = threshold_store(
        &g,
        8,
        StoreConfig {
            shards: 3,
            cache_capacity: 64,
        },
    );
    let handle = pl_serve::serve(store, "127.0.0.1:0").expect("bind");

    let mut v3 = Client::connect(handle.addr()).expect("v3 connect");
    assert_eq!(v3.version(), pl_serve::protocol::VERSION);
    assert!(v3.version() >= 3, "HEALTH needs a v3+ session");
    let report = v3.health().expect("health");
    assert!(report.healthy);
    assert_eq!(report.shards, vec![true, true, true]);
    v3.goodbye().expect("goodbye");

    // A v2 session asking for HEALTH gets an ERROR frame from the
    // server; the client-side convenience method refuses even earlier.
    let mut v2 = Client::connect_version(handle.addr(), 2).expect("v2 connect");
    assert!(v2.health().is_err(), "client-side version gate");
    let reply = v2.raw_round_trip(&[opcode::HEALTH]).expect("raw health");
    assert_eq!(reply.first(), Some(&opcode::ERROR));

    handle.shutdown();
}

/// Two identical servers with the same plan and the same single-client
/// workload produce *valid* runs with faults injected; determinism of
/// the per-connection decision stream itself is pinned in fault.rs unit
/// tests (socket read chunking makes end-to-end counts advisory).
#[test]
fn chaos_run_with_single_connection_stays_correct() {
    let g = chung_lu(800, 17);
    let plan = FaultPlan::parse("seed=21,drop=0.1,flip=0.1,store_err=0.1").expect("plan");
    for round in 0..2u64 {
        let store = threshold_store(&g, 8, StoreConfig::default());
        let handle = pl_serve::serve_with(
            store,
            "127.0.0.1:0",
            ServeOptions {
                fault_plan: Some(plan.clone()),
                ..ServeOptions::default()
            },
        )
        .expect("bind");
        let config = LoadgenConfig {
            connections: 1,
            requests_per_conn: 1_000,
            batch: 25,
            skew: Skew::Uniform,
            seed: 100 + round,
            hot_order: None,
            retry: Some(fast_policy(round)),
        };
        let report = loadgen::run_verified(handle.addr(), &config, &g).expect("run");
        assert_eq!(report.mismatches, 0);
        assert!(report.retries > 0, "10%+10% frame faults must bite");
        let stats = handle.shutdown();
        assert!(stats.faults_injected > 0);
    }
}
