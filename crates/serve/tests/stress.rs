//! Concurrency stress: many threads hammer one `LabelStore` (shared
//! shards, shared LRU caches) and every answer must equal what a fresh
//! single-threaded decode of the same pair produces.

use std::sync::Arc;

use pl_labeling::scheme::{AdjacencyDecoder, AdjacencyScheme};
use pl_labeling::threshold::ThresholdDecoder;
use pl_labeling::ThresholdScheme;
use pl_serve::{LabelStore, SchemeTag, StoreConfig, TaggedLabeling};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn concurrent_store_matches_single_threaded_decoder() {
    let mut rng = StdRng::seed_from_u64(0x57E55);
    let g = pl_gen::chung_lu_power_law(4_000, 2.5, 6.0, &mut rng);
    let labeling = ThresholdScheme::with_tau(6).encode(&g);
    // Keep an untouched copy for the single-threaded reference decoder.
    let reference = labeling.clone();
    let store = Arc::new(LabelStore::new(
        TaggedLabeling {
            tag: SchemeTag::Threshold,
            labeling,
        },
        StoreConfig {
            shards: 3,
            // Small enough that eviction churns constantly under load.
            cache_capacity: 32,
        },
    ));

    let threads = 8;
    let queries_per_thread = 20_000;
    let n = g.vertex_count() as u32;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let store = Arc::clone(&store);
            let reference = &reference;
            scope.spawn(move || {
                let dec = ThresholdDecoder;
                let mut rng = StdRng::seed_from_u64(0xACE + t);
                for i in 0..queries_per_thread {
                    // Mix uniform pairs with hub-heavy pairs so fat–fat
                    // (cached) and thin paths both stay hot.
                    let u = if i % 3 == 0 {
                        rng.gen_range(0..n.min(64))
                    } else {
                        rng.gen_range(0..n)
                    };
                    let v = rng.gen_range(0..n);
                    let expected = dec.adjacent(reference.label(u), reference.label(v));
                    let got = store.adjacent(u, v).expect("in range");
                    assert_eq!(got, expected, "thread {t} query {i}: pair ({u}, {v})");
                }
            });
        }
    });

    // The shared cache must have been exercised from multiple threads.
    assert!(
        store.cache_hits() + store.cache_misses() > 0,
        "stress run should touch the decode cache"
    );
}

#[test]
fn concurrent_queries_agree_across_shard_counts() {
    let mut rng = StdRng::seed_from_u64(0xD15C);
    let g = pl_gen::chung_lu_power_law(1_500, 2.3, 5.0, &mut rng);
    let labeling = ThresholdScheme::with_tau(5).encode(&g);
    let n = g.vertex_count() as u32;
    let pairs: Vec<(u32, u32)> = (0..10_000)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();

    // Answers must be identical no matter how the store is sharded or
    // how small the cache is.
    let mut all_answers: Vec<Vec<bool>> = Vec::new();
    for (shards, cache) in [(1, 0), (2, 8), (5, 1024), (16, 64)] {
        let store = Arc::new(LabelStore::new(
            TaggedLabeling {
                tag: SchemeTag::Threshold,
                labeling: labeling.clone(),
            },
            StoreConfig {
                shards,
                cache_capacity: cache,
            },
        ));
        let answers: Vec<bool> = std::thread::scope(|scope| {
            let chunks: Vec<_> = pairs
                .chunks(pairs.len() / 4)
                .map(|chunk| {
                    let store = Arc::clone(&store);
                    scope.spawn(move || {
                        chunk
                            .iter()
                            .map(|&(u, v)| store.adjacent(u, v).expect("in range"))
                            .collect::<Vec<bool>>()
                    })
                })
                .collect();
            chunks
                .into_iter()
                .flat_map(|h| h.join().expect("worker"))
                .collect()
        });
        all_answers.push(answers);
    }
    for w in all_answers.windows(2) {
        assert_eq!(w[0], w[1], "answers must not depend on shard/cache layout");
    }
}
