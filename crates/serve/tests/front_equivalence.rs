//! Front-end byte-equivalence harness.
//!
//! The transport refactor moved framing, handshake, and reply encoding
//! out of `pl_serve` into the shared `pl_wire` front-end. These tests
//! pin the *bytes on the socket* for every negotiable protocol version
//! (v1–v4) against literal golden frames written out by hand from the
//! layout documented in `pl_wire::protocol`: if the refactored
//! front-end produced even one different byte — a reordered field, a
//! missing checksum, a changed status code — already-deployed peers
//! would break, and these arrays would catch it where round-trip tests
//! cannot.

use std::net::TcpStream;
use std::sync::Arc;

use pl_labeling::scheme::AdjacencyScheme;
use pl_labeling::ThresholdScheme;
use pl_serve::protocol::{
    checksum, encode_batch, encode_hello_version, read_frame, write_frame, Query,
};
use pl_serve::{LabelStore, SchemeTag, ServerHandle, StoreConfig, TaggedLabeling};

/// An 8-vertex path 0–1–2–3: adjacency of (0,1) and (0,3) is known by
/// construction, so every reply byte is predictable.
fn tiny_server() -> ServerHandle {
    let g = pl_graph::builder::from_edges(8, [(0, 1), (1, 2), (2, 3)]);
    let store = Arc::new(LabelStore::new(
        TaggedLabeling {
            tag: SchemeTag::Threshold,
            labeling: ThresholdScheme::with_tau(4).encode(&g),
        },
        StoreConfig::default(),
    ));
    pl_serve::serve(store, "127.0.0.1:0").expect("bind")
}

/// `HELLO_OK` for a threshold store over 8 vertices, per version:
/// `0x80 | negotiated version | scheme tag 1 | n=8 u32 LE`.
fn golden_hello_ok(version: u8) -> Vec<u8> {
    vec![0x80, version, 0x01, 0x08, 0x00, 0x00, 0x00]
}

/// `BATCH_REPLY` to `[adjacent(0,1), adjacent(0,3)]`:
/// `0x81 | count 2 u16 LE | Adjacent | NotAdjacent`, plus the FNV-1a-32
/// trailer from v3 on.
fn golden_batch_reply(version: u8) -> Vec<u8> {
    #[rustfmt::skip]
    let mut frame = vec![
        0x81,       // opcode BATCH_REPLY
        0x02, 0x00, // 2 answers, u16 LE
        0x01,       // (0,1) Adjacent
        0x00,       // (0,3) NotAdjacent
    ];
    if version >= 3 {
        // FNV-1a-32 of the five bytes above, LE.
        frame.extend_from_slice(&[0x57, 0x9F, 0x20, 0x3E]);
    }
    frame
}

/// Handshake + batch + goodbye on every negotiable version, comparing
/// each reply body byte-for-byte against the golden frames.
#[test]
fn every_version_replies_with_the_pinned_golden_bytes() {
    let handle = tiny_server();
    for version in 1..=4u8 {
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        write_frame(&mut stream, &encode_hello_version(version)).expect("hello");
        let hello_ok = read_frame(&mut stream).expect("hello_ok");
        assert_eq!(
            hello_ok,
            golden_hello_ok(version),
            "HELLO_OK bytes drifted on v{version}"
        );

        let queries = [Query::adjacent(0, 1), Query::adjacent(0, 3)];
        write_frame(&mut stream, &encode_batch(&queries).expect("encode")).expect("batch");
        let reply = read_frame(&mut stream).expect("reply");
        assert_eq!(
            reply,
            golden_batch_reply(version),
            "BATCH_REPLY bytes drifted on v{version}"
        );

        write_frame(&mut stream, &[0x03]).expect("goodbye");
        let bye = read_frame(&mut stream).expect("goodbye_ok");
        assert_eq!(bye, vec![0x83], "GOODBYE_OK bytes drifted on v{version}");
    }
    handle.shutdown();
}

/// The pinned v3+ trailer really is the FNV-1a-32 of the pinned payload
/// — guards the golden arrays themselves against a typo.
#[test]
fn golden_checksum_is_fnv_of_the_golden_payload() {
    let v3 = golden_batch_reply(3);
    let (payload, sum) = v3.split_at(v3.len() - 4);
    assert_eq!(payload, &golden_batch_reply(1)[..]);
    assert_eq!(checksum(payload), 0x3E20_9F57);
    assert_eq!(u32::from_le_bytes(sum.try_into().unwrap()), 0x3E20_9F57);
}
