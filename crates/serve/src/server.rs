//! The TCP server: thread-per-connection over a shared [`LabelStore`].
//!
//! The accept loop and every connection thread poll a shared shutdown
//! flag between socket operations (reads carry a short timeout), so
//! [`ServerHandle::shutdown`] is cooperative: connections finish
//! answering every fully received frame, then linger through a short
//! quiet window to drain bytes still in flight, and only then close.
//! `shutdown` joins all threads and returns the final metrics snapshot.
//!
//! ## Observability
//!
//! Every server owns a [`MetricsRegistry`] (per-instance, so parallel
//! servers in one process — e.g. tests — never share counters). The
//! serve path is instrumented with [`pl_obs`] spans (`serve.batch`,
//! `store.adjacent`, cache hit/miss events) and a threshold-triggered
//! slow-query log: a query at or over
//! [`ServeOptions::slow_query_ns`] increments
//! `plserve_slow_queries_total` and records a `serve.slow_query` trace
//! event carrying the vertex pair and the shard/cache provenance.
//! [`ServerHandle::prometheus_text`] renders the registry (plus derived
//! per-shard hit ratios and the process-global encode metrics) in
//! Prometheus text format — `plab serve --prom` exposes it over HTTP.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pl_obs::MetricsRegistry;

use crate::metrics::{Metrics, Snapshot};
use crate::protocol::{
    encode_batch_reply, encode_hello_ok, encode_stats_reply, opcode, parse_batch, parse_hello,
    write_frame, Answer, FrameBuffer, QueryKind, MAX_FRAME,
};
use crate::store::{LabelStore, StoreError};

/// Poll interval for the accept loop and connection read timeout.
const POLL: Duration = Duration::from_millis(20);

/// After shutdown is signalled, a connection closes once it has seen no
/// new bytes for this long — frames already on the wire still get served.
const DRAIN_QUIET: Duration = Duration::from_millis(150);

/// Server tuning knobs beyond the store itself.
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Metrics registry to register the server's instruments in; a
    /// fresh private registry when `None`. Pass the registry the
    /// store was built with ([`LabelStore::with_registry`]) so the
    /// per-shard cache families land on the same scrape surface.
    pub registry: Option<Arc<MetricsRegistry>>,
    /// Queries taking at least this many nanoseconds are counted in
    /// `plserve_slow_queries_total` and logged as `serve.slow_query`
    /// trace events. `None` disables the slow-query log.
    pub slow_query_ns: Option<u64>,
}

/// Everything a connection thread needs, behind one `Arc`.
struct Shared {
    store: Arc<LabelStore>,
    metrics: Metrics,
    registry: Arc<MetricsRegistry>,
    /// Slow-query threshold; `u64::MAX` disables.
    slow_query_ns: u64,
    shutdown: AtomicBool,
    started: Instant,
}

impl Shared {
    /// Snapshot with the store's per-shard cache counters folded in.
    fn snapshot(&self) -> Snapshot {
        self.metrics
            .snapshot(self.started, &self.store.shard_cache_counts())
    }

    /// Prometheus text: the server registry, derived per-shard hit
    /// ratios, and the process-global registry (encode-phase timings
    /// and label-size histograms), deduplicated if they are the same.
    fn prometheus_text(&self) -> String {
        let mut p = pl_obs::prom::PromText::new();
        p.registry(&self.registry);
        for (i, &(h, m)) in self.store.shard_cache_counts().iter().enumerate() {
            let ratio = if h + m == 0 {
                0.0
            } else {
                h as f64 / (h + m) as f64
            };
            p.gauge_f64(
                "plserve_cache_hit_ratio",
                &vec![("shard".to_string(), i.to_string())],
                ratio,
            );
        }
        if !std::ptr::eq(self.registry.as_ref(), pl_obs::global()) {
            p.registry(pl_obs::global());
        }
        p.finish()
    }
}

/// A running server. Dropping the handle without calling
/// [`shutdown`](Self::shutdown) aborts rather than drains.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A live metrics snapshot.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        self.shared.snapshot()
    }

    /// The registry this server's instruments live in.
    #[must_use]
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.shared.registry)
    }

    /// Current metrics in Prometheus text format (server registry,
    /// derived per-shard cache hit ratios, process-global encode
    /// metrics).
    #[must_use]
    pub fn prometheus_text(&self) -> String {
        self.shared.prometheus_text()
    }

    /// A closure rendering [`prometheus_text`](Self::prometheus_text)
    /// on demand — plug it straight into [`pl_obs::http::expose`].
    #[must_use]
    pub fn prometheus_renderer(&self) -> pl_obs::http::RenderFn {
        let shared = Arc::clone(&self.shared);
        Arc::new(move || shared.prometheus_text())
    }

    /// Signals shutdown, waits for every connection to drain, and
    /// returns the final metrics snapshot.
    pub fn shutdown(mut self) -> Snapshot {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.shared.snapshot()
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves `store` until
/// [`ServerHandle::shutdown`], with default [`ServeOptions`].
pub fn serve(store: Arc<LabelStore>, addr: &str) -> std::io::Result<ServerHandle> {
    serve_with(store, addr, ServeOptions::default())
}

/// Binds `addr` and serves `store` with explicit [`ServeOptions`].
pub fn serve_with(
    store: Arc<LabelStore>,
    addr: &str,
    options: ServeOptions,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let registry = options
        .registry
        .unwrap_or_else(|| Arc::new(MetricsRegistry::new()));
    let shared = Arc::new(Shared {
        store,
        metrics: Metrics::new(&registry),
        registry,
        slow_query_ns: options.slow_query_ns.unwrap_or(u64::MAX),
        shutdown: AtomicBool::new(false),
        started: Instant::now(),
    });
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::spawn(move || accept_loop(&listener, &accept_shared));
    Ok(ServerHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.metrics.connections.inc();
                pl_obs::event!("serve.accept");
                let conn_shared = Arc::clone(shared);
                conns.push(std::thread::spawn(move || {
                    // Per-connection I/O errors just end that connection.
                    let _ = serve_connection(stream, &conn_shared);
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
                conns.retain(|c| !c.is_finished());
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
    for c in conns {
        let _ = c.join();
    }
}

fn serve_connection(mut stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL))?;
    let mut fb = FrameBuffer::new();
    let mut read_buf = [0u8; 16 * 1024];
    // Negotiated protocol version; `None` until the handshake.
    let mut session_version: Option<u8> = None;
    let mut quiet_since: Option<Instant> = None;
    loop {
        match stream.read(&mut read_buf) {
            Ok(0) => return Ok(()), // peer closed
            Ok(len) => {
                quiet_since = None;
                shared.metrics.bytes_in.add(len as u64);
                fb.push(&read_buf[..len]);
                loop {
                    match fb.next_frame() {
                        Ok(Some(body)) => {
                            if !process_frame(&body, &mut session_version, shared, &mut stream)? {
                                return stream.flush();
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            shared.metrics.protocol_errors.inc();
                            send_error(&mut stream, shared, &e.to_string())?;
                            return stream.flush();
                        }
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    // Drain: keep listening for DRAIN_QUIET in case a
                    // request is still in flight, then close.
                    let since = *quiet_since.get_or_insert_with(Instant::now);
                    if since.elapsed() >= DRAIN_QUIET {
                        return stream.flush();
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Answers one query, recording latency, the slow-query log, and trace
/// provenance.
fn answer_query(shared: &Shared, kind: QueryKind, u: u32, v: u32) -> Answer {
    let t0 = Instant::now();
    let (answer, path) = match kind {
        QueryKind::Adjacent => {
            shared.metrics.adj_queries.inc();
            match shared.store.adjacent_traced(u, v) {
                Ok((true, p)) => (Answer::Adjacent, Some(p)),
                Ok((false, p)) => (Answer::NotAdjacent, Some(p)),
                Err(StoreError::OutOfRange) => (Answer::OutOfRange, None),
                Err(StoreError::Unsupported) => (Answer::Unsupported, None),
                Err(StoreError::Malformed) => (Answer::MalformedLabel, None),
            }
        }
        QueryKind::Distance => {
            shared.metrics.dist_queries.inc();
            match shared.store.distance(u, v) {
                Ok(Some(d)) => (Answer::Distance(d), None),
                Ok(None) => (Answer::Unreachable, None),
                Err(StoreError::OutOfRange) => (Answer::OutOfRange, None),
                Err(StoreError::Unsupported) => (Answer::Unsupported, None),
                Err(StoreError::Malformed) => (Answer::MalformedLabel, None),
            }
        }
    };
    let ns = t0.elapsed().as_nanos() as u64;
    shared.metrics.query_latency.record(ns);
    if ns >= shared.slow_query_ns {
        shared.metrics.slow_queries.inc();
        // Reconstruct the span window only on the (rare) slow branch so
        // the hot path stays at two clock reads.
        let end = pl_obs::trace::now_ns();
        pl_obs::trace::record_complete(
            "serve.slow_query",
            end.saturating_sub(ns),
            ns,
            (u64::from(u) << 32) | u64::from(v),
            path.map_or(u64::MAX, |p| p.as_u64()),
        );
    }
    answer
}

/// Handles one frame; returns `false` when the connection should close.
fn process_frame(
    body: &[u8],
    session_version: &mut Option<u8>,
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
) -> std::io::Result<bool> {
    let op = body.first().copied();
    let Some(version) = *session_version else {
        return match op {
            Some(opcode::HELLO) => match parse_hello(body) {
                Ok(v) => {
                    *session_version = Some(v);
                    let reply = encode_hello_ok(v, shared.store.tag().as_u8(), shared.store.n());
                    send(stream, shared, &reply)?;
                    Ok(true)
                }
                Err(e) => {
                    shared.metrics.protocol_errors.inc();
                    send_error(stream, shared, &e.to_string())?;
                    Ok(false)
                }
            },
            _ => {
                shared.metrics.protocol_errors.inc();
                send_error(stream, shared, "expected HELLO")?;
                Ok(false)
            }
        };
    };
    match op {
        Some(opcode::BATCH) => match parse_batch(body) {
            Ok(queries) => {
                let _batch_span = pl_obs::span!("serve.batch", queries.len());
                let mut answers = Vec::with_capacity(queries.len());
                for q in &queries {
                    answers.push(answer_query(shared, q.kind, q.u, q.v));
                }
                shared.metrics.batches.inc();
                send(stream, shared, &encode_batch_reply(&answers))?;
                Ok(true)
            }
            Err(e) => {
                shared.metrics.protocol_errors.inc();
                send_error(stream, shared, &e.to_string())?;
                Ok(false)
            }
        },
        Some(opcode::STATS) => {
            send(
                stream,
                shared,
                &encode_stats_reply(&shared.snapshot(), version),
            )?;
            Ok(true)
        }
        Some(opcode::TRACE_DUMP) => {
            let jsonl = pl_obs::trace::drain_jsonl();
            let mut body = Vec::with_capacity(jsonl.len().min(MAX_FRAME) + 1);
            body.push(opcode::TRACE_REPLY);
            // Truncate to the frame cap at a line boundary.
            let budget = MAX_FRAME - 1;
            let bytes = jsonl.as_bytes();
            let take = if bytes.len() <= budget {
                bytes.len()
            } else {
                bytes[..budget]
                    .iter()
                    .rposition(|&b| b == b'\n')
                    .map_or(0, |p| p + 1)
            };
            body.extend_from_slice(&bytes[..take]);
            send(stream, shared, &body)?;
            Ok(true)
        }
        Some(opcode::GOODBYE) => {
            send(stream, shared, &[opcode::GOODBYE_OK])?;
            Ok(false)
        }
        _ => {
            shared.metrics.protocol_errors.inc();
            send_error(stream, shared, "unknown opcode")?;
            Ok(false)
        }
    }
}

fn send(stream: &mut TcpStream, shared: &Shared, body: &[u8]) -> std::io::Result<()> {
    write_frame(stream, body)?;
    shared.metrics.bytes_out.add(4 + body.len() as u64);
    Ok(())
}

fn send_error(stream: &mut TcpStream, shared: &Shared, msg: &str) -> std::io::Result<()> {
    let mut body = vec![opcode::ERROR];
    body.extend_from_slice(msg.as_bytes());
    send(stream, shared, &body)
}
