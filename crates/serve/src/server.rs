//! The TCP server: the shared [`pl_wire`] front-end over a
//! [`LabelStore`] engine.
//!
//! Since PR 6 the transport — accept loop, per-connection lifecycle,
//! HELLO negotiation, `--max-conns` shedding, idle/stall deadlines,
//! drain-on-shutdown, and fault injection — lives in
//! [`pl_wire::frontend`] and is shared with the `pl-cluster` router.
//! This module supplies only the engine: [`StoreEngine`] implements
//! [`QueryEngine`] by answering batches against the store, grouping a
//! batch's fat-cache lookups by shard
//! ([`LabelStore::adjacent_batch_traced`]) so each touched shard lock
//! is taken once per batch instead of once per query.
//!
//! ## Degradation under load and failure
//!
//! The front-end degrades gracefully rather than wedging (see
//! RELIABILITY.md):
//!
//! - [`ServeOptions::max_conns`] caps concurrent connections; excess
//!   accepts are *shed* — answered with a single `OVERLOADED` frame and
//!   closed, counted in `plserve_shed_total` — instead of queueing
//!   unboundedly behind a stuck hub connection.
//! - [`ServeOptions::idle_timeout`] reaps connections that have sent
//!   nothing for too long; [`ServeOptions::stall_timeout`] bounds both a
//!   peer that stalls mid-frame and a peer that stops reading its
//!   replies (it doubles as the socket write timeout).
//! - Finished connection threads are reaped every accept-loop pass, so
//!   the handle vector stays bounded by the number of *live*
//!   connections ([`ServerHandle::conn_handle_count`]).
//! - A [`FaultPlan`] ([`ServeOptions::fault_plan`]) turns on the
//!   deterministic fault-injection harness of [`crate::fault`] for
//!   chaos testing: injected read/write delays, dropped and truncated
//!   reply frames, flipped reply bytes (protocol v3 checksums catch
//!   them), and simulated shard-store errors.
//!
//! ## Observability
//!
//! Every server owns a [`MetricsRegistry`] (per-instance, so parallel
//! servers in one process — e.g. tests — never share counters). The
//! serve path is instrumented with [`pl_obs`] spans (`serve.batch`,
//! `store.adjacent`, cache hit/miss events) and a threshold-triggered
//! slow-query log: a query at or over
//! [`ServeOptions::slow_query_ns`] increments
//! `plserve_slow_queries_total` and records a `serve.slow_query` trace
//! event carrying the vertex pair and the shard/cache provenance.
//! Resilience events land in `plserve_faults_injected_total{kind}`,
//! `plserve_shed_total`, `plserve_idle_reaped_total`,
//! `plserve_deadline_closes_total`, and the `plserve_open_conns` gauge.
//! [`ServerHandle::prometheus_text`] renders the registry (plus derived
//! per-shard hit ratios and the process-global encode metrics) in
//! Prometheus text format — `plab serve --prom` exposes it over HTTP.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use pl_labeling::bits::BitWriter;
use pl_labeling::{Label, LabelingBuilder};
use pl_obs::MetricsRegistry;
use pl_wire::frontend::{self, FrontStats, FrontendHandle, FrontendOptions, QueryEngine};
use pl_wire::protocol::{LabelsStatus, MapSetMode, MapSetRequest, MapSetStatus};

use crate::fault::FaultPlan;
use crate::format::{SchemeTag, TaggedLabeling};
use crate::map::ClusterMap;
use crate::metrics::{Metrics, Snapshot};
use crate::protocol::{Answer, Query, QueryKind};
use crate::store::{BatchOutcome, LabelStore, StoreError};

/// Server tuning knobs beyond the store itself.
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Metrics registry to register the server's instruments in; a
    /// fresh private registry when `None`. Pass the registry the
    /// store was built with ([`LabelStore::with_registry`]) so the
    /// per-shard cache families land on the same scrape surface.
    pub registry: Option<Arc<MetricsRegistry>>,
    /// Queries taking at least this many nanoseconds are counted in
    /// `plserve_slow_queries_total` and logged as `serve.slow_query`
    /// trace events. `None` disables the slow-query log.
    pub slow_query_ns: Option<u64>,
    /// Maximum concurrent connections; further accepts are shed with an
    /// `OVERLOADED` frame (`plserve_shed_total`). `None` means no cap.
    pub max_conns: Option<usize>,
    /// Fault-injection plan for chaos testing; `None` (or an all-zero
    /// plan) serves faithfully.
    pub fault_plan: Option<FaultPlan>,
    /// Connections that send no bytes for this long are reaped
    /// (`plserve_idle_reaped_total`). `None` lets idle connections live
    /// until shutdown.
    pub idle_timeout: Option<Duration>,
    /// Deadline for a peer stalled mid-frame, and the socket write
    /// timeout for a peer that stops reading replies
    /// (`plserve_deadline_closes_total`). `None` disables both.
    pub stall_timeout: Option<Duration>,
    /// Highest protocol version this server will negotiate; `None`
    /// means the build's newest. Used by downgrade tests to stand in
    /// for an older server binary.
    pub max_version: Option<u8>,
}

/// [`LabelStore`] as a [`QueryEngine`]: answers batches shard-grouped,
/// records per-query latency and the slow-query log.
///
/// Since protocol v6 the store is *swappable*: a `MAP_SET` push stages
/// an epoch-bumped [`ClusterMap`], `LABELS` pushes buffer re-owned
/// vertices' full labels (verified byte-identical on arrival), and the
/// commit rebuilds a replacement store off the serving path and swaps
/// it in atomically — in-flight batches finish against the store they
/// started on, so no query is ever dropped or answered from a
/// half-built store.
pub struct StoreEngine {
    store: RwLock<Arc<LabelStore>>,
    metrics: Metrics,
    /// Slow-query threshold; `u64::MAX` disables.
    slow_query_ns: u64,
    /// Registry rebuilt stores register their shard counters in;
    /// families are get-or-create, so a swap reuses the existing
    /// counters rather than forking them.
    registry: Arc<MetricsRegistry>,
    /// The v6 map-install state machine.
    reconfig: Mutex<ReconfigState>,
}

/// The backend's view of cluster reconfiguration: the committed epoch
/// plus an optional staged (prepared but uncommitted) map with the
/// labels streamed in for it so far.
#[derive(Default)]
struct ReconfigState {
    /// Committed epoch; 0 until the first map push.
    epoch: u64,
    /// Serialized current map, answering `MAP_GET`.
    map: Option<Vec<u8>>,
    /// This backend's index in the current map.
    index: u32,
    pending: Option<PendingMap>,
}

/// A prepared-but-uncommitted map push.
struct PendingMap {
    epoch: u64,
    map_bytes: Vec<u8>,
    /// This backend's index in the pending map.
    index: u32,
    /// Labels streamed in for the pending epoch, keyed by vertex.
    labels: HashMap<u32, Vec<u8>>,
}

/// Reduces a label to its prelude stub (id width, scheme id, fat flag —
/// nothing after). Total: a stub of a stub is the same stub.
fn stub_label(label: pl_labeling::LabelRef<'_>) -> Option<Label> {
    let mut r = label.reader();
    let w = r.try_read_bits(6)? as usize;
    let id = r.try_read_bits(w)?;
    let fat = r.try_read_bit()?;
    let mut wr = BitWriter::new();
    wr.write_bits(w as u64, 6);
    wr.write_bits(id, w);
    wr.write_bit(fat);
    Some(Label::from(wr))
}

/// Per-connection scratch for [`StoreEngine`]: reused across batches so
/// the steady-state answer path allocates nothing.
#[derive(Default)]
pub struct StoreSession {
    pairs: Vec<(u32, u32)>,
    slots: Vec<usize>,
    outcomes: Vec<BatchOutcome>,
}

fn store_error_answer(e: StoreError) -> Answer {
    match e {
        StoreError::OutOfRange => Answer::OutOfRange,
        StoreError::Unsupported => Answer::Unsupported,
        StoreError::Malformed => Answer::MalformedLabel,
        StoreError::NotOwned => Answer::NotOwned,
    }
}

impl StoreEngine {
    /// The store currently serving queries.
    #[must_use]
    pub fn store(&self) -> Arc<LabelStore> {
        Arc::clone(&pl_wire::sync::read_recover(&self.store))
    }

    /// The committed reconfiguration epoch (0 until the first map push).
    #[must_use]
    pub fn reconfig_epoch(&self) -> u64 {
        pl_wire::sync::lock_recover(&self.reconfig).epoch
    }

    /// Stages an epoch-bumped map: semantic validation (parameters must
    /// match the serving store), epoch fencing (must be newer than the
    /// committed epoch), then buffer it for `LABELS` pushes.
    fn prepare(&self, req: &MapSetRequest) -> (MapSetStatus, u64) {
        let store = self.store();
        let mut state = pl_wire::sync::lock_recover(&self.reconfig);
        let Ok(map) = ClusterMap::from_bytes(&req.map) else {
            return (MapSetStatus::Failed, state.epoch);
        };
        if map.n != store.n()
            || map.tag != store.tag().as_u8()
            || (req.backend as usize) >= map.backends.len()
            || map.replicas == 0
        {
            return (MapSetStatus::Failed, state.epoch);
        }
        if map.epoch <= state.epoch {
            return (MapSetStatus::Stale, state.epoch);
        }
        let epoch = map.epoch;
        // A newer prepare supersedes any staged one (its labels die
        // with it — the coordinator restreams for the new epoch).
        state.pending = Some(PendingMap {
            epoch,
            map_bytes: req.map.clone(),
            index: req.backend,
            labels: HashMap::new(),
        });
        (MapSetStatus::Prepared, epoch)
    }

    /// Commits the staged map: rebuilds the store with the pushed
    /// labels merged (streamed-in labels override, every other vertex
    /// keeps its current label bit for bit), swaps it in, and advances
    /// the epoch. The rebuild runs against a snapshot of the current
    /// store while that store keeps serving; only the final pointer
    /// swap takes the write lock.
    fn commit(&self, req: &MapSetRequest) -> (MapSetStatus, u64) {
        let old = self.store();
        let pending = {
            let mut state = pl_wire::sync::lock_recover(&self.reconfig);
            let Ok(map) = ClusterMap::from_bytes(&req.map) else {
                return (MapSetStatus::Failed, state.epoch);
            };
            if map.epoch <= state.epoch {
                return (MapSetStatus::Stale, state.epoch);
            }
            match state.pending.take() {
                Some(p) if p.epoch == map.epoch => p,
                other => {
                    state.pending = other;
                    return (MapSetStatus::Failed, state.epoch);
                }
            }
        };
        let mut builder = LabelingBuilder::new();
        for v in 0..old.n() {
            if let Some(bytes) = pending.labels.get(&v) {
                // Verified byte-identical on arrival; decode cannot fail.
                let (label, _) = Label::from_bytes(bytes).expect("verified label"); // lint: panic-ok(bytes round-tripped Label::to_bytes on arrival in map_set; decode of our own encoding cannot fail)
                builder.push_label(&label);
            } else {
                let current = old.label(v).expect("v < n"); // lint: panic-ok(v iterates 0..old.n(), the store's own bound)
                builder.push_label(&current.to_label());
            }
        }
        let rebuilt = Arc::new(
            LabelStore::with_registry(
                TaggedLabeling {
                    tag: old.tag(),
                    labeling: builder.finish(),
                },
                old.config(),
                &self.registry,
            )
            .with_partial(old.is_partial()),
        );
        let mut state = pl_wire::sync::lock_recover(&self.reconfig);
        *pl_wire::sync::write_recover(&self.store) = rebuilt;
        state.epoch = pending.epoch;
        state.map = Some(pending.map_bytes);
        state.index = pending.index;
        (MapSetStatus::Committed, pending.epoch)
    }

    /// Post-commit cleanup on a losing backend: labels the *current*
    /// map no longer assigns to this backend shrink back to prelude
    /// stubs. Threshold labelings only — the same restriction as
    /// splitting.
    fn shrink(&self, req: &MapSetRequest) -> (MapSetStatus, u64) {
        let old = self.store();
        let (epoch, part, index) = {
            let state = pl_wire::sync::lock_recover(&self.reconfig);
            let Ok(map) = ClusterMap::from_bytes(&req.map) else {
                return (MapSetStatus::Failed, state.epoch);
            };
            if map.epoch != state.epoch {
                return (MapSetStatus::Stale, state.epoch);
            }
            if old.tag() != SchemeTag::Threshold || (req.backend as usize) >= map.backends.len() {
                return (MapSetStatus::Failed, state.epoch);
            }
            (state.epoch, map.partitioner(), req.backend)
        };
        let mut builder = LabelingBuilder::new();
        for v in 0..old.n() {
            let current = old.label(v).expect("v < n"); // lint: panic-ok(v iterates 0..old.n(), the store's own bound)
            if part.owns(index, v) {
                builder.push_label(&current.to_label());
            } else {
                let Some(stub) = stub_label(current) else {
                    return (
                        MapSetStatus::Failed,
                        pl_wire::sync::lock_recover(&self.reconfig).epoch,
                    );
                };
                builder.push_label(&stub);
            }
        }
        let rebuilt = Arc::new(
            LabelStore::with_registry(
                TaggedLabeling {
                    tag: old.tag(),
                    labeling: builder.finish(),
                },
                old.config(),
                &self.registry,
            )
            .with_partial(true),
        );
        *pl_wire::sync::write_recover(&self.store) = rebuilt;
        (MapSetStatus::Shrunk, epoch)
    }

    /// Buffers one `LABELS` frame for the staged epoch. All-or-nothing:
    /// if any label fails verification the whole frame is discarded.
    /// Verification is byte-identity — the label must decode, consume
    /// every pushed byte, and re-encode to exactly the pushed bytes.
    fn buffer_labels(&self, epoch: u64, entries: &[(u32, Vec<u8>)]) -> (LabelsStatus, u32) {
        let n = self.store().n();
        let mut state = pl_wire::sync::lock_recover(&self.reconfig);
        let Some(pending) = state.pending.as_mut() else {
            return (LabelsStatus::WrongEpoch, 0);
        };
        if epoch != pending.epoch {
            return (LabelsStatus::WrongEpoch, pending.labels.len() as u32);
        }
        for (v, bytes) in entries {
            let verified = Label::from_bytes(bytes)
                .ok()
                .filter(|(label, used)| *used == bytes.len() && label.to_bytes() == *bytes)
                .is_some();
            if *v >= n || !verified {
                return (LabelsStatus::Rejected, pending.labels.len() as u32);
            }
        }
        for (v, bytes) in entries {
            pending.labels.insert(*v, bytes.clone());
        }
        (LabelsStatus::Ok, pending.labels.len() as u32)
    }

    /// Records one query's latency and, at or over the threshold, the
    /// slow-query counter and trace event. The span window is
    /// reconstructed only on the (rare) slow branch so the hot path
    /// stays at two clock reads.
    fn record_latency(&self, u: u32, v: u32, ns: u64, path_word: u64) {
        self.metrics.query_latency.record(ns);
        if ns >= self.slow_query_ns {
            self.metrics.slow_queries.inc();
            let end = pl_obs::trace::now_ns();
            pl_obs::trace::record_complete(
                "serve.slow_query",
                end.saturating_sub(ns),
                ns,
                (u64::from(u) << 32) | u64::from(v),
                path_word,
            );
        }
    }
}

impl QueryEngine for StoreEngine {
    type Session = StoreSession;

    fn new_session(&self) -> StoreSession {
        StoreSession::default()
    }

    fn scheme_tag(&self) -> u8 {
        self.store().tag().as_u8()
    }

    fn n(&self) -> u32 {
        self.store().n()
    }

    fn answer_batch(&self, s: &mut StoreSession, queries: &[Query], answers: &mut Vec<Answer>) {
        // One store snapshot per batch: a mid-batch map commit swaps
        // the engine's store, but this batch finishes coherently
        // against the store it started on.
        let store = self.store();
        answers.clear();
        answers.resize(queries.len(), Answer::Overloaded);
        s.pairs.clear();
        s.slots.clear();
        for (i, q) in queries.iter().enumerate() {
            match q.kind {
                QueryKind::Adjacent => {
                    self.metrics.adj_queries.inc();
                    s.pairs.push((q.u, q.v));
                    s.slots.push(i);
                }
                QueryKind::Distance => {
                    self.metrics.dist_queries.inc();
                    let t0 = Instant::now();
                    let answer = match store.distance(q.u, q.v) {
                        Ok(Some(d)) => Answer::Distance(d),
                        Ok(None) => Answer::Unreachable,
                        Err(e) => store_error_answer(e),
                    };
                    self.record_latency(q.u, q.v, t0.elapsed().as_nanos() as u64, u64::MAX);
                    answers[i] = answer;
                }
            }
        }
        store.adjacent_batch_traced(&s.pairs, &mut s.outcomes);
        for ((&(u, v), &slot), outcome) in s.pairs.iter().zip(&s.slots).zip(&s.outcomes) {
            let (answer, path) = match outcome.result {
                Ok((true, p)) => (Answer::Adjacent, Some(p)),
                Ok((false, p)) => (Answer::NotAdjacent, Some(p)),
                Err(e) => (store_error_answer(e), None),
            };
            self.record_latency(u, v, outcome.ns, path.map_or(u64::MAX, |p| p.as_u64()));
            answers[slot] = answer;
        }
    }

    fn health(&self) -> Vec<bool> {
        self.store().shard_health()
    }

    fn map_payload(&self, _s: &mut StoreSession) -> Option<Vec<u8>> {
        pl_wire::sync::lock_recover(&self.reconfig).map.clone()
    }

    fn map_install(&self, _s: &mut StoreSession, req: &MapSetRequest) -> (MapSetStatus, u64) {
        match req.mode {
            MapSetMode::Prepare => self.prepare(req),
            MapSetMode::Commit => self.commit(req),
            MapSetMode::Abort => {
                let mut state = pl_wire::sync::lock_recover(&self.reconfig);
                state.pending = None;
                (MapSetStatus::Aborted, state.epoch)
            }
            MapSetMode::Shrink => self.shrink(req),
        }
    }

    fn labels_install(
        &self,
        _s: &mut StoreSession,
        epoch: u64,
        entries: &[(u32, Vec<u8>)],
    ) -> (LabelsStatus, u32) {
        self.buffer_labels(epoch, entries)
    }

    fn wire_stats(&self, _s: &mut StoreSession, front: &FrontStats) -> Snapshot {
        self.local_snapshot(front)
    }

    fn local_snapshot(&self, front: &FrontStats) -> Snapshot {
        front.metrics.snapshot(
            front.started,
            &self.store().shard_cache_counts(),
            front.faults.total(),
        )
    }
}

/// Prometheus text: the server registry, derived per-shard hit
/// ratios, and the process-global registry (encode-phase timings
/// and label-size histograms), deduplicated if they are the same.
fn prometheus_text(registry: &MetricsRegistry, store: &LabelStore) -> String {
    let mut p = pl_obs::prom::PromText::new();
    p.registry(registry);
    for (i, &(h, m)) in store.shard_cache_counts().iter().enumerate() {
        let ratio = if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        };
        p.gauge_f64(
            "plserve_cache_hit_ratio",
            &vec![("shard".to_string(), i.to_string())],
            ratio,
        );
    }
    if !std::ptr::eq(registry, pl_obs::global()) {
        p.registry(pl_obs::global());
    }
    p.finish()
}

/// A running server. Dropping the handle without calling
/// [`shutdown`](Self::shutdown) aborts rather than drains.
pub struct ServerHandle {
    front: FrontendHandle<StoreEngine>,
    registry: Arc<MetricsRegistry>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.front.addr()
    }

    /// A live metrics snapshot.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        self.front.snapshot()
    }

    /// The registry this server's instruments live in.
    #[must_use]
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.registry)
    }

    /// Connections currently being served.
    #[must_use]
    pub fn live_connections(&self) -> usize {
        self.front.live_connections()
    }

    /// Join handles the accept loop is currently holding. Finished
    /// handles are reaped every loop pass, so this stays bounded by the
    /// live-connection count (plus at most one poll interval of lag)
    /// rather than growing with every connection ever accepted.
    #[must_use]
    pub fn conn_handle_count(&self) -> usize {
        self.front.conn_handle_count()
    }

    /// Current metrics in Prometheus text format (server registry,
    /// derived per-shard cache hit ratios, process-global encode
    /// metrics).
    #[must_use]
    pub fn prometheus_text(&self) -> String {
        prometheus_text(&self.registry, &self.front.engine().store())
    }

    /// A closure rendering [`prometheus_text`](Self::prometheus_text)
    /// on demand — plug it straight into [`pl_obs::http::expose`].
    /// Reads the engine's *current* store each render, so a
    /// reconfiguration swap is reflected on the next scrape.
    #[must_use]
    pub fn prometheus_renderer(&self) -> pl_obs::http::RenderFn {
        let registry = Arc::clone(&self.registry);
        let engine = Arc::clone(self.front.engine());
        Arc::new(move || prometheus_text(&registry, &engine.store()))
    }

    /// The committed reconfiguration epoch (0 until the first map
    /// push).
    #[must_use]
    pub fn reconfig_epoch(&self) -> u64 {
        self.front.engine().reconfig_epoch()
    }

    /// Signals shutdown, waits for every connection to drain, and
    /// returns the final metrics snapshot.
    pub fn shutdown(self) -> Snapshot {
        self.front.shutdown()
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves `store` until
/// [`ServerHandle::shutdown`], with default [`ServeOptions`].
pub fn serve(store: Arc<LabelStore>, addr: &str) -> std::io::Result<ServerHandle> {
    serve_with(store, addr, ServeOptions::default())
}

/// Binds `addr` and serves `store` with explicit [`ServeOptions`].
pub fn serve_with(
    store: Arc<LabelStore>,
    addr: &str,
    options: ServeOptions,
) -> std::io::Result<ServerHandle> {
    let registry = options
        .registry
        .unwrap_or_else(|| Arc::new(MetricsRegistry::new()));
    let engine = Arc::new(StoreEngine {
        store: RwLock::new(store),
        metrics: Metrics::new(&registry),
        slow_query_ns: options.slow_query_ns.unwrap_or(u64::MAX),
        registry: Arc::clone(&registry),
        reconfig: Mutex::new(ReconfigState::default()),
    });
    let front = frontend::bind(
        engine,
        addr,
        FrontendOptions {
            registry: Some(Arc::clone(&registry)),
            max_conns: options.max_conns,
            fault_plan: options.fault_plan,
            idle_timeout: options.idle_timeout,
            stall_timeout: options.stall_timeout,
            max_version: options.max_version,
        },
    )?;
    Ok(ServerHandle { front, registry })
}
