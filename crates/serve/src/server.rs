//! The TCP server: thread-per-connection over a shared [`LabelStore`].
//!
//! The accept loop and every connection thread poll a shared shutdown
//! flag between socket operations (reads carry a short timeout), so
//! [`ServerHandle::shutdown`] is cooperative: connections finish
//! answering every fully received frame, then linger through a short
//! quiet window to drain bytes still in flight, and only then close.
//! `shutdown` joins all threads and returns the final metrics snapshot.
//!
//! ## Degradation under load and failure
//!
//! The server degrades gracefully rather than wedging (see
//! RELIABILITY.md):
//!
//! - [`ServeOptions::max_conns`] caps concurrent connections; excess
//!   accepts are *shed* — answered with a single `OVERLOADED` frame and
//!   closed, counted in `plserve_shed_total` — instead of queueing
//!   unboundedly behind a stuck hub connection.
//! - [`ServeOptions::idle_timeout`] reaps connections that have sent
//!   nothing for too long; [`ServeOptions::stall_timeout`] bounds both a
//!   peer that stalls mid-frame and a peer that stops reading its
//!   replies (it doubles as the socket write timeout). Both replace the
//!   bare `POLL` read timeout as real per-connection deadlines.
//! - Finished connection threads are reaped every accept-loop pass, so
//!   the handle vector stays bounded by the number of *live*
//!   connections ([`ServerHandle::conn_handle_count`]).
//! - A [`FaultPlan`] ([`ServeOptions::fault_plan`]) turns on the
//!   deterministic fault-injection harness of [`crate::fault`] for
//!   chaos testing: injected read/write delays, dropped and truncated
//!   reply frames, flipped reply bytes (protocol v3 checksums catch
//!   them), and simulated shard-store errors.
//!
//! ## Observability
//!
//! Every server owns a [`MetricsRegistry`] (per-instance, so parallel
//! servers in one process — e.g. tests — never share counters). The
//! serve path is instrumented with [`pl_obs`] spans (`serve.batch`,
//! `store.adjacent`, cache hit/miss events) and a threshold-triggered
//! slow-query log: a query at or over
//! [`ServeOptions::slow_query_ns`] increments
//! `plserve_slow_queries_total` and records a `serve.slow_query` trace
//! event carrying the vertex pair and the shard/cache provenance.
//! Resilience events land in `plserve_faults_injected_total{kind}`,
//! `plserve_shed_total`, `plserve_idle_reaped_total`,
//! `plserve_deadline_closes_total`, and the `plserve_open_conns` gauge.
//! [`ServerHandle::prometheus_text`] renders the registry (plus derived
//! per-shard hit ratios and the process-global encode metrics) in
//! Prometheus text format — `plab serve --prom` exposes it over HTTP.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pl_obs::MetricsRegistry;

use crate::fault::{FaultCounters, FaultInjector, FaultKind, FaultPlan};
use crate::metrics::{Metrics, Snapshot};
use crate::protocol::{
    encode_batch_reply, encode_health_reply, encode_hello_ok, encode_stats_reply, opcode,
    parse_batch, parse_hello, write_frame, Answer, FrameBuffer, QueryKind, MAX_FRAME,
};
use crate::store::{LabelStore, StoreError};

/// Poll interval for the accept loop and connection read timeout.
const POLL: Duration = Duration::from_millis(20);

/// After shutdown is signalled, a connection closes once it has seen no
/// new bytes for this long — frames already on the wire still get served.
const DRAIN_QUIET: Duration = Duration::from_millis(150);

/// Server tuning knobs beyond the store itself.
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Metrics registry to register the server's instruments in; a
    /// fresh private registry when `None`. Pass the registry the
    /// store was built with ([`LabelStore::with_registry`]) so the
    /// per-shard cache families land on the same scrape surface.
    pub registry: Option<Arc<MetricsRegistry>>,
    /// Queries taking at least this many nanoseconds are counted in
    /// `plserve_slow_queries_total` and logged as `serve.slow_query`
    /// trace events. `None` disables the slow-query log.
    pub slow_query_ns: Option<u64>,
    /// Maximum concurrent connections; further accepts are shed with an
    /// `OVERLOADED` frame (`plserve_shed_total`). `None` means no cap.
    pub max_conns: Option<usize>,
    /// Fault-injection plan for chaos testing; `None` (or an all-zero
    /// plan) serves faithfully.
    pub fault_plan: Option<FaultPlan>,
    /// Connections that send no bytes for this long are reaped
    /// (`plserve_idle_reaped_total`). `None` lets idle connections live
    /// until shutdown.
    pub idle_timeout: Option<Duration>,
    /// Deadline for a peer stalled mid-frame, and the socket write
    /// timeout for a peer that stops reading replies
    /// (`plserve_deadline_closes_total`). `None` disables both.
    pub stall_timeout: Option<Duration>,
}

/// Everything a connection thread needs, behind one `Arc`.
struct Shared {
    store: Arc<LabelStore>,
    metrics: Metrics,
    faults: FaultCounters,
    registry: Arc<MetricsRegistry>,
    /// Slow-query threshold; `u64::MAX` disables.
    slow_query_ns: u64,
    /// Connection cap; `usize::MAX` disables.
    max_conns: usize,
    fault_plan: Option<FaultPlan>,
    idle_timeout: Option<Duration>,
    stall_timeout: Option<Duration>,
    /// Connections currently being served (authoritative for shedding).
    live_conns: AtomicUsize,
    /// Join handles currently held by the accept loop (diagnostic; see
    /// [`ServerHandle::conn_handle_count`]).
    conn_handles: AtomicUsize,
    /// Monotonic connection ids, feeding per-connection fault streams.
    conn_seq: AtomicU64,
    shutdown: AtomicBool,
    started: Instant,
}

impl Shared {
    /// Snapshot with the store's per-shard cache counters and the fault
    /// harness's running total folded in.
    fn snapshot(&self) -> Snapshot {
        self.metrics.snapshot(
            self.started,
            &self.store.shard_cache_counts(),
            self.faults.total(),
        )
    }

    /// Prometheus text: the server registry, derived per-shard hit
    /// ratios, and the process-global registry (encode-phase timings
    /// and label-size histograms), deduplicated if they are the same.
    fn prometheus_text(&self) -> String {
        let mut p = pl_obs::prom::PromText::new();
        p.registry(&self.registry);
        for (i, &(h, m)) in self.store.shard_cache_counts().iter().enumerate() {
            let ratio = if h + m == 0 {
                0.0
            } else {
                h as f64 / (h + m) as f64
            };
            p.gauge_f64(
                "plserve_cache_hit_ratio",
                &vec![("shard".to_string(), i.to_string())],
                ratio,
            );
        }
        if !std::ptr::eq(self.registry.as_ref(), pl_obs::global()) {
            p.registry(pl_obs::global());
        }
        p.finish()
    }
}

/// Decrements the live-connection accounting when a connection thread
/// exits, however it exits.
struct ConnGuard<'a>(&'a Shared);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.live_conns.fetch_sub(1, Ordering::SeqCst);
        self.0.metrics.open_conns.add(-1);
    }
}

/// A running server. Dropping the handle without calling
/// [`shutdown`](Self::shutdown) aborts rather than drains.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A live metrics snapshot.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        self.shared.snapshot()
    }

    /// The registry this server's instruments live in.
    #[must_use]
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.shared.registry)
    }

    /// Connections currently being served.
    #[must_use]
    pub fn live_connections(&self) -> usize {
        self.shared.live_conns.load(Ordering::SeqCst)
    }

    /// Join handles the accept loop is currently holding. Finished
    /// handles are reaped every loop pass, so this stays bounded by the
    /// live-connection count (plus at most one poll interval of lag)
    /// rather than growing with every connection ever accepted.
    #[must_use]
    pub fn conn_handle_count(&self) -> usize {
        self.shared.conn_handles.load(Ordering::SeqCst)
    }

    /// Current metrics in Prometheus text format (server registry,
    /// derived per-shard cache hit ratios, process-global encode
    /// metrics).
    #[must_use]
    pub fn prometheus_text(&self) -> String {
        self.shared.prometheus_text()
    }

    /// A closure rendering [`prometheus_text`](Self::prometheus_text)
    /// on demand — plug it straight into [`pl_obs::http::expose`].
    #[must_use]
    pub fn prometheus_renderer(&self) -> pl_obs::http::RenderFn {
        let shared = Arc::clone(&self.shared);
        Arc::new(move || shared.prometheus_text())
    }

    /// Signals shutdown, waits for every connection to drain, and
    /// returns the final metrics snapshot.
    pub fn shutdown(mut self) -> Snapshot {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.shared.snapshot()
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves `store` until
/// [`ServerHandle::shutdown`], with default [`ServeOptions`].
pub fn serve(store: Arc<LabelStore>, addr: &str) -> std::io::Result<ServerHandle> {
    serve_with(store, addr, ServeOptions::default())
}

/// Binds `addr` and serves `store` with explicit [`ServeOptions`].
pub fn serve_with(
    store: Arc<LabelStore>,
    addr: &str,
    options: ServeOptions,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let registry = options
        .registry
        .unwrap_or_else(|| Arc::new(MetricsRegistry::new()));
    let shared = Arc::new(Shared {
        store,
        metrics: Metrics::new(&registry),
        faults: FaultCounters::new(&registry),
        registry,
        slow_query_ns: options.slow_query_ns.unwrap_or(u64::MAX),
        max_conns: options.max_conns.unwrap_or(usize::MAX),
        fault_plan: options.fault_plan.filter(FaultPlan::is_active),
        idle_timeout: options.idle_timeout,
        stall_timeout: options.stall_timeout,
        live_conns: AtomicUsize::new(0),
        conn_handles: AtomicUsize::new(0),
        conn_seq: AtomicU64::new(0),
        shutdown: AtomicBool::new(false),
        started: Instant::now(),
    });
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::spawn(move || accept_loop(&listener, &accept_shared));
    Ok(ServerHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        // Reap finished connection threads every pass — not only when
        // accepts are quiet — so the handle vector tracks live
        // connections instead of every connection ever accepted.
        conns.retain(|c| !c.is_finished());
        shared.conn_handles.store(conns.len(), Ordering::SeqCst);
        match listener.accept() {
            Ok((mut stream, _)) => {
                // The cap is checked (and the slot claimed) here in the
                // accept loop, not in the connection thread, so two
                // racing accepts cannot both squeeze past the limit.
                if shared.live_conns.load(Ordering::SeqCst) >= shared.max_conns {
                    shared.metrics.shed.inc();
                    pl_obs::event!("serve.shed");
                    // Best effort: tell the peer why before closing.
                    let _ = write_frame(&mut stream, &[opcode::OVERLOADED]);
                    continue;
                }
                shared.live_conns.fetch_add(1, Ordering::SeqCst);
                shared.metrics.open_conns.add(1);
                shared.metrics.connections.inc();
                pl_obs::event!("serve.accept");
                let conn_id = shared.conn_seq.fetch_add(1, Ordering::SeqCst);
                let conn_shared = Arc::clone(shared);
                conns.push(std::thread::spawn(move || {
                    let _guard = ConnGuard(&conn_shared);
                    // Per-connection I/O errors just end that connection.
                    let _ = serve_connection(stream, &conn_shared, conn_id);
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
    for c in conns {
        let _ = c.join();
    }
    shared.conn_handles.store(0, Ordering::SeqCst);
}

fn serve_connection(
    mut stream: TcpStream,
    shared: &Arc<Shared>,
    conn_id: u64,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL))?;
    stream.set_write_timeout(shared.stall_timeout)?;
    let mut injector = shared
        .fault_plan
        .as_ref()
        .map(|plan| FaultInjector::new(plan, conn_id));
    let mut fb = FrameBuffer::new();
    let mut read_buf = [0u8; 16 * 1024];
    // Negotiated protocol version; `None` until the handshake.
    let mut session_version: Option<u8> = None;
    let mut quiet_since: Option<Instant> = None;
    let mut last_activity = Instant::now();
    loop {
        match stream.read(&mut read_buf) {
            Ok(0) => return Ok(()), // peer closed
            Ok(len) => {
                quiet_since = None;
                last_activity = Instant::now();
                shared.metrics.bytes_in.add(len as u64);
                if let Some(inj) = injector.as_mut() {
                    if inj.roll(FaultKind::ReadDelay) {
                        shared.faults.record(FaultKind::ReadDelay);
                        pl_obs::event!("serve.fault.read_delay", conn_id);
                        std::thread::sleep(inj.delay());
                    }
                }
                fb.push(&read_buf[..len]);
                loop {
                    match fb.next_frame() {
                        Ok(Some(body)) => {
                            if !process_frame(
                                &body,
                                &mut session_version,
                                shared,
                                &mut stream,
                                &mut injector,
                            )? {
                                return stream.flush();
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            shared.metrics.protocol_errors.inc();
                            send_error(&mut stream, shared, &mut injector, &e.to_string())?;
                            return stream.flush();
                        }
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    // Drain: keep listening for DRAIN_QUIET in case a
                    // request is still in flight, then close.
                    let since = *quiet_since.get_or_insert_with(Instant::now);
                    if since.elapsed() >= DRAIN_QUIET {
                        return stream.flush();
                    }
                } else if fb.pending() > 0 {
                    // Mid-frame stall: the peer sent a partial frame and
                    // went quiet. A hub client wedged here used to hold
                    // its thread forever.
                    if let Some(stall) = shared.stall_timeout {
                        if last_activity.elapsed() >= stall {
                            shared.metrics.deadline_closes.inc();
                            pl_obs::event!("serve.deadline_close", conn_id);
                            return stream.flush();
                        }
                    }
                } else if let Some(idle) = shared.idle_timeout {
                    if last_activity.elapsed() >= idle {
                        shared.metrics.idle_reaped.inc();
                        pl_obs::event!("serve.idle_reap", conn_id);
                        return stream.flush();
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Answers one query, recording latency, the slow-query log, and trace
/// provenance. A `store_err` fault replaces the store read with
/// [`Answer::Overloaded`], which the client treats as retryable.
fn answer_query(
    shared: &Shared,
    injector: &mut Option<FaultInjector>,
    kind: QueryKind,
    u: u32,
    v: u32,
) -> Answer {
    if let Some(inj) = injector.as_mut() {
        if inj.roll(FaultKind::StoreErr) {
            shared.faults.record(FaultKind::StoreErr);
            pl_obs::event!("serve.fault.store_err", u, v);
            return Answer::Overloaded;
        }
    }
    let t0 = Instant::now();
    let (answer, path) = match kind {
        QueryKind::Adjacent => {
            shared.metrics.adj_queries.inc();
            match shared.store.adjacent_traced(u, v) {
                Ok((true, p)) => (Answer::Adjacent, Some(p)),
                Ok((false, p)) => (Answer::NotAdjacent, Some(p)),
                Err(StoreError::OutOfRange) => (Answer::OutOfRange, None),
                Err(StoreError::Unsupported) => (Answer::Unsupported, None),
                Err(StoreError::Malformed) => (Answer::MalformedLabel, None),
                Err(StoreError::NotOwned) => (Answer::NotOwned, None),
            }
        }
        QueryKind::Distance => {
            shared.metrics.dist_queries.inc();
            match shared.store.distance(u, v) {
                Ok(Some(d)) => (Answer::Distance(d), None),
                Ok(None) => (Answer::Unreachable, None),
                Err(StoreError::OutOfRange) => (Answer::OutOfRange, None),
                Err(StoreError::Unsupported) => (Answer::Unsupported, None),
                Err(StoreError::Malformed) => (Answer::MalformedLabel, None),
                Err(StoreError::NotOwned) => (Answer::NotOwned, None),
            }
        }
    };
    let ns = t0.elapsed().as_nanos() as u64;
    shared.metrics.query_latency.record(ns);
    if ns >= shared.slow_query_ns {
        shared.metrics.slow_queries.inc();
        // Reconstruct the span window only on the (rare) slow branch so
        // the hot path stays at two clock reads.
        let end = pl_obs::trace::now_ns();
        pl_obs::trace::record_complete(
            "serve.slow_query",
            end.saturating_sub(ns),
            ns,
            (u64::from(u) << 32) | u64::from(v),
            path.map_or(u64::MAX, |p| p.as_u64()),
        );
    }
    answer
}

/// Handles one frame; returns `false` when the connection should close.
fn process_frame(
    body: &[u8],
    session_version: &mut Option<u8>,
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    injector: &mut Option<FaultInjector>,
) -> std::io::Result<bool> {
    let op = body.first().copied();
    let Some(version) = *session_version else {
        return match op {
            Some(opcode::HELLO) => match parse_hello(body) {
                Ok(v) => {
                    *session_version = Some(v);
                    let reply = encode_hello_ok(v, shared.store.tag().as_u8(), shared.store.n());
                    send(stream, shared, injector, &reply)?;
                    Ok(true)
                }
                Err(e) => {
                    shared.metrics.protocol_errors.inc();
                    send_error(stream, shared, injector, &e.to_string())?;
                    Ok(false)
                }
            },
            _ => {
                shared.metrics.protocol_errors.inc();
                send_error(stream, shared, injector, "expected HELLO")?;
                Ok(false)
            }
        };
    };
    match op {
        Some(opcode::BATCH) => match parse_batch(body) {
            Ok(queries) => {
                let _batch_span = pl_obs::span!("serve.batch", queries.len());
                let mut answers = Vec::with_capacity(queries.len());
                for q in &queries {
                    answers.push(answer_query(shared, injector, q.kind, q.u, q.v));
                }
                shared.metrics.batches.inc();
                send(
                    stream,
                    shared,
                    injector,
                    &encode_batch_reply(&answers, version),
                )?;
                Ok(true)
            }
            Err(e) => {
                shared.metrics.protocol_errors.inc();
                send_error(stream, shared, injector, &e.to_string())?;
                Ok(false)
            }
        },
        Some(opcode::STATS) => {
            let reply = encode_stats_reply(&shared.snapshot(), version);
            send(stream, shared, injector, &reply)?;
            Ok(true)
        }
        Some(opcode::HEALTH) => {
            if version < 3 {
                shared.metrics.protocol_errors.inc();
                send_error(
                    stream,
                    shared,
                    injector,
                    "HEALTH requires protocol version 3",
                )?;
                return Ok(false);
            }
            let reply = encode_health_reply(&shared.store.shard_health());
            send(stream, shared, injector, &reply)?;
            Ok(true)
        }
        Some(opcode::TRACE_DUMP) => {
            let jsonl = pl_obs::trace::drain_jsonl();
            let mut body = Vec::with_capacity(jsonl.len().min(MAX_FRAME) + 1);
            body.push(opcode::TRACE_REPLY);
            // Truncate to the frame cap at a line boundary.
            let budget = MAX_FRAME - 1;
            let bytes = jsonl.as_bytes();
            let take = if bytes.len() <= budget {
                bytes.len()
            } else {
                bytes[..budget]
                    .iter()
                    .rposition(|&b| b == b'\n')
                    .map_or(0, |p| p + 1)
            };
            body.extend_from_slice(&bytes[..take]);
            send(stream, shared, injector, &body)?;
            Ok(true)
        }
        Some(opcode::GOODBYE) => {
            send(stream, shared, injector, &[opcode::GOODBYE_OK])?;
            Ok(false)
        }
        _ => {
            shared.metrics.protocol_errors.inc();
            send_error(stream, shared, injector, "unknown opcode")?;
            Ok(false)
        }
    }
}

/// Writes one reply frame, applying write-side faults when a plan is
/// active. Rolls happen in a fixed order (write_delay, drop, truncate,
/// flip) so a given `(seed, conn_id)` replays the same fault sequence.
///
/// Byte flips are confined to `BATCH_REPLY` bodies: that is the surface
/// protocol v3 checksums, so an injected flip is always *detectable*
/// corruption (the client re-asks) rather than a silently wrong
/// handshake parameter.
fn send(
    stream: &mut TcpStream,
    shared: &Shared,
    injector: &mut Option<FaultInjector>,
    body: &[u8],
) -> std::io::Result<()> {
    if let Some(inj) = injector.as_mut() {
        if inj.roll(FaultKind::WriteDelay) {
            shared.faults.record(FaultKind::WriteDelay);
            pl_obs::event!("serve.fault.write_delay");
            std::thread::sleep(inj.delay());
        }
        if inj.roll(FaultKind::Drop) {
            shared.faults.record(FaultKind::Drop);
            pl_obs::event!("serve.fault.drop");
            // Close without replying: the peer sees EOF mid-request.
            return Err(std::io::Error::new(
                ErrorKind::ConnectionAborted,
                "injected connection drop",
            ));
        }
        if inj.roll(FaultKind::Truncate) && !body.is_empty() {
            shared.faults.record(FaultKind::Truncate);
            pl_obs::event!("serve.fault.truncate");
            // Promise the full frame, deliver part of it, close. The
            // peer's frame reassembly stalls and its deadline fires.
            let keep = inj.truncate_at(body.len());
            let mut partial = Vec::with_capacity(4 + keep);
            partial.extend_from_slice(&(body.len() as u32).to_le_bytes());
            partial.extend_from_slice(&body[..keep]);
            stream.write_all(&partial)?;
            stream.flush()?;
            shared.metrics.bytes_out.add(partial.len() as u64);
            return Err(std::io::Error::new(
                ErrorKind::ConnectionAborted,
                "injected frame truncation",
            ));
        }
        if inj.roll(FaultKind::Flip) && body.first() == Some(&opcode::BATCH_REPLY) && body.len() > 1
        {
            shared.faults.record(FaultKind::Flip);
            pl_obs::event!("serve.fault.flip");
            let mut corrupted = body.to_vec();
            // Never byte 0: a flipped opcode would change the frame's
            // meaning before the checksum is even consulted.
            let pos = 1 + inj.flip_position(body.len() - 1);
            corrupted[pos] ^= 1 << (pos % 8);
            write_frame(stream, &corrupted)?;
            shared.metrics.bytes_out.add(4 + corrupted.len() as u64);
            return Ok(());
        }
    }
    write_frame(stream, body)?;
    shared.metrics.bytes_out.add(4 + body.len() as u64);
    Ok(())
}

fn send_error(
    stream: &mut TcpStream,
    shared: &Shared,
    injector: &mut Option<FaultInjector>,
    msg: &str,
) -> std::io::Result<()> {
    let mut body = vec![opcode::ERROR];
    body.extend_from_slice(msg.as_bytes());
    send(stream, shared, injector, &body)
}
