//! The TCP server: thread-per-connection over a shared [`LabelStore`].
//!
//! The accept loop and every connection thread poll a shared shutdown
//! flag between socket operations (reads carry a short timeout), so
//! [`ServerHandle::shutdown`] is cooperative: connections finish
//! answering every fully received frame, then linger through a short
//! quiet window to drain bytes still in flight, and only then close.
//! `shutdown` joins all threads and returns the final metrics snapshot.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::metrics::{Metrics, Snapshot};
use crate::protocol::{
    encode_batch_reply, encode_hello_ok, encode_stats_reply, opcode, parse_batch, parse_hello,
    write_frame, Answer, FrameBuffer, QueryKind,
};
use crate::store::{LabelStore, StoreError};

/// Poll interval for the accept loop and connection read timeout.
const POLL: Duration = Duration::from_millis(20);

/// After shutdown is signalled, a connection closes once it has seen no
/// new bytes for this long — frames already on the wire still get served.
const DRAIN_QUIET: Duration = Duration::from_millis(150);

/// Everything a connection thread needs, behind one `Arc`.
struct Shared {
    store: Arc<LabelStore>,
    metrics: Metrics,
    shutdown: AtomicBool,
    started: Instant,
}

impl Shared {
    /// Snapshot with the store's cache counters folded in.
    fn snapshot(&self) -> Snapshot {
        self.metrics
            .cache_hits
            .store(self.store.cache_hits(), Ordering::Relaxed);
        self.metrics
            .cache_misses
            .store(self.store.cache_misses(), Ordering::Relaxed);
        self.metrics.snapshot(self.started)
    }
}

/// A running server. Dropping the handle without calling
/// [`shutdown`](Self::shutdown) aborts rather than drains.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A live metrics snapshot.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        self.shared.snapshot()
    }

    /// Signals shutdown, waits for every connection to drain, and
    /// returns the final metrics snapshot.
    pub fn shutdown(mut self) -> Snapshot {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.shared.snapshot()
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves `store` until
/// [`ServerHandle::shutdown`].
pub fn serve(store: Arc<LabelStore>, addr: &str) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        store,
        metrics: Metrics::default(),
        shutdown: AtomicBool::new(false),
        started: Instant::now(),
    });
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::spawn(move || accept_loop(&listener, &accept_shared));
    Ok(ServerHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(shared);
                conns.push(std::thread::spawn(move || {
                    // Per-connection I/O errors just end that connection.
                    let _ = serve_connection(stream, &conn_shared);
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
                conns.retain(|c| !c.is_finished());
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
    for c in conns {
        let _ = c.join();
    }
}

fn serve_connection(mut stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL))?;
    let mut fb = FrameBuffer::new();
    let mut read_buf = [0u8; 16 * 1024];
    let mut handshaken = false;
    let mut quiet_since: Option<Instant> = None;
    loop {
        match stream.read(&mut read_buf) {
            Ok(0) => return Ok(()), // peer closed
            Ok(len) => {
                quiet_since = None;
                shared
                    .metrics
                    .bytes_in
                    .fetch_add(len as u64, Ordering::Relaxed);
                fb.push(&read_buf[..len]);
                loop {
                    match fb.next_frame() {
                        Ok(Some(body)) => {
                            if !process_frame(&body, &mut handshaken, shared, &mut stream)? {
                                return stream.flush();
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            shared
                                .metrics
                                .protocol_errors
                                .fetch_add(1, Ordering::Relaxed);
                            send_error(&mut stream, shared, &e.to_string())?;
                            return stream.flush();
                        }
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    // Drain: keep listening for DRAIN_QUIET in case a
                    // request is still in flight, then close.
                    let since = *quiet_since.get_or_insert_with(Instant::now);
                    if since.elapsed() >= DRAIN_QUIET {
                        return stream.flush();
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Handles one frame; returns `false` when the connection should close.
fn process_frame(
    body: &[u8],
    handshaken: &mut bool,
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
) -> std::io::Result<bool> {
    let op = body.first().copied();
    if !*handshaken {
        return match op {
            Some(opcode::HELLO) => match parse_hello(body) {
                Ok(_) => {
                    *handshaken = true;
                    let reply = encode_hello_ok(shared.store.tag().as_u8(), shared.store.n());
                    send(stream, shared, &reply)?;
                    Ok(true)
                }
                Err(e) => {
                    shared
                        .metrics
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    send_error(stream, shared, &e.to_string())?;
                    Ok(false)
                }
            },
            _ => {
                shared
                    .metrics
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                send_error(stream, shared, "expected HELLO")?;
                Ok(false)
            }
        };
    }
    match op {
        Some(opcode::BATCH) => match parse_batch(body) {
            Ok(queries) => {
                let mut answers = Vec::with_capacity(queries.len());
                for q in &queries {
                    let t0 = Instant::now();
                    let answer = match q.kind {
                        QueryKind::Adjacent => {
                            shared.metrics.adj_queries.fetch_add(1, Ordering::Relaxed);
                            match shared.store.adjacent(q.u, q.v) {
                                Ok(true) => Answer::Adjacent,
                                Ok(false) => Answer::NotAdjacent,
                                Err(StoreError::OutOfRange) => Answer::OutOfRange,
                                Err(StoreError::Unsupported) => Answer::Unsupported,
                                Err(StoreError::Malformed) => Answer::MalformedLabel,
                            }
                        }
                        QueryKind::Distance => {
                            shared.metrics.dist_queries.fetch_add(1, Ordering::Relaxed);
                            match shared.store.distance(q.u, q.v) {
                                Ok(Some(d)) => Answer::Distance(d),
                                Ok(None) => Answer::Unreachable,
                                Err(StoreError::OutOfRange) => Answer::OutOfRange,
                                Err(StoreError::Unsupported) => Answer::Unsupported,
                                Err(StoreError::Malformed) => Answer::MalformedLabel,
                            }
                        }
                    };
                    shared
                        .metrics
                        .query_latency
                        .record(t0.elapsed().as_nanos() as u64);
                    answers.push(answer);
                }
                shared.metrics.batches.fetch_add(1, Ordering::Relaxed);
                send(stream, shared, &encode_batch_reply(&answers))?;
                Ok(true)
            }
            Err(e) => {
                shared
                    .metrics
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                send_error(stream, shared, &e.to_string())?;
                Ok(false)
            }
        },
        Some(opcode::STATS) => {
            send(stream, shared, &encode_stats_reply(&shared.snapshot()))?;
            Ok(true)
        }
        Some(opcode::GOODBYE) => {
            send(stream, shared, &[opcode::GOODBYE_OK])?;
            Ok(false)
        }
        _ => {
            shared
                .metrics
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            send_error(stream, shared, "unknown opcode")?;
            Ok(false)
        }
    }
}

fn send(stream: &mut TcpStream, shared: &Shared, body: &[u8]) -> std::io::Result<()> {
    write_frame(stream, body)?;
    shared
        .metrics
        .bytes_out
        .fetch_add(4 + body.len() as u64, Ordering::Relaxed);
    Ok(())
}

fn send_error(stream: &mut TcpStream, shared: &Shared, msg: &str) -> std::io::Result<()> {
    let mut body = vec![opcode::ERROR];
    body.extend_from_slice(msg.as_bytes());
    send(stream, shared, &body)
}
