//! The serializable cluster map.
//!
//! A [`ClusterMap`] is everything a router (or a re-splitting tool)
//! needs to reconstruct the assignment: the HRW seed, the replication
//! factor, the vertex count and scheme tag of the labeling it was cut
//! from, and the backend-address list whose *indices* are the backend
//! ids the partitioner scores. It is epoch-numbered so a future
//! rebalancer can fence stale maps, and FNV-checksummed so a truncated
//! or bit-flipped file is rejected instead of silently mis-routing.
//!
//! Wire layout (all integers little-endian), followed by an FNV-1a-32
//! checksum of every preceding byte:
//!
//! ```text
//! "PLCM" | ver u8 | epoch u64 | seed u64 | replicas u32 | n u32
//!        | tag u8 | backends u16 | backends × (len u16, utf-8 bytes)
//!        | checksum u32
//! ```

use std::path::Path;

use pl_wire::protocol::checksum;

use crate::partition::Partitioner;

/// File magic, first four bytes of a serialized map.
pub const MAP_MAGIC: [u8; 4] = *b"PLCM";

/// Serialization version this build writes and accepts.
pub const MAP_VERSION: u8 = 1;

/// The cluster topology: partitioning parameters plus the
/// backend-address list (index = backend id).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterMap {
    /// Fencing token: a rebalancer bumps this; routers prefer the
    /// highest epoch they have seen.
    pub epoch: u64,
    /// HRW seed the assignment derives from.
    pub seed: u64,
    /// Owners per vertex.
    pub replicas: u32,
    /// Vertex count of the labeling this map was cut from.
    pub n: u32,
    /// Scheme tag byte of that labeling (see `pl_serve::SchemeTag`).
    pub tag: u8,
    /// Backend addresses; the vector index is the backend id.
    pub backends: Vec<String>,
}

/// Why a serialized map was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// Too short, bad magic, bad version, or a malformed field.
    Malformed(&'static str),
    /// The trailing FNV checksum did not match.
    Checksum,
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Malformed(what) => write!(f, "malformed cluster map: {what}"),
            Self::Checksum => write!(f, "cluster map checksum mismatch"),
        }
    }
}

impl std::error::Error for MapError {}

impl ClusterMap {
    /// The partitioner this map describes.
    ///
    /// # Panics
    ///
    /// Panics if the map has no backends.
    #[must_use]
    pub fn partitioner(&self) -> Partitioner {
        Partitioner::new(self.seed, self.backends.len(), self.replicas as usize)
    }

    /// Serializes the map (layout in the module docs).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(36 + self.backends.len() * 24);
        b.extend_from_slice(&MAP_MAGIC);
        b.push(MAP_VERSION);
        b.extend_from_slice(&self.epoch.to_le_bytes());
        b.extend_from_slice(&self.seed.to_le_bytes());
        b.extend_from_slice(&self.replicas.to_le_bytes());
        b.extend_from_slice(&self.n.to_le_bytes());
        b.push(self.tag);
        let count = u16::try_from(self.backends.len()).expect("more than u16::MAX backends"); // lint: panic-ok(map construction is operator-driven config, not a request path; 65k backends is a deployment error)
        b.extend_from_slice(&count.to_le_bytes());
        for addr in &self.backends {
            let len = u16::try_from(addr.len()).expect("backend address over 64 KiB"); // lint: panic-ok(addresses come from operator config validated at parse time; a 64 KiB host:port is a deployment error)
            b.extend_from_slice(&len.to_le_bytes());
            b.extend_from_slice(addr.as_bytes());
        }
        let sum = checksum(&b);
        b.extend_from_slice(&sum.to_le_bytes());
        b
    }

    /// Parses a serialized map. Total on untrusted input: every failure
    /// is a [`MapError`], never a panic or an oversized allocation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, MapError> {
        // Fixed header (32 bytes) plus the trailing checksum (4).
        if bytes.len() < 36 {
            return Err(MapError::Malformed("too short"));
        }
        let (body, sum) = bytes.split_at(bytes.len() - 4);
        let declared = pl_wire::bytes::le_u32(sum);
        if checksum(body) != declared {
            return Err(MapError::Checksum);
        }
        if body[..4] != MAP_MAGIC {
            return Err(MapError::Malformed("bad magic"));
        }
        if body[4] != MAP_VERSION {
            return Err(MapError::Malformed("unsupported map version"));
        }
        let epoch = pl_wire::bytes::le_u64(&body[5..13]);
        let seed = pl_wire::bytes::le_u64(&body[13..21]);
        let replicas = pl_wire::bytes::le_u32(&body[21..25]);
        let n = pl_wire::bytes::le_u32(&body[25..29]);
        let tag = body[29];
        let count = pl_wire::bytes::le_u16(&body[30..32]) as usize;
        let mut backends = Vec::with_capacity(count.min(1024));
        let mut pos = 32;
        for _ in 0..count {
            let len_bytes = body
                .get(pos..pos + 2)
                .ok_or(MapError::Malformed("truncated address length"))?;
            let len = pl_wire::bytes::le_u16(len_bytes) as usize;
            pos += 2;
            let raw = body
                .get(pos..pos + len)
                .ok_or(MapError::Malformed("truncated address"))?;
            pos += len;
            let addr =
                std::str::from_utf8(raw).map_err(|_| MapError::Malformed("address not utf-8"))?;
            backends.push(addr.to_string());
        }
        if pos != body.len() {
            return Err(MapError::Malformed("trailing bytes"));
        }
        Ok(Self {
            epoch,
            seed,
            replicas,
            n,
            tag,
            backends,
        })
    }

    /// Writes the serialized map to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads and parses a map from `path`.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> ClusterMap {
        ClusterMap {
            epoch: 3,
            seed: 0xFEED,
            replicas: 2,
            n: 10_000,
            tag: 1,
            backends: vec![
                "127.0.0.1:7411".into(),
                "127.0.0.1:7412".into(),
                "127.0.0.1:7413".into(),
            ],
        }
    }

    #[test]
    fn round_trips() {
        let m = sample();
        assert_eq!(ClusterMap::from_bytes(&m.to_bytes()), Ok(m.clone()));
        let empty = ClusterMap {
            backends: vec![],
            ..m
        };
        assert_eq!(ClusterMap::from_bytes(&empty.to_bytes()), Ok(empty));
    }

    #[test]
    fn every_byte_flip_is_rejected() {
        let bytes = sample().to_bytes();
        for pos in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= 1 << bit;
                assert!(
                    ClusterMap::from_bytes(&corrupt).is_err(),
                    "flip of byte {pos} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn truncations_are_rejected() {
        let bytes = sample().to_bytes();
        for keep in 0..bytes.len() {
            assert!(
                ClusterMap::from_bytes(&bytes[..keep]).is_err(),
                "len {keep}"
            );
        }
    }

    #[test]
    fn save_load_round_trips() {
        let path = std::env::temp_dir().join(format!("pl-map-{}.plcm", std::process::id()));
        let m = sample();
        m.save(&path).expect("save");
        let loaded = ClusterMap::load(&path).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, m);
        assert_eq!(loaded.partitioner().backends(), 3);
    }

    proptest! {
        #[test]
        fn parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = ClusterMap::from_bytes(&bytes);
        }
    }
}
