//! Re-export shim: the wire protocol moved to [`pl_wire::protocol`]
//! (PR 6), where one frame codec serves both this crate's server and
//! the `pl-cluster` router. Every name that used to live here —
//! opcodes, frame helpers, `FrameBuffer`, encode/parse functions,
//! `ProtocolError`, `Query`/`Answer` — re-exports unchanged, so
//! downstream `pl_serve::protocol::…` paths keep compiling.

pub use pl_wire::protocol::*;
