//! A fixed-capacity LRU map used for the per-shard decoded-label cache.
//!
//! Entries live in a slab (`Vec`) threaded by an intrusive doubly-linked
//! list of indices, so a hit is a `HashMap` probe plus a few pointer
//! swaps — no allocation after the cache is warm. Eviction always removes
//! the tail (least recently used) entry.

use std::collections::HashMap;

const NIL: usize = usize::MAX;

struct Entry<V> {
    key: u32,
    value: V,
    prev: usize,
    next: usize,
}

/// Fixed-capacity map from `u32` keys with least-recently-used eviction.
pub struct LruCache<V> {
    map: HashMap<u32, usize>,
    slab: Vec<Entry<V>>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<V> LruCache<V> {
    /// A cache holding at most `capacity` entries. Zero capacity is
    /// allowed and caches nothing.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slab: Vec::with_capacity(capacity.min(1 << 20)),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of cached entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: u32) -> Option<&V> {
        let idx = *self.map.get(&key)?;
        self.move_to_front(idx);
        Some(&self.slab[idx].value)
    }

    /// Inserts `key → value`, evicting the least recently used entry if
    /// the cache is full. Overwrites an existing entry for `key`.
    pub fn insert(&mut self, key: u32, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = value;
            self.move_to_front(idx);
            return;
        }
        let idx = if self.slab.len() < self.capacity {
            self.slab.push(Entry {
                key,
                value,
                prev: NIL,
                next: NIL,
            });
            self.slab.len() - 1
        } else {
            // Recycle the tail slot.
            let idx = self.tail;
            self.unlink(idx);
            let evicted = std::mem::replace(&mut self.slab[idx].key, key);
            self.map.remove(&evicted);
            self.slab[idx].value = value;
            idx
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slab[next].prev = prev;
        }
        self.slab[idx].prev = NIL;
        self.slab[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn move_to_front(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let mut c = LruCache::new(2);
        assert!(c.is_empty());
        c.insert(1, "a");
        c.insert(2, "b");
        assert_eq!(c.get(1), Some(&"a"));
        assert_eq!(c.get(3), None);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(1), Some(&10)); // 2 is now LRU
        c.insert(3, 30);
        assert_eq!(c.get(2), None);
        assert_eq!(c.get(1), Some(&10));
        assert_eq!(c.get(3), Some(&30));
    }

    #[test]
    fn overwrite_refreshes_recency() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // 2 becomes LRU
        c.insert(3, 30);
        assert_eq!(c.get(1), Some(&11));
        assert_eq!(c.get(2), None);
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut c = LruCache::new(0);
        c.insert(1, 10);
        assert_eq!(c.get(1), None);
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_one() {
        let mut c = LruCache::new(1);
        for k in 0..100 {
            c.insert(k, k);
            assert_eq!(c.get(k), Some(&k));
            assert_eq!(c.len(), 1);
        }
        assert_eq!(c.get(98), None);
    }

    #[test]
    fn matches_naive_model_under_random_workload() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        // Reference model: Vec kept in recency order.
        struct Model {
            cap: usize,
            items: Vec<(u32, u64)>,
        }
        impl Model {
            fn get(&mut self, k: u32) -> Option<u64> {
                let pos = self.items.iter().position(|&(key, _)| key == k)?;
                let it = self.items.remove(pos);
                let v = it.1;
                self.items.insert(0, it);
                Some(v)
            }
            fn insert(&mut self, k: u32, v: u64) {
                if self.cap == 0 {
                    return;
                }
                if let Some(pos) = self.items.iter().position(|&(key, _)| key == k) {
                    self.items.remove(pos);
                } else if self.items.len() == self.cap {
                    self.items.pop();
                }
                self.items.insert(0, (k, v));
            }
        }

        let mut r = StdRng::seed_from_u64(0xCAFE);
        for cap in [1usize, 2, 7, 16] {
            let mut lru = LruCache::new(cap);
            let mut model = Model {
                cap,
                items: Vec::new(),
            };
            for step in 0..4_000u64 {
                let key = r.gen_range(0..24u32);
                if r.gen_bool(0.5) {
                    assert_eq!(
                        lru.get(key).copied(),
                        model.get(key),
                        "cap {cap} step {step} get({key})"
                    );
                } else {
                    lru.insert(key, step);
                    model.insert(key, step);
                }
                assert_eq!(lru.len(), model.items.len());
            }
        }
    }
}
