//! Thin consumer of the codec layer, kept for source compatibility.
//!
//! The scheme tag, the tagged container, and decoder dispatch live in
//! [`pl_labeling::codec`] so that the CLI and benches can decode labels
//! without depending on the serving crate. This module only re-exports
//! those names under their historical `pl_serve::format` paths.

pub use pl_labeling::codec::{
    decode_adjacent, decode_distance, AnyDecoder, FormatError, SchemeTag, TaggedLabeling,
};
