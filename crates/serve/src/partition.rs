//! Deterministic rendezvous (HRW) vertex partitioning.
//!
//! Every backend gets one member of [`pl_hash::universal`]'s
//! multiply-shift family, drawn from a seeded generator; vertex `v`
//! scores each backend by hashing `v` through that backend's function
//! and is owned by the `R` highest scorers, in score order. Rendezvous
//! hashing has exactly the stability property a cluster wants: adding
//! or removing one backend only moves the vertices that scored it into
//! their top `R` — everything else keeps its owner set.
//!
//! Determinism is load-bearing: the splitter, the router, and any
//! future rebalancer all derive the same assignment from `(seed,
//! backends, replicas)` alone, so the assignment never has to be
//! shipped or agreed on — only the tiny [`ClusterMap`](crate::map)
//! carrying those parameters.

use pl_hash::universal::UniversalHash;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The seeded HRW partitioner: `backends` scoring functions plus the
/// replication factor.
#[derive(Debug, Clone)]
pub struct Partitioner {
    hashers: Vec<UniversalHash>,
    replicas: usize,
}

impl Partitioner {
    /// Builds the partitioner for `backends` backends with `replicas`
    /// owners per vertex (clamped to `1..=backends`). Identical
    /// arguments always produce identical assignments.
    ///
    /// # Panics
    ///
    /// Panics if `backends == 0`.
    #[must_use]
    pub fn new(seed: u64, backends: usize, replicas: usize) -> Self {
        assert!(backends > 0, "a cluster needs at least one backend");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC10C_1A6E_D5EE_D000);
        let hashers = (0..backends)
            .map(|_| UniversalHash::random(&mut rng))
            .collect();
        Self {
            hashers,
            replicas: replicas.clamp(1, backends),
        }
    }

    /// Number of backends.
    #[must_use]
    pub fn backends(&self) -> usize {
        self.hashers.len()
    }

    /// Owners per vertex (the effective replication factor).
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// HRW score of backend `b` for vertex `v`.
    fn score(&self, b: usize, v: u32) -> u64 {
        // Full-range fastrange: the multiply-shift mix spread over the
        // whole usize range, so ties need a hash collision across two
        // independently drawn functions.
        self.hashers[b].hash(u64::from(v).wrapping_add(1), usize::MAX) as u64
    }

    /// The backends owning `v`'s label, highest HRW score first. Length
    /// is always [`replicas`](Self::replicas); ties break toward the
    /// lower backend id.
    #[must_use]
    pub fn owners(&self, v: u32) -> Vec<u32> {
        let mut ranked: Vec<(u64, u32)> = (0..self.backends())
            .map(|b| (self.score(b, v), b as u32))
            .collect();
        ranked.sort_unstable_by(|a, b| (b.0, a.1).cmp(&(a.0, b.1)));
        ranked.truncate(self.replicas);
        ranked.into_iter().map(|(_, b)| b).collect()
    }

    /// Does backend `b` own `v`'s full label?
    #[must_use]
    pub fn owns(&self, b: u32, v: u32) -> bool {
        self.owners(v).contains(&b)
    }

    /// The failover candidate list for an adjacency query `{u, v}`:
    /// `owners(u)` then `owners(v)`, first occurrence kept. Any single
    /// dead backend leaves a live owner of `u` *and* of `v` in the list
    /// whenever `replicas ≥ 2`, which is exactly what the partial-store
    /// decoder needs to answer every fat/thin case.
    #[must_use]
    pub fn candidates(&self, u: u32, v: u32) -> Vec<u32> {
        let mut out = self.owners(u);
        for b in self.owners(v) {
            if !out.contains(&b) {
                out.push(b);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_clamped() {
        let a = Partitioner::new(42, 5, 2);
        let b = Partitioner::new(42, 5, 2);
        for v in 0..500u32 {
            assert_eq!(a.owners(v), b.owners(v));
        }
        assert_eq!(Partitioner::new(1, 3, 0).replicas(), 1);
        assert_eq!(Partitioner::new(1, 3, 9).replicas(), 3);
    }

    #[test]
    fn owners_are_distinct_and_r_long() {
        let p = Partitioner::new(7, 6, 3);
        for v in 0..2_000u32 {
            let o = p.owners(v);
            assert_eq!(o.len(), 3);
            let mut d = o.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 3, "owners of {v} repeat: {o:?}");
            for &b in &o {
                assert!(p.owns(b, v));
            }
        }
    }

    #[test]
    fn seed_changes_the_assignment() {
        let a = Partitioner::new(1, 4, 1);
        let b = Partitioner::new(2, 4, 1);
        let moved = (0..1_000u32)
            .filter(|&v| a.owners(v) != b.owners(v))
            .count();
        assert!(moved > 500, "only {moved}/1000 vertices moved across seeds");
    }

    #[test]
    fn assignment_is_roughly_balanced() {
        let p = Partitioner::new(0xBA1A, 4, 2);
        let n = 8_000u32;
        let mut counts = [0usize; 4];
        for v in 0..n {
            for b in p.owners(v) {
                counts[b as usize] += 1;
            }
        }
        // 2 replicas × 8000 vertices over 4 backends → 4000 expected.
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                (3_000..=5_000).contains(&c),
                "backend {b} owns {c} of expected ~4000"
            );
        }
    }

    #[test]
    fn candidates_survive_any_single_backend_death() {
        let p = Partitioner::new(99, 5, 2);
        for u in 0..300u32 {
            for v in (u + 1)..300u32 {
                let cand = p.candidates(u, v);
                for dead in 0..5u32 {
                    // A live owner of each endpoint must remain in the
                    // candidate list (possibly the same backend, when
                    // the owner sets coincide).
                    let live_u = cand.iter().any(|&b| b != dead && p.owners(u).contains(&b));
                    let live_v = cand.iter().any(|&b| b != dead && p.owners(v).contains(&b));
                    assert!(live_u && live_v, "({u},{v}) dies with backend {dead}");
                }
            }
        }
    }

    #[test]
    fn removing_a_backend_only_moves_its_vertices() {
        // Rendezvous stability: dropping the last backend must not
        // change the owner sets of vertices it did not own. (The first
        // `backends` hash functions are drawn identically, so the
        // 4-backend partitioner is a prefix of the 5-backend one.)
        let big = Partitioner::new(5, 5, 2);
        let small = Partitioner::new(5, 4, 2);
        for v in 0..2_000u32 {
            if !big.owners(v).contains(&4) {
                assert_eq!(big.owners(v), small.owners(v), "vertex {v} moved");
            }
        }
    }
}
