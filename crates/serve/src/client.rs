//! Blocking client, the retrying [`ResilientClient`], and the load
//! generator.
//!
//! [`Client`] is a thin synchronous wrapper over one TCP connection:
//! handshake on connect, then batched request/reply in lockstep. Every
//! failure surfaces as a raw [`io::Error`]; [`ClientError::classify`]
//! sorts those into [`Retryable`](ClientError::Retryable) vs
//! [`Fatal`](ClientError::Fatal), and [`ResilientClient`] acts on that
//! taxonomy — per-request deadlines, bounded exponential backoff with
//! jitter, and automatic reconnect-and-replay, which is sound because
//! `BATCH` is idempotent (labels are immutable, answers are pure reads).
//! The [`loadgen`] module drives many clients from worker threads,
//! replaying uniform or Zipf-skewed adjacency query mixes against a
//! server and optionally verifying every answer against the source
//! graph.

use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pl_obs::TraceContext;

use crate::metrics::Snapshot;
use crate::protocol::{
    encode_batch_ctx, encode_hello_version, encode_labels, encode_map_get, encode_map_set,
    encode_trace_dump, opcode, parse_batch_reply, parse_health_reply, parse_hello_ok,
    parse_labels_ok, parse_map_ok, parse_map_reply, parse_stats_reply, read_frame,
    trace_dump_flags, write_frame, Answer, HealthReport, LabelsStatus, MapSetMode, MapSetStatus,
    Query, MIN_VERSION, VERSION,
};

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// One connection to a pl-serve server, already past the handshake.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    version: u8,
    tag: u8,
    n: u32,
}

impl Client {
    /// Connects and performs the HELLO handshake, falling back to older
    /// protocol versions (down to [`MIN_VERSION`]) if the server
    /// rejects the current one.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_deadline(addr, None)
    }

    /// [`connect`](Self::connect) with the socket deadline applied
    /// *before* the handshake bytes, so a stalled (rather than dead)
    /// server cannot wedge the connect forever. The deadline stays in
    /// force for subsequent requests, as with
    /// [`set_io_deadline`](Self::set_io_deadline).
    pub fn connect_deadline(
        addr: impl ToSocketAddrs,
        deadline: Option<Duration>,
    ) -> io::Result<Self> {
        // Resolve once so version-fallback reconnects hit the same host.
        let addrs: Vec<_> = addr.to_socket_addrs()?.collect();
        let mut last_err = bad_data("no addresses resolved");
        for version in (MIN_VERSION..=VERSION).rev() {
            match Self::connect_version_deadline(&addrs[..], version, deadline) {
                Ok(client) => return Ok(client),
                // Only an explicit rejection means "try an older
                // version". A transport error (refused, reset, dropped
                // mid-handshake) must NOT silently downgrade the
                // session — under fault injection that would trade the
                // v3 checksum away exactly when it is needed.
                Err(e) if is_handshake_rejection(&e) => last_err = e,
                Err(e) => return Err(e),
            }
        }
        Err(last_err)
    }

    /// Connects with one specific protocol version, no fallback.
    pub fn connect_version(addr: impl ToSocketAddrs, version: u8) -> io::Result<Self> {
        Self::connect_version_deadline(addr, version, None)
    }

    fn connect_version_deadline(
        addr: impl ToSocketAddrs,
        version: u8,
        deadline: Option<Duration>,
    ) -> io::Result<Self> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(deadline)?;
        stream.set_write_timeout(deadline)?;
        write_frame(&mut stream, &encode_hello_version(version))?;
        let reply = read_frame(&mut stream)?;
        match reply.first() {
            Some(&opcode::HELLO_OK) => {
                let (version, tag, n) =
                    parse_hello_ok(&reply).map_err(|e| bad_data(e.to_string()))?;
                Ok(Self {
                    stream,
                    version,
                    tag,
                    n,
                })
            }
            Some(&opcode::ERROR) => Err(bad_data(format!(
                "server rejected handshake: {}",
                String::from_utf8_lossy(&reply[1..])
            ))),
            Some(&opcode::OVERLOADED) => Err(bad_data("server overloaded, connection shed")),
            _ => Err(bad_data("unexpected handshake reply")),
        }
    }

    /// Sets (or clears) the socket read/write deadline for every
    /// subsequent request on this connection.
    pub fn set_io_deadline(&self, deadline: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(deadline)?;
        self.stream.set_write_timeout(deadline)
    }

    /// Protocol version negotiated with the server.
    #[must_use]
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Scheme tag byte the server is serving.
    #[must_use]
    pub fn tag(&self) -> u8 {
        self.tag
    }

    /// Vertex count of the served labeling.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Sends one batch and reads the matching reply (answers in query
    /// order).
    pub fn batch(&mut self, queries: &[Query]) -> io::Result<Vec<Answer>> {
        self.batch_ctx(queries, None)
    }

    /// [`batch`](Self::batch) with an optional trace context. On a v5+
    /// session the context rides the `TRACE_CTX` extension so the
    /// server's spans parent to the caller; on an older session it is
    /// silently dropped — downgrade loses tracing, never the batch.
    pub fn batch_ctx(
        &mut self,
        queries: &[Query],
        ctx: Option<&TraceContext>,
    ) -> io::Result<Vec<Answer>> {
        let body =
            encode_batch_ctx(queries, ctx, self.version).map_err(|e| bad_data(e.to_string()))?;
        write_frame(&mut self.stream, &body)?;
        let reply = read_frame(&mut self.stream)?;
        match reply.first() {
            Some(&opcode::BATCH_REPLY) => {
                let answers =
                    parse_batch_reply(&reply, self.version).map_err(|e| bad_data(e.to_string()))?;
                if answers.len() != queries.len() {
                    return Err(bad_data("reply count mismatch"));
                }
                Ok(answers)
            }
            Some(&opcode::ERROR) => Err(bad_data(format!(
                "server error: {}",
                String::from_utf8_lossy(&reply[1..])
            ))),
            _ => Err(bad_data("unexpected batch reply")),
        }
    }

    /// Single adjacency query.
    pub fn adjacent(&mut self, u: u32, v: u32) -> io::Result<bool> {
        match self.batch(&[Query::adjacent(u, v)])?[0] {
            Answer::Adjacent => Ok(true),
            Answer::NotAdjacent => Ok(false),
            other => Err(bad_data(format!("unexpected answer {other:?}"))),
        }
    }

    /// Single distance query; `None` = beyond the scheme's bound.
    pub fn distance(&mut self, u: u32, v: u32) -> io::Result<Option<u32>> {
        match self.batch(&[Query::distance(u, v)])?[0] {
            Answer::Distance(d) => Ok(Some(d)),
            Answer::Unreachable => Ok(None),
            other => Err(bad_data(format!("unexpected answer {other:?}"))),
        }
    }

    /// Fetches the server's metrics snapshot.
    pub fn stats(&mut self) -> io::Result<Snapshot> {
        write_frame(&mut self.stream, &[opcode::STATS])?;
        let reply = read_frame(&mut self.stream)?;
        parse_stats_reply(&reply).map_err(|e| bad_data(e.to_string()))
    }

    /// Fetches the server's shard-liveness report. Requires protocol
    /// version ≥ 3.
    pub fn health(&mut self) -> io::Result<HealthReport> {
        if self.version < 3 {
            return Err(bad_data("server too old for HEALTH (needs v3)"));
        }
        write_frame(&mut self.stream, &[opcode::HEALTH])?;
        let reply = read_frame(&mut self.stream)?;
        match reply.first() {
            Some(&opcode::HEALTH_REPLY) => {
                parse_health_reply(&reply).map_err(|e| bad_data(e.to_string()))
            }
            Some(&opcode::ERROR) => Err(bad_data(format!(
                "server error: {}",
                String::from_utf8_lossy(&reply[1..])
            ))),
            _ => Err(bad_data("unexpected health reply")),
        }
    }

    /// Drains the server's trace ring buffers as JSONL (one event per
    /// line, possibly empty). Requires protocol version ≥ 2.
    pub fn trace_dump(&mut self) -> io::Result<String> {
        self.trace_dump_with(0)
    }

    /// Non-consuming [`trace_dump`](Self::trace_dump): the server's
    /// reader watermark stays put, so concurrent observers each see the
    /// full stream. Requires protocol version ≥ 5.
    pub fn trace_snapshot(&mut self) -> io::Result<String> {
        self.trace_dump_with(trace_dump_flags::SNAPSHOT)
    }

    /// `TRACE_DUMP` with explicit flag bits (0 = the pre-v5 consuming
    /// drain; flags require a v5 session).
    pub fn trace_dump_with(&mut self, flags: u8) -> io::Result<String> {
        if self.version < 2 {
            return Err(bad_data("server too old for TRACE_DUMP (needs v2)"));
        }
        if flags != 0 && self.version < 5 {
            return Err(bad_data("server too old for TRACE_DUMP flags (needs v5)"));
        }
        write_frame(&mut self.stream, &encode_trace_dump(flags))?;
        let reply = read_frame(&mut self.stream)?;
        match reply.first() {
            Some(&opcode::TRACE_REPLY) => String::from_utf8(reply[1..].to_vec())
                .map_err(|_| bad_data("trace reply is not UTF-8")),
            Some(&opcode::ERROR) => Err(bad_data(format!(
                "server error: {}",
                String::from_utf8_lossy(&reply[1..])
            ))),
            _ => Err(bad_data("unexpected trace reply")),
        }
    }

    /// Fetches the peer's current serialized cluster map (`None` when
    /// it serves no map yet). Requires protocol version ≥ 6.
    pub fn map_get(&mut self) -> io::Result<Option<Vec<u8>>> {
        if self.version < 6 {
            return Err(bad_data("server too old for MAP_GET (needs v6)"));
        }
        write_frame(&mut self.stream, &encode_map_get())?;
        let reply = read_frame(&mut self.stream)?;
        match reply.first() {
            Some(&opcode::MAP_REPLY) => {
                parse_map_reply(&reply).map_err(|e| bad_data(e.to_string()))
            }
            Some(&opcode::ERROR) => Err(bad_data(format!(
                "server error: {}",
                String::from_utf8_lossy(&reply[1..])
            ))),
            _ => Err(bad_data("unexpected map reply")),
        }
    }

    /// Pushes a map-state transition (`prepare`/`commit`/`abort`/
    /// `shrink`) and returns the peer's verdict plus its current epoch.
    /// `backend` is the receiver's index in the pushed map (or
    /// [`crate::protocol::MAP_TARGET_ROUTER`]); `moved` is only
    /// meaningful on a router commit. Requires protocol version ≥ 6.
    pub fn map_set(
        &mut self,
        mode: MapSetMode,
        backend: u32,
        moved: u64,
        map: &[u8],
    ) -> io::Result<(MapSetStatus, u64)> {
        if self.version < 6 {
            return Err(bad_data("server too old for MAP_SET (needs v6)"));
        }
        let body =
            encode_map_set(mode, backend, moved, map).map_err(|e| bad_data(e.to_string()))?;
        write_frame(&mut self.stream, &body)?;
        let reply = read_frame(&mut self.stream)?;
        match reply.first() {
            Some(&opcode::MAP_OK) => parse_map_ok(&reply).map_err(|e| bad_data(e.to_string())),
            Some(&opcode::ERROR) => Err(bad_data(format!(
                "server error: {}",
                String::from_utf8_lossy(&reply[1..])
            ))),
            _ => Err(bad_data("unexpected map ok")),
        }
    }

    /// Streams one frame of migrating labels for the staged epoch and
    /// returns the peer's verdict plus its buffered-label count.
    /// Requires protocol version ≥ 6.
    pub fn push_labels(
        &mut self,
        epoch: u64,
        entries: &[(u32, &[u8])],
    ) -> io::Result<(LabelsStatus, u32)> {
        if self.version < 6 {
            return Err(bad_data("server too old for LABELS (needs v6)"));
        }
        let body = encode_labels(epoch, entries).map_err(|e| bad_data(e.to_string()))?;
        write_frame(&mut self.stream, &body)?;
        let reply = read_frame(&mut self.stream)?;
        match reply.first() {
            Some(&opcode::LABELS_OK) => {
                parse_labels_ok(&reply).map_err(|e| bad_data(e.to_string()))
            }
            Some(&opcode::ERROR) => Err(bad_data(format!(
                "server error: {}",
                String::from_utf8_lossy(&reply[1..])
            ))),
            _ => Err(bad_data("unexpected labels ok")),
        }
    }

    /// Orderly close: GOODBYE, await GOODBYE_OK.
    pub fn goodbye(mut self) -> io::Result<()> {
        write_frame(&mut self.stream, &[opcode::GOODBYE])?;
        let reply = read_frame(&mut self.stream)?;
        if reply.first() == Some(&opcode::GOODBYE_OK) {
            Ok(())
        } else {
            Err(bad_data("expected GOODBYE_OK"))
        }
    }

    /// Low-level escape hatch for protocol tests: send raw body, read
    /// raw reply.
    pub fn raw_round_trip(&mut self, body: &[u8]) -> io::Result<Vec<u8>> {
        write_frame(&mut self.stream, body)?;
        read_frame(&mut self.stream)
    }
}

/// `true` when the error is the server explicitly refusing the offered
/// protocol version — the only failure that justifies retrying the
/// handshake at an older version.
fn is_handshake_rejection(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::InvalidData && e.to_string().contains("rejected handshake")
}

/// Why a retryable request failed — attached to
/// [`ClientError::Retryable`] so callers (and tests) can see what the
/// retry loop is absorbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryKind {
    /// The request exceeded its I/O deadline.
    Timeout,
    /// The connection died (reset, refused, EOF mid-frame, ...);
    /// reconnect and replay.
    Io,
    /// The reply arrived but failed validation (checksum mismatch,
    /// short frame); re-ask for a clean copy.
    Corrupt,
    /// The server said it is overloaded (shed frame or
    /// [`Answer::Overloaded`]); back off, then retry.
    Overloaded,
}

/// The client-side error taxonomy: every failure is either worth
/// retrying (transient transport/overload conditions, given that BATCH
/// requests are idempotent) or fatal (the request itself can never
/// succeed, e.g. a protocol-version rejection).
#[derive(Debug)]
pub enum ClientError {
    /// Transient; [`ResilientClient`] reconnects and replays.
    Retryable { kind: RetryKind, source: io::Error },
    /// Permanent; retrying verbatim cannot help.
    Fatal(io::Error),
}

impl ClientError {
    /// Sorts a raw I/O error into the taxonomy.
    #[must_use]
    pub fn classify(e: io::Error) -> Self {
        use io::ErrorKind as K;
        match e.kind() {
            K::TimedOut | K::WouldBlock => Self::Retryable {
                kind: RetryKind::Timeout,
                source: e,
            },
            K::ConnectionReset
            | K::ConnectionAborted
            | K::ConnectionRefused
            | K::BrokenPipe
            | K::NotConnected
            | K::UnexpectedEof
            | K::Interrupted => Self::Retryable {
                kind: RetryKind::Io,
                source: e,
            },
            K::InvalidData => {
                let msg = e.to_string();
                if msg.contains("overloaded") {
                    Self::Retryable {
                        kind: RetryKind::Overloaded,
                        source: e,
                    }
                } else if msg.contains("rejected handshake") || msg.contains("too old") {
                    Self::Fatal(e)
                } else {
                    // Checksum mismatches, short frames, garbled
                    // replies: the *bytes* are suspect, not the
                    // request. A fresh connection gets a fresh copy.
                    Self::Retryable {
                        kind: RetryKind::Corrupt,
                        source: e,
                    }
                }
            }
            _ => Self::Fatal(e),
        }
    }

    /// `true` for the [`Retryable`](Self::Retryable) arm.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        matches!(self, Self::Retryable { .. })
    }

    /// The underlying I/O error.
    #[must_use]
    pub fn source_io(&self) -> &io::Error {
        match self {
            Self::Retryable { source, .. } => source,
            Self::Fatal(e) => e,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Retryable { kind, source } => write!(f, "retryable ({kind:?}): {source}"),
            Self::Fatal(e) => write!(f, "fatal: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Retry/deadline policy for [`ResilientClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (so `max_retries = 3` allows
    /// four tries total).
    pub max_retries: u32,
    /// Per-request socket read/write deadline; `None` blocks forever.
    pub deadline: Option<Duration>,
    /// First backoff delay; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Seed for the backoff jitter (deterministic for tests).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            deadline: Some(Duration::from_secs(1)),
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_secs(1),
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `attempt` (0-based): exponential
    /// with full lower-half jitter, `d/2 + U(0, d/2)` where
    /// `d = min(base · 2^attempt, cap)`. Public because the cluster
    /// router reuses it for quarantine re-probe pacing (and the property
    /// tests pin the bounds the router depends on).
    pub fn backoff(&self, attempt: u32, rng: &mut StdRng) -> Duration {
        let base = self.backoff_base.as_nanos() as u64;
        let cap = self.backoff_cap.as_nanos() as u64;
        let d = base.saturating_mul(1u64 << attempt.min(20)).min(cap.max(1));
        let jitter: f64 = rng.gen();
        Duration::from_nanos(d / 2 + ((d / 2) as f64 * jitter) as u64)
    }
}

/// A [`Client`] wrapped in deadlines, bounded exponential backoff with
/// jitter, and automatic reconnect-and-replay.
///
/// Replaying a `BATCH` verbatim is safe because the request is
/// idempotent: labels are immutable and answers are pure reads, so a
/// request that died mid-flight can be re-asked without double effects.
/// Every absorbed failure increments the process-global
/// `plserve_retries_total` counter and the [`retries`](Self::retries)
/// tally.
#[derive(Debug)]
pub struct ResilientClient {
    addrs: Vec<SocketAddr>,
    policy: RetryPolicy,
    client: Option<Client>,
    rng: StdRng,
    retries: u64,
}

impl ResilientClient {
    /// Resolves `addr` and connects (with retries per `policy`).
    pub fn connect(addr: impl ToSocketAddrs, policy: RetryPolicy) -> Result<Self, ClientError> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(ClientError::classify)?
            .collect();
        if addrs.is_empty() {
            return Err(ClientError::Fatal(bad_data("no addresses resolved")));
        }
        let rng = StdRng::seed_from_u64(policy.seed);
        let mut this = Self {
            addrs,
            policy,
            client: None,
            rng,
            retries: 0,
        };
        this.with_retries(|_| Ok(()))?;
        Ok(this)
    }

    /// Failures absorbed by the retry loop so far.
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// The active retry policy.
    #[must_use]
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Vertex count of the served labeling (from the most recent
    /// handshake).
    pub fn n(&mut self) -> Result<u32, ClientError> {
        self.with_retries(|c| Ok(c.n()))
    }

    /// Negotiated protocol version of the current connection.
    pub fn version(&mut self) -> Result<u8, ClientError> {
        self.with_retries(|c| Ok(c.version()))
    }

    /// Sends one batch, replaying on transient failures. Transport
    /// errors replay the whole batch (inside [`with_retries`]); an
    /// [`Answer::Overloaded`] in an otherwise healthy reply re-asks
    /// only the shed queries — settled answers are kept, so one
    /// overloaded shard cannot force the rest of a large batch to
    /// re-roll its luck every round. Both are sound because the batch
    /// is idempotent.
    ///
    /// [`with_retries`]: Self::with_retries
    pub fn batch(&mut self, queries: &[Query]) -> Result<Vec<Answer>, ClientError> {
        self.batch_ctx(queries, None)
    }

    /// [`batch`](Self::batch) with an optional trace context; every
    /// retry and per-query re-ask re-sends the same context, so a
    /// replayed request stays attributable to the original trace.
    pub fn batch_ctx(
        &mut self,
        queries: &[Query],
        ctx: Option<&TraceContext>,
    ) -> Result<Vec<Answer>, ClientError> {
        let mut answers: Vec<Option<Answer>> = vec![None; queries.len()];
        let mut pending: Vec<usize> = (0..queries.len()).collect();
        let mut round = 0u32;
        loop {
            let subset: Vec<Query> = pending.iter().map(|&i| queries[i]).collect();
            let got = self.with_retries(|c| c.batch_ctx(&subset, ctx))?;
            let mut still_pending = Vec::new();
            for (&slot, answer) in pending.iter().zip(got) {
                if answer.is_retryable() {
                    still_pending.push(slot);
                } else {
                    answers[slot] = Some(answer);
                }
            }
            if still_pending.is_empty() {
                return Ok(answers
                    .into_iter()
                    .map(|a| a.expect("every slot settled")) // lint: panic-ok(still_pending is empty here, so every slot was filled by the loop above)
                    .collect());
            }
            if round >= self.policy.max_retries {
                return Err(ClientError::Retryable {
                    kind: RetryKind::Overloaded,
                    source: io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "server overloaded for {} of {} queries after {round} re-asks",
                            still_pending.len(),
                            queries.len()
                        ),
                    ),
                });
            }
            pending = still_pending;
            round += 1;
            self.note_retry(round - 1);
        }
    }

    /// Single adjacency query with retries.
    pub fn adjacent(&mut self, u: u32, v: u32) -> Result<bool, ClientError> {
        match self.batch(&[Query::adjacent(u, v)])?[0] {
            Answer::Adjacent => Ok(true),
            Answer::NotAdjacent => Ok(false),
            other => Err(ClientError::Fatal(bad_data(format!(
                "unexpected answer {other:?}"
            )))),
        }
    }

    /// Fetches a stats snapshot with retries.
    pub fn stats(&mut self) -> Result<Snapshot, ClientError> {
        self.with_retries(Client::stats)
    }

    /// Fetches the shard-liveness report with retries (needs v3).
    pub fn health(&mut self) -> Result<HealthReport, ClientError> {
        self.with_retries(Client::health)
    }

    /// Drains (or, with [`trace_dump_flags::SNAPSHOT`], snapshots) the
    /// server's trace rings as JSONL, with retries. The router's merged
    /// cluster drain pulls each backend's ring through this.
    pub fn trace_dump_with(&mut self, flags: u8) -> Result<String, ClientError> {
        self.with_retries(|c| c.trace_dump_with(flags))
    }

    /// Best-effort orderly close.
    pub fn goodbye(mut self) {
        if let Some(client) = self.client.take() {
            let _ = client.goodbye();
        }
    }

    /// Runs `op` against a live connection, reconnecting and replaying
    /// on retryable failures, with backoff between attempts.
    fn with_retries<T>(
        &mut self,
        mut op: impl FnMut(&mut Client) -> io::Result<T>,
    ) -> Result<T, ClientError> {
        let mut attempt = 0u32;
        loop {
            let result = self
                .ensure_connected()
                .and_then(|client| op(client).map_err(ClientError::classify));
            let err = match result {
                Ok(v) => return Ok(v),
                Err(e) => e,
            };
            // Anything that failed leaves the stream in an unknown
            // framing state; only a fresh connection is trustworthy.
            self.client = None;
            if !err.is_retryable() || attempt >= self.policy.max_retries {
                return Err(err);
            }
            self.note_retry(attempt);
            attempt += 1;
        }
    }

    /// Books one absorbed failure (tally, global counter, trace event)
    /// and sleeps the backoff for `attempt`.
    fn note_retry(&mut self, attempt: u32) {
        self.retries += 1;
        pl_obs::global().counter("plserve_retries_total").inc();
        pl_obs::event!("client.retry", attempt);
        std::thread::sleep(self.policy.backoff(attempt, &mut self.rng));
    }

    fn ensure_connected(&mut self) -> Result<&mut Client, ClientError> {
        match &mut self.client {
            Some(client) => Ok(client),
            slot => {
                // The deadline covers the handshake too: a stalled server
                // must not wedge the connect beyond the policy's budget.
                let client = Client::connect_deadline(&self.addrs[..], self.policy.deadline)
                    .map_err(ClientError::classify)?;
                Ok(slot.insert(client))
            }
        }
    }
}

pub mod loadgen {
    //! Multi-connection load generator.

    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Instant;

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    use super::{Answer, Client, Query, ResilientClient, RetryPolicy};

    /// Vertex-selection distribution for generated queries.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub enum Skew {
        /// Both endpoints uniform over `0..n`.
        Uniform,
        /// Endpoints Zipf-distributed with this exponent: vertex of rank
        /// `r` drawn with probability ∝ `r^{-s}`. Rank order is
        /// [`LoadgenConfig::hot_order`] when given, else vertex id.
        Zipf(f64),
    }

    /// Load-generator parameters.
    #[derive(Debug, Clone)]
    pub struct LoadgenConfig {
        /// Concurrent connections (worker threads).
        pub connections: usize,
        /// Queries each connection issues.
        pub requests_per_conn: usize,
        /// Queries per BATCH frame.
        pub batch: usize,
        /// Endpoint distribution.
        pub skew: Skew,
        /// Base RNG seed; connection `i` uses `seed + i`.
        pub seed: u64,
        /// Optional rank → vertex map for [`Skew::Zipf`] (e.g. vertices
        /// in degree-descending order, making the hot set the hubs).
        /// Must be a permutation of `0..n` when present.
        pub hot_order: Option<Vec<u32>>,
        /// When set, workers use [`ResilientClient`] with this policy
        /// (worker `i` jitters from `policy.seed + i`): transient
        /// failures are retried, and batches that exhaust their retries
        /// are counted in [`LoadReport::failed`] instead of aborting
        /// the run. `None` keeps the original fail-fast behaviour.
        pub retry: Option<RetryPolicy>,
    }

    impl Default for LoadgenConfig {
        fn default() -> Self {
            Self {
                connections: 4,
                requests_per_conn: 10_000,
                batch: 64,
                skew: Skew::Uniform,
                seed: 0x1abe1,
                hot_order: None,
                retry: None,
            }
        }
    }

    /// What a load run observed.
    #[derive(Debug, Clone, Copy)]
    pub struct LoadReport {
        /// Queries answered across all connections.
        pub queries: u64,
        /// Of those, answered "adjacent".
        pub adjacent_true: u64,
        /// Answers disagreeing with the reference graph (always 0
        /// without a reference; see [`run_verified`]).
        pub mismatches: u64,
        /// Wall-clock seconds for the whole run.
        pub elapsed_secs: f64,
        /// Client-side aggregate throughput.
        pub qps: f64,
        /// Transient failures absorbed by the retry loops (0 without
        /// [`LoadgenConfig::retry`]).
        pub retries: u64,
        /// Queries abandoned after exhausting their retries (0 without
        /// [`LoadgenConfig::retry`], where any failure aborts instead).
        pub failed: u64,
        /// 99th-percentile client-observed batch round-trip, ns
        /// (histogram bucket upper edge; 0 if nothing completed).
        pub p99_batch_ns: u64,
    }

    impl LoadReport {
        /// Fraction of issued queries that eventually succeeded,
        /// in `[0, 1]` (1.0 when nothing was issued).
        #[must_use]
        pub fn success_rate(&self) -> f64 {
            let attempted = self.queries + self.failed;
            if attempted == 0 {
                1.0
            } else {
                self.queries as f64 / attempted as f64
            }
        }
    }

    /// Rank sampler: inverse-CDF over `P(r) ∝ (r+1)^{-s}`, or uniform.
    struct VertexSampler {
        n: u32,
        /// Cumulative probabilities for Zipf; empty = uniform.
        cdf: Vec<f64>,
    }

    impl VertexSampler {
        fn new(n: u32, skew: Skew) -> Self {
            let cdf = match skew {
                Skew::Uniform => Vec::new(),
                Skew::Zipf(s) => {
                    let mut weights: Vec<f64> = (0..n).map(|r| (r as f64 + 1.0).powf(-s)).collect();
                    let total: f64 = weights.iter().sum();
                    let mut acc = 0.0;
                    for w in &mut weights {
                        acc += *w / total;
                        *w = acc;
                    }
                    weights
                }
            };
            Self { n, cdf }
        }

        /// Draws a rank in `0..n`.
        fn sample(&self, rng: &mut StdRng) -> u32 {
            if self.cdf.is_empty() {
                return rng.gen_range(0..self.n);
            }
            let x: f64 = rng.gen();
            self.cdf
                .partition_point(|&c| c < x)
                .min(self.n as usize - 1) as u32
        }
    }

    fn generate_batch(
        sampler: &VertexSampler,
        hot_order: Option<&[u32]>,
        rng: &mut StdRng,
        len: usize,
    ) -> Vec<Query> {
        (0..len)
            .map(|_| {
                let mut pick = || {
                    let rank = sampler.sample(rng);
                    match hot_order {
                        Some(order) => order[rank as usize],
                        None => rank,
                    }
                };
                Query::adjacent(pick(), pick())
            })
            .collect()
    }

    /// Per-run shared tallies, bumped by every worker.
    struct Tallies {
        queries: AtomicU64,
        adjacent_true: AtomicU64,
        mismatches: AtomicU64,
        retries: AtomicU64,
        failed: AtomicU64,
        batch_latency: pl_obs::Histogram,
    }

    /// Checks one answered batch into the tallies; `Err` on an answer
    /// the workload should never see (out of range, malformed, ...).
    fn tally_batch(
        tallies: &Tallies,
        batch: &[Query],
        answers: &[Answer],
        reference: Option<&pl_graph::Graph>,
    ) -> std::io::Result<()> {
        for (q, a) in batch.iter().zip(answers) {
            match a {
                Answer::Adjacent => {
                    tallies.adjacent_true.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok(loadgen tally; workers are joined before the totals are read, and join provides the happens-before)
                }
                Answer::NotAdjacent => {}
                other => return Err(super::bad_data(format!("unexpected answer {other:?}"))),
            }
            if let Some(g) = reference {
                let expected = g.has_edge(q.u, q.v);
                let got = *a == Answer::Adjacent;
                if expected != got {
                    tallies.mismatches.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok(loadgen tally; read only after worker join)
                }
            }
        }
        tallies
            .queries
            .fetch_add(batch.len() as u64, Ordering::Relaxed); // lint: relaxed-ok(loadgen tally; read only after worker join)
        Ok(())
    }

    /// Original fail-fast worker: any error aborts the run.
    fn worker_failfast(
        addr: std::net::SocketAddr,
        config: &LoadgenConfig,
        conn_idx: usize,
        tallies: &Tallies,
        reference: Option<&pl_graph::Graph>,
    ) -> std::io::Result<()> {
        let mut client = Client::connect(addr)?;
        let sampler = VertexSampler::new(client.n(), config.skew);
        let mut rng = StdRng::seed_from_u64(config.seed + conn_idx as u64);
        let mut remaining = config.requests_per_conn;
        while remaining > 0 {
            let len = remaining.min(config.batch);
            let batch = generate_batch(&sampler, config.hot_order.as_deref(), &mut rng, len);
            let t0 = Instant::now();
            let answers = client.batch(&batch)?;
            tallies.batch_latency.record(t0.elapsed().as_nanos() as u64);
            tally_batch(tallies, &batch, &answers, reference)?;
            remaining -= len;
        }
        client.goodbye()
    }

    /// Resilient worker: transient failures retry inside
    /// [`ResilientClient`]; a batch that exhausts its retries is
    /// counted as failed and the run continues. Only fatal errors
    /// abort.
    fn worker_resilient(
        addr: std::net::SocketAddr,
        config: &LoadgenConfig,
        policy: &RetryPolicy,
        conn_idx: usize,
        tallies: &Tallies,
        reference: Option<&pl_graph::Graph>,
    ) -> std::io::Result<()> {
        let policy = RetryPolicy {
            seed: policy.seed.wrapping_add(conn_idx as u64),
            ..policy.clone()
        };
        let mut client = ResilientClient::connect(addr, policy)
            .map_err(|e| std::io::Error::new(e.source_io().kind(), e.to_string()))?;
        let n = client
            .n()
            .map_err(|e| std::io::Error::new(e.source_io().kind(), e.to_string()))?;
        let sampler = VertexSampler::new(n, config.skew);
        let mut rng = StdRng::seed_from_u64(config.seed + conn_idx as u64);
        let mut remaining = config.requests_per_conn;
        let result = loop {
            if remaining == 0 {
                break Ok(());
            }
            let len = remaining.min(config.batch);
            remaining -= len;
            let batch = generate_batch(&sampler, config.hot_order.as_deref(), &mut rng, len);
            let t0 = Instant::now();
            match client.batch(&batch) {
                Ok(answers) => {
                    tallies.batch_latency.record(t0.elapsed().as_nanos() as u64);
                    if tally_batch(tallies, &batch, &answers, reference).is_err() {
                        // An impossible answer is a correctness bug,
                        // not load noise — surface it as a mismatch so
                        // verified runs fail loudly.
                        tallies
                            .mismatches
                            .fetch_add(batch.len() as u64, Ordering::Relaxed); // lint: relaxed-ok(loadgen tally; read only after worker join)
                    }
                }
                Err(e) if e.is_retryable() => {
                    tallies.failed.fetch_add(len as u64, Ordering::Relaxed); // lint: relaxed-ok(loadgen tally; read only after worker join)
                }
                Err(e) => {
                    break Err(std::io::Error::new(e.source_io().kind(), e.to_string()));
                }
            }
        };
        tallies
            .retries
            .fetch_add(client.retries(), Ordering::Relaxed); // lint: relaxed-ok(loadgen tally; read only after worker join)
        client.goodbye();
        result
    }

    fn run_inner(
        addr: std::net::SocketAddr,
        config: &LoadgenConfig,
        reference: Option<&pl_graph::Graph>,
    ) -> std::io::Result<LoadReport> {
        assert!(config.connections >= 1, "need at least one connection");
        assert!(config.batch >= 1, "need a positive batch size");
        let tallies = Tallies {
            queries: AtomicU64::new(0),
            adjacent_true: AtomicU64::new(0),
            mismatches: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            batch_latency: pl_obs::Histogram::default(),
        };
        let started = Instant::now();
        let result: std::io::Result<()> = std::thread::scope(|scope| {
            let mut workers = Vec::with_capacity(config.connections);
            for conn_idx in 0..config.connections {
                let tallies = &tallies;
                workers.push(scope.spawn(move || -> std::io::Result<()> {
                    match &config.retry {
                        Some(policy) => {
                            worker_resilient(addr, config, policy, conn_idx, tallies, reference)
                        }
                        None => worker_failfast(addr, config, conn_idx, tallies, reference),
                    }
                }));
            }
            for w in workers {
                w.join().expect("loadgen worker panicked")?; // lint: panic-ok(loadgen is an operator-run bench tool; relaying a worker panic to the terminal is the intended failure mode)
            }
            Ok(())
        });
        result?;
        let elapsed_secs = started.elapsed().as_secs_f64();
        let total = tallies.queries.load(Ordering::Relaxed);
        Ok(LoadReport {
            queries: total,
            adjacent_true: tallies.adjacent_true.load(Ordering::Relaxed),
            mismatches: tallies.mismatches.load(Ordering::Relaxed),
            elapsed_secs,
            qps: total as f64 / elapsed_secs.max(1e-9),
            retries: tallies.retries.load(Ordering::Relaxed),
            failed: tallies.failed.load(Ordering::Relaxed),
            p99_batch_ns: tallies.batch_latency.snapshot().quantile_ns(0.99),
        })
    }

    /// Runs the configured load against a server.
    pub fn run(addr: std::net::SocketAddr, config: &LoadgenConfig) -> std::io::Result<LoadReport> {
        run_inner(addr, config, None)
    }

    /// Like [`run`], but checks every adjacency answer against `g`;
    /// disagreements are counted in [`LoadReport::mismatches`].
    pub fn run_verified(
        addr: std::net::SocketAddr,
        config: &LoadgenConfig,
        g: &pl_graph::Graph,
    ) -> std::io::Result<LoadReport> {
        run_inner(addr, config, Some(g))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn zipf_sampler_skews_toward_low_ranks() {
            let sampler = VertexSampler::new(1_000, Skew::Zipf(1.2));
            let mut rng = StdRng::seed_from_u64(42);
            let mut head = 0usize;
            let draws = 20_000;
            for _ in 0..draws {
                if sampler.sample(&mut rng) < 10 {
                    head += 1;
                }
            }
            // Top-10 ranks carry far more than the uniform 1% of mass.
            assert!(
                head as f64 > draws as f64 * 0.25,
                "only {head}/{draws} draws in the head"
            );
        }

        #[test]
        fn uniform_sampler_covers_the_range() {
            let sampler = VertexSampler::new(8, Skew::Uniform);
            let mut rng = StdRng::seed_from_u64(7);
            let mut seen = [false; 8];
            for _ in 0..1_000 {
                seen[sampler.sample(&mut rng) as usize] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }

        #[test]
        fn zipf_samples_stay_in_range() {
            for n in [1u32, 2, 17] {
                let sampler = VertexSampler::new(n, Skew::Zipf(0.9));
                let mut rng = StdRng::seed_from_u64(u64::from(n));
                for _ in 0..500 {
                    assert!(sampler.sample(&mut rng) < n);
                }
            }
        }
    }
}
