//! Blocking client and the load generator.
//!
//! [`Client`] is a thin synchronous wrapper over one TCP connection:
//! handshake on connect, then batched request/reply in lockstep. The
//! [`loadgen`] module drives many clients from worker threads, replaying
//! uniform or Zipf-skewed adjacency query mixes against a server and
//! optionally verifying every answer against the source graph.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use crate::metrics::Snapshot;
use crate::protocol::{
    encode_batch, encode_hello_version, opcode, parse_batch_reply, parse_hello_ok,
    parse_stats_reply, read_frame, write_frame, Answer, Query, MIN_VERSION, VERSION,
};

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// One connection to a pl-serve server, already past the handshake.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    version: u8,
    tag: u8,
    n: u32,
}

impl Client {
    /// Connects and performs the HELLO handshake, falling back to older
    /// protocol versions (down to [`MIN_VERSION`]) if the server
    /// rejects the current one.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        // Resolve once so version-fallback reconnects hit the same host.
        let addrs: Vec<_> = addr.to_socket_addrs()?.collect();
        let mut last_err = bad_data("no addresses resolved");
        for version in (MIN_VERSION..=VERSION).rev() {
            match Self::connect_version(&addrs[..], version) {
                Ok(client) => return Ok(client),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// Connects with one specific protocol version, no fallback.
    pub fn connect_version(addr: impl ToSocketAddrs, version: u8) -> io::Result<Self> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        write_frame(&mut stream, &encode_hello_version(version))?;
        let reply = read_frame(&mut stream)?;
        match reply.first() {
            Some(&opcode::HELLO_OK) => {
                let (version, tag, n) =
                    parse_hello_ok(&reply).map_err(|e| bad_data(e.to_string()))?;
                Ok(Self {
                    stream,
                    version,
                    tag,
                    n,
                })
            }
            Some(&opcode::ERROR) => Err(bad_data(format!(
                "server rejected handshake: {}",
                String::from_utf8_lossy(&reply[1..])
            ))),
            _ => Err(bad_data("unexpected handshake reply")),
        }
    }

    /// Protocol version negotiated with the server.
    #[must_use]
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Scheme tag byte the server is serving.
    #[must_use]
    pub fn tag(&self) -> u8 {
        self.tag
    }

    /// Vertex count of the served labeling.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Sends one batch and reads the matching reply (answers in query
    /// order).
    pub fn batch(&mut self, queries: &[Query]) -> io::Result<Vec<Answer>> {
        write_frame(&mut self.stream, &encode_batch(queries))?;
        let reply = read_frame(&mut self.stream)?;
        match reply.first() {
            Some(&opcode::BATCH_REPLY) => {
                let answers = parse_batch_reply(&reply).map_err(|e| bad_data(e.to_string()))?;
                if answers.len() != queries.len() {
                    return Err(bad_data("reply count mismatch"));
                }
                Ok(answers)
            }
            Some(&opcode::ERROR) => Err(bad_data(format!(
                "server error: {}",
                String::from_utf8_lossy(&reply[1..])
            ))),
            _ => Err(bad_data("unexpected batch reply")),
        }
    }

    /// Single adjacency query.
    pub fn adjacent(&mut self, u: u32, v: u32) -> io::Result<bool> {
        match self.batch(&[Query::adjacent(u, v)])?[0] {
            Answer::Adjacent => Ok(true),
            Answer::NotAdjacent => Ok(false),
            other => Err(bad_data(format!("unexpected answer {other:?}"))),
        }
    }

    /// Single distance query; `None` = beyond the scheme's bound.
    pub fn distance(&mut self, u: u32, v: u32) -> io::Result<Option<u32>> {
        match self.batch(&[Query::distance(u, v)])?[0] {
            Answer::Distance(d) => Ok(Some(d)),
            Answer::Unreachable => Ok(None),
            other => Err(bad_data(format!("unexpected answer {other:?}"))),
        }
    }

    /// Fetches the server's metrics snapshot.
    pub fn stats(&mut self) -> io::Result<Snapshot> {
        write_frame(&mut self.stream, &[opcode::STATS])?;
        let reply = read_frame(&mut self.stream)?;
        parse_stats_reply(&reply).map_err(|e| bad_data(e.to_string()))
    }

    /// Drains the server's trace ring buffers as JSONL (one event per
    /// line, possibly empty). Requires protocol version ≥ 2.
    pub fn trace_dump(&mut self) -> io::Result<String> {
        if self.version < 2 {
            return Err(bad_data("server too old for TRACE_DUMP (needs v2)"));
        }
        write_frame(&mut self.stream, &[opcode::TRACE_DUMP])?;
        let reply = read_frame(&mut self.stream)?;
        match reply.first() {
            Some(&opcode::TRACE_REPLY) => String::from_utf8(reply[1..].to_vec())
                .map_err(|_| bad_data("trace reply is not UTF-8")),
            Some(&opcode::ERROR) => Err(bad_data(format!(
                "server error: {}",
                String::from_utf8_lossy(&reply[1..])
            ))),
            _ => Err(bad_data("unexpected trace reply")),
        }
    }

    /// Orderly close: GOODBYE, await GOODBYE_OK.
    pub fn goodbye(mut self) -> io::Result<()> {
        write_frame(&mut self.stream, &[opcode::GOODBYE])?;
        let reply = read_frame(&mut self.stream)?;
        if reply.first() == Some(&opcode::GOODBYE_OK) {
            Ok(())
        } else {
            Err(bad_data("expected GOODBYE_OK"))
        }
    }

    /// Low-level escape hatch for protocol tests: send raw body, read
    /// raw reply.
    pub fn raw_round_trip(&mut self, body: &[u8]) -> io::Result<Vec<u8>> {
        write_frame(&mut self.stream, body)?;
        read_frame(&mut self.stream)
    }
}

pub mod loadgen {
    //! Multi-connection load generator.

    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Instant;

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    use super::{Answer, Client, Query};

    /// Vertex-selection distribution for generated queries.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub enum Skew {
        /// Both endpoints uniform over `0..n`.
        Uniform,
        /// Endpoints Zipf-distributed with this exponent: vertex of rank
        /// `r` drawn with probability ∝ `r^{-s}`. Rank order is
        /// [`LoadgenConfig::hot_order`] when given, else vertex id.
        Zipf(f64),
    }

    /// Load-generator parameters.
    #[derive(Debug, Clone)]
    pub struct LoadgenConfig {
        /// Concurrent connections (worker threads).
        pub connections: usize,
        /// Queries each connection issues.
        pub requests_per_conn: usize,
        /// Queries per BATCH frame.
        pub batch: usize,
        /// Endpoint distribution.
        pub skew: Skew,
        /// Base RNG seed; connection `i` uses `seed + i`.
        pub seed: u64,
        /// Optional rank → vertex map for [`Skew::Zipf`] (e.g. vertices
        /// in degree-descending order, making the hot set the hubs).
        /// Must be a permutation of `0..n` when present.
        pub hot_order: Option<Vec<u32>>,
    }

    impl Default for LoadgenConfig {
        fn default() -> Self {
            Self {
                connections: 4,
                requests_per_conn: 10_000,
                batch: 64,
                skew: Skew::Uniform,
                seed: 0x1abe1,
                hot_order: None,
            }
        }
    }

    /// What a load run observed.
    #[derive(Debug, Clone, Copy)]
    pub struct LoadReport {
        /// Queries answered across all connections.
        pub queries: u64,
        /// Of those, answered "adjacent".
        pub adjacent_true: u64,
        /// Answers disagreeing with the reference graph (always 0
        /// without a reference; see [`run_verified`]).
        pub mismatches: u64,
        /// Wall-clock seconds for the whole run.
        pub elapsed_secs: f64,
        /// Client-side aggregate throughput.
        pub qps: f64,
    }

    /// Rank sampler: inverse-CDF over `P(r) ∝ (r+1)^{-s}`, or uniform.
    struct VertexSampler {
        n: u32,
        /// Cumulative probabilities for Zipf; empty = uniform.
        cdf: Vec<f64>,
    }

    impl VertexSampler {
        fn new(n: u32, skew: Skew) -> Self {
            let cdf = match skew {
                Skew::Uniform => Vec::new(),
                Skew::Zipf(s) => {
                    let mut weights: Vec<f64> = (0..n).map(|r| (r as f64 + 1.0).powf(-s)).collect();
                    let total: f64 = weights.iter().sum();
                    let mut acc = 0.0;
                    for w in &mut weights {
                        acc += *w / total;
                        *w = acc;
                    }
                    weights
                }
            };
            Self { n, cdf }
        }

        /// Draws a rank in `0..n`.
        fn sample(&self, rng: &mut StdRng) -> u32 {
            if self.cdf.is_empty() {
                return rng.gen_range(0..self.n);
            }
            let x: f64 = rng.gen();
            self.cdf
                .partition_point(|&c| c < x)
                .min(self.n as usize - 1) as u32
        }
    }

    fn generate_batch(
        sampler: &VertexSampler,
        hot_order: Option<&[u32]>,
        rng: &mut StdRng,
        len: usize,
    ) -> Vec<Query> {
        (0..len)
            .map(|_| {
                let mut pick = || {
                    let rank = sampler.sample(rng);
                    match hot_order {
                        Some(order) => order[rank as usize],
                        None => rank,
                    }
                };
                Query::adjacent(pick(), pick())
            })
            .collect()
    }

    fn run_inner(
        addr: std::net::SocketAddr,
        config: &LoadgenConfig,
        reference: Option<&pl_graph::Graph>,
    ) -> std::io::Result<LoadReport> {
        assert!(config.connections >= 1, "need at least one connection");
        assert!(config.batch >= 1, "need a positive batch size");
        let queries = AtomicU64::new(0);
        let adjacent_true = AtomicU64::new(0);
        let mismatches = AtomicU64::new(0);
        let started = Instant::now();
        let result: std::io::Result<()> = std::thread::scope(|scope| {
            let mut workers = Vec::with_capacity(config.connections);
            for conn_idx in 0..config.connections {
                let queries = &queries;
                let adjacent_true = &adjacent_true;
                let mismatches = &mismatches;
                workers.push(scope.spawn(move || -> std::io::Result<()> {
                    let mut client = Client::connect(addr)?;
                    let sampler = VertexSampler::new(client.n(), config.skew);
                    let mut rng = StdRng::seed_from_u64(config.seed + conn_idx as u64);
                    let mut remaining = config.requests_per_conn;
                    while remaining > 0 {
                        let len = remaining.min(config.batch);
                        let batch =
                            generate_batch(&sampler, config.hot_order.as_deref(), &mut rng, len);
                        let answers = client.batch(&batch)?;
                        for (q, a) in batch.iter().zip(&answers) {
                            match a {
                                Answer::Adjacent => {
                                    adjacent_true.fetch_add(1, Ordering::Relaxed);
                                }
                                Answer::NotAdjacent => {}
                                other => {
                                    return Err(super::bad_data(format!(
                                        "unexpected answer {other:?}"
                                    )))
                                }
                            }
                            if let Some(g) = reference {
                                let expected = g.has_edge(q.u, q.v);
                                let got = *a == Answer::Adjacent;
                                if expected != got {
                                    mismatches.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        queries.fetch_add(len as u64, Ordering::Relaxed);
                        remaining -= len;
                    }
                    client.goodbye()
                }));
            }
            for w in workers {
                w.join().expect("loadgen worker panicked")?;
            }
            Ok(())
        });
        result?;
        let elapsed_secs = started.elapsed().as_secs_f64();
        let total = queries.load(Ordering::Relaxed);
        Ok(LoadReport {
            queries: total,
            adjacent_true: adjacent_true.load(Ordering::Relaxed),
            mismatches: mismatches.load(Ordering::Relaxed),
            elapsed_secs,
            qps: total as f64 / elapsed_secs.max(1e-9),
        })
    }

    /// Runs the configured load against a server.
    pub fn run(addr: std::net::SocketAddr, config: &LoadgenConfig) -> std::io::Result<LoadReport> {
        run_inner(addr, config, None)
    }

    /// Like [`run`], but checks every adjacency answer against `g`;
    /// disagreements are counted in [`LoadReport::mismatches`].
    pub fn run_verified(
        addr: std::net::SocketAddr,
        config: &LoadgenConfig,
        g: &pl_graph::Graph,
    ) -> std::io::Result<LoadReport> {
        run_inner(addr, config, Some(g))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn zipf_sampler_skews_toward_low_ranks() {
            let sampler = VertexSampler::new(1_000, Skew::Zipf(1.2));
            let mut rng = StdRng::seed_from_u64(42);
            let mut head = 0usize;
            let draws = 20_000;
            for _ in 0..draws {
                if sampler.sample(&mut rng) < 10 {
                    head += 1;
                }
            }
            // Top-10 ranks carry far more than the uniform 1% of mass.
            assert!(
                head as f64 > draws as f64 * 0.25,
                "only {head}/{draws} draws in the head"
            );
        }

        #[test]
        fn uniform_sampler_covers_the_range() {
            let sampler = VertexSampler::new(8, Skew::Uniform);
            let mut rng = StdRng::seed_from_u64(7);
            let mut seen = [false; 8];
            for _ in 0..1_000 {
                seen[sampler.sample(&mut rng) as usize] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }

        #[test]
        fn zipf_samples_stay_in_range() {
            for n in [1u32, 2, 17] {
                let sampler = VertexSampler::new(n, Skew::Zipf(0.9));
                let mut rng = StdRng::seed_from_u64(u64::from(n));
                for _ in 0..500 {
                    assert!(sampler.sample(&mut rng) < n);
                }
            }
        }
    }
}
