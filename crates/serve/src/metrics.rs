//! Re-export shim: server metrics moved to [`pl_wire::stats`] (PR 6),
//! where the same `Metrics`/`Snapshot` pair backs both this crate's
//! server and the `pl-cluster` router front-end. The
//! `pl_serve::metrics::…` paths keep compiling unchanged.

pub use pl_wire::stats::{LatencyHistogram, Metrics, Snapshot};
