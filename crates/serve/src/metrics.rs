//! Server metrics: atomic counters plus a fixed-bucket latency histogram.
//!
//! Everything here is lock-free (`Relaxed` atomics) so the hot query path
//! pays a handful of uncontended fetch-adds. Buckets are powers of two in
//! nanoseconds, which keeps `record` branch-free (`ilog2`) and gives
//! quantile estimates within a factor of two — plenty for p50/p99 over a
//! load test.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of power-of-two latency buckets: bucket `i` covers
/// `[2^i, 2^{i+1})` ns, with the last bucket open-ended (≥ ~34 s).
const BUCKETS: usize = 36;

/// Lock-free latency histogram with power-of-two nanosecond buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    fn bucket_of(ns: u64) -> usize {
        (ns.max(1).ilog2() as usize).min(BUCKETS - 1)
    }

    /// Records one observation of `ns` nanoseconds.
    pub fn record(&self, ns: u64) {
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Upper edge (exclusive) in ns of the bucket containing quantile
    /// `q ∈ [0, 1]`; 0 when the histogram is empty.
    #[must_use]
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        1u64 << 63
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }
}

/// The server's counters. One instance is shared (via `Arc`) by every
/// connection thread.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Adjacency queries answered.
    pub adj_queries: AtomicU64,
    /// Distance queries answered.
    pub dist_queries: AtomicU64,
    /// Batch frames processed.
    pub batches: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Decode-cache hits (fat-label bitmap found decoded).
    pub cache_hits: AtomicU64,
    /// Decode-cache misses (bitmap decoded and inserted).
    pub cache_misses: AtomicU64,
    /// Bytes read off sockets.
    pub bytes_in: AtomicU64,
    /// Bytes written to sockets.
    pub bytes_out: AtomicU64,
    /// Malformed frames rejected.
    pub protocol_errors: AtomicU64,
    /// Per-query decode latency.
    pub query_latency: LatencyHistogram,
}

impl Metrics {
    /// Immutable snapshot of all counters; `elapsed` is measured against
    /// `started` for the QPS figure.
    #[must_use]
    pub fn snapshot(&self, started: Instant) -> Snapshot {
        let adj = self.adj_queries.load(Ordering::Relaxed);
        let dist = self.dist_queries.load(Ordering::Relaxed);
        let secs = started.elapsed().as_secs_f64().max(1e-9);
        Snapshot {
            adj_queries: adj,
            dist_queries: dist,
            batches: self.batches.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            p50_ns: self.query_latency.quantile_ns(0.50),
            p99_ns: self.query_latency.quantile_ns(0.99),
            qps_milli: (((adj + dist) as f64 / secs) * 1000.0) as u64,
        }
    }
}

/// A point-in-time copy of [`Metrics`], also the payload of the wire
/// `STATS` reply (twelve `u64`s, in field order).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Snapshot {
    pub adj_queries: u64,
    pub dist_queries: u64,
    pub batches: u64,
    pub connections: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
    pub protocol_errors: u64,
    /// Estimated median decode latency, ns (bucket upper edge).
    pub p50_ns: u64,
    /// Estimated 99th-percentile decode latency, ns.
    pub p99_ns: u64,
    /// Queries per second × 1000, measured over the server's lifetime.
    pub qps_milli: u64,
}

impl Snapshot {
    /// Serializes for the `STATS` reply body.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let fields = self.fields();
        let mut out = Vec::with_capacity(fields.len() * 8);
        for f in fields {
            out.extend_from_slice(&f.to_le_bytes());
        }
        out
    }

    /// Parses a `STATS` reply body.
    #[must_use]
    pub fn from_bytes(buf: &[u8]) -> Option<Self> {
        let mut it = buf.chunks_exact(8);
        let mut next = || -> Option<u64> {
            it.next()
                .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        };
        let s = Self {
            adj_queries: next()?,
            dist_queries: next()?,
            batches: next()?,
            connections: next()?,
            cache_hits: next()?,
            cache_misses: next()?,
            bytes_in: next()?,
            bytes_out: next()?,
            protocol_errors: next()?,
            p50_ns: next()?,
            p99_ns: next()?,
            qps_milli: next()?,
        };
        (buf.len() == 12 * 8).then_some(s)
    }

    fn fields(&self) -> [u64; 12] {
        [
            self.adj_queries,
            self.dist_queries,
            self.batches,
            self.connections,
            self.cache_hits,
            self.cache_misses,
            self.bytes_in,
            self.bytes_out,
            self.protocol_errors,
            self.p50_ns,
            self.p99_ns,
            self.qps_milli,
        ]
    }

    /// Cache hit rate in `[0, 1]`; 0 when the cache was never consulted.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Queries per second.
    #[must_use]
    pub fn qps(&self) -> f64 {
        self.qps_milli as f64 / 1000.0
    }
}

impl std::fmt::Display for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "queries: {} adj + {} dist in {} batches over {} connections",
            self.adj_queries, self.dist_queries, self.batches, self.connections
        )?;
        writeln!(
            f,
            "throughput: {:.1} qps, latency p50 < {} ns, p99 < {} ns",
            self.qps(),
            self.p50_ns,
            self.p99_ns
        )?;
        writeln!(
            f,
            "cache: {} hits / {} misses ({:.1}% hit rate)",
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_rate() * 100.0
        )?;
        write!(
            f,
            "wire: {} bytes in, {} bytes out, {} protocol errors",
            self.bytes_in, self.bytes_out, self.protocol_errors
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_ns(0.5), 0);
        for _ in 0..99 {
            h.record(100); // bucket 6: [64, 128)
        }
        h.record(1 << 20);
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_ns(0.5), 128);
        assert_eq!(h.quantile_ns(0.98), 128);
        assert_eq!(h.quantile_ns(1.0), 1 << 21);
    }

    #[test]
    fn histogram_extremes_do_not_panic() {
        let h = LatencyHistogram::default();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.quantile_ns(1.0) > 0);
    }

    #[test]
    fn snapshot_round_trips() {
        let s = Snapshot {
            adj_queries: 1,
            dist_queries: 2,
            batches: 3,
            connections: 4,
            cache_hits: 5,
            cache_misses: 6,
            bytes_in: 7,
            bytes_out: 8,
            protocol_errors: 9,
            p50_ns: 10,
            p99_ns: 11,
            qps_milli: 12_500,
        };
        let bytes = s.to_bytes();
        assert_eq!(Snapshot::from_bytes(&bytes), Some(s));
        assert_eq!(Snapshot::from_bytes(&bytes[..bytes.len() - 1]), None);
        assert!((s.qps() - 12.5).abs() < 1e-9);
        assert!((s.cache_hit_rate() - 5.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_counts_and_qps() {
        let m = Metrics::default();
        m.adj_queries.fetch_add(10, Ordering::Relaxed);
        m.cache_hits.fetch_add(3, Ordering::Relaxed);
        let s = m.snapshot(Instant::now() - std::time::Duration::from_secs(1));
        assert_eq!(s.adj_queries, 10);
        assert!(s.qps() > 1.0, "ten queries over ~1s");
        assert!((s.cache_hit_rate() - 1.0).abs() < 1e-9);
    }
}
