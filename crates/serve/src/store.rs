//! The sharded in-memory label store.
//!
//! The labeling is loaded once as a single contiguous bit arena
//! ([`pl_labeling::Labeling`]) and queried in place: `label(v)` hands out
//! a borrowed [`LabelRef`] window, so the query path performs zero heap
//! allocation. Labels are immutable after load, so reads need no
//! synchronization at all — any number of connection threads query
//! concurrently.
//!
//! The only mutable state is a sharded LRU cache of *decoded fat
//! labels* (vertex `v` maps to shard `v mod S`). A fat vertex's label is
//! a `k`-bit adjacency bitmap over the fat vertices, prefixed by a
//! gamma-coded `k`; a fat–fat query must skip the varint and seek to one
//! bit. Decoding the bitmap once into `u64` words turns repeat queries
//! against the same hub into a word-indexed bit test. Under a power-law
//! workload this is exactly the right thing to cache: the hot vertices
//! *are* the hubs, hubs are fat, and `k` is small (Theorem 4 picks τ so
//! that `k ≈ (C'n/log n)^{1/α}`), so the cache holds the heavy tail of
//! the query distribution in a few KB. Thin labels are deliberately not
//! cached — they are cheap linear scans, and under skew they would flood
//! the LRU with cold entries.
//!
//! Labels are untrusted once a `.plab` leaves the encoder: the threshold
//! fast path reads them with checked (non-panicking) bit reads, and a
//! label that declares more content than it carries answers
//! [`StoreError::Malformed`] for that query instead of killing the
//! connection thread.
//!
//! # Partial stores
//!
//! A store marked [partial](LabelStore::with_partial) holds a cluster
//! partition cut by `plab cluster split`: vertices this backend *owns*
//! carry their full, bit-identical label, while every other vertex
//! carries only a prelude stub (id width + scheme id + fat flag, nothing
//! after). A stub is enough to answer from the *other* endpoint's side —
//! a thin owned label scans its own neighbour list for the stub's scheme
//! id, and a fat owned bitmap is tested against it — so the partial
//! query path tries both sides with checked reads and only reports
//! [`StoreError::NotOwned`] when neither endpoint's content is present
//! (fat–fat with both bitmaps missing, or a thin endpoint stubbed with
//! the other endpoint fat). The router turns `NotOwned` into a re-ask at
//! a replica owning the other endpoint.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use pl_labeling::scheme::AdjacencyDecoder;
use pl_labeling::threshold::ThresholdDecoder;
use pl_labeling::LabelRef;
use pl_obs::registry::Counter;
use pl_obs::MetricsRegistry;

use crate::cache::LruCache;
use crate::format::{decode_adjacent, decode_distance, SchemeTag, TaggedLabeling};

/// Store sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Number of cache shards `S`; clamped to at least 1.
    pub shards: usize,
    /// Total decoded-fat-label cache entries across all shards (split
    /// evenly; 0 disables the cache).
    pub cache_capacity: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            cache_capacity: 1024,
        }
    }
}

/// A query the store cannot answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// A vertex id was `≥ n`.
    OutOfRange,
    /// The loaded scheme cannot answer this query kind.
    Unsupported,
    /// A label involved in the query was corrupt (declared more content
    /// than it carries). The store stays up; only this query fails.
    Malformed,
    /// A [partial](LabelStore::with_partial) store holds only prelude
    /// stubs for the queried pair's decodable sides; the query must be
    /// re-asked at a backend owning one of the endpoints.
    NotOwned,
}

/// A fat label's adjacency bitmap, decoded into words for O(1) bit tests.
#[derive(Debug)]
pub struct DecodedFat {
    k: u64,
    words: Vec<u64>,
}

impl DecodedFat {
    /// Decodes the bitmap of a fat threshold label; `None` if the label
    /// is thin — or truncated mid-field, so corrupt labels surface as a
    /// decode failure rather than a panic.
    #[must_use]
    pub fn from_label(label: LabelRef<'_>) -> Option<Self> {
        let mut r = label.reader();
        let w = r.try_read_bits(6)? as usize;
        let _id = r.try_read_bits(w)?;
        if !r.try_read_bit()? {
            return None;
        }
        let k = r.try_read_gamma()? - 1;
        if k > r.remaining() as u64 {
            return None;
        }
        let mut words = vec![0u64; (k as usize).div_ceil(64)];
        for i in 0..k as usize {
            if r.read_bit() {
                words[i / 64] |= 1u64 << (i % 64);
            }
        }
        Some(Self { k, words })
    }

    /// Tests adjacency to fat scheme-id `id`.
    #[must_use]
    pub fn test(&self, id: u64) -> bool {
        id < self.k && (self.words[id as usize / 64] >> (id % 64)) & 1 == 1
    }

    /// Number of fat vertices the bitmap covers.
    #[must_use]
    pub fn k(&self) -> u64 {
        self.k
    }
}

/// Checked peek at a threshold label's prelude and fat flag; `None` if
/// the label is too short to carry them.
fn peek_threshold(l: LabelRef<'_>) -> Option<(u64, bool)> {
    let mut r = l.reader();
    let w = r.try_read_bits(6)? as usize;
    let id = r.try_read_bits(w)?;
    let fat = r.try_read_bit()?;
    Some((id, fat))
}

/// Checked scan of a thin threshold label's neighbour list for scheme id
/// `target`; `None` if the label is a prelude stub (or truncated) so the
/// list is unreadable. Mirrors the unchecked decoder's short-circuit on
/// a match.
fn thin_contains(l: LabelRef<'_>, target: u64) -> Option<bool> {
    let mut r = l.reader();
    let w = r.try_read_bits(6)? as usize;
    let _id = r.try_read_bits(w)?;
    let _fat = r.try_read_bit()?;
    let deg = r.try_read_gamma()? - 1;
    for _ in 0..deg {
        if r.try_read_bits(w)? == target {
            return Some(true);
        }
    }
    Some(false)
}

/// How one adjacency query was answered — the provenance attached to
/// slow-query trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryPath {
    /// Non-threshold scheme: generic decoder dispatch.
    Generic,
    /// At least one endpoint thin: neighbour-list scan.
    ThinScan,
    /// Fat–fat pair answered through the decode cache.
    FatFat {
        /// Cache shard consulted (`u mod S`).
        shard: u32,
        /// Whether the decoded bitmap was already cached.
        hit: bool,
    },
}

impl QueryPath {
    /// Packs the provenance into one trace payload word:
    /// low byte = path kind (0 generic, 1 thin, 2 fat–fat),
    /// bit 8 = cache hit, bits 32.. = shard index.
    #[must_use]
    pub fn as_u64(&self) -> u64 {
        match *self {
            Self::Generic => 0,
            Self::ThinScan => 1,
            Self::FatFat { shard, hit } => 2 | (u64::from(hit) << 8) | (u64::from(shard) << 32),
        }
    }
}

/// One query's outcome from [`LabelStore::adjacent_batch_traced`]: the
/// adjacency result (as from [`LabelStore::adjacent_traced`]) plus the
/// measured store-side latency.
#[derive(Debug, Clone, Copy)]
pub struct BatchOutcome {
    /// The adjacency answer, with shard/cache provenance, or the
    /// per-query failure.
    pub result: Result<(bool, QueryPath), StoreError>,
    /// Store-side latency in nanoseconds (under contention this
    /// includes the shard-lock wait).
    pub ns: u64,
}

/// The sharded, concurrently readable label store.
pub struct LabelStore {
    labeling: pl_labeling::Labeling,
    caches: Vec<Mutex<LruCache<Arc<DecodedFat>>>>,
    tag: SchemeTag,
    n: u32,
    /// Per-shard decode-cache hit counters
    /// (`plserve_cache_hits_total{shard=...}`), index-aligned with
    /// `caches`.
    shard_hits: Vec<Arc<Counter>>,
    /// Per-shard miss counters, likewise.
    shard_misses: Vec<Arc<Counter>>,
    /// Cluster-partition sub-store: non-owned vertices are prelude
    /// stubs, and unanswerable queries report [`StoreError::NotOwned`]
    /// instead of [`StoreError::Malformed`].
    partial: bool,
    /// The config this store was built with, so a reconfiguration swap
    /// can rebuild a replacement with identical sharding.
    config: StoreConfig,
}

impl std::fmt::Debug for LabelStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LabelStore")
            .field("tag", &self.tag)
            .field("n", &self.n)
            .field("shards", &self.caches.len())
            .finish_non_exhaustive()
    }
}

impl LabelStore {
    /// Wraps `tagged` with a cache sharded per `config`. The labeling's
    /// arena is kept whole — shards only partition the decode cache.
    /// Cache counters are created privately; use
    /// [`with_registry`](Self::with_registry) to make them scrapeable.
    #[must_use]
    pub fn new(tagged: TaggedLabeling, config: StoreConfig) -> Self {
        Self::with_registry(tagged, config, &MetricsRegistry::new())
    }

    /// Like [`new`](Self::new), but registers the per-shard cache
    /// counters as the `plserve_cache_hits_total{shard=...}` /
    /// `plserve_cache_misses_total{shard=...}` families in `registry`.
    #[must_use]
    pub fn with_registry(
        tagged: TaggedLabeling,
        config: StoreConfig,
        registry: &MetricsRegistry,
    ) -> Self {
        let shard_count = config.shards.max(1);
        let per_shard_cache = config.cache_capacity.div_ceil(shard_count);
        let n = u32::try_from(tagged.labeling.len()).expect("more than u32::MAX labels"); // lint: panic-ok(store construction happens at startup/reconfig, not per-request; vertex ids are u32 on the wire)
        let caches = (0..shard_count)
            .map(|_| {
                Mutex::new(LruCache::new(if config.cache_capacity == 0 {
                    0
                } else {
                    per_shard_cache
                }))
            })
            .collect();
        let shard_counter = |name: &str| -> Vec<Arc<Counter>> {
            (0..shard_count)
                .map(|i| registry.counter_with(name, &[("shard", &i.to_string())]))
                .collect()
        };
        Self {
            labeling: tagged.labeling,
            caches,
            tag: tagged.tag,
            n,
            shard_hits: shard_counter("plserve_cache_hits_total"),
            shard_misses: shard_counter("plserve_cache_misses_total"),
            partial: false,
            config,
        }
    }

    /// The config this store was built with.
    #[must_use]
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Marks the store as a cluster-partition sub-store (see the module
    /// docs): the threshold query path tries both endpoints with checked
    /// reads and reports [`StoreError::NotOwned`] where a full store
    /// would report [`StoreError::Malformed`].
    #[must_use]
    pub fn with_partial(mut self, partial: bool) -> Self {
        self.partial = partial;
        self
    }

    /// Is this a cluster-partition sub-store?
    #[must_use]
    pub fn is_partial(&self) -> bool {
        self.partial
    }

    /// Vertex count.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The loaded scheme.
    #[must_use]
    pub fn tag(&self) -> SchemeTag {
        self.tag
    }

    /// Number of cache shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.caches.len()
    }

    /// Decode-cache hits so far, summed over shards.
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.shard_hits.iter().map(|c| c.get()).sum()
    }

    /// Decode-cache misses so far, summed over shards.
    #[must_use]
    pub fn cache_misses(&self) -> u64 {
        self.shard_misses.iter().map(|c| c.get()).sum()
    }

    /// Per-shard liveness, in shard order: a shard is unhealthy if its
    /// cache mutex was poisoned by a panicking connection thread. Labels
    /// themselves are immutable, so an unhealthy shard still answers
    /// queries — this feeds the wire `HEALTH` reply so operators see the
    /// degradation.
    #[must_use]
    pub fn shard_health(&self) -> Vec<bool> {
        self.caches.iter().map(|m| !m.is_poisoned()).collect()
    }

    /// Per-shard `(hits, misses)` pairs, in shard order.
    #[must_use]
    pub fn shard_cache_counts(&self) -> Vec<(u64, u64)> {
        self.shard_hits
            .iter()
            .zip(&self.shard_misses)
            .map(|(h, m)| (h.get(), m.get()))
            .collect()
    }

    /// The label of `v`, viewed in place, if in range.
    #[must_use]
    pub fn label(&self, v: u32) -> Option<LabelRef<'_>> {
        (v < self.n).then(|| self.labeling.label(v))
    }

    /// Answers "is {u, v} an edge?" from labels alone. This is the lean
    /// path: no spans, no provenance — the server uses
    /// [`adjacent_traced`](Self::adjacent_traced) instead.
    pub fn adjacent(&self, u: u32, v: u32) -> Result<bool, StoreError> {
        self.adjacent_inner(u, v).map(|(edge, _)| edge)
    }

    /// Like [`adjacent`](Self::adjacent), but wraps the lookup in a
    /// `store.adjacent` trace span, emits cache hit/miss events, and
    /// reports how the query was answered (shard and cache provenance
    /// for the slow-query log).
    pub fn adjacent_traced(&self, u: u32, v: u32) -> Result<(bool, QueryPath), StoreError> {
        let _span = pl_obs::span!("store.adjacent", u, v);
        let out = self.adjacent_inner(u, v);
        if let Ok((_, QueryPath::FatFat { shard, hit })) = out {
            if hit {
                pl_obs::event!("store.cache_hit", u, shard);
            } else {
                pl_obs::event!("store.cache_miss", u, shard);
            }
        }
        out
    }

    fn adjacent_inner(&self, u: u32, v: u32) -> Result<(bool, QueryPath), StoreError> {
        let la = self.label(u).ok_or(StoreError::OutOfRange)?;
        let lb = self.label(v).ok_or(StoreError::OutOfRange)?;
        if self.tag != SchemeTag::Threshold {
            return Ok((decode_adjacent(self.tag, la, lb), QueryPath::Generic));
        }
        // Threshold fast path: peek at the preludes and fat flags; a
        // fat–fat pair is answered from the cached decoded bitmap.
        let (ida, fat_a) = peek_threshold(la).ok_or(StoreError::Malformed)?;
        let (idb, fat_b) = peek_threshold(lb).ok_or(StoreError::Malformed)?;
        if ida == idb {
            return Ok((false, QueryPath::ThinScan));
        }
        if fat_a && fat_b {
            if !self.partial {
                let (decoded, hit) = self.decoded_fat(u, la).ok_or(StoreError::Malformed)?;
                let shard = (u as usize % self.caches.len()) as u32;
                return Ok((decoded.test(idb), QueryPath::FatFat { shard, hit }));
            }
            // Partial store: either owned bitmap answers a fat–fat pair.
            for (w, lw, other_id) in [(u, la, idb), (v, lb, ida)] {
                if let Some((decoded, hit)) = self.decoded_fat(w, lw) {
                    let shard = (w as usize % self.caches.len()) as u32;
                    return Ok((decoded.test(other_id), QueryPath::FatFat { shard, hit }));
                }
            }
            return Err(StoreError::NotOwned);
        }
        if !self.partial {
            return Ok((ThresholdDecoder.adjacent(la, lb), QueryPath::ThinScan));
        }
        // Partial store: a thin endpoint whose list is present answers
        // one-sidedly (the other endpoint's stub carries the scheme id
        // the scan looks for).
        if !fat_a {
            if let Some(edge) = thin_contains(la, idb) {
                return Ok((edge, QueryPath::ThinScan));
            }
        }
        if !fat_b {
            if let Some(edge) = thin_contains(lb, ida) {
                return Ok((edge, QueryPath::ThinScan));
            }
        }
        Err(StoreError::NotOwned)
    }

    /// Answers "what is dist(u, v)?"; `Ok(None)` means beyond the
    /// scheme's bound (or disconnected).
    pub fn distance(&self, u: u32, v: u32) -> Result<Option<u32>, StoreError> {
        if !self.tag.supports_distance() {
            return Err(StoreError::Unsupported);
        }
        let la = self.label(u).ok_or(StoreError::OutOfRange)?;
        let lb = self.label(v).ok_or(StoreError::OutOfRange)?;
        Ok(decode_distance(self.tag, la, lb))
    }

    /// Answers a batch of adjacency pairs, grouping fat–fat cache
    /// lookups by shard so each touched shard lock is taken **once per
    /// batch** instead of once per query. Outcomes land in `out`
    /// (cleared first) in input order, each carrying its measured
    /// store-side latency.
    ///
    /// Semantics, per-shard hit/miss counter totals, and per-shard LRU
    /// state are identical to calling
    /// [`adjacent_traced`](Self::adjacent_traced) per query: within a
    /// shard, pending lookups resolve in input order. Partial stores
    /// and non-threshold schemes take the sequential path (their
    /// queries have no groupable lock traffic).
    pub fn adjacent_batch_traced(&self, pairs: &[(u32, u32)], out: &mut Vec<BatchOutcome>) {
        out.clear();
        if self.tag != SchemeTag::Threshold || self.partial {
            for &(u, v) in pairs {
                let t0 = Instant::now();
                let result = self.adjacent_traced(u, v);
                out.push(BatchOutcome {
                    result,
                    ns: t0.elapsed().as_nanos() as u64,
                });
            }
            return;
        }
        struct Pending {
            slot: usize,
            u: u32,
            v: u32,
            idb: u64,
            t0: Instant,
        }
        // Indexed by shard, so phase 2 walks shards in index order —
        // concurrent batches touching multiple shards lock them in the
        // same order.
        let mut by_shard: Vec<Vec<Pending>> = (0..self.caches.len()).map(|_| Vec::new()).collect();
        out.resize(
            pairs.len(),
            BatchOutcome {
                result: Err(StoreError::OutOfRange),
                ns: 0,
            },
        );
        // Phase 1: classify. Everything except a full-store fat–fat
        // pair settles immediately (mirroring `adjacent_inner`);
        // fat–fat pairs pend on their shard.
        for (slot, &(u, v)) in pairs.iter().enumerate() {
            let t0 = Instant::now();
            let settled: Option<Result<(bool, QueryPath), StoreError>> = 'classify: {
                let Some(la) = self.label(u) else {
                    break 'classify Some(Err(StoreError::OutOfRange));
                };
                let Some(lb) = self.label(v) else {
                    break 'classify Some(Err(StoreError::OutOfRange));
                };
                let Some((ida, fat_a)) = peek_threshold(la) else {
                    break 'classify Some(Err(StoreError::Malformed));
                };
                let Some((idb, fat_b)) = peek_threshold(lb) else {
                    break 'classify Some(Err(StoreError::Malformed));
                };
                if ida == idb {
                    break 'classify Some(Ok((false, QueryPath::ThinScan)));
                }
                if fat_a && fat_b {
                    by_shard[u as usize % self.caches.len()].push(Pending {
                        slot,
                        u,
                        v,
                        idb,
                        t0,
                    });
                    break 'classify None;
                }
                Some(Ok((ThresholdDecoder.adjacent(la, lb), QueryPath::ThinScan)))
            };
            if let Some(result) = settled {
                let ns = t0.elapsed().as_nanos() as u64;
                self.trace_batch_query(u, v, &result, ns);
                out[slot] = BatchOutcome { result, ns };
            }
        }
        // Phase 2: one lock acquisition per touched shard.
        for (shard_idx, pending) in by_shard.iter().enumerate() {
            if pending.is_empty() {
                continue;
            }
            let mut cache = self.caches[shard_idx]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            // One clock read per shard group, not two per query: each
            // pending query is charged classification + queue + lock
            // wait (read at acquisition), which is the contended part
            // of its store-side latency. In-lock resolution time is
            // not attributed per query — at ~2 clock reads saved per
            // query, the amortized timestamp is a measurable slice of
            // the batch API's win.
            let t_lock = Instant::now();
            for p in pending {
                let (decoded, hit) = match cache.get(p.u) {
                    Some(d) => {
                        self.shard_hits[shard_idx].inc();
                        (Some(Arc::clone(d)), true)
                    }
                    None => {
                        self.shard_misses[shard_idx].inc();
                        let fresh = DecodedFat::from_label(self.labeling.label(p.u)).map(Arc::new);
                        if let Some(ref d) = fresh {
                            cache.insert(p.u, Arc::clone(d));
                        }
                        (fresh, false)
                    }
                };
                let result = match decoded {
                    Some(d) => Ok((
                        d.test(p.idb),
                        QueryPath::FatFat {
                            shard: shard_idx as u32,
                            hit,
                        },
                    )),
                    None => Err(StoreError::Malformed),
                };
                // Includes the lock wait — that *is* this query's
                // store-side latency under contention.
                let ns = t_lock.saturating_duration_since(p.t0).as_nanos() as u64;
                self.trace_batch_query(p.u, p.v, &result, ns);
                out[p.slot] = BatchOutcome { result, ns };
            }
        }
    }

    /// Trace parity with [`adjacent_traced`](Self::adjacent_traced) for
    /// batch-resolved queries: a completed `store.adjacent` span plus
    /// cache hit/miss events.
    fn trace_batch_query(
        &self,
        u: u32,
        v: u32,
        result: &Result<(bool, QueryPath), StoreError>,
        ns: u64,
    ) {
        if !pl_obs::tracing_enabled() {
            return;
        }
        let end = pl_obs::trace::now_ns();
        pl_obs::trace::record_complete(
            "store.adjacent",
            end.saturating_sub(ns),
            ns,
            u64::from(u),
            u64::from(v),
        );
        if let Ok((_, QueryPath::FatFat { shard, hit })) = result {
            if *hit {
                pl_obs::event!("store.cache_hit", u, *shard);
            } else {
                pl_obs::event!("store.cache_miss", u, *shard);
            }
        }
    }

    /// The decoded bitmap of fat vertex `u` (plus whether it was a cache
    /// hit), from cache or decoded now; `None` if the label turns out
    /// corrupt (fat flag set, body short).
    fn decoded_fat(&self, u: u32, label: LabelRef<'_>) -> Option<(Arc<DecodedFat>, bool)> {
        let shard_idx = u as usize % self.caches.len();
        // A poisoned shard (a connection thread panicked mid-insert) is
        // reported through `shard_health`, but the cache map itself is
        // never left torn — keep answering rather than cascading the
        // panic into every thread that touches this shard.
        let mut cache = self.caches[shard_idx]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(hit) = cache.get(u) {
            self.shard_hits[shard_idx].inc();
            return Some((Arc::clone(hit), true));
        }
        self.shard_misses[shard_idx].inc();
        let decoded = Arc::new(DecodedFat::from_label(label)?);
        cache.insert(u, Arc::clone(&decoded));
        Some((decoded, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_labeling::bits::BitWriter;
    use pl_labeling::scheme::AdjacencyScheme;
    use pl_labeling::{Label, Labeling, ThresholdScheme};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn store_for(g: &pl_graph::Graph, tau: usize, config: StoreConfig) -> LabelStore {
        LabelStore::new(
            TaggedLabeling {
                tag: SchemeTag::Threshold,
                labeling: ThresholdScheme::with_tau(tau).encode(g),
            },
            config,
        )
    }

    fn star_plus_cycle(n: u32) -> pl_graph::Graph {
        let spokes = (1..n).map(|i| (0, i));
        let cycle = (1..n).map(move |i| (i, if i + 1 == n { 1 } else { i + 1 }));
        pl_graph::builder::from_edges(n as usize, spokes.chain(cycle))
    }

    #[test]
    fn matches_graph_for_every_shard_count() {
        let g = star_plus_cycle(40);
        for shards in [1usize, 2, 3, 7, 40, 64] {
            let store = store_for(
                &g,
                3,
                StoreConfig {
                    shards,
                    cache_capacity: 16,
                },
            );
            assert_eq!(store.shard_count(), shards);
            for u in 0..40u32 {
                for v in 0..40u32 {
                    assert_eq!(
                        store.adjacent(u, v).unwrap(),
                        g.has_edge(u, v),
                        "({u}, {v}) with {shards} shards"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_execution_matches_sequential_exactly() {
        let g = star_plus_cycle(64);
        // Two stores with identical contents: one answers per query,
        // one per batch. Counters, LRU state, and answers must agree.
        let config = StoreConfig {
            shards: 4,
            cache_capacity: 8,
        };
        let seq = store_for(&g, 3, config);
        let batched = store_for(&g, 3, config);

        let mut rng = StdRng::seed_from_u64(0xBA7C);
        let pairs: Vec<(u32, u32)> = (0..300)
            .map(|_| (rng.gen_range(0..70), rng.gen_range(0..70)))
            .collect();
        let mut out = Vec::new();
        for chunk in pairs.chunks(32) {
            batched.adjacent_batch_traced(chunk, &mut out);
            assert_eq!(out.len(), chunk.len());
            for (&(u, v), outcome) in chunk.iter().zip(&out) {
                let want = seq.adjacent_traced(u, v);
                match (&outcome.result, &want) {
                    (Ok(got), Ok(expect)) => assert_eq!(got, expect, "({u}, {v})"),
                    (Err(got), Err(expect)) => assert_eq!(got, expect, "({u}, {v})"),
                    (got, expect) => panic!("({u}, {v}): {got:?} vs {expect:?}"),
                }
            }
        }
        assert_eq!(batched.cache_hits(), seq.cache_hits());
        assert_eq!(batched.cache_misses(), seq.cache_misses());
        assert_eq!(batched.shard_cache_counts(), seq.shard_cache_counts());
    }

    #[test]
    fn out_of_range_is_an_error() {
        let g = star_plus_cycle(10);
        let store = store_for(&g, 2, StoreConfig::default());
        assert_eq!(store.adjacent(0, 10), Err(StoreError::OutOfRange));
        assert_eq!(store.adjacent(10, 0), Err(StoreError::OutOfRange));
        assert_eq!(store.adjacent(u32::MAX, 0), Err(StoreError::OutOfRange));
        assert!(store.label(10).is_none());
    }

    #[test]
    fn distance_unsupported_on_adjacency_scheme() {
        let g = star_plus_cycle(10);
        let store = store_for(&g, 2, StoreConfig::default());
        assert_eq!(store.distance(0, 1), Err(StoreError::Unsupported));
    }

    #[test]
    fn fat_fat_queries_hit_the_cache() {
        // Star + cycle with tau=3: the hub (degree n-1) and every cycle
        // vertex (degree 3) are fat.
        let g = star_plus_cycle(30);
        let store = store_for(
            &g,
            3,
            StoreConfig {
                shards: 4,
                cache_capacity: 64,
            },
        );
        for v in 1..30u32 {
            assert!(store.adjacent(0, v).unwrap());
        }
        assert_eq!(store.cache_misses(), 1, "hub decoded once");
        assert_eq!(store.cache_hits(), 28, "then served from cache");
    }

    #[test]
    fn per_shard_counters_and_query_provenance() {
        let g = star_plus_cycle(30);
        let reg = MetricsRegistry::new();
        let store = LabelStore::with_registry(
            TaggedLabeling {
                tag: SchemeTag::Threshold,
                labeling: ThresholdScheme::with_tau(3).encode(&g),
            },
            StoreConfig {
                shards: 4,
                cache_capacity: 64,
            },
            &reg,
        );
        // Hub (vertex 0) vs cycle vertices: all fat–fat, shard 0 holds
        // the hub's decoded bitmap.
        let (edge, path) = store.adjacent_traced(0, 1).unwrap();
        assert!(edge);
        assert_eq!(
            path,
            QueryPath::FatFat {
                shard: 0,
                hit: false
            }
        );
        let (_, path) = store.adjacent_traced(0, 2).unwrap();
        assert_eq!(
            path,
            QueryPath::FatFat {
                shard: 0,
                hit: true
            }
        );
        let counts = store.shard_cache_counts();
        assert_eq!(counts.len(), 4);
        assert_eq!(counts[0], (1, 1), "hub lives in shard 0");
        assert_eq!(counts[1], (0, 0));
        assert_eq!(store.cache_hits(), 1);
        assert_eq!(store.cache_misses(), 1);
        // The same counters surface as a labeled Prometheus family.
        let text = pl_obs::prom::render(&reg);
        assert!(
            text.contains("plserve_cache_hits_total{shard=\"0\"} 1"),
            "{text}"
        );
        assert!(text.contains("plserve_cache_misses_total{shard=\"3\"} 0"));
        // Provenance packing round-trips the interesting bits.
        assert_eq!(QueryPath::Generic.as_u64(), 0);
        assert_eq!(QueryPath::ThinScan.as_u64(), 1);
        let p = QueryPath::FatFat {
            shard: 3,
            hit: true,
        };
        assert_eq!(p.as_u64() & 0xFF, 2);
        assert_eq!((p.as_u64() >> 8) & 1, 1);
        assert_eq!(p.as_u64() >> 32, 3);
    }

    #[test]
    fn zero_capacity_disables_caching_but_stays_correct() {
        let g = star_plus_cycle(20);
        let store = store_for(
            &g,
            3,
            StoreConfig {
                shards: 2,
                cache_capacity: 0,
            },
        );
        for v in 1..20u32 {
            assert!(store.adjacent(0, v).unwrap());
        }
        assert_eq!(store.cache_hits(), 0);
        assert!(store.cache_misses() > 0);
    }

    #[test]
    fn decoded_fat_covers_all_fat_vertices() {
        // Every vertex of star+cycle(25) has degree ≥ 3, so all 25 are fat.
        let g = star_plus_cycle(25);
        let labeling = ThresholdScheme::with_tau(3).encode(&g);
        let hub = DecodedFat::from_label(labeling.label(0)).expect("hub is fat");
        assert_eq!(hub.k(), 25);
        // The hub (scheme id 0, highest degree) is adjacent to every other
        // fat vertex and never to itself.
        assert!(!hub.test(0));
        for id in 1..25 {
            assert!(hub.test(id), "hub should see fat id {id}");
        }
        assert!(!hub.test(25), "out-of-range id is never adjacent");
    }

    #[test]
    fn thin_label_does_not_decode_as_fat() {
        let g = pl_graph::builder::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        let labeling = ThresholdScheme::with_tau(2).encode(&g);
        // Vertex 1 has degree 1 < 2: thin.
        assert!(DecodedFat::from_label(labeling.label(1)).is_none());
    }

    /// A fat-looking label whose bitmap is cut short: prelude and fat
    /// flag parse, the gamma-coded `k` declares 50 bitmap bits, but only
    /// `carried` follow.
    fn truncated_fat_label(id: u64, carried: usize) -> Label {
        let mut w = BitWriter::new();
        w.write_bits(6, 6); // id width
        w.write_bits(id, 6);
        w.write_bit(true); // fat
        w.write_gamma(51); // k = 50
        for _ in 0..carried {
            w.write_bit(false);
        }
        w.into()
    }

    #[test]
    fn corrupt_fat_label_answers_malformed_not_panic() {
        let good = {
            let mut w = BitWriter::new();
            w.write_bits(6, 6);
            w.write_bits(1, 6);
            w.write_bit(true);
            w.write_gamma(51);
            for _ in 0..50 {
                w.write_bit(true);
            }
            Label::from(w)
        };
        let store = LabelStore::new(
            TaggedLabeling {
                tag: SchemeTag::Threshold,
                labeling: Labeling::new(vec![truncated_fat_label(0, 3), good]),
            },
            StoreConfig::default(),
        );
        assert_eq!(store.adjacent(0, 1), Err(StoreError::Malformed));
        // The healthy direction decodes vertex 1's bitmap instead.
        assert_eq!(store.adjacent(1, 0), Ok(true));
        // An empty label can't even carry a prelude.
        let store = LabelStore::new(
            TaggedLabeling {
                tag: SchemeTag::Threshold,
                labeling: Labeling::new(vec![Label::from(BitWriter::new()), good2()]),
            },
            StoreConfig::default(),
        );
        assert_eq!(store.adjacent(0, 1), Err(StoreError::Malformed));
    }

    fn good2() -> Label {
        let mut w = BitWriter::new();
        w.write_bits(6, 6);
        w.write_bits(1, 6);
        w.write_bit(false);
        w.write_gamma(1);
        w.into()
    }

    /// A prelude stub as written by `plab cluster split`: id width,
    /// scheme id, fat flag — and nothing after.
    fn stub(id: u64, fat: bool) -> Label {
        let mut w = BitWriter::new();
        w.write_bits(6, 6);
        w.write_bits(id, 6);
        w.write_bit(fat);
        w.into()
    }

    #[test]
    fn partial_store_answers_from_either_side_and_reports_not_owned() {
        // Scheme ids: 0 = fat hub, 1 = fat, 2 = thin with neighbour 0.
        let fat_hub = {
            let mut w = BitWriter::new();
            w.write_bits(6, 6);
            w.write_bits(0, 6);
            w.write_bit(true);
            w.write_gamma(3); // k = 2
            w.write_bit(false); // not adjacent to fat id 0 (itself)
            w.write_bit(true); // adjacent to fat id 1
            Label::from(w)
        };
        let thin2 = {
            let mut w = BitWriter::new();
            w.write_bits(6, 6);
            w.write_bits(2, 6);
            w.write_bit(false);
            w.write_gamma(2); // degree 1
            w.write_bits(0, 6); // neighbour scheme id 0
            Label::from(w)
        };
        // This partition owns vertex 0 only; 1 and 2 are stubs.
        let store = LabelStore::new(
            TaggedLabeling {
                tag: SchemeTag::Threshold,
                labeling: Labeling::new(vec![fat_hub, stub(1, true), thin2.clone()]),
            },
            StoreConfig::default(),
        )
        .with_partial(true);
        assert!(store.is_partial());
        // Fat–fat: vertex 0's owned bitmap answers both orientations.
        assert_eq!(store.adjacent(0, 1), Ok(true));
        assert_eq!(store.adjacent(1, 0), Ok(true));
        // Thin side stubbed, fat side owned: a thin–fat pair needs the
        // thin list, which lives elsewhere.
        let store2 = LabelStore::new(
            TaggedLabeling {
                tag: SchemeTag::Threshold,
                labeling: Labeling::new(vec![fat_hub_clone(), stub(1, true), stub(2, false)]),
            },
            StoreConfig::default(),
        )
        .with_partial(true);
        assert_eq!(store2.adjacent(0, 2), Err(StoreError::NotOwned));
        assert_eq!(store2.adjacent(2, 0), Err(StoreError::NotOwned));
        // ...but a partition owning the thin endpoint answers it.
        let store3 = LabelStore::new(
            TaggedLabeling {
                tag: SchemeTag::Threshold,
                labeling: Labeling::new(vec![stub(0, true), stub(1, true), thin2]),
            },
            StoreConfig::default(),
        )
        .with_partial(true);
        assert_eq!(store3.adjacent(0, 2), Ok(true));
        assert_eq!(store3.adjacent(2, 0), Ok(true));
        assert_eq!(store3.adjacent(2, 1), Ok(false));
        // Fat–fat with both bitmaps stubbed is unanswerable here.
        assert_eq!(store3.adjacent(0, 1), Err(StoreError::NotOwned));
        // Same scheme id short-circuits before ownership matters.
        assert_eq!(store3.adjacent(0, 0), Ok(false));
    }

    fn fat_hub_clone() -> Label {
        let mut w = BitWriter::new();
        w.write_bits(6, 6);
        w.write_bits(0, 6);
        w.write_bit(true);
        w.write_gamma(3);
        w.write_bit(false);
        w.write_bit(true);
        Label::from(w)
    }

    #[test]
    fn full_store_keeps_strict_malformed_semantics() {
        // The same stubbed labeling on a *full* store is corruption.
        let store = LabelStore::new(
            TaggedLabeling {
                tag: SchemeTag::Threshold,
                labeling: Labeling::new(vec![stub(0, true), stub(1, true)]),
            },
            StoreConfig::default(),
        );
        assert!(!store.is_partial());
        assert_eq!(store.adjacent(0, 1), Err(StoreError::Malformed));
    }

    #[test]
    fn random_graph_random_queries_with_small_cache() {
        let mut r = StdRng::seed_from_u64(77);
        let n = 200u32;
        let mut b = pl_graph::GraphBuilder::new(n as usize);
        for _ in 0..600 {
            let u = r.gen_range(0..n);
            let v = r.gen_range(0..n);
            if u != v {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        // Tiny cache forces evictions; answers must not change.
        let store = store_for(
            &g,
            4,
            StoreConfig {
                shards: 3,
                cache_capacity: 2,
            },
        );
        for _ in 0..5_000 {
            let u = r.gen_range(0..n);
            let v = r.gen_range(0..n);
            assert_eq!(store.adjacent(u, v).unwrap(), g.has_edge(u, v));
        }
    }
}
