//! The sharded in-memory label store.
//!
//! The labeling is loaded once and partitioned across `S` shards (vertex
//! `v` lives in shard `v mod S` at index `v div S`). Labels are immutable
//! after load, so reads need no synchronization at all — shards sit behind
//! `Arc`s and any number of connection threads query concurrently.
//!
//! The only mutable state is a per-shard LRU cache of *decoded fat
//! labels*. A fat vertex's label is a `k`-bit adjacency bitmap over the
//! fat vertices, prefixed by a gamma-coded `k`; a fat–fat query must skip
//! the varint and seek to one bit. Decoding the bitmap once into `u64`
//! words turns repeat queries against the same hub into a word-indexed
//! bit test. Under a power-law workload this is exactly the right thing
//! to cache: the hot vertices *are* the hubs, hubs are fat, and `k` is
//! small (Theorem 4 picks τ so that `k ≈ (C'n/log n)^{1/α}`), so the
//! cache holds the heavy tail of the query distribution in a few KB.
//! Thin labels are deliberately not cached — they are cheap linear scans,
//! and under skew they would flood the LRU with cold entries.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pl_labeling::scheme::{read_prelude, AdjacencyDecoder};
use pl_labeling::threshold::ThresholdDecoder;
use pl_labeling::Label;

use crate::cache::LruCache;
use crate::format::{decode_adjacent, decode_distance, SchemeTag, TaggedLabeling};

/// Store sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Number of shards `S`; clamped to at least 1.
    pub shards: usize,
    /// Total decoded-fat-label cache entries across all shards (split
    /// evenly; 0 disables the cache).
    pub cache_capacity: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            cache_capacity: 1024,
        }
    }
}

/// A query the store cannot answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// A vertex id was `≥ n`.
    OutOfRange,
    /// The loaded scheme cannot answer this query kind.
    Unsupported,
}

/// A fat label's adjacency bitmap, decoded into words for O(1) bit tests.
#[derive(Debug)]
pub struct DecodedFat {
    k: u64,
    words: Vec<u64>,
}

impl DecodedFat {
    /// Decodes the bitmap of a fat threshold label; `None` if the label
    /// is thin.
    #[must_use]
    pub fn from_label(label: &Label) -> Option<Self> {
        let mut r = label.reader();
        let _ = read_prelude(&mut r);
        if !r.read_bit() {
            return None;
        }
        let k = r.read_gamma() - 1;
        let mut words = vec![0u64; (k as usize).div_ceil(64)];
        for i in 0..k as usize {
            if r.read_bit() {
                words[i / 64] |= 1u64 << (i % 64);
            }
        }
        Some(Self { k, words })
    }

    /// Tests adjacency to fat scheme-id `id`.
    #[must_use]
    pub fn test(&self, id: u64) -> bool {
        id < self.k && (self.words[id as usize / 64] >> (id % 64)) & 1 == 1
    }

    /// Number of fat vertices the bitmap covers.
    #[must_use]
    pub fn k(&self) -> u64 {
        self.k
    }
}

struct Shard {
    /// Labels of vertices `v` with `v mod S == shard_index`, at `v div S`.
    labels: Vec<Label>,
    cache: Mutex<LruCache<Arc<DecodedFat>>>,
}

/// The sharded, concurrently readable label store.
pub struct LabelStore {
    shards: Vec<Arc<Shard>>,
    tag: SchemeTag,
    n: u32,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

impl std::fmt::Debug for LabelStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LabelStore")
            .field("tag", &self.tag)
            .field("n", &self.n)
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

impl LabelStore {
    /// Partitions `tagged` across shards per `config`.
    #[must_use]
    pub fn new(tagged: TaggedLabeling, config: StoreConfig) -> Self {
        let shard_count = config.shards.max(1);
        let per_shard_cache = config.cache_capacity.div_ceil(shard_count);
        let tag = tagged.tag;
        let labels = tagged.labeling.into_labels();
        let n = u32::try_from(labels.len()).expect("more than u32::MAX labels");
        let mut parts: Vec<Vec<Label>> = (0..shard_count)
            .map(|s| Vec::with_capacity(labels.len() / shard_count + usize::from(s == 0)))
            .collect();
        for (v, label) in labels.into_iter().enumerate() {
            parts[v % shard_count].push(label);
        }
        let shards = parts
            .into_iter()
            .map(|labels| {
                Arc::new(Shard {
                    labels,
                    cache: Mutex::new(LruCache::new(if config.cache_capacity == 0 {
                        0
                    } else {
                        per_shard_cache
                    })),
                })
            })
            .collect();
        Self {
            shards,
            tag,
            n,
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
        }
    }

    /// Vertex count.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The loaded scheme.
    #[must_use]
    pub fn tag(&self) -> SchemeTag {
        self.tag
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Decode-cache hits so far.
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Decode-cache misses so far.
    #[must_use]
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// The label of `v`, if in range.
    #[must_use]
    pub fn label(&self, v: u32) -> Option<&Label> {
        if v >= self.n {
            return None;
        }
        let s = v as usize % self.shards.len();
        Some(&self.shards[s].labels[v as usize / self.shards.len()])
    }

    /// Answers "is {u, v} an edge?" from labels alone.
    pub fn adjacent(&self, u: u32, v: u32) -> Result<bool, StoreError> {
        let la = self.label(u).ok_or(StoreError::OutOfRange)?;
        let lb = self.label(v).ok_or(StoreError::OutOfRange)?;
        if self.tag != SchemeTag::Threshold {
            return Ok(decode_adjacent(self.tag, la, lb));
        }
        // Threshold fast path: peek at the preludes and fat flags; a
        // fat–fat pair is answered from the cached decoded bitmap.
        let mut ra = la.reader();
        let mut rb = lb.reader();
        let (_, ida) = read_prelude(&mut ra);
        let (_, idb) = read_prelude(&mut rb);
        if ida == idb {
            return Ok(false);
        }
        if ra.read_bit() && rb.read_bit() {
            return Ok(self.decoded_fat(u, la).test(idb));
        }
        Ok(ThresholdDecoder.adjacent(la, lb))
    }

    /// Answers "what is dist(u, v)?"; `Ok(None)` means beyond the
    /// scheme's bound (or disconnected).
    pub fn distance(&self, u: u32, v: u32) -> Result<Option<u32>, StoreError> {
        if !self.tag.supports_distance() {
            return Err(StoreError::Unsupported);
        }
        let la = self.label(u).ok_or(StoreError::OutOfRange)?;
        let lb = self.label(v).ok_or(StoreError::OutOfRange)?;
        Ok(decode_distance(self.tag, la, lb))
    }

    /// The decoded bitmap of fat vertex `u`, from cache or decoded now.
    fn decoded_fat(&self, u: u32, label: &Label) -> Arc<DecodedFat> {
        let shard = &self.shards[u as usize % self.shards.len()];
        let mut cache = shard.cache.lock().expect("cache mutex poisoned");
        if let Some(hit) = cache.get(u) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let decoded = Arc::new(
            DecodedFat::from_label(label).expect("fat flag was set but label decoded as thin"),
        );
        cache.insert(u, Arc::clone(&decoded));
        decoded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_labeling::scheme::AdjacencyScheme;
    use pl_labeling::ThresholdScheme;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn store_for(g: &pl_graph::Graph, tau: usize, config: StoreConfig) -> LabelStore {
        LabelStore::new(
            TaggedLabeling {
                tag: SchemeTag::Threshold,
                labeling: ThresholdScheme::with_tau(tau).encode(g),
            },
            config,
        )
    }

    fn star_plus_cycle(n: u32) -> pl_graph::Graph {
        let spokes = (1..n).map(|i| (0, i));
        let cycle = (1..n).map(move |i| (i, if i + 1 == n { 1 } else { i + 1 }));
        pl_graph::builder::from_edges(n as usize, spokes.chain(cycle))
    }

    #[test]
    fn matches_graph_for_every_shard_count() {
        let g = star_plus_cycle(40);
        for shards in [1usize, 2, 3, 7, 40, 64] {
            let store = store_for(
                &g,
                3,
                StoreConfig {
                    shards,
                    cache_capacity: 16,
                },
            );
            assert_eq!(store.shard_count(), shards);
            for u in 0..40u32 {
                for v in 0..40u32 {
                    assert_eq!(
                        store.adjacent(u, v).unwrap(),
                        g.has_edge(u, v),
                        "({u}, {v}) with {shards} shards"
                    );
                }
            }
        }
    }

    #[test]
    fn out_of_range_is_an_error() {
        let g = star_plus_cycle(10);
        let store = store_for(&g, 2, StoreConfig::default());
        assert_eq!(store.adjacent(0, 10), Err(StoreError::OutOfRange));
        assert_eq!(store.adjacent(10, 0), Err(StoreError::OutOfRange));
        assert_eq!(store.adjacent(u32::MAX, 0), Err(StoreError::OutOfRange));
        assert!(store.label(10).is_none());
    }

    #[test]
    fn distance_unsupported_on_adjacency_scheme() {
        let g = star_plus_cycle(10);
        let store = store_for(&g, 2, StoreConfig::default());
        assert_eq!(store.distance(0, 1), Err(StoreError::Unsupported));
    }

    #[test]
    fn fat_fat_queries_hit_the_cache() {
        // Star + cycle with tau=3: the hub (degree n-1) and every cycle
        // vertex (degree 3) are fat.
        let g = star_plus_cycle(30);
        let store = store_for(
            &g,
            3,
            StoreConfig {
                shards: 4,
                cache_capacity: 64,
            },
        );
        for v in 1..30u32 {
            assert!(store.adjacent(0, v).unwrap());
        }
        assert_eq!(store.cache_misses(), 1, "hub decoded once");
        assert_eq!(store.cache_hits(), 28, "then served from cache");
    }

    #[test]
    fn zero_capacity_disables_caching_but_stays_correct() {
        let g = star_plus_cycle(20);
        let store = store_for(
            &g,
            3,
            StoreConfig {
                shards: 2,
                cache_capacity: 0,
            },
        );
        for v in 1..20u32 {
            assert!(store.adjacent(0, v).unwrap());
        }
        assert_eq!(store.cache_hits(), 0);
        assert!(store.cache_misses() > 0);
    }

    #[test]
    fn decoded_fat_covers_all_fat_vertices() {
        // Every vertex of star+cycle(25) has degree ≥ 3, so all 25 are fat.
        let g = star_plus_cycle(25);
        let labeling = ThresholdScheme::with_tau(3).encode(&g);
        let hub = DecodedFat::from_label(labeling.label(0)).expect("hub is fat");
        assert_eq!(hub.k(), 25);
        // The hub (scheme id 0, highest degree) is adjacent to every other
        // fat vertex and never to itself.
        assert!(!hub.test(0));
        for id in 1..25 {
            assert!(hub.test(id), "hub should see fat id {id}");
        }
        assert!(!hub.test(25), "out-of-range id is never adjacent");
    }

    #[test]
    fn thin_label_does_not_decode_as_fat() {
        let g = pl_graph::builder::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        let labeling = ThresholdScheme::with_tau(2).encode(&g);
        // Vertex 1 has degree 1 < 2: thin.
        assert!(DecodedFat::from_label(labeling.label(1)).is_none());
    }

    #[test]
    fn random_graph_random_queries_with_small_cache() {
        let mut r = StdRng::seed_from_u64(77);
        let n = 200u32;
        let mut b = pl_graph::GraphBuilder::new(n as usize);
        for _ in 0..600 {
            let u = r.gen_range(0..n);
            let v = r.gen_range(0..n);
            if u != v {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        // Tiny cache forces evictions; answers must not change.
        let store = store_for(
            &g,
            4,
            StoreConfig {
                shards: 3,
                cache_capacity: 2,
            },
        );
        for _ in 0..5_000 {
            let u = r.gen_range(0..n);
            let v = r.gen_range(0..n);
            assert_eq!(store.adjacent(u, v).unwrap(), g.has_edge(u, v));
        }
    }
}
