//! pl-serve: a sharded, concurrent label-serving engine.
//!
//! The paper's decoders answer adjacency from two labels alone — no
//! graph needed — which makes a labeling a natural unit to *serve*: load
//! the `.plab` file once, keep the labels in memory, and answer queries
//! over the network. This crate is that serving layer:
//!
//! * [`store`] — the labeling partitioned across shards behind `Arc`s;
//!   immutable labels mean lock-free reads, and each shard keeps a small
//!   LRU of decoded fat-label bitmaps (the hubs — exactly the vertices a
//!   power-law workload hammers).
//! * [`protocol`] — re-export shim over [`pl_wire::protocol`], the
//!   length-prefixed binary wire format: versioned handshake, batched
//!   adjacency/distance queries, stats, orderly goodbye. All parsers
//!   are total on untrusted bytes.
//! * [`server`] — the shared hardened [`pl_wire::frontend`] TCP
//!   front-end (thread-per-connection, shedding, deadlines, graceful
//!   drain) over a [`server::StoreEngine`] answering batches
//!   shard-grouped.
//! * [`metrics`] — re-export shim over [`pl_wire::stats`]:
//!   [`pl_obs`]-backed counters and power-of-two latency histograms in
//!   a per-server [`pl_obs::MetricsRegistry`], snapshotted on demand
//!   (`STATS`) and at shutdown, and renderable as Prometheus text via
//!   [`ServerHandle::prometheus_text`].
//! * [`client`] — blocking client plus a multi-connection load
//!   generator with uniform and Zipf-skewed query mixes, and
//!   [`ResilientClient`]: deadlines, bounded backoff with jitter, and
//!   reconnect-and-replay over the [`ClientError`] retryable/fatal
//!   taxonomy.
//! * [`map`] / [`partition`] — the epoch-numbered, FNV-checksummed
//!   [`ClusterMap`] and the deterministic HRW [`Partitioner`]. They
//!   moved here from `pl-cluster` for protocol v6 live
//!   reconfiguration: a backend receiving a `MAP_SET` push validates
//!   the map and computes its own ownership locally
//!   (`pl_cluster::{map, partition}` re-export them unchanged).
//! * [`fault`] — re-export shim over [`pl_wire::fault`], the
//!   deterministic fault-injection harness ([`FaultPlan`]): seeded
//!   per-connection delays, drops, truncations, byte flips, and
//!   simulated store errors, for chaos testing the whole request path
//!   (see RELIABILITY.md).
//! * [`format`] — thin re-exports of the codec layer
//!   ([`pl_labeling::codec`]): the scheme tag, tagged container, and
//!   decoder dispatch now live with the labels, not the server.
//!
//! Everything is std-only: no async runtime, no serialization crates.

pub mod cache;
pub mod client;
pub mod fault;
pub mod format;
pub mod map;
pub mod metrics;
pub mod partition;
pub mod protocol;
pub mod server;
pub mod store;

pub use client::loadgen::{LoadReport, LoadgenConfig, Skew};
pub use client::{Client, ClientError, ResilientClient, RetryKind, RetryPolicy};
pub use fault::{FaultKind, FaultPlan};
pub use format::{SchemeTag, TaggedLabeling};
pub use map::{ClusterMap, MapError};
pub use metrics::Snapshot;
pub use partition::Partitioner;
pub use protocol::{Answer, HealthReport, Query, QueryKind};
pub use server::{serve, serve_with, ServeOptions, ServerHandle, StoreEngine};
pub use store::{BatchOutcome, LabelStore, QueryPath, StoreConfig, StoreError};
