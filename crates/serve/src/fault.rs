//! Re-export shim: the fault-injection harness moved to
//! [`pl_wire::fault`] (PR 6) so the shared front-end can inject faults
//! for both this crate's server and the `pl-cluster` router. The
//! `pl_serve::fault::…` paths keep compiling unchanged.

pub use pl_wire::fault::*;
