//! Prometheus text-format (version 0.0.4) rendering.
//!
//! Counters and gauges render directly. Histograms render
//! summary-style: `quantile="0.5|0.9|0.99|0.999"` series plus `_sum`
//! and `_count`, and companion `_min`/`_max` gauges — log₂ buckets make
//! quantile edges cheap and exact-to-a-factor-of-two, which is what a
//! dashboard of latency percentiles wants. Output is deterministic
//! (samples sorted by name then labels) so golden tests stay stable.

use crate::hist::HistogramSnapshot;
use crate::registry::{Labels, MetricValue, MetricsRegistry};

/// Quantiles every histogram exposes.
pub const QUANTILES: [(f64, &str); 4] =
    [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (0.999, "0.999")];

fn escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn label_block(labels: &Labels, extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Incrementally builds Prometheus text output, emitting each `# TYPE`
/// header once per family.
#[derive(Default)]
pub struct PromText {
    out: String,
    typed: Vec<(String, &'static str)>,
}

impl PromText {
    /// A fresh, empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn header(&mut self, name: &str, kind: &'static str) {
        if self.typed.iter().any(|(n, k)| n == name && *k == kind) {
            return;
        }
        self.typed.push((name.to_string(), kind));
        self.out.push_str(&format!("# TYPE {name} {kind}\n"));
    }

    /// Emits one counter sample.
    pub fn counter(&mut self, name: &str, labels: &Labels, v: u64) {
        self.header(name, "counter");
        self.out
            .push_str(&format!("{name}{} {v}\n", label_block(labels, None)));
    }

    /// Emits one gauge sample.
    pub fn gauge(&mut self, name: &str, labels: &Labels, v: i64) {
        self.header(name, "gauge");
        self.out
            .push_str(&format!("{name}{} {v}\n", label_block(labels, None)));
    }

    /// Emits one gauge sample with a float value (e.g. a ratio).
    pub fn gauge_f64(&mut self, name: &str, labels: &Labels, v: f64) {
        self.header(name, "gauge");
        self.out
            .push_str(&format!("{name}{} {v:.6}\n", label_block(labels, None)));
    }

    /// Emits one histogram as a summary plus `_min`/`_max` gauges.
    pub fn histogram(&mut self, name: &str, labels: &Labels, h: &HistogramSnapshot) {
        self.header(name, "summary");
        for (q, qs) in QUANTILES {
            self.out.push_str(&format!(
                "{name}{} {}\n",
                label_block(labels, Some(("quantile", qs))),
                h.quantile_ns(q)
            ));
        }
        let block = label_block(labels, None);
        self.out.push_str(&format!("{name}_sum{block} {}\n", h.sum));
        self.out
            .push_str(&format!("{name}_count{block} {}\n", h.count()));
        self.gauge(&format!("{name}_min"), labels, h.min as i64);
        self.gauge(&format!("{name}_max"), labels, h.max as i64);
    }

    /// Emits every sample from `reg`.
    pub fn registry(&mut self, reg: &MetricsRegistry) {
        for s in reg.samples() {
            match &s.value {
                MetricValue::Counter(v) => self.counter(&s.name, &s.labels, *v),
                MetricValue::Gauge(v) => self.gauge(&s.name, &s.labels, *v),
                MetricValue::Histogram(h) => self.histogram(&s.name, &s.labels, h),
            }
        }
    }

    /// Finishes and returns the accumulated text.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }
}

/// Renders a whole registry to Prometheus text.
#[must_use]
pub fn render(reg: &MetricsRegistry) -> String {
    let mut p = PromText::new();
    p.registry(reg);
    p.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_render() {
        let reg = MetricsRegistry::new();
        reg.counter("plab_requests_total").add(42);
        reg.counter_with("plab_shard_hits_total", &[("shard", "0")])
            .add(9);
        reg.counter_with("plab_shard_hits_total", &[("shard", "1")])
            .add(3);
        reg.gauge("plab_vertices").set(1000);
        let h = reg.histogram("plab_latency_ns");
        for _ in 0..99 {
            h.record(100);
        }
        h.record(1 << 20);

        let text = render(&reg);
        let expected = "\
# TYPE plab_latency_ns summary
plab_latency_ns{quantile=\"0.5\"} 128
plab_latency_ns{quantile=\"0.9\"} 128
plab_latency_ns{quantile=\"0.99\"} 128
plab_latency_ns{quantile=\"0.999\"} 2097152
plab_latency_ns_sum 1058476
plab_latency_ns_count 100
# TYPE plab_latency_ns_min gauge
plab_latency_ns_min 100
# TYPE plab_latency_ns_max gauge
plab_latency_ns_max 1048576
# TYPE plab_requests_total counter
plab_requests_total 42
# TYPE plab_shard_hits_total counter
plab_shard_hits_total{shard=\"0\"} 9
plab_shard_hits_total{shard=\"1\"} 3
# TYPE plab_vertices gauge
plab_vertices 1000
";
        assert_eq!(text, expected);
    }

    #[test]
    fn labels_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter_with("m", &[("k", "a\"b\\c\nd")]).inc();
        let text = render(&reg);
        assert!(text.contains("m{k=\"a\\\"b\\\\c\\nd\"} 1"));
    }

    #[test]
    fn ratio_gauges_render_as_floats() {
        let mut p = PromText::new();
        p.gauge_f64("hit_ratio", &vec![("shard".into(), "2".into())], 0.5);
        assert_eq!(
            p.finish(),
            "# TYPE hit_ratio gauge\nhit_ratio{shard=\"2\"} 0.500000\n"
        );
    }
}
