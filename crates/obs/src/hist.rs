//! Lock-free log₂-bucketed histograms.
//!
//! Bucket `i` covers `[2^i, 2^{i+1})` (values clamped below at 1), so
//! `record` is branch-free (`ilog2` + one `fetch_add`) and quantile
//! estimates are exact to within a factor of two — plenty for latency
//! percentiles over a load test or label-size distributions over an
//! encode. Alongside the buckets the histogram tracks the exact sum,
//! minimum, and maximum, all with `Relaxed` atomics: recording from any
//! number of threads is wait-free and never blocks the observed path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets; covers the full `u64` range.
pub const BUCKETS: usize = 64;

/// Exclusive upper edge of bucket `i` (saturating at `u64::MAX`).
#[must_use]
pub fn bucket_edge(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        u64::MAX
    } else {
        1u64 << (i + 1)
    }
}

/// A lock-free histogram with power-of-two buckets plus exact
/// sum/min/max side channels.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

fn bucket_of(v: u64) -> usize {
    (v.max(1).ilog2() as usize).min(BUCKETS - 1)
}

impl Histogram {
    /// A fresh, empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok(per-bucket stat counter; snapshots tolerate torn cross-field reads by design)
        self.sum.fetch_add(v, Ordering::Relaxed); // lint: relaxed-ok(stat accumulator; snapshots tolerate torn cross-field reads by design)
        self.min.fetch_min(v, Ordering::Relaxed); // lint: relaxed-ok(monotone min tracker; no other memory is published through it)
        self.max.fetch_max(v, Ordering::Relaxed); // lint: relaxed-ok(monotone max tracker; no other memory is published through it)
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded value; 0 when empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX && self.count() == 0 {
            0
        } else {
            m
        }
    }

    /// Largest recorded value; 0 when empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Upper edge (exclusive) of the bucket containing quantile
    /// `q ∈ [0, 1]`; 0 when the histogram is empty. Monotone in `q`.
    #[must_use]
    pub fn quantile_ns(&self, q: f64) -> u64 {
        self.snapshot().quantile_ns(q)
    }

    /// A point-in-time copy of the bucket counts and side channels.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
        }
    }
}

/// An owned copy of a [`Histogram`]'s state, safe to inspect at leisure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts.
    pub counts: [u64; BUCKETS],
    /// Sum of all recorded values.
    pub sum: u64,
    /// Smallest recorded value; 0 when empty.
    pub min: u64,
    /// Largest recorded value; 0 when empty.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Upper edge (exclusive) of the bucket containing quantile
    /// `q ∈ [0, 1]`; 0 when empty. Monotone in `q` by construction: the
    /// rank is non-decreasing in `q` and the cumulative scan walks the
    /// buckets in value order.
    #[must_use]
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_edge(i);
            }
        }
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_and_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile_ns(0.5), 0);
        for _ in 0..99 {
            h.record(100); // bucket 6: [64, 128)
        }
        h.record(1 << 20);
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_ns(0.5), 128);
        assert_eq!(h.quantile_ns(0.98), 128);
        assert_eq!(h.quantile_ns(1.0), 1 << 21);
        assert_eq!(h.min(), 100);
        assert_eq!(h.max(), 1 << 20);
        assert_eq!(h.sum(), 99 * 100 + (1 << 20));
    }

    #[test]
    fn extremes_do_not_panic() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.quantile_ns(1.0) > 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn empty_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.snapshot().quantile_ns(0.99), 0);
    }

    #[test]
    fn edges_saturate() {
        assert_eq!(bucket_edge(0), 2);
        assert_eq!(bucket_edge(62), 1u64 << 63);
        assert_eq!(bucket_edge(63), u64::MAX);
    }
}
