//! Span-based structured tracing over lock-free per-thread rings.
//!
//! Each thread owns a fixed-capacity ring of trace events stored as
//! plain `AtomicU64` words, so the recording path is a handful of
//! relaxed stores plus one release store of the head — no locks, no
//! allocation, no `unsafe`. A global registry keeps an `Arc` to every
//! ring ever created (rings outlive their threads so events from
//! finished workers remain drainable). [`drain`] collects the undrained
//! window of every ring into owned [`TraceEvent`]s; [`drain_jsonl`]
//! renders them as one JSON object per line. [`snapshot`] is the
//! non-consuming variant: it copies the same window without advancing
//! the reader watermark, so two concurrent observers both see the full
//! stream instead of splitting it.
//!
//! # Distributed context
//!
//! Every event carries a [`TraceContext`]: a 128-bit trace id plus the
//! span id of its parent. The context lives in a thread-local cell —
//! [`adopt`] installs a remote parent (restoring the previous context
//! when the returned guard drops), spans allocate their own id on entry
//! and re-point the cell at themselves, and [`current`] exports the
//! live context for propagation to a downstream process. Events with an
//! all-zero trace id are local/untraced; they still link to their
//! in-process parent span.
//!
//! Span and trace ids come from a seeded splitmix64 sequence: unique
//! across threads (a shared atomic counter feeds a bijective mixer) and
//! deterministic under [`seed_ids`] for tests. The default seed mixes
//! wall-clock nanoseconds with the process id so ids from different
//! processes in one cluster do not collide in a merged stream.
//!
//! Consistency model: the ring is single-producer (its owning thread)
//! and the drain is best-effort. If a producer laps the reader between
//! the reader's head load and its slot reads, the affected events may
//! be torn (mixed words from two events). With `CAP` = 4096 events per
//! thread and drains driven by a human or a test, this does not happen
//! in practice; the trade is deliberate — correctness of the *observed*
//! program is never affected.
//!
//! Tracing is off by default. [`set_tracing`] flips a global flag that
//! the [`span!`](crate::span)/[`event!`](crate::event) macros check
//! first, so a disabled call site costs one relaxed atomic load.
//!
//! Span names are interned once per call site (the macros cache the id
//! in a `OnceLock`), so steady-state recording never touches the intern
//! table's mutex.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Events retained per thread before the ring wraps.
pub const CAP: usize = 4096;

const WORDS: usize = 9;

static TRACING: AtomicBool = AtomicBool::new(false);

/// Enables or disables trace recording process-wide.
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// Whether trace recording is currently enabled.
#[must_use]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process's trace epoch (first call wins).
#[must_use]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Id generation
// ---------------------------------------------------------------------------

/// Standard splitmix64 finalizer: a bijection on `u64`, so distinct
/// counter values always map to distinct ids.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `(seed, counter)`; ids are `splitmix64(seed + counter * odd)`.
fn id_state() -> &'static (AtomicU64, AtomicU64) {
    static STATE: OnceLock<(AtomicU64, AtomicU64)> = OnceLock::new();
    STATE.get_or_init(|| {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let seed = splitmix64(t ^ (u64::from(std::process::id()) << 32));
        (AtomicU64::new(seed), AtomicU64::new(0))
    })
}

/// Re-seeds the id generator and resets its counter, making subsequent
/// [`next_id`]/[`TraceContext::root`] sequences deterministic. Test-only
/// affordance; production processes keep the entropy-derived default.
pub fn seed_ids(seed: u64) {
    let s = id_state();
    s.0.store(splitmix64(seed), Ordering::Relaxed);
    s.1.store(0, Ordering::Relaxed);
}

/// Returns a fresh non-zero id, unique across threads: the counter is a
/// shared atomic and splitmix64 is a bijection, so two draws can never
/// collide (zero is remapped, costing one theoretical duplicate of 1).
#[must_use]
pub fn next_id() -> u64 {
    let s = id_state();
    let c = s.1.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok(id counter needs uniqueness only, not ordering; fetch_add is atomic under any Ordering)
                                                 // Odd multiplier keeps `seed + c*odd` a bijection of the counter.
    let id = splitmix64(
        s.0.load(Ordering::Relaxed)
            .wrapping_add(c.wrapping_mul(0x2545_F491_4F6C_DD1D)),
    );
    if id == 0 {
        1
    } else {
        id
    }
}

// ---------------------------------------------------------------------------
// Trace context
// ---------------------------------------------------------------------------

/// A propagatable trace context: 128-bit trace id + parent span id.
///
/// Created at the edge with [`TraceContext::root`], shipped across the
/// wire (protocol v5 `TRACE_CTX`), and installed in a worker thread via
/// [`adopt`]. `parent_span` is the id of the span that *sent* the
/// context; spans opened while it is adopted become its children.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// High 64 bits of the trace id.
    pub trace_hi: u64,
    /// Low 64 bits of the trace id.
    pub trace_lo: u64,
    /// Span id of the remote parent (0 = root).
    pub parent_span: u64,
}

impl TraceContext {
    /// Starts a new trace with a fresh 128-bit id and no parent.
    #[must_use]
    pub fn root() -> Self {
        Self {
            trace_hi: next_id(),
            trace_lo: next_id(),
            parent_span: 0,
        }
    }

    /// Whether the trace id is non-zero (zero means untraced).
    #[must_use]
    pub fn is_set(&self) -> bool {
        self.trace_hi != 0 || self.trace_lo != 0
    }

    /// The trace id as 32 lowercase hex digits (the JSONL `trace` key).
    #[must_use]
    pub fn trace_hex(&self) -> String {
        format!("{:016x}{:016x}", self.trace_hi, self.trace_lo)
    }

    /// Parses a 32-hex-digit trace id as printed by [`Self::trace_hex`].
    #[must_use]
    pub fn parse_trace_hex(s: &str) -> Option<(u64, u64)> {
        let s = s.trim();
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some((hi, lo))
    }
}

thread_local! {
    /// `(trace_hi, trace_lo, current span id)` for the running thread.
    static CURRENT: Cell<(u64, u64, u64)> = const { Cell::new((0, 0, 0)) };
}

fn current_raw() -> (u64, u64, u64) {
    CURRENT.try_with(Cell::get).unwrap_or((0, 0, 0))
}

fn set_current(v: (u64, u64, u64)) {
    let _ = CURRENT.try_with(|c| c.set(v));
}

/// Restores the previously-installed context on drop.
#[must_use = "the previous context is restored when this guard drops"]
pub struct ContextGuard {
    prev: (u64, u64, u64),
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        set_current(self.prev);
    }
}

/// Installs `ctx` as the thread's current trace context. Spans and
/// events recorded while the guard lives carry its trace id and parent
/// to `ctx.parent_span`. Nests: dropping the guard restores whatever
/// was current before.
pub fn adopt(ctx: TraceContext) -> ContextGuard {
    let prev = current_raw();
    set_current((ctx.trace_hi, ctx.trace_lo, ctx.parent_span));
    ContextGuard { prev }
}

/// Exports the live context for downstream propagation: the current
/// trace id with the innermost open span as the parent. `None` when the
/// thread has no adopted trace (local spans are not worth shipping).
#[must_use]
pub fn current() -> Option<TraceContext> {
    let (hi, lo, span) = current_raw();
    (hi != 0 || lo != 0).then_some(TraceContext {
        trace_hi: hi,
        trace_lo: lo,
        parent_span: span,
    })
}

// ---------------------------------------------------------------------------
// Rings
// ---------------------------------------------------------------------------

fn names() -> &'static Mutex<Vec<&'static str>> {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Interns `name` and returns its stable id. Idempotent; intended to be
/// called once per call site (the macros cache the result).
#[must_use]
pub fn intern(name: &'static str) -> u32 {
    let mut tbl = names().lock().unwrap();
    if let Some(i) = tbl.iter().position(|&n| n == name) {
        return i as u32;
    }
    tbl.push(name);
    (tbl.len() - 1) as u32
}

fn name_of(id: u32) -> &'static str {
    names()
        .lock()
        .unwrap()
        .get(id as usize)
        .copied()
        .unwrap_or("?")
}

struct Ring {
    slots: Box<[AtomicU64]>,
    /// Total events ever written (monotone; slot = head % CAP).
    head: AtomicU64,
    /// Total events already drained (reader-owned watermark).
    drained: AtomicU64,
    tid: u32,
}

impl Ring {
    fn register() -> Arc<Ring> {
        static NEXT_TID: AtomicU32 = AtomicU32::new(0);
        let ring = Arc::new(Ring {
            slots: (0..CAP * WORDS).map(|_| AtomicU64::new(0)).collect(),
            head: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed), // lint: relaxed-ok(tid allocation needs uniqueness only; the ring itself is published via the rings() mutex)
        });
        rings().lock().unwrap().push(ring.clone());
        ring
    }

    #[allow(clippy::too_many_arguments)]
    fn push(&self, name_id: u32, start_ns: u64, dur_ns: u64, a: u64, b: u64, ctx: [u64; 4]) {
        let seq = self.head.load(Ordering::Relaxed);
        let base = (seq as usize % CAP) * WORDS;
        let meta = (u64::from(name_id) << 32) | u64::from(self.tid);
        let words = [meta, start_ns, dur_ns, a, b, ctx[0], ctx[1], ctx[2], ctx[3]];
        for (off, w) in words.into_iter().enumerate() {
            self.slots[base + off].store(w, Ordering::Relaxed);
        }
        self.head.store(seq + 1, Ordering::Release);
    }

    fn read_window(&self, out: &mut Vec<TraceEvent>) -> u64 {
        let head = self.head.load(Ordering::Acquire);
        let start = self
            .drained
            .load(Ordering::Relaxed)
            .max(head.saturating_sub(CAP as u64));
        for seq in start..head {
            let base = (seq as usize % CAP) * WORDS;
            let w: Vec<u64> = (0..WORDS)
                .map(|off| self.slots[base + off].load(Ordering::Relaxed))
                .collect();
            out.push(TraceEvent {
                name: name_of((w[0] >> 32) as u32),
                tid: w[0] as u32,
                start_ns: w[1],
                dur_ns: w[2],
                a: w[3],
                b: w[4],
                trace_hi: w[5],
                trace_lo: w[6],
                span: w[7],
                parent: w[8],
            });
        }
        head
    }

    fn drain_into(&self, out: &mut Vec<TraceEvent>) {
        let head = self.read_window(out);
        self.drained.store(head, Ordering::Release);
    }

    /// Non-consuming read: same window as [`Self::drain_into`], but the
    /// watermark stays put so a later drain (or another snapshot) still
    /// sees these events.
    fn snapshot_into(&self, out: &mut Vec<TraceEvent>) {
        let _ = self.read_window(out);
    }
}

fn rings() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static RING: Arc<Ring> = Ring::register();
}

/// Records with an explicit context word block; the public recorders
/// derive it from the thread's [`CURRENT`] cell.
fn record_ctx(name_id: u32, start_ns: u64, dur_ns: u64, a: u64, b: u64, ctx: [u64; 4]) {
    // try_with: silently drop events during TLS teardown.
    let _ = RING.try_with(|r| r.push(name_id, start_ns, dur_ns, a, b, ctx));
}

fn record(name_id: u32, start_ns: u64, dur_ns: u64, a: u64, b: u64) {
    let (hi, lo, parent) = current_raw();
    record_ctx(name_id, start_ns, dur_ns, a, b, [hi, lo, next_id(), parent]);
}

/// One drained trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Interned span/event name.
    pub name: &'static str,
    /// Recording thread's trace id (dense, assigned per thread).
    pub tid: u32,
    /// Nanoseconds since the trace epoch at span entry.
    pub start_ns: u64,
    /// Span duration in nanoseconds (0 for instant events).
    pub dur_ns: u64,
    /// First free-form payload word (span-specific meaning).
    pub a: u64,
    /// Second free-form payload word.
    pub b: u64,
    /// High 64 bits of the propagated trace id (0 = untraced).
    pub trace_hi: u64,
    /// Low 64 bits of the propagated trace id.
    pub trace_lo: u64,
    /// This event's own span id.
    pub span: u64,
    /// Parent span id (0 = root / no parent).
    pub parent: u64,
}

impl TraceEvent {
    /// Whether the event carries a non-zero propagated trace id.
    #[must_use]
    pub fn is_traced(&self) -> bool {
        self.trace_hi != 0 || self.trace_lo != 0
    }

    /// The trace id as 32 hex digits (empty string when untraced).
    #[must_use]
    pub fn trace_hex(&self) -> String {
        if self.is_traced() {
            format!("{:016x}{:016x}", self.trace_hi, self.trace_lo)
        } else {
            String::new()
        }
    }

    /// Renders the event as one JSON object (no trailing newline).
    /// Untraced events omit the `trace` key; `span`/`parent` are always
    /// present so local parent links survive.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"name\":\"{}\",\"tid\":{},\"start_ns\":{},\"dur_ns\":{},\"a\":{},\"b\":{}",
            self.name, self.tid, self.start_ns, self.dur_ns, self.a, self.b
        );
        if self.is_traced() {
            s.push_str(&format!(
                ",\"trace\":\"{:016x}{:016x}\"",
                self.trace_hi, self.trace_lo
            ));
        }
        s.push_str(&format!(
            ",\"span\":{},\"parent\":{}}}",
            self.span, self.parent
        ));
        s
    }
}

/// Collects every undrained event from every thread's ring, ordered by
/// start time. Draining consumes: a second call returns only events
/// recorded in between. For a non-consuming read use [`snapshot`].
#[must_use]
pub fn drain() -> Vec<TraceEvent> {
    let rings = rings().lock().unwrap();
    let mut out = Vec::new();
    for ring in rings.iter() {
        ring.drain_into(&mut out);
    }
    out.sort_by_key(|e| e.start_ns);
    out
}

/// Non-consuming variant of [`drain`]: copies the undrained window of
/// every ring without advancing the reader watermark, so concurrent
/// observers each see the full stream and a later [`drain`] still
/// returns the same events.
#[must_use]
pub fn snapshot() -> Vec<TraceEvent> {
    let rings = rings().lock().unwrap();
    let mut out = Vec::new();
    for ring in rings.iter() {
        ring.snapshot_into(&mut out);
    }
    out.sort_by_key(|e| e.start_ns);
    out
}

/// [`drain`]s and renders one JSON object per line (JSONL).
#[must_use]
pub fn drain_jsonl() -> String {
    to_jsonl(&drain())
}

/// [`snapshot`]s and renders one JSON object per line (JSONL).
#[must_use]
pub fn snapshot_jsonl() -> String {
    to_jsonl(&snapshot())
}

fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut s = String::new();
    for e in events {
        s.push_str(&e.to_json());
        s.push('\n');
    }
    s
}

/// RAII guard recording a span on drop. Created by the
/// [`span!`](crate::span) macro; hold it for the span's extent.
///
/// On entry the span allocates its own id and installs it as the
/// thread's current span (children parent to it); on drop it records
/// the event and restores the previous current span.
#[must_use = "a span guard records on drop; bind it with `let _g = ...`"]
pub struct SpanGuard {
    name_id: u32,
    start_ns: u64,
    a: u64,
    b: u64,
    trace: (u64, u64),
    span_id: u64,
    parent: u64,
}

impl SpanGuard {
    /// This span's id — what a downstream child will see as its parent.
    #[must_use]
    pub fn span_id(&self) -> u64 {
        self.span_id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let dur = now_ns().saturating_sub(self.start_ns);
        record_ctx(
            self.name_id,
            self.start_ns,
            dur,
            self.a,
            self.b,
            [self.trace.0, self.trace.1, self.span_id, self.parent],
        );
        set_current((self.trace.0, self.trace.1, self.parent));
    }
}

/// Opens a span by interned id; `None` when tracing is disabled.
/// Prefer the [`span!`](crate::span) macro, which interns and caches.
pub fn enter_id(name_id: u32, a: u64, b: u64) -> Option<SpanGuard> {
    if !tracing_enabled() {
        return None;
    }
    let (hi, lo, parent) = current_raw();
    let span_id = next_id();
    set_current((hi, lo, span_id));
    Some(SpanGuard {
        name_id,
        start_ns: now_ns(),
        a,
        b,
        trace: (hi, lo),
        span_id,
        parent,
    })
}

/// Records an instant event by interned id when tracing is enabled.
/// Prefer the [`event!`](crate::event) macro.
pub fn event_id(name_id: u32, a: u64, b: u64) {
    if tracing_enabled() {
        record(name_id, now_ns(), 0, a, b);
    }
}

/// Records a completed span after the fact (e.g. a timed phase or a
/// slow-query report where the duration is already known). Interns
/// `name` on every call — use only off the hot path. The event inherits
/// the thread's current trace context, so slow-query reports recorded
/// inside an adopted span automatically carry the trace id as an
/// exemplar.
pub fn record_complete(name: &'static str, start_ns: u64, dur_ns: u64, a: u64, b: u64) {
    if tracing_enabled() {
        record(intern(name), start_ns, dur_ns, a, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // All trace assertions live in one test: `drain` consumes the
    // shared global rings, so concurrent drain-calling tests would
    // steal each other's events.
    #[test]
    fn record_and_drain() {
        set_tracing(true);
        let id = intern("test.span");
        {
            let _g = enter_id(id, 7, 8);
        }
        event_id(intern("test.event"), 1, 2);
        record_complete("test.complete", 10, 20, 3, 4);
        set_tracing(false);
        event_id(id, 9, 9); // disabled: must not record

        // Snapshot does not consume: two observers both see the full
        // window, and the later drain still returns everything.
        let snap_a: Vec<_> = snapshot()
            .into_iter()
            .filter(|e| e.name.starts_with("test."))
            .collect();
        let snap_b: Vec<_> = snapshot()
            .into_iter()
            .filter(|e| e.name.starts_with("test."))
            .collect();
        assert_eq!(snap_a.len(), 3, "snapshot consumed events: {snap_a:?}");
        assert_eq!(snap_a, snap_b, "two snapshots must see the same stream");

        let events = drain();
        let mine: Vec<_> = events
            .iter()
            .filter(|e| e.name.starts_with("test."))
            .collect();
        assert_eq!(mine.len(), 3, "events: {events:?}");
        let span = mine.iter().find(|e| e.name == "test.span").unwrap();
        assert_eq!((span.a, span.b), (7, 8));
        assert_ne!(span.span, 0, "spans allocate their own id");
        assert!(!span.is_traced(), "no adopted context: untraced");
        assert!(!span.to_json().contains("\"trace\""));
        let comp = mine.iter().find(|e| e.name == "test.complete").unwrap();
        assert_eq!((comp.start_ns, comp.dur_ns), (10, 20));
        assert!(comp.to_json().contains("\"name\":\"test.complete\""));

        // Drained: a second drain (and snapshot) sees none of ours.
        assert!(!drain().iter().any(|e| e.name.starts_with("test.")));
        assert!(!snapshot().iter().any(|e| e.name.starts_with("test.")));

        // Adopted context: spans carry the trace id and parent-link to
        // the remote parent; nested spans parent to the outer span; the
        // context pops with the guard.
        set_tracing(true);
        let ctx = TraceContext {
            trace_hi: 0xAAAA,
            trace_lo: 0xBBBB,
            parent_span: 77,
        };
        let (outer_id, inner_id);
        {
            let _adopted = adopt(ctx);
            let outer = enter_id(intern("test.ctx.outer"), 0, 0).unwrap();
            outer_id = outer.span_id();
            let fwd = current().expect("context is live inside the span");
            assert_eq!((fwd.trace_hi, fwd.trace_lo), (0xAAAA, 0xBBBB));
            assert_eq!(fwd.parent_span, outer_id, "children parent to the span");
            {
                let inner = enter_id(intern("test.ctx.inner"), 0, 0).unwrap();
                inner_id = inner.span_id();
            }
            event_id(intern("test.ctx.event"), 0, 0);
        }
        assert!(current().is_none(), "guard drop restores the empty context");
        set_tracing(false);
        let ctx_events = drain();
        let outer_ev = ctx_events
            .iter()
            .find(|e| e.name == "test.ctx.outer")
            .unwrap();
        assert_eq!((outer_ev.trace_hi, outer_ev.trace_lo), (0xAAAA, 0xBBBB));
        assert_eq!((outer_ev.span, outer_ev.parent), (outer_id, 77));
        assert!(outer_ev
            .to_json()
            .contains("\"trace\":\"000000000000aaaa000000000000bbbb\""));
        let inner_ev = ctx_events
            .iter()
            .find(|e| e.name == "test.ctx.inner")
            .unwrap();
        assert_eq!((inner_ev.span, inner_ev.parent), (inner_id, outer_id));
        let tail_ev = ctx_events
            .iter()
            .find(|e| e.name == "test.ctx.event")
            .unwrap();
        assert_eq!(
            tail_ev.parent, outer_id,
            "event after inner pops back to outer"
        );

        // Wrap the ring: only the newest CAP survive.
        set_tracing(true);
        let wid = intern("test.wrap");
        for i in 0..(CAP as u64 + 50) {
            record(wid, i, 0, i, 0);
        }
        set_tracing(false);
        let wrapped: Vec<_> = drain()
            .into_iter()
            .filter(|e| e.name == "test.wrap")
            .collect();
        assert_eq!(wrapped.len(), CAP);
        assert_eq!(wrapped.last().unwrap().a, CAP as u64 + 49);
    }

    #[test]
    fn interning_is_idempotent() {
        let a = intern("test.intern.a");
        let b = intern("test.intern.b");
        assert_ne!(a, b);
        assert_eq!(intern("test.intern.a"), a);
        assert_eq!(name_of(a), "test.intern.a");
    }

    #[test]
    fn trace_hex_round_trips() {
        let ctx = TraceContext {
            trace_hi: 0x0123_4567_89AB_CDEF,
            trace_lo: 0xFEDC_BA98_7654_3210,
            parent_span: 5,
        };
        let hex = ctx.trace_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(
            TraceContext::parse_trace_hex(&hex),
            Some((ctx.trace_hi, ctx.trace_lo))
        );
        assert_eq!(TraceContext::parse_trace_hex("xyz"), None);
        assert_eq!(TraceContext::parse_trace_hex(""), None);
    }
}
