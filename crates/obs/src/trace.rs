//! Span-based structured tracing over lock-free per-thread rings.
//!
//! Each thread owns a fixed-capacity ring of trace events stored as
//! plain `AtomicU64` words, so the recording path is a handful of
//! relaxed stores plus one release store of the head — no locks, no
//! allocation, no `unsafe`. A global registry keeps an `Arc` to every
//! ring ever created (rings outlive their threads so events from
//! finished workers remain drainable). [`drain`] collects the undrained
//! window of every ring into owned [`TraceEvent`]s; [`drain_jsonl`]
//! renders them as one JSON object per line.
//!
//! Consistency model: the ring is single-producer (its owning thread)
//! and the drain is best-effort. If a producer laps the reader between
//! the reader's head load and its slot reads, the affected events may
//! be torn (mixed words from two events). With `CAP` = 4096 events per
//! thread and drains driven by a human or a test, this does not happen
//! in practice; the trade is deliberate — correctness of the *observed*
//! program is never affected.
//!
//! Tracing is off by default. [`set_tracing`] flips a global flag that
//! the [`span!`](crate::span)/[`event!`](crate::event) macros check
//! first, so a disabled call site costs one relaxed atomic load.
//!
//! Span names are interned once per call site (the macros cache the id
//! in a `OnceLock`), so steady-state recording never touches the intern
//! table's mutex.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Events retained per thread before the ring wraps.
pub const CAP: usize = 4096;

const WORDS: usize = 5;

static TRACING: AtomicBool = AtomicBool::new(false);

/// Enables or disables trace recording process-wide.
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// Whether trace recording is currently enabled.
#[must_use]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process's trace epoch (first call wins).
#[must_use]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn names() -> &'static Mutex<Vec<&'static str>> {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Interns `name` and returns its stable id. Idempotent; intended to be
/// called once per call site (the macros cache the result).
#[must_use]
pub fn intern(name: &'static str) -> u32 {
    let mut tbl = names().lock().unwrap();
    if let Some(i) = tbl.iter().position(|&n| n == name) {
        return i as u32;
    }
    tbl.push(name);
    (tbl.len() - 1) as u32
}

fn name_of(id: u32) -> &'static str {
    names()
        .lock()
        .unwrap()
        .get(id as usize)
        .copied()
        .unwrap_or("?")
}

struct Ring {
    slots: Box<[AtomicU64]>,
    /// Total events ever written (monotone; slot = head % CAP).
    head: AtomicU64,
    /// Total events already drained (reader-owned watermark).
    drained: AtomicU64,
    tid: u32,
}

impl Ring {
    fn register() -> Arc<Ring> {
        static NEXT_TID: AtomicU32 = AtomicU32::new(0);
        let ring = Arc::new(Ring {
            slots: (0..CAP * WORDS).map(|_| AtomicU64::new(0)).collect(),
            head: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        });
        rings().lock().unwrap().push(ring.clone());
        ring
    }

    fn push(&self, name_id: u32, start_ns: u64, dur_ns: u64, a: u64, b: u64) {
        let seq = self.head.load(Ordering::Relaxed);
        let base = (seq as usize % CAP) * WORDS;
        let meta = (u64::from(name_id) << 32) | u64::from(self.tid);
        for (off, w) in [meta, start_ns, dur_ns, a, b].into_iter().enumerate() {
            self.slots[base + off].store(w, Ordering::Relaxed);
        }
        self.head.store(seq + 1, Ordering::Release);
    }

    fn drain_into(&self, out: &mut Vec<TraceEvent>) {
        let head = self.head.load(Ordering::Acquire);
        let start = self
            .drained
            .load(Ordering::Relaxed)
            .max(head.saturating_sub(CAP as u64));
        for seq in start..head {
            let base = (seq as usize % CAP) * WORDS;
            let w: Vec<u64> = (0..WORDS)
                .map(|off| self.slots[base + off].load(Ordering::Relaxed))
                .collect();
            out.push(TraceEvent {
                name: name_of((w[0] >> 32) as u32),
                tid: w[0] as u32,
                start_ns: w[1],
                dur_ns: w[2],
                a: w[3],
                b: w[4],
            });
        }
        self.drained.store(head, Ordering::Release);
    }
}

fn rings() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static RING: Arc<Ring> = Ring::register();
}

fn record(name_id: u32, start_ns: u64, dur_ns: u64, a: u64, b: u64) {
    // try_with: silently drop events during TLS teardown.
    let _ = RING.try_with(|r| r.push(name_id, start_ns, dur_ns, a, b));
}

/// One drained trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Interned span/event name.
    pub name: &'static str,
    /// Recording thread's trace id (dense, assigned per thread).
    pub tid: u32,
    /// Nanoseconds since the trace epoch at span entry.
    pub start_ns: u64,
    /// Span duration in nanoseconds (0 for instant events).
    pub dur_ns: u64,
    /// First free-form payload word (span-specific meaning).
    pub a: u64,
    /// Second free-form payload word.
    pub b: u64,
}

impl TraceEvent {
    /// Renders the event as one JSON object (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"tid\":{},\"start_ns\":{},\"dur_ns\":{},\"a\":{},\"b\":{}}}",
            self.name, self.tid, self.start_ns, self.dur_ns, self.a, self.b
        )
    }
}

/// Collects every undrained event from every thread's ring, ordered by
/// start time. Draining consumes: a second call returns only events
/// recorded in between.
#[must_use]
pub fn drain() -> Vec<TraceEvent> {
    let rings = rings().lock().unwrap();
    let mut out = Vec::new();
    for ring in rings.iter() {
        ring.drain_into(&mut out);
    }
    out.sort_by_key(|e| e.start_ns);
    out
}

/// [`drain`]s and renders one JSON object per line (JSONL).
#[must_use]
pub fn drain_jsonl() -> String {
    let mut s = String::new();
    for e in drain() {
        s.push_str(&e.to_json());
        s.push('\n');
    }
    s
}

/// RAII guard recording a span on drop. Created by the
/// [`span!`](crate::span) macro; hold it for the span's extent.
#[must_use = "a span guard records on drop; bind it with `let _g = ...`"]
pub struct SpanGuard {
    name_id: u32,
    start_ns: u64,
    a: u64,
    b: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let dur = now_ns().saturating_sub(self.start_ns);
        record(self.name_id, self.start_ns, dur, self.a, self.b);
    }
}

/// Opens a span by interned id; `None` when tracing is disabled.
/// Prefer the [`span!`](crate::span) macro, which interns and caches.
pub fn enter_id(name_id: u32, a: u64, b: u64) -> Option<SpanGuard> {
    if !tracing_enabled() {
        return None;
    }
    Some(SpanGuard {
        name_id,
        start_ns: now_ns(),
        a,
        b,
    })
}

/// Records an instant event by interned id when tracing is enabled.
/// Prefer the [`event!`](crate::event) macro.
pub fn event_id(name_id: u32, a: u64, b: u64) {
    if tracing_enabled() {
        record(name_id, now_ns(), 0, a, b);
    }
}

/// Records a completed span after the fact (e.g. a timed phase or a
/// slow-query report where the duration is already known). Interns
/// `name` on every call — use only off the hot path.
pub fn record_complete(name: &'static str, start_ns: u64, dur_ns: u64, a: u64, b: u64) {
    if tracing_enabled() {
        record(intern(name), start_ns, dur_ns, a, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // All trace assertions live in one test: `drain` consumes the
    // shared global rings, so concurrent drain-calling tests would
    // steal each other's events.
    #[test]
    fn record_and_drain() {
        set_tracing(true);
        let id = intern("test.span");
        {
            let _g = enter_id(id, 7, 8);
        }
        event_id(intern("test.event"), 1, 2);
        record_complete("test.complete", 10, 20, 3, 4);
        set_tracing(false);
        event_id(id, 9, 9); // disabled: must not record

        let events = drain();
        let mine: Vec<_> = events
            .iter()
            .filter(|e| e.name.starts_with("test."))
            .collect();
        assert_eq!(mine.len(), 3, "events: {events:?}");
        let span = mine.iter().find(|e| e.name == "test.span").unwrap();
        assert_eq!((span.a, span.b), (7, 8));
        let comp = mine.iter().find(|e| e.name == "test.complete").unwrap();
        assert_eq!((comp.start_ns, comp.dur_ns), (10, 20));
        assert!(comp.to_json().contains("\"name\":\"test.complete\""));

        // Drained: a second drain sees none of ours.
        assert!(!drain().iter().any(|e| e.name.starts_with("test.")));

        // Wrap the ring: only the newest CAP survive.
        set_tracing(true);
        let wid = intern("test.wrap");
        for i in 0..(CAP as u64 + 50) {
            record(wid, i, 0, i, 0);
        }
        set_tracing(false);
        let wrapped: Vec<_> = drain()
            .into_iter()
            .filter(|e| e.name == "test.wrap")
            .collect();
        assert_eq!(wrapped.len(), CAP);
        assert_eq!(wrapped.last().unwrap().a, CAP as u64 + 49);
    }

    #[test]
    fn interning_is_idempotent() {
        let a = intern("test.intern.a");
        let b = intern("test.intern.b");
        assert_ne!(a, b);
        assert_eq!(intern("test.intern.a"), a);
        assert_eq!(name_of(a), "test.intern.a");
    }
}
