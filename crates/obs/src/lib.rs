//! # pl-obs — dependency-free observability for the pl workspace
//!
//! The paper's central empirical claims — Theorem 4's labels "use
//! little space in practice", the theoretical threshold `τ(n)` sits
//! close to the optimum — are only honest if label sizes, encode-phase
//! costs, and serve latencies are continuously observable. This crate
//! provides the three legs:
//!
//! - [`registry`] — a [`MetricsRegistry`] of named atomic counters,
//!   gauges, and log₂-bucketed [`Histogram`]s, with labeled families
//!   (per-shard, per-scheme, per-phase). Instruments are `Arc`s updated
//!   with relaxed atomics; the registry lock is touched only at
//!   registration and scrape.
//! - [`trace`] — span-based structured tracing. [`span!`] opens an RAII
//!   guard; events land in lock-free per-thread ring buffers and drain
//!   as JSONL (`plab trace`, the `TRACE_DUMP` wire opcode, or
//!   [`trace::drain_jsonl`]; [`trace::snapshot_jsonl`] is the
//!   non-consuming variant). Every event carries a propagatable
//!   [`TraceContext`] (128-bit trace id + parent span id) adopted from
//!   a remote caller via [`trace::adopt`]. Off by default; a disabled
//!   call site costs one relaxed load.
//! - [`prom`] + [`http`] — Prometheus text-format rendering and a
//!   hand-rolled HTTP/1.1 scrape endpoint ([`http::expose`]) used as a
//!   sidecar by `plab serve --prom`.
//!
//! Everything is `std`-only: the build environment has no crates.io
//! registry, so this crate is hand-rolled in the same spirit as
//! `crates/compat`.

#![forbid(unsafe_code)]

pub mod hist;
pub mod http;
pub mod prom;
pub mod registry;
pub mod trace;

pub use hist::{Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{global, Counter, Gauge, MetricSample, MetricValue, MetricsRegistry};
pub use trace::{set_tracing, tracing_enabled, SpanGuard, TraceContext, TraceEvent};

/// Opens a trace span; returns `Option<SpanGuard>` recording on drop.
///
/// The name must be a string literal; it is interned once per call site
/// (cached in a `OnceLock`), so the enabled-path cost is a clock read
/// and five relaxed stores, and the disabled-path cost is one relaxed
/// load. Optional `a`/`b` expressions attach two `u64` payload words.
///
/// ```
/// pl_obs::set_tracing(true);
/// {
///     let _g = pl_obs::span!("encode.fat_pass", 42);
///     // ... work measured by the span ...
/// }
/// pl_obs::set_tracing(false);
/// assert!(pl_obs::trace::drain().iter().any(|e| e.name == "encode.fat_pass"));
/// ```
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::span!($name, 0u64, 0u64)
    };
    ($name:literal, $a:expr) => {
        $crate::span!($name, $a, 0u64)
    };
    ($name:literal, $a:expr, $b:expr) => {{
        static __PL_OBS_ID: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
        $crate::trace::enter_id(
            *__PL_OBS_ID.get_or_init(|| $crate::trace::intern($name)),
            ($a) as u64,
            ($b) as u64,
        )
    }};
}

/// Records an instant trace event (duration 0). Same naming and
/// payload rules as [`span!`].
#[macro_export]
macro_rules! event {
    ($name:literal) => {
        $crate::event!($name, 0u64, 0u64)
    };
    ($name:literal, $a:expr) => {
        $crate::event!($name, $a, 0u64)
    };
    ($name:literal, $a:expr, $b:expr) => {{
        static __PL_OBS_ID: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
        $crate::trace::event_id(
            *__PL_OBS_ID.get_or_init(|| $crate::trace::intern($name)),
            ($a) as u64,
            ($b) as u64,
        )
    }};
}
