//! A minimal HTTP/1.1 exposition endpoint for Prometheus scrapes.
//!
//! Hand-rolled on `std::net` (the workspace is offline — no hyper, no
//! tokio): one listener thread, blocking per-request handling with
//! short read timeouts, `Connection: close` on every response. This is
//! a scrape sidecar, not a web server; it assumes a cooperative client
//! (Prometheus, curl, or the `ci.sh` `/dev/tcp` fallback) and caps the
//! request head it will buffer.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest request head (request line + headers) we will buffer.
const MAX_HEAD: usize = 8 * 1024;

/// Renders the scrape body on demand.
pub type RenderFn = Arc<dyn Fn() -> String + Send + Sync>;

/// Handle to a running exposition endpoint; stops it on [`shutdown`]
/// (or drop of the last clone after `shutdown`).
///
/// [`shutdown`]: ExpositionHandle::shutdown
pub struct ExpositionHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl ExpositionHandle {
    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread and waits for it to exit.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for ExpositionHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Starts serving `GET /metrics` (and `/`) with the output of `render`
/// on `addr`. Any other path gets a 404; any other method a 405.
pub fn expose<A: ToSocketAddrs>(addr: A, render: RenderFn) -> std::io::Result<ExpositionHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let join = std::thread::Builder::new()
        .name("obs-expose".into())
        .spawn(move || accept_loop(&listener, &render, &stop2))?;
    Ok(ExpositionHandle {
        addr,
        stop,
        join: Some(join),
    })
}

fn accept_loop(listener: &TcpListener, render: &RenderFn, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = handle(stream, render);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn handle(mut stream: TcpStream, render: &RenderFn) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    // Read until the end of the request head; scrape requests have no
    // body we care about.
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > MAX_HEAD {
            return respond(&mut stream, 400, "Bad Request", "request head too large\n");
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    let line = head.split(|&b| b == b'\r').next().unwrap_or(&[]);
    let line = String::from_utf8_lossy(line);
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        return respond(
            &mut stream,
            405,
            "Method Not Allowed",
            "only GET is supported\n",
        );
    }
    let path = path.split('?').next().unwrap_or("");
    if path != "/metrics" && path != "/" {
        return respond(&mut stream, 404, "Not Found", "try /metrics\n");
    }
    let body = render();
    respond(&mut stream, 200, "OK", &body)
}

fn respond(stream: &mut TcpStream, code: u16, reason: &str, body: &str) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn get(addr: SocketAddr, req: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(req.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_metrics_and_rejects_others() {
        let render: RenderFn = Arc::new(|| "metric_total 1\n".to_string());
        let mut h = expose("127.0.0.1:0", render).unwrap();
        let addr = h.addr();

        let ok = get(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
        assert!(ok.contains("text/plain; version=0.0.4"));
        assert!(ok.ends_with("metric_total 1\n"));

        let root = get(addr, "GET / HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(root.ends_with("metric_total 1\n"));

        let missing = get(addr, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"));

        let post = get(addr, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(post.starts_with("HTTP/1.1 405"));

        h.shutdown();
        assert!(
            TcpStream::connect(addr).is_err() || {
                // The OS may accept briefly after shutdown on some
                // platforms; a second connect must fail.
                std::thread::sleep(Duration::from_millis(50));
                TcpStream::connect(addr).is_err()
            }
        );
    }
}
