//! A registry of named metrics: counters, gauges, and histograms, with
//! optional label sets forming families (per-shard, per-phase, …).
//!
//! Registration is get-or-create keyed on `(name, labels)` and hands
//! back an `Arc` to the instrument; callers cache that `Arc` and update
//! it with relaxed atomics, so the registry mutex is only touched at
//! setup and scrape time, never on the hot path.
//!
//! A process-wide [`global`] registry exists for instrumentation that
//! has no natural owner (e.g. encode phases deep inside `pl-labeling`).
//! Components with an owner — a server instance, a test — should carry
//! their own `Arc<MetricsRegistry>` so parallel instances don't bleed
//! into each other's numbers.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::hist::{Histogram, HistogramSnapshot};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed); // lint: relaxed-ok(counters are pure statistics; scrapes tolerate slightly stale values and publish no other memory)
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts by `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed); // lint: relaxed-ok(gauge adjustments are pure statistics; no other memory is published through them)
    }

    /// Raises the gauge to `v` if `v` is larger (high-water mark).
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed); // lint: relaxed-ok(high-water mark is a statistic; no other memory is published through it)
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Owned label set: `(key, value)` pairs, order-significant.
pub type Labels = Vec<(String, String)>;

fn to_labels(pairs: &[(&str, &str)]) -> Labels {
    pairs
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

struct Family<T> {
    name: String,
    members: Vec<(Labels, Arc<T>)>,
}

impl<T: Default> Family<T> {
    fn get_or_create(&mut self, labels: Labels) -> Arc<T> {
        if let Some((_, m)) = self.members.iter().find(|(l, _)| *l == labels) {
            return m.clone();
        }
        let m = Arc::new(T::default());
        self.members.push((labels, m.clone()));
        m
    }
}

#[derive(Default)]
struct State {
    counters: Vec<Family<Counter>>,
    gauges: Vec<Family<Gauge>>,
    histograms: Vec<Family<Histogram>>,
}

fn family<'a, T: Default>(fams: &'a mut Vec<Family<T>>, name: &str) -> &'a mut Family<T> {
    if let Some(i) = fams.iter().position(|f| f.name == name) {
        return &mut fams[i];
    }
    fams.push(Family {
        name: name.to_string(),
        members: Vec::new(),
    });
    fams.last_mut().unwrap()
}

/// The value captured for one metric instance at scrape time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(i64),
    /// A histogram snapshot.
    Histogram(Box<HistogramSnapshot>),
}

/// One `(name, labels, value)` triple from [`MetricsRegistry::samples`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Metric family name.
    pub name: String,
    /// Label set (empty for unlabeled metrics).
    pub labels: Labels,
    /// Captured value.
    pub value: MetricValue,
}

/// A collection of named metric families. See the module docs for the
/// ownership model (per-component instances vs [`global`]).
#[derive(Default)]
pub struct MetricsRegistry {
    state: Mutex<State>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("samples", &self.samples().len())
            .finish()
    }
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-create the unlabeled counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Get-or-create the counter `name{labels}`.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut s = self.state.lock().unwrap();
        family(&mut s.counters, name).get_or_create(to_labels(labels))
    }

    /// Get-or-create the unlabeled gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Get-or-create the gauge `name{labels}`.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut s = self.state.lock().unwrap();
        family(&mut s.gauges, name).get_or_create(to_labels(labels))
    }

    /// Get-or-create the unlabeled histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// Get-or-create the histogram `name{labels}`.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let mut s = self.state.lock().unwrap();
        family(&mut s.histograms, name).get_or_create(to_labels(labels))
    }

    /// Captures every registered metric, sorted by name then labels for
    /// deterministic output.
    #[must_use]
    pub fn samples(&self) -> Vec<MetricSample> {
        let s = self.state.lock().unwrap();
        let mut out = Vec::new();
        for f in &s.counters {
            for (labels, c) in &f.members {
                out.push(MetricSample {
                    name: f.name.clone(),
                    labels: labels.clone(),
                    value: MetricValue::Counter(c.get()),
                });
            }
        }
        for f in &s.gauges {
            for (labels, g) in &f.members {
                out.push(MetricSample {
                    name: f.name.clone(),
                    labels: labels.clone(),
                    value: MetricValue::Gauge(g.get()),
                });
            }
        }
        for f in &s.histograms {
            for (labels, h) in &f.members {
                out.push(MetricSample {
                    name: f.name.clone(),
                    labels: labels.clone(),
                    value: MetricValue::Histogram(Box::new(h.snapshot())),
                });
            }
        }
        out.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        out
    }
}

/// The process-wide registry for ownerless instrumentation (encode
/// phases, label-size histograms). Server-side metrics live in
/// per-instance registries instead.
#[must_use]
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_is_stable() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("hits");
        let b = reg.counter("hits");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert!(Arc::ptr_eq(&a, &b));

        let s0 = reg.counter_with("shard_hits", &[("shard", "0")]);
        let s1 = reg.counter_with("shard_hits", &[("shard", "1")]);
        assert!(!Arc::ptr_eq(&s0, &s1));
        s1.inc();
        assert_eq!(s0.get(), 0);
        assert_eq!(s1.get(), 1);
    }

    #[test]
    fn gauge_set_max() {
        let g = Gauge::default();
        g.set(5);
        g.set_max(3);
        assert_eq!(g.get(), 5);
        g.set_max(9);
        assert_eq!(g.get(), 9);
        g.add(-4);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn samples_are_sorted_and_typed() {
        let reg = MetricsRegistry::new();
        reg.gauge("z_gauge").set(-7);
        reg.counter("a_count").add(4);
        reg.histogram("m_hist").record(100);
        let samples = reg.samples();
        let names: Vec<_> = samples.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["a_count", "m_hist", "z_gauge"]);
        assert_eq!(samples[0].value, MetricValue::Counter(4));
        assert_eq!(samples[2].value, MetricValue::Gauge(-7));
        match &samples[1].value {
            MetricValue::Histogram(h) => assert_eq!(h.count(), 1),
            other => panic!("expected histogram, got {other:?}"),
        }
    }
}
