//! Property tests for pl-obs histograms.

use pl_obs::Histogram;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantile_is_monotone_in_q(
        samples in proptest::collection::vec(0u64..u64::MAX, 1..300),
        qs in proptest::collection::vec(0.0f64..1.0, 2..16),
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let snap = h.snapshot();
        let mut qs = qs;
        qs.sort_by(f64::total_cmp);
        let mut prev = 0u64;
        for &q in &qs {
            let v = snap.quantile_ns(q);
            prop_assert!(v >= prev, "quantile_ns({q}) = {v} < previous {prev}");
            prev = v;
        }
        // Every quantile edge brackets the data: at least the min's
        // bucket, at most the max's bucket edge.
        let lo = snap.quantile_ns(0.0);
        let hi = snap.quantile_ns(1.0);
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        prop_assert!(lo > min.max(1) / 2);
        prop_assert!(hi >= max || hi == u64::MAX);
        prop_assert_eq!(snap.count(), samples.len() as u64);
        prop_assert_eq!(snap.min, min);
        prop_assert_eq!(snap.max, max);
    }

    #[test]
    fn bucket_edge_bounds_every_sample(v in 0u64..u64::MAX) {
        let h = Histogram::new();
        h.record(v);
        let q = h.quantile_ns(1.0);
        prop_assert!(q > v || q == u64::MAX, "edge {q} does not bound {v}");
    }
}
