//! End-to-end: registry → Prometheus render → HTTP scrape, and the
//! span!/event! macros feeding the trace ring.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use pl_obs::{prom, trace, MetricsRegistry};

#[test]
fn scrape_reflects_live_registry() {
    let reg = Arc::new(MetricsRegistry::new());
    reg.counter("e2e_requests_total").add(5);
    reg.histogram_with("e2e_latency_ns", &[("path", "adj")])
        .record(100);

    let render_reg = reg.clone();
    let render: pl_obs::http::RenderFn = Arc::new(move || prom::render(&render_reg));
    let mut h = pl_obs::http::expose("127.0.0.1:0", render).unwrap();

    let mut s = TcpStream::connect(h.addr()).unwrap();
    s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut body = String::new();
    s.read_to_string(&mut body).unwrap();
    assert!(body.contains("e2e_requests_total 5"), "{body}");
    assert!(body.contains("e2e_latency_ns{path=\"adj\",quantile=\"0.5\"} 128"));
    assert!(body.contains("e2e_latency_ns_count{path=\"adj\"} 1"));

    // The scrape re-renders: a later increment is visible.
    reg.counter("e2e_requests_total").add(2);
    let mut s = TcpStream::connect(h.addr()).unwrap();
    s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut body = String::new();
    s.read_to_string(&mut body).unwrap();
    assert!(body.contains("e2e_requests_total 7"), "{body}");
    h.shutdown();
}

// The single drain-calling test in this binary (drains consume the
// process-global rings).
#[test]
fn macros_record_spans_and_events() {
    // Disabled by default: no events.
    {
        let _g = pl_obs::span!("e2e.disabled");
    }
    pl_obs::set_tracing(true);
    {
        let _g = pl_obs::span!("e2e.span", 11, 22);
        pl_obs::event!("e2e.event", 33);
    }
    pl_obs::set_tracing(false);

    let jsonl = trace::drain_jsonl();
    assert!(!jsonl.contains("e2e.disabled"), "{jsonl}");
    let span_line = jsonl
        .lines()
        .find(|l| l.contains("\"name\":\"e2e.span\""))
        .expect("span line present");
    assert!(span_line.contains("\"a\":11"));
    assert!(span_line.contains("\"b\":22"));
    assert!(jsonl
        .lines()
        .any(|l| l.contains("\"name\":\"e2e.event\"") && l.contains("\"a\":33")));
    // Events within the span have start inside the span's window.
    for line in jsonl.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    }
}
