//! Property tests for trace identity and multi-ring merging.
//!
//! Everything that touches the global id generator serializes on one
//! lock: `seed_ids` resets shared state, so a concurrent `next_id`
//! (direct or via a recording test) would break determinism checks.

use std::sync::Mutex;

use pl_obs::trace;
use proptest::prelude::*;

static ID_LOCK: Mutex<()> = Mutex::new(());

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn seeded_ids_deterministic_and_unique(seed in 0u64..u64::MAX) {
        let _serial = ID_LOCK.lock().unwrap();

        // Re-seeding replays the exact sequence.
        trace::seed_ids(seed);
        let first: Vec<u64> = (0..256).map(|_| trace::next_id()).collect();
        trace::seed_ids(seed);
        let second: Vec<u64> = (0..256).map(|_| trace::next_id()).collect();
        prop_assert_eq!(&first, &second);

        // Ids are non-zero and pairwise distinct.
        prop_assert!(first.iter().all(|&x| x != 0));
        let mut dedup = first.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), first.len());

        // Concurrent draws from many threads stay globally unique: the
        // counter is shared and the mixer is a bijection.
        trace::seed_ids(seed);
        let ids: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| (0..128).map(|_| trace::next_id()).collect::<Vec<_>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let mut unique = ids.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(unique.len(), ids.len());

        // Root contexts built from the stream inherit both properties.
        trace::seed_ids(seed);
        let a = trace::TraceContext::root();
        let b = trace::TraceContext::root();
        prop_assert!(a.is_set() && b.is_set());
        prop_assert_ne!((a.trace_hi, a.trace_lo), (b.trace_hi, b.trace_lo));
    }
}

#[test]
fn merged_multi_ring_drain_sorted_by_start() {
    let _serial = ID_LOCK.lock().unwrap();
    trace::set_tracing(true);
    std::thread::scope(|s| {
        for t in 0..4u64 {
            s.spawn(move || {
                // Interleaved start times across threads so the merge
                // actually has to reorder ring-local sequences.
                for i in 0..200u64 {
                    trace::record_complete("prop.sorted", i * 10 + t, 1, t, i);
                }
            });
        }
    });
    trace::set_tracing(false);

    let snap = trace::snapshot();
    assert!(
        snap.iter().filter(|e| e.name == "prop.sorted").count() >= 800,
        "snapshot should see every thread's ring"
    );
    assert!(
        snap.windows(2).all(|w| w[0].start_ns <= w[1].start_ns),
        "snapshot must be sorted by start_ns"
    );

    let events = trace::drain();
    assert!(events.iter().filter(|e| e.name == "prop.sorted").count() >= 800);
    assert!(
        events.windows(2).all(|w| w[0].start_ns <= w[1].start_ns),
        "merged drain must be sorted by start_ns"
    );
}
