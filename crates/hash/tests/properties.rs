//! Property-based tests for the hashing substrate.

use pl_hash::{BoundedLoadHash, PerfectHash, UniversalHash};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fks_membership_is_exact(
        keys in proptest::collection::hash_set(0u64..u64::MAX - 1, 0..400),
        probes in proptest::collection::vec(0u64..u64::MAX - 1, 0..200),
        seed in any::<u64>(),
    ) {
        let key_vec: Vec<u64> = keys.iter().copied().collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let ph = PerfectHash::build(&key_vec, &mut rng).unwrap();
        for &k in &key_vec {
            prop_assert!(ph.contains(k));
        }
        for &p in &probes {
            prop_assert_eq!(ph.contains(p), keys.contains(&p));
        }
    }

    #[test]
    fn fks_indices_distinct(
        keys in proptest::collection::hash_set(0u64..u64::MAX - 1, 1..300),
        seed in any::<u64>(),
    ) {
        let key_vec: Vec<u64> = keys.iter().copied().collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let ph = PerfectHash::build(&key_vec, &mut rng).unwrap();
        let idx: HashSet<usize> = key_vec.iter().map(|&k| ph.index(k).unwrap()).collect();
        prop_assert_eq!(idx.len(), key_vec.len());
        prop_assert!(ph.slot_count() <= 5 * key_vec.len().max(1));
    }

    #[test]
    fn universal_hash_stays_in_range(
        a in any::<u64>(),
        b in any::<u64>(),
        m in 1usize..10_000,
        keys in proptest::collection::vec(any::<u64>(), 0..100),
    ) {
        let h = UniversalHash::from_params(a, b);
        for k in keys {
            prop_assert!(h.hash(k, m) < m);
        }
    }

    #[test]
    fn bounded_load_is_honest(
        keys in proptest::collection::hash_set(any::<u64>(), 1..500),
        seed in any::<u64>(),
    ) {
        let key_vec: Vec<u64> = keys.iter().copied().collect();
        let buckets = key_vec.len().max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let h = BoundedLoadHash::build_adaptive(&key_vec, buckets, &mut rng);
        let mut counts = vec![0usize; buckets];
        for &k in &key_vec {
            counts[h.bucket_of(k)] += 1;
        }
        prop_assert_eq!(counts.into_iter().max().unwrap_or(0), h.achieved_max_load());
    }
}
