//! Static perfect hashing, built from scratch for the 1-query labeling
//! scheme of Section 6 of *Near Optimal Adjacency Labeling Schemes for
//! Power-Law Graphs* (ICALP 2016).
//!
//! The scheme hashes the graph's edge set with a "classic chaining perfect
//! hash function" so that every edge's id pair can be stored at a
//! predictable third vertex. This crate provides the required machinery:
//!
//! * [`universal`] — a seeded multiply–shift universal family over `u64`
//!   keys, with unbiased range reduction.
//! * [`fks`] — the Fredman–Komlós–Szemerédi two-level static perfect hash:
//!   expected linear construction, worst-case O(1) lookups, no collisions.
//! * [`chain`] — a bounded-load chaining dictionary: a universal hash
//!   re-drawn until no bucket exceeds a target load, which is the form the
//!   paper's 1-query decoder consumes (it must know *which* bucket to ask
//!   for, and the bucket's label must stay short).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod fks;
pub mod universal;

pub use chain::BoundedLoadHash;
pub use fks::PerfectHash;
pub use universal::UniversalHash;
