//! Seeded multiply–shift universal hashing over `u64` keys.

use rand::Rng;

/// A function drawn from a 2-universal multiply–shift family over `u64`.
///
/// `h(x) = hi64((a·x + b) · m)` maps into `0..m` with the "fastrange"
/// reduction, which is unbiased for the family and avoids the modulo bias
/// of `% m`. The multiplier `a` is always odd (Dietzfelbinger et al.).
///
/// The function is fully described by the two `u64` parameters, so a
/// labeling scheme can serialize it into a label in 128 bits — the
/// "description thereof amounts to a logarithmic number of bits" ingredient
/// of the paper's 1-query scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniversalHash {
    /// Odd multiplier.
    a: u64,
    /// Additive offset.
    b: u64,
}

impl UniversalHash {
    /// Draws a random function from the family.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self {
            a: rng.gen::<u64>() | 1,
            b: rng.gen::<u64>(),
        }
    }

    /// Reconstructs a function from its parameters (e.g. parsed from a
    /// label). The multiplier is forced odd to stay inside the family.
    #[must_use]
    pub fn from_params(a: u64, b: u64) -> Self {
        Self { a: a | 1, b }
    }

    /// The `(a, b)` parameters, for serialization.
    #[must_use]
    pub fn params(&self) -> (u64, u64) {
        (self.a, self.b)
    }

    /// Hashes `key` into `0..m`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    #[must_use]
    pub fn hash(&self, key: u64, m: usize) -> usize {
        assert!(m > 0, "hash range must be non-empty");
        let mixed = self.a.wrapping_mul(key).wrapping_add(self.b);
        // Fastrange: multiply the 64-bit mixed value by m and keep the high
        // 64 bits; equivalent to floor(mixed / 2^64 * m).
        ((u128::from(mixed) * m as u128) >> 64) as usize
    }
}

/// Packs an undirected vertex pair into a canonical `u64` key
/// (`min << 32 | max`), the key form used when hashing edges.
///
/// # Example
///
/// ```
/// use pl_hash::universal::edge_key;
/// assert_eq!(edge_key(7, 3), edge_key(3, 7));
/// assert_ne!(edge_key(1, 2), edge_key(1, 3));
/// ```
#[must_use]
pub fn edge_key(u: u32, v: u32) -> u64 {
    let (a, b) = if u <= v { (u, v) } else { (v, u) };
    (u64::from(a) << 32) | u64::from(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_for_fixed_params() {
        let h = UniversalHash::from_params(12345, 678);
        assert_eq!(h.hash(42, 100), h.hash(42, 100));
    }

    #[test]
    fn range_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let h = UniversalHash::random(&mut rng);
            for m in [1usize, 2, 3, 17, 1000] {
                for key in 0..200u64 {
                    assert!(h.hash(key, m) < m);
                }
            }
        }
    }

    #[test]
    fn params_round_trip() {
        let mut rng = StdRng::seed_from_u64(7);
        let h = UniversalHash::random(&mut rng);
        let (a, b) = h.params();
        let h2 = UniversalHash::from_params(a, b);
        assert_eq!(h, h2);
        for key in [0u64, 1, u64::MAX, 999_999_937] {
            assert_eq!(h.hash(key, 12345), h2.hash(key, 12345));
        }
    }

    #[test]
    fn multiplier_forced_odd() {
        let h = UniversalHash::from_params(4, 0);
        assert_eq!(h.params().0 % 2, 1);
    }

    #[test]
    fn distribution_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let h = UniversalHash::random(&mut rng);
        let m = 16usize;
        let mut counts = vec![0usize; m];
        let trials = 16_000u64;
        for key in 0..trials {
            counts[h.hash(key * 2_654_435_761 + 12345, m)] += 1;
        }
        let expected = trials as f64 / m as f64;
        for &c in &counts {
            assert!(
                (c as f64) > expected * 0.5 && (c as f64) < expected * 1.5,
                "bucket count {c} vs expected {expected}"
            );
        }
    }

    #[test]
    fn edge_key_canonical_and_injective() {
        assert_eq!(edge_key(0, 0), 0);
        assert_eq!(edge_key(1, 2), edge_key(2, 1));
        let mut keys = std::collections::HashSet::new();
        for u in 0..20u32 {
            for v in u + 1..20 {
                assert!(keys.insert(edge_key(u, v)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_range_panics() {
        let _ = UniversalHash::from_params(1, 1).hash(1, 0);
    }
}
