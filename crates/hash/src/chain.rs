//! Bounded-load chaining hash: the paper's "chaining perfect hash".
//!
//! Section 6 of the paper stores each edge's id pair at the vertex the edge
//! hashes to, and requires "the guarantee that the worst case number of
//! collisions is constant". With a universal family, the expected maximum
//! bucket load over `m = cn` keys and `n` buckets is `O(log n / log log n)`,
//! but a load within a small constant factor of the average is obtained with
//! good probability by re-drawing the function a few times (the paper's own
//! suggestion of pre-partitioning the domain into `c` parts is an instance
//! of the same load-balancing idea). [`BoundedLoadHash::build`] performs
//! that re-drawing and records the achieved maximum load, so the caller can
//! see exactly what bound the labels inherit.

use rand::Rng;

use crate::universal::UniversalHash;

/// A universal hash function re-drawn until its maximum bucket load over a
/// given key set does not exceed a target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundedLoadHash {
    hash: UniversalHash,
    buckets: usize,
    max_load: usize,
}

impl BoundedLoadHash {
    /// Draws functions until one distributes `keys` over `buckets` buckets
    /// with maximum load at most `target_load`, giving up after `attempts`
    /// draws (returns `None` then).
    ///
    /// A sensible target for `m` keys and `n` buckets is
    /// `max(2, ⌈m/n⌉ · 2 + 2)`; see [`build_adaptive`](Self::build_adaptive)
    /// which figures a target out by doubling.
    pub fn build<R: Rng + ?Sized>(
        keys: &[u64],
        buckets: usize,
        target_load: usize,
        attempts: usize,
        rng: &mut R,
    ) -> Option<Self> {
        assert!(buckets > 0, "bucket count must be positive");
        let mut counts = vec![0u32; buckets];
        for _ in 0..attempts {
            let h = UniversalHash::random(rng);
            counts.iter_mut().for_each(|c| *c = 0);
            let mut max = 0u32;
            for &k in keys {
                let b = h.hash(k, buckets);
                counts[b] += 1;
                max = max.max(counts[b]);
            }
            if (max as usize) <= target_load {
                return Some(Self {
                    hash: h,
                    buckets,
                    max_load: max as usize,
                });
            }
        }
        None
    }

    /// Builds with the smallest power-of-two-ish target that succeeds:
    /// starts from `⌈m/n⌉ + 1` and doubles until [`build`](Self::build)
    /// succeeds. Always returns a function (the final attempt uses an
    /// unbounded target).
    pub fn build_adaptive<R: Rng + ?Sized>(keys: &[u64], buckets: usize, rng: &mut R) -> Self {
        let avg = keys.len().div_ceil(buckets.max(1));
        let mut target = avg + 1;
        loop {
            if let Some(h) = Self::build(keys, buckets, target, 8, rng) {
                return h;
            }
            if target > keys.len() {
                // Cannot fail with target >= m; defensive.
                let h = Self::build(keys, buckets, keys.len().max(1), 1, rng);
                if let Some(h) = h {
                    return h;
                }
            }
            target *= 2;
        }
    }

    /// The bucket `key` maps to.
    #[must_use]
    pub fn bucket_of(&self, key: u64) -> usize {
        self.hash.hash(key, self.buckets)
    }

    /// Number of buckets.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.buckets
    }

    /// The maximum load actually achieved on the build key set.
    #[must_use]
    pub fn achieved_max_load(&self) -> usize {
        self.max_load
    }

    /// The underlying function's `(a, b)` parameters, for serialization
    /// into labels.
    #[must_use]
    pub fn params(&self) -> (u64, u64) {
        self.hash.params()
    }

    /// Reconstructs from serialized parameters. The achieved load is not
    /// carried in labels; it is only meaningful at build time and is set to
    /// 0 here.
    #[must_use]
    pub fn from_params(a: u64, b: u64, buckets: usize) -> Self {
        Self {
            hash: UniversalHash::from_params(a, b),
            buckets,
            max_load: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC4A1)
    }

    #[test]
    fn build_respects_target() {
        let keys: Vec<u64> = (0..1000).map(|i| i * 97 + 13).collect();
        let h = BoundedLoadHash::build(&keys, 1000, 6, 64, &mut rng()).unwrap();
        assert!(h.achieved_max_load() <= 6);
        let mut counts = vec![0usize; 1000];
        for &k in &keys {
            counts[h.bucket_of(k)] += 1;
        }
        assert_eq!(counts.iter().copied().max().unwrap(), h.achieved_max_load());
    }

    #[test]
    fn impossible_target_fails() {
        // 10 keys into 1 bucket cannot have load < 10.
        let keys: Vec<u64> = (0..10).collect();
        assert!(BoundedLoadHash::build(&keys, 1, 5, 16, &mut rng()).is_none());
    }

    #[test]
    fn adaptive_always_succeeds() {
        let keys: Vec<u64> = (0..5000).map(|i| i * 3 + 5).collect();
        let h = BoundedLoadHash::build_adaptive(&keys, 1000, &mut rng());
        // m/n = 5; adaptive should land within a small factor.
        assert!(
            h.achieved_max_load() <= 24,
            "load {}",
            h.achieved_max_load()
        );
    }

    #[test]
    fn adaptive_on_empty_keys() {
        let h = BoundedLoadHash::build_adaptive(&[], 10, &mut rng());
        assert_eq!(h.achieved_max_load(), 0);
    }

    #[test]
    fn params_round_trip_same_buckets() {
        let keys: Vec<u64> = (0..100).collect();
        let h = BoundedLoadHash::build_adaptive(&keys, 50, &mut rng());
        let (a, b) = h.params();
        let h2 = BoundedLoadHash::from_params(a, b, 50);
        for &k in &keys {
            assert_eq!(h.bucket_of(k), h2.bucket_of(k));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_buckets_panics() {
        let _ = BoundedLoadHash::build(&[1], 0, 1, 1, &mut rng());
    }
}
