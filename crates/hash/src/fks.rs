//! Fredman–Komlós–Szemerédi two-level static perfect hashing.
//!
//! Given a static set `S` of `n` distinct `u64` keys, builds in expected
//! `O(n)` time a structure answering `contains` and `index` queries in
//! worst-case O(1) probes with zero collisions:
//!
//! 1. A first-level universal hash maps keys into `n` buckets; it is
//!    re-drawn until `Σ s_i² ≤ 4n` (Markov gives success probability ≥ ½
//!    per draw).
//! 2. Each bucket of size `s_i` gets a private table of size `s_i²` and a
//!    second-level universal hash re-drawn until it is injective on the
//!    bucket (probability ≥ ½ per draw).
//!
//! Total space is `O(n)` words. [`PerfectHash::index`] additionally assigns
//! each key a distinct slot, so the structure doubles as a minimal-ish
//! perfect map for satellite data.

use rand::Rng;

use crate::universal::UniversalHash;

/// Empty-slot marker inside second-level tables.
const EMPTY: u64 = u64::MAX;

/// A built FKS perfect hash over a static key set.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let keys: Vec<u64> = (0..1000).map(|i| i * i + 7).collect();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(42);
/// let ph = pl_hash::PerfectHash::build(&keys, &mut rng).unwrap();
/// assert!(ph.contains(7));
/// assert!(!ph.contains(6)); // every key is at least 7
/// // Every key gets a distinct slot index.
/// let mut slots: Vec<usize> = keys.iter().map(|&k| ph.index(k).unwrap()).collect();
/// slots.sort_unstable();
/// slots.dedup();
/// assert_eq!(slots.len(), keys.len());
/// ```
#[derive(Debug, Clone)]
pub struct PerfectHash {
    level1: UniversalHash,
    /// Per bucket: second-level hash, and offset/size of its table slice.
    buckets: Vec<Bucket>,
    /// Concatenated second-level tables; `EMPTY` marks free slots.
    slots: Vec<u64>,
    key_count: usize,
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    hash: UniversalHash,
    offset: usize,
    /// Table size (`s²` for a bucket holding `s` keys; 0 for empty buckets).
    size: usize,
}

/// Error returned by [`PerfectHash::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The input contained the same key twice; a perfect hash of a multiset
    /// is not well-defined.
    DuplicateKey(u64),
    /// The reserved sentinel key `u64::MAX` was present in the input.
    ReservedKey,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DuplicateKey(k) => write!(f, "duplicate key {k} in perfect-hash input"),
            Self::ReservedKey => write!(f, "key u64::MAX is reserved as the empty marker"),
        }
    }
}

impl std::error::Error for BuildError {}

impl PerfectHash {
    /// Builds a perfect hash over `keys` in expected linear time.
    ///
    /// Duplicate keys and the reserved key `u64::MAX` are rejected.
    pub fn build<R: Rng + ?Sized>(keys: &[u64], rng: &mut R) -> Result<Self, BuildError> {
        if keys.contains(&EMPTY) {
            return Err(BuildError::ReservedKey);
        }
        let n = keys.len();
        if n == 0 {
            return Ok(Self {
                level1: UniversalHash::from_params(1, 0),
                buckets: Vec::new(),
                slots: Vec::new(),
                key_count: 0,
            });
        }

        // Level 1: re-draw until the squared bucket sizes are linear.
        let (level1, groups) = loop {
            let h = UniversalHash::random(rng);
            let mut groups: Vec<Vec<u64>> = vec![Vec::new(); n];
            for &k in keys {
                groups[h.hash(k, n)].push(k);
            }
            let cost: usize = groups.iter().map(|g| g.len() * g.len()).sum();
            if cost <= 4 * n {
                break (h, groups);
            }
        };

        // Detect duplicates bucket-locally (cheap: buckets are tiny).
        for g in &groups {
            let mut sorted = g.clone();
            sorted.sort_unstable();
            if let Some(w) = sorted.windows(2).find(|w| w[0] == w[1]) {
                return Err(BuildError::DuplicateKey(w[0]));
            }
        }

        // Level 2: per-bucket injective hash into s² slots.
        let mut buckets = Vec::with_capacity(n);
        let mut slots = Vec::new();
        for g in &groups {
            let s = g.len();
            if s == 0 {
                buckets.push(Bucket {
                    hash: UniversalHash::from_params(1, 0),
                    offset: slots.len(),
                    size: 0,
                });
                continue;
            }
            let size = s * s;
            let offset = slots.len();
            'draw: loop {
                let h2 = UniversalHash::random(rng);
                let mut table = vec![EMPTY; size];
                for &k in g {
                    let pos = h2.hash(k, size);
                    if table[pos] != EMPTY {
                        continue 'draw;
                    }
                    table[pos] = k;
                }
                slots.extend_from_slice(&table);
                buckets.push(Bucket {
                    hash: h2,
                    offset,
                    size,
                });
                break;
            }
        }

        Ok(Self {
            level1,
            buckets,
            slots,
            key_count: n,
        })
    }

    /// Number of keys in the set.
    #[must_use]
    pub fn key_count(&self) -> usize {
        self.key_count
    }

    /// Total table slots (space consumption in words); `O(key_count)`.
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Whether `key` belongs to the hashed set. Worst-case two probes.
    #[must_use]
    pub fn contains(&self, key: u64) -> bool {
        self.index(key).is_some()
    }

    /// The distinct slot index of `key`, or `None` if absent.
    #[must_use]
    pub fn index(&self, key: u64) -> Option<usize> {
        if self.key_count == 0 || key == EMPTY {
            return None;
        }
        let b = &self.buckets[self.level1.hash(key, self.buckets.len())];
        if b.size == 0 {
            return None;
        }
        let pos = b.offset + b.hash.hash(key, b.size);
        (self.slots[pos] == key).then_some(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xF0CA)
    }

    #[test]
    fn empty_set() {
        let ph = PerfectHash::build(&[], &mut rng()).unwrap();
        assert_eq!(ph.key_count(), 0);
        assert!(!ph.contains(0));
        assert!(ph.index(123).is_none());
    }

    #[test]
    fn singleton() {
        let ph = PerfectHash::build(&[99], &mut rng()).unwrap();
        assert!(ph.contains(99));
        assert!(!ph.contains(98));
    }

    #[test]
    fn all_members_found_no_false_positives() {
        let keys: Vec<u64> = (0..5000u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let ph = PerfectHash::build(&keys, &mut rng()).unwrap();
        for &k in &keys {
            assert!(ph.contains(k));
        }
        for i in 0..5000u64 {
            let probe = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            assert!(!ph.contains(probe));
        }
    }

    #[test]
    fn indices_are_distinct() {
        let keys: Vec<u64> = (0..3000).map(|i| i * 3 + 1).collect();
        let ph = PerfectHash::build(&keys, &mut rng()).unwrap();
        let mut idx: Vec<usize> = keys.iter().map(|&k| ph.index(k).unwrap()).collect();
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), keys.len());
    }

    #[test]
    fn space_is_linear() {
        let keys: Vec<u64> = (0..10_000).map(|i| i * 7 + 3).collect();
        let ph = PerfectHash::build(&keys, &mut rng()).unwrap();
        assert!(
            ph.slot_count() <= 4 * keys.len() + keys.len(),
            "slots {} for {} keys",
            ph.slot_count(),
            keys.len()
        );
    }

    #[test]
    fn rejects_duplicates() {
        let err = PerfectHash::build(&[5, 6, 5], &mut rng()).unwrap_err();
        assert_eq!(err, BuildError::DuplicateKey(5));
    }

    #[test]
    fn rejects_reserved_key() {
        let err = PerfectHash::build(&[1, u64::MAX], &mut rng()).unwrap_err();
        assert_eq!(err, BuildError::ReservedKey);
        assert!(err.to_string().contains("reserved"));
    }

    #[test]
    fn adversarial_clustered_keys() {
        // Dense consecutive range plus a far cluster — stresses level 1.
        let mut keys: Vec<u64> = (0..2000).collect();
        keys.extend((0..2000u64).map(|i| (1 << 60) + i));
        let ph = PerfectHash::build(&keys, &mut rng()).unwrap();
        for &k in &keys {
            assert!(ph.contains(k));
        }
        assert!(!ph.contains(5000));
        assert!(!ph.contains((1 << 60) + 5000));
    }
}
