//! The online `m·log n` scheme for BA-model graphs (Proposition 5,
//! tightened form).
//!
//! "If the encoder operates at the same time as the creation of the graph,
//! Proposition 5 can be tightened to yield a `m·log n` labeling scheme, by
//! storing the identifiers of the vertices to the node introduced."
//!
//! [`BaOnlineScheme::encode_history`] consumes the attachment history
//! recorded by [`pl_gen::barabasi_albert`]: each vertex's label is its own
//! id plus the ids of the `m` vertices it attached to (for seed vertices,
//! their smaller-id seed neighbours). The label format — and therefore the
//! decoder — is identical to the orientation scheme's out-list format: the
//! attachment lists *are* an orientation of the BA graph (every edge is
//! stored exactly at its younger endpoint).

use pl_gen::BaGraph;
use pl_graph::VertexId;

use crate::bits::BitWriter;
use crate::forest::OrientationDecoder;
use crate::label::{Label, Labeling};
use crate::scheme::{id_width, write_prelude};

/// The online BA labeler. Unlike the general
/// [`AdjacencyScheme`](crate::scheme::AdjacencyScheme) implementations,
/// its encoder needs the growth history, not just the final graph, so it
/// exposes [`encode_history`](Self::encode_history) instead of
/// implementing the trait.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BaOnlineScheme;

impl BaOnlineScheme {
    /// Scheme name for experiment tables.
    #[must_use]
    pub fn name(&self) -> &'static str {
        "BA online (m log n)"
    }

    /// Labels every vertex from the BA attachment history.
    ///
    /// Labels decode with [`OrientationDecoder`].
    #[must_use]
    pub fn encode_history(&self, ba: &BaGraph) -> Labeling {
        let n = ba.graph.vertex_count();
        let w = id_width(n);
        let labels = (0..n as VertexId)
            .map(|v| {
                let mut bw = BitWriter::new();
                write_prelude(&mut bw, w, u64::from(v));
                if (v as usize) < ba.seed_size {
                    // Seed vertices store their smaller-id seed-clique
                    // neighbours — the edges present before growth began.
                    let own: Vec<VertexId> = ba
                        .graph
                        .neighbors(v)
                        .iter()
                        .copied()
                        .filter(|&u| u < v && (u as usize) < ba.seed_size)
                        .collect();
                    bw.write_gamma(own.len() as u64 + 1);
                    for u in own {
                        bw.write_bits(u64::from(u), w);
                    }
                } else {
                    let h = &ba.history[v as usize];
                    bw.write_gamma(h.len() as u64 + 1);
                    for &u in h {
                        bw.write_bits(u64::from(u), w);
                    }
                }
                Label::from(bw)
            })
            .collect();
        Labeling::new(labels)
    }

    /// The matching (stateless) decoder.
    #[must_use]
    pub fn decoder(&self) -> OrientationDecoder {
        OrientationDecoder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::AdjacencyDecoder;
    use crate::theory::ba_online_bound;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xBAAB)
    }

    #[test]
    fn exhaustive_on_small_ba() {
        let mut r = rng();
        for m in [1usize, 2, 4] {
            let ba = pl_gen::barabasi_albert(60, m, &mut r);
            let labeling = BaOnlineScheme.encode_history(&ba);
            let dec = BaOnlineScheme.decoder();
            for u in ba.graph.vertices() {
                for v in ba.graph.vertices() {
                    assert_eq!(
                        dec.adjacent(labeling.label(u), labeling.label(v)),
                        ba.graph.has_edge(u, v),
                        "m={m} pair ({u}, {v})"
                    );
                }
            }
        }
    }

    #[test]
    fn sampled_on_large_ba() {
        let mut r = rng();
        let ba = pl_gen::barabasi_albert(5_000, 3, &mut r);
        let labeling = BaOnlineScheme.encode_history(&ba);
        let dec = BaOnlineScheme.decoder();
        for _ in 0..5_000 {
            let u = r.gen_range(0..5_000u32);
            let v = r.gen_range(0..5_000u32);
            assert_eq!(
                dec.adjacent(labeling.label(u), labeling.label(v)),
                ba.graph.has_edge(u, v)
            );
        }
    }

    #[test]
    fn label_size_matches_m_log_n() {
        let mut r = rng();
        let n = 1 << 14;
        for m in [2usize, 5, 8] {
            let ba = pl_gen::barabasi_albert(n, m, &mut r);
            let labeling = BaOnlineScheme.encode_history(&ba);
            let bound = ba_online_bound(n, m);
            assert!(
                (labeling.max_bits() as f64) <= bound,
                "m={m}: max {} > bound {bound}",
                labeling.max_bits()
            );
            // And the bound is tight within a factor ~2: hub degree does
            // not matter, only m does.
            assert!((labeling.max_bits() as f64) >= 0.4 * bound);
        }
    }

    #[test]
    fn hub_labels_stay_small() {
        let mut r = rng();
        let ba = pl_gen::barabasi_albert(3_000, 2, &mut r);
        let hub = pl_graph::degree::vertices_by_degree_desc(&ba.graph)[0];
        let labeling = BaOnlineScheme.encode_history(&ba);
        // The hub has huge degree but stores at most max(m, seed) ids.
        assert!(ba.graph.degree(hub) > 50);
        assert!(labeling.label(hub).bit_len() < 60);
    }
}
