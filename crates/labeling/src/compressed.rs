//! Compressed fat payloads: an engineering refinement of the threshold
//! engine.
//!
//! The paper's introduction positions labeling schemes against graph
//! *compression* (Boldi–Vigna, reference \[14\]); this module borrows the
//! simplest compression trick back. A fat label's `k`-bit bitmap is
//! wasteful when the fat–fat subgraph is sparse: a hub adjacent to only a
//! few other hubs pays `k` bits for a handful of 1s. The compressed
//! variant stores, per fat vertex, whichever of two encodings is smaller:
//!
//! * **mode 0** — the plain `k`-bit bitmap (as in Theorem 4), or
//! * **mode 1** — the gamma-coded gap list of the set positions.
//!
//! The selector costs one bit, so the maximum label size can only improve
//! over [`ThresholdScheme`](crate::threshold::ThresholdScheme) (Theorem 4's
//! guarantee still holds verbatim), while sparse fat rows shrink from `k`
//! bits to `O(ones · log k)`. Experiment E15 quantifies the effect across
//! the threshold sweep.
//!
//! ## Label format
//!
//! ```text
//! prelude (6-bit width w, w-bit scheme id), 1 bit fat flag
//! thin: gamma(deg+1), deg × w-bit neighbour scheme ids      (unchanged)
//! fat:  gamma(k+1), 1 bit mode,
//!       mode 0: k bitmap bits
//!       mode 1: gamma(ones+1), then gamma(first+1), gamma(gap)… over the
//!               sorted set positions
//! ```

use pl_graph::degree::vertices_by_degree_desc;
use pl_graph::{Graph, VertexId};

use crate::bits::BitWriter;
use crate::label::{Label, LabelRef, Labeling};
use crate::scheme::{id_width, read_prelude, write_prelude, AdjacencyDecoder, AdjacencyScheme};

/// The threshold scheme with per-vertex choice of fat-payload encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressedThresholdScheme {
    tau: usize,
}

impl CompressedThresholdScheme {
    /// A scheme whose fat vertices are exactly those of degree `≥ tau`.
    ///
    /// # Panics
    ///
    /// Panics if `tau == 0`.
    #[must_use]
    pub fn with_tau(tau: usize) -> Self {
        assert!(tau >= 1, "threshold must be at least 1");
        Self { tau }
    }

    /// The configured threshold.
    #[must_use]
    pub fn tau(&self) -> usize {
        self.tau
    }
}

/// Writes the cheaper of bitmap / gap-list for the sorted set positions
/// `ones` out of `k` slots.
fn write_fat_payload(bw: &mut BitWriter, ones: &[u64], k: usize) {
    // Cost of mode 1: gamma(ones+1) + gamma(first+1) + Σ gamma(gap).
    let gamma_cost = |x: u64| 2 * (64 - (x).leading_zeros() as usize) - 1;
    let mut list_cost = gamma_cost(ones.len() as u64 + 1);
    let mut prev = None;
    for &p in ones {
        list_cost += match prev {
            None => gamma_cost(p + 1),
            Some(q) => gamma_cost(p - q),
        };
        prev = Some(p);
    }
    if list_cost < k {
        bw.write_bit(true); // mode 1
        bw.write_gamma(ones.len() as u64 + 1);
        let mut prev = None;
        for &p in ones {
            match prev {
                None => bw.write_gamma(p + 1),
                Some(q) => bw.write_gamma(p - q),
            }
            prev = Some(p);
        }
    } else {
        bw.write_bit(false); // mode 0
        let mut bitmap = vec![false; k];
        for &p in ones {
            bitmap[p as usize] = true;
        }
        for b in bitmap {
            bw.write_bit(b);
        }
    }
}

impl AdjacencyScheme for CompressedThresholdScheme {
    type Decoder = CompressedDecoder;

    fn name(&self) -> &'static str {
        "threshold (compressed fat)"
    }

    fn encode(&self, g: &Graph) -> Labeling {
        let n = g.vertex_count();
        let w = id_width(n);
        let order = vertices_by_degree_desc(g);
        let fat_count = order.partition_point(|&v| g.degree(v) >= self.tau);
        let mut scheme_id = vec![0u64; n];
        for (i, &v) in order.iter().enumerate() {
            scheme_id[v as usize] = i as u64;
        }
        let labels = (0..n as VertexId)
            .map(|v| {
                let sid = scheme_id[v as usize];
                let fat = (sid as usize) < fat_count;
                let mut bw = BitWriter::new();
                write_prelude(&mut bw, w, sid);
                bw.write_bit(fat);
                if fat {
                    bw.write_gamma(fat_count as u64 + 1);
                    let mut ones: Vec<u64> = g
                        .neighbors(v)
                        .iter()
                        .map(|&u| scheme_id[u as usize])
                        .filter(|&sid| (sid as usize) < fat_count)
                        .collect();
                    ones.sort_unstable();
                    write_fat_payload(&mut bw, &ones, fat_count);
                } else {
                    bw.write_gamma(g.degree(v) as u64 + 1);
                    for &u in g.neighbors(v) {
                        bw.write_bits(scheme_id[u as usize], w);
                    }
                }
                Label::from(bw)
            })
            .collect();
        Labeling::new(labels)
    }
}

/// Decoder for the compressed fat/thin format. Stateless.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompressedDecoder;

impl AdjacencyDecoder for CompressedDecoder {
    fn adjacent(&self, a: LabelRef<'_>, b: LabelRef<'_>) -> bool {
        let mut ra = a.reader();
        let mut rb = b.reader();
        let (wa, ida) = read_prelude(&mut ra);
        let (_, idb) = read_prelude(&mut rb);
        if ida == idb {
            return false;
        }
        let fat_a = ra.read_bit();
        let fat_b = rb.read_bit();
        match (fat_a, fat_b) {
            (false, _) => {
                let deg = ra.read_gamma() - 1;
                (0..deg).any(|_| ra.read_bits(wa) == idb)
            }
            (_, false) => {
                let deg = rb.read_gamma() - 1;
                (0..deg).any(|_| rb.read_bits(wa) == ida)
            }
            (true, true) => {
                let k = ra.read_gamma() - 1;
                if idb >= k {
                    return false; // cross-labeling query (see threshold.rs)
                }
                if ra.read_bit() {
                    // mode 1: scan the gap list.
                    let ones = ra.read_gamma() - 1;
                    let mut pos = 0u64;
                    for i in 0..ones {
                        let delta = ra.read_gamma();
                        pos = if i == 0 { delta - 1 } else { pos + delta };
                        if pos == idb {
                            return true;
                        }
                        if pos > idb {
                            return false;
                        }
                    }
                    false
                } else {
                    ra.skip(idb as usize);
                    ra.read_bit()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threshold::ThresholdScheme;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check_all(g: &Graph, tau: usize) {
        let labeling = CompressedThresholdScheme::with_tau(tau).encode(g);
        let dec = CompressedDecoder;
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(
                    dec.adjacent(labeling.label(u), labeling.label(v)),
                    g.has_edge(u, v),
                    "tau={tau} pair ({u}, {v})"
                );
            }
        }
    }

    #[test]
    fn correct_on_small_graphs() {
        for g in [
            pl_gen::classic::star(12),
            pl_gen::classic::complete(9),
            pl_gen::classic::cycle(8),
            pl_gen::classic::grid(3, 4),
        ] {
            for tau in [1usize, 2, 4, 100] {
                check_all(&g, tau);
            }
        }
    }

    #[test]
    fn correct_on_power_law_graph_sampled() {
        let mut r = StdRng::seed_from_u64(0xC0);
        let g = pl_gen::chung_lu_power_law(2_000, 2.5, 5.0, &mut r);
        let tau = 15;
        let labeling = CompressedThresholdScheme::with_tau(tau).encode(&g);
        let dec = CompressedDecoder;
        for (u, v) in g.edges().take(3_000) {
            assert!(dec.adjacent(labeling.label(u), labeling.label(v)));
        }
        for _ in 0..3_000 {
            let u = r.gen_range(0..2_000u32);
            let v = r.gen_range(0..2_000u32);
            assert_eq!(
                dec.adjacent(labeling.label(u), labeling.label(v)),
                g.has_edge(u, v)
            );
        }
    }

    #[test]
    fn never_larger_than_plain_scheme_plus_selector() {
        let mut r = StdRng::seed_from_u64(0xC1);
        let g = pl_gen::chung_lu_power_law(3_000, 2.5, 5.0, &mut r);
        for tau in [5usize, 20, 80] {
            let plain = ThresholdScheme::with_tau(tau).encode(&g);
            let comp = CompressedThresholdScheme::with_tau(tau).encode(&g);
            for v in g.vertices() {
                assert!(
                    comp.label(v).bit_len() <= plain.label(v).bit_len() + 1,
                    "tau={tau} v={v}: {} > {} + 1",
                    comp.label(v).bit_len(),
                    plain.label(v).bit_len()
                );
            }
        }
    }

    #[test]
    fn sparse_fat_rows_shrink_dramatically() {
        // A graph with many fat vertices but almost no fat-fat edges:
        // disjoint stars. Every hub is fat; no two hubs are adjacent.
        let mut b = pl_graph::GraphBuilder::new(40 * 11);
        for s in 0..40u32 {
            let hub = s * 11;
            for leaf in 1..11u32 {
                b.add_edge(hub, hub + leaf);
            }
        }
        let g = b.build();
        let plain = ThresholdScheme::with_tau(5).encode(&g);
        let comp = CompressedThresholdScheme::with_tau(5).encode(&g);
        // Plain: every hub pays 40 bitmap bits; compressed: ~3 bits.
        assert!(
            comp.max_bits() + 30 < plain.max_bits(),
            "compressed {} vs plain {}",
            comp.max_bits(),
            plain.max_bits()
        );
    }

    #[test]
    fn dense_fat_rows_keep_bitmap() {
        // A clique: fat-fat rows are all-ones, bitmap must win.
        let g = pl_gen::classic::complete(32);
        let plain = ThresholdScheme::with_tau(2).encode(&g);
        let comp = CompressedThresholdScheme::with_tau(2).encode(&g);
        assert_eq!(comp.max_bits(), plain.max_bits() + 1); // just the selector
        check_all(&g, 2);
    }
}
