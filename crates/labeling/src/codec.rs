//! The scheme-tagged labeling container (`.plab` files) and runtime
//! decoder dispatch.
//!
//! A labeling on disk is a 1-byte scheme tag followed by the
//! [`Labeling`] wire format (v2 arena or legacy v1 — see
//! `crates/labeling/FORMAT.md`). The tag picks the decoder, keeping the
//! decoder itself graph-independent: any process holding the file — the
//! CLI, the serving engine, a remote peer — can answer queries without
//! the graph. [`AnyDecoder`] is the closed dispatch enum over the
//! decoders a tag can name, so consumers (serve, bench, CLI) depend on
//! this crate and never the reverse.

use std::fs;
use std::path::Path;

use crate::baseline::{AdjListDecoder, MoonDecoder};
use crate::distance::DistanceDecoder;
use crate::forest::OrientationDecoder;
use crate::label::{LabelRef, Labeling, WireError};
use crate::scheme::AdjacencyDecoder;
use crate::threshold::ThresholdDecoder;

/// Which decoder a labeling requires. The discriminants are the on-disk
/// and on-wire tag bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SchemeTag {
    /// Fat/thin threshold labels (powerlaw, sparse, and `tau:N` schemes
    /// share this decoder).
    Threshold = 1,
    /// Adjacency-list baseline labels.
    AdjList = 2,
    /// Low-outdegree orientation labels.
    Orientation = 3,
    /// Moon-style baseline labels.
    Moon = 4,
    /// `f`-bounded distance labels (Lemma 7); answers distance queries,
    /// and adjacency as `distance == 1`.
    Distance = 5,
}

impl SchemeTag {
    /// Every defined tag, in tag-byte order.
    pub const ALL: [SchemeTag; 5] = [
        Self::Threshold,
        Self::AdjList,
        Self::Orientation,
        Self::Moon,
        Self::Distance,
    ];

    /// Parses a tag byte.
    #[must_use]
    pub fn from_u8(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(Self::Threshold),
            2 => Some(Self::AdjList),
            3 => Some(Self::Orientation),
            4 => Some(Self::Moon),
            5 => Some(Self::Distance),
            _ => None,
        }
    }

    /// The tag byte.
    #[must_use]
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Human-readable decoder name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Threshold => "threshold",
            Self::AdjList => "adjlist",
            Self::Orientation => "orientation",
            Self::Moon => "moon",
            Self::Distance => "distance",
        }
    }

    /// `true` iff this scheme can answer distance queries.
    #[must_use]
    pub fn supports_distance(self) -> bool {
        matches!(self, Self::Distance)
    }
}

/// Runtime-dispatched decoder: one variant per [`SchemeTag`], each
/// wrapping the concrete stateless decoder. Lets a process pick the
/// decoder from a tag byte at load time while staying a plain value —
/// no trait objects, no allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnyDecoder {
    /// Fat/thin threshold decoder.
    Threshold(ThresholdDecoder),
    /// Adjacency-list decoder.
    AdjList(AdjListDecoder),
    /// Degeneracy-orientation decoder.
    Orientation(OrientationDecoder),
    /// Moon half-bitmap decoder.
    Moon(MoonDecoder),
    /// Bounded-distance decoder.
    Distance(DistanceDecoder),
}

impl AnyDecoder {
    /// The decoder `tag` names.
    #[must_use]
    pub fn for_tag(tag: SchemeTag) -> Self {
        match tag {
            SchemeTag::Threshold => Self::Threshold(ThresholdDecoder),
            SchemeTag::AdjList => Self::AdjList(AdjListDecoder),
            SchemeTag::Orientation => Self::Orientation(OrientationDecoder),
            SchemeTag::Moon => Self::Moon(MoonDecoder),
            SchemeTag::Distance => Self::Distance(DistanceDecoder),
        }
    }

    /// The tag this decoder answers for.
    #[must_use]
    pub fn tag(self) -> SchemeTag {
        match self {
            Self::Threshold(_) => SchemeTag::Threshold,
            Self::AdjList(_) => SchemeTag::AdjList,
            Self::Orientation(_) => SchemeTag::Orientation,
            Self::Moon(_) => SchemeTag::Moon,
            Self::Distance(_) => SchemeTag::Distance,
        }
    }

    /// Bounded distance between the two labeled vertices; `None` when
    /// the scheme cannot bound it (or, for [`SchemeTag::Distance`],
    /// when it exceeds `f`).
    #[must_use]
    pub fn distance(self, a: LabelRef<'_>, b: LabelRef<'_>) -> Option<u32> {
        match self {
            Self::Distance(d) => d.distance(a, b),
            _ => None,
        }
    }
}

impl AdjacencyDecoder for AnyDecoder {
    /// Dispatches to the wrapped decoder. For [`SchemeTag::Distance`],
    /// adjacency is `distance == 1`.
    fn adjacent(&self, a: LabelRef<'_>, b: LabelRef<'_>) -> bool {
        match self {
            Self::Threshold(d) => d.adjacent(a, b),
            Self::AdjList(d) => d.adjacent(a, b),
            Self::Orientation(d) => d.adjacent(a, b),
            Self::Moon(d) => d.adjacent(a, b),
            Self::Distance(d) => d.distance(a, b) == Some(1),
        }
    }
}

/// Error loading a tagged labeling.
#[derive(Debug)]
pub enum FormatError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The file was empty (no tag byte).
    Empty,
    /// The tag byte named no known scheme.
    UnknownTag(u8),
    /// The labeling body did not parse.
    Wire(WireError),
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "reading labeling: {e}"),
            Self::Empty => write!(f, "empty labeling file"),
            Self::UnknownTag(t) => write!(f, "unknown scheme tag {t}"),
            Self::Wire(e) => write!(f, "parsing labeling: {e}"),
        }
    }
}

impl std::error::Error for FormatError {}

impl From<WireError> for FormatError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

impl From<std::io::Error> for FormatError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// A labeling plus the tag naming its decoder — the unit the server loads
/// and the CLI writes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaggedLabeling {
    /// Decoder selector.
    pub tag: SchemeTag,
    /// The labels.
    pub labeling: Labeling,
}

impl TaggedLabeling {
    /// Serializes as tag byte + labeling wire format (v2).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![self.tag.as_u8()];
        out.extend_from_slice(&self.labeling.to_bytes());
        out
    }

    /// Parses the container format; safe on untrusted bytes. Accepts
    /// both v2 and legacy v1 labeling bodies.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, FormatError> {
        let (&tag, body) = buf.split_first().ok_or(FormatError::Empty)?;
        let tag = SchemeTag::from_u8(tag).ok_or(FormatError::UnknownTag(tag))?;
        let labeling = Labeling::from_bytes(body)?;
        Ok(Self { tag, labeling })
    }

    /// Reads a `.plab` file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, FormatError> {
        Self::from_bytes(&fs::read(path)?)
    }

    /// Writes a `.plab` file.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        fs::write(path, self.to_bytes())
    }

    /// The decoder this labeling requires.
    #[must_use]
    pub fn decoder(&self) -> AnyDecoder {
        AnyDecoder::for_tag(self.tag)
    }
}

/// Dispatches an adjacency query to the decoder `tag` names. For
/// [`SchemeTag::Distance`], adjacency is `distance == 1`.
#[must_use]
pub fn decode_adjacent(tag: SchemeTag, a: LabelRef<'_>, b: LabelRef<'_>) -> bool {
    AnyDecoder::for_tag(tag).adjacent(a, b)
}

/// Dispatches a distance query; `None` when the scheme cannot bound the
/// distance (or, for [`SchemeTag::Distance`], when it exceeds `f`).
#[must_use]
pub fn decode_distance(tag: SchemeTag, a: LabelRef<'_>, b: LabelRef<'_>) -> Option<u32> {
    AnyDecoder::for_tag(tag).distance(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::AdjacencyScheme;
    use crate::ThresholdScheme;

    #[test]
    fn tag_round_trip() {
        for tag in SchemeTag::ALL {
            assert_eq!(SchemeTag::from_u8(tag.as_u8()), Some(tag));
            assert_eq!(AnyDecoder::for_tag(tag).tag(), tag);
        }
        assert_eq!(SchemeTag::from_u8(0), None);
        assert_eq!(SchemeTag::from_u8(200), None);
    }

    #[test]
    fn container_round_trip_and_dispatch() {
        let g = pl_graph::builder::from_edges(6, [(0, 1), (1, 2), (2, 3), (0, 4)]);
        let tagged = TaggedLabeling {
            tag: SchemeTag::Threshold,
            labeling: ThresholdScheme::with_tau(2).encode(&g),
        };
        let back = TaggedLabeling::from_bytes(&tagged.to_bytes()).unwrap();
        assert_eq!(back, tagged);
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(
                    decode_adjacent(back.tag, back.labeling.label(u), back.labeling.label(v)),
                    g.has_edge(u, v)
                );
            }
        }
    }

    #[test]
    fn bad_container_is_an_error() {
        assert!(matches!(
            TaggedLabeling::from_bytes(&[]),
            Err(FormatError::Empty)
        ));
        assert!(matches!(
            TaggedLabeling::from_bytes(&[9, 1, 2, 3]),
            Err(FormatError::UnknownTag(9))
        ));
        assert!(matches!(
            TaggedLabeling::from_bytes(&[1, 1, 2, 3]),
            Err(FormatError::Wire(_))
        ));
    }
}
