//! Baseline schemes the paper compares against implicitly:
//! plain adjacency lists and Moon's general-graph bitmap scheme.

use pl_graph::{Graph, VertexId};

use crate::bits::BitWriter;
use crate::label::{Label, LabelRef, Labeling};
use crate::scheme::{id_width, read_prelude, write_prelude, AdjacencyDecoder, AdjacencyScheme};

/// The naive adjacency-list labeling: every vertex stores all of its
/// neighbours' identifiers. Maximum label `≈ Δ·log n` bits — tiny on
/// average for sparse graphs but `Θ(n log n)` at a hub, which is exactly
/// the failure mode the paper's fat/thin split removes.
///
/// ## Label format
///
/// ```text
/// prelude (6-bit width w, w-bit id), gamma(deg+1), deg × w-bit ids
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdjListScheme;

impl AdjacencyScheme for AdjListScheme {
    type Decoder = AdjListDecoder;

    fn name(&self) -> &'static str {
        "adjacency list"
    }

    fn encode(&self, g: &Graph) -> Labeling {
        let n = g.vertex_count();
        let w = id_width(n);
        let labels = (0..n as VertexId)
            .map(|v| {
                let mut bw = BitWriter::new();
                write_prelude(&mut bw, w, u64::from(v));
                bw.write_gamma(g.degree(v) as u64 + 1);
                for &u in g.neighbors(v) {
                    bw.write_bits(u64::from(u), w);
                }
                Label::from(bw)
            })
            .collect();
        Labeling::new(labels)
    }
}

/// Decoder for [`AdjListScheme`]: scan the first label's list for the
/// second label's id (both lists are complete; one suffices).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdjListDecoder;

impl AdjacencyDecoder for AdjListDecoder {
    fn adjacent(&self, a: LabelRef<'_>, b: LabelRef<'_>) -> bool {
        let mut ra = a.reader();
        let (w, ida) = read_prelude(&mut ra);
        let mut rb = b.reader();
        let (_, idb) = read_prelude(&mut rb);
        if ida == idb {
            return false;
        }
        let deg = ra.read_gamma() - 1;
        (0..deg).any(|_| ra.read_bits(w) == idb)
    }
}

/// Moon's classic general-graph scheme, made explicit: vertex `v` stores a
/// bitmap of its adjacency to every vertex with a *smaller* identifier.
/// Maximum label `n + O(log n)` bits — the `n/2`-style baseline the paper's
/// lower bounds are calibrated against. Only sensible for small graphs.
///
/// ## Label format
///
/// ```text
/// prelude (6-bit width w, w-bit id), then exactly `id` bitmap bits
/// (bit j = adjacent to vertex j, for j < id)
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MoonScheme;

impl AdjacencyScheme for MoonScheme {
    type Decoder = MoonDecoder;

    fn name(&self) -> &'static str {
        "half bitmap (Moon)"
    }

    fn encode(&self, g: &Graph) -> Labeling {
        let n = g.vertex_count();
        let w = id_width(n);
        let labels = (0..n as VertexId)
            .map(|v| {
                let mut bw = BitWriter::new();
                write_prelude(&mut bw, w, u64::from(v));
                let nbrs = g.neighbors(v);
                let mut it = nbrs.iter().peekable();
                for j in 0..v {
                    // Neighbour lists are sorted: advance in lockstep.
                    while it.peek().is_some_and(|&&u| u < j) {
                        it.next();
                    }
                    bw.write_bit(it.peek().is_some_and(|&&u| u == j));
                }
                Label::from(bw)
            })
            .collect();
        Labeling::new(labels)
    }
}

/// Decoder for [`MoonScheme`]: the higher-id label holds the bit for the
/// lower-id vertex.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MoonDecoder;

impl AdjacencyDecoder for MoonDecoder {
    fn adjacent(&self, a: LabelRef<'_>, b: LabelRef<'_>) -> bool {
        let mut ra = a.reader();
        let (_, ida) = read_prelude(&mut ra);
        let mut rb = b.reader();
        let (_, idb) = read_prelude(&mut rb);
        if ida == idb {
            return false;
        }
        let (mut hi, lo) = if ida > idb { (ra, idb) } else { (rb, ida) };
        hi.skip(lo as usize);
        hi.read_bit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_graph::builder::from_edges;
    use pl_graph::GraphBuilder;

    fn check_all<S: AdjacencyScheme>(scheme: &S, g: &Graph)
    where
        S::Decoder: Default,
    {
        let labeling = scheme.encode(g);
        let dec = scheme.decoder();
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(
                    dec.adjacent(labeling.label(u), labeling.label(v)),
                    g.has_edge(u, v),
                    "{} failed on ({u}, {v})",
                    scheme.name()
                );
            }
        }
    }

    fn test_graphs() -> Vec<Graph> {
        vec![
            GraphBuilder::new(1).build(),
            from_edges(2, [(0, 1)]),
            from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]),
            from_edges(6, [(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]),
            from_edges(7, [(0, 1), (2, 3), (4, 5)]),
            pl_gen::classic::complete(8),
        ]
    }

    #[test]
    fn adjlist_correct() {
        for g in test_graphs() {
            check_all(&AdjListScheme, &g);
        }
    }

    #[test]
    fn moon_correct() {
        for g in test_graphs() {
            check_all(&MoonScheme, &g);
        }
    }

    #[test]
    fn moon_label_sizes() {
        let g = pl_gen::classic::complete(32);
        let labeling = MoonScheme.encode(&g);
        // Vertex 31 stores 31 bitmap bits + prelude (6 + 5).
        assert_eq!(labeling.label(31).bit_len(), 6 + 5 + 31);
        assert_eq!(labeling.label(0).bit_len(), 6 + 5);
        assert!(labeling.max_bits() <= 32 + 11);
    }

    #[test]
    fn adjlist_hub_label_is_large() {
        let g = pl_gen::classic::star(1024);
        let labeling = AdjListScheme.encode(&g);
        let hub = labeling.label(0).bit_len();
        let leaf = labeling.label(1).bit_len();
        assert!(hub > 1023 * 10, "hub {hub} bits");
        assert!(leaf < 40, "leaf {leaf} bits");
    }

    #[test]
    fn adjlist_on_random_graph() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let g = pl_gen::er::gnm(100, 300, &mut rng);
        check_all(&AdjListScheme, &g);
        check_all(&MoonScheme, &g);
    }
}
