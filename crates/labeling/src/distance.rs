//! The `f(n)`-bounded distance labeling scheme of Lemma 7.
//!
//! For distances up to a budget `f`, each label carries:
//!
//! * **(i)** a table of distances (capped at `f`) to *all* fat nodes —
//!   vertices of degree at least `n^{1/(α−1+f)}`;
//! * **(ii)** a table of distances to the thin nodes reachable within `f`
//!   hops along paths whose *interior* vertices are all thin;
//! * **(iii)** a fat/thin bit (fat nodes also carry their index into the
//!   fat table).
//!
//! The decoder reconstructs the exact distance for any pair at distance
//! `≤ f`: either some shortest path avoids fat interiors (then part (ii)
//! of an endpoint has it), or it passes through a fat node `g` (then
//! `d(u,g) + d(g,v)` from the two part-(i) tables equals it). Distances
//! beyond `f` are reported as [`None`] — the paper's point being that
//! power-law graphs have `Θ(log n)` diameter (Chung–Lu), so a small `f`
//! already answers most queries.
//!
//! ## Label format
//!
//! ```text
//! prelude (6-bit width w, w-bit id), gamma(f+1)
//! 1 bit fat flag, [w-bit fat index if fat]
//! gamma(k+1), k × d-bit capped distances      (part i; d = bits of f+1)
//! gamma(t+1), t × (w-bit id, d-bit distance)  (part ii)
//! ```

use pl_graph::degree::vertices_by_degree_desc;
use pl_graph::traversal::{bfs_bounded, bfs_bounded_through};
use pl_graph::{Graph, VertexId};

use crate::bits::BitWriter;
use crate::label::{Label, LabelRef, Labeling};
use crate::scheme::{id_width, read_prelude, write_prelude};
use crate::theory::distance_fat_threshold;

/// The f-bounded distance scheme of Lemma 7.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceScheme {
    alpha: f64,
    f: u32,
    threshold_override: Option<usize>,
}

impl DistanceScheme {
    /// A scheme answering distances up to `f`, with the Lemma 7 fat
    /// threshold `n^{1/(α−1+f)}`.
    ///
    /// # Panics
    ///
    /// Panics if `α <= 1` or `f == 0`.
    #[must_use]
    pub fn new(alpha: f64, f: u32) -> Self {
        assert!(alpha > 1.0, "alpha must exceed 1, got {alpha}");
        assert!(f >= 1, "the distance budget f must be at least 1");
        Self {
            alpha,
            f,
            threshold_override: None,
        }
    }

    /// Same scheme with an explicit fat degree threshold (for ablations).
    #[must_use]
    pub fn with_threshold(alpha: f64, f: u32, threshold: usize) -> Self {
        let mut s = Self::new(alpha, f);
        s.threshold_override = Some(threshold.max(1));
        s
    }

    /// The distance budget `f`.
    #[must_use]
    pub fn f(&self) -> u32 {
        self.f
    }

    /// The fat degree threshold used for an `n`-vertex graph.
    #[must_use]
    pub fn threshold(&self, n: usize) -> usize {
        self.threshold_override
            .unwrap_or_else(|| {
                distance_fat_threshold(n, self.alpha, self.f as usize).ceil() as usize
            })
            .max(1)
    }

    /// Scheme name for experiment tables.
    #[must_use]
    pub fn name(&self) -> &'static str {
        "f-bounded distance (Lem 7)"
    }

    /// Labels every vertex of `g`.
    #[must_use]
    pub fn encode(&self, g: &Graph) -> Labeling {
        let n = g.vertex_count();
        let w = id_width(n);
        let f = self.f;
        let dw = bit_width(u64::from(f) + 1);
        let threshold = self.threshold(n);

        // Fat nodes, indexed 0..k-1 in degree-descending order.
        let order = vertices_by_degree_desc(g);
        let k = order.partition_point(|&v| g.degree(v) >= threshold);
        let fat: Vec<VertexId> = order[..k].to_vec();
        let mut fat_index = vec![u32::MAX; n];
        for (j, &v) in fat.iter().enumerate() {
            fat_index[v as usize] = j as u32;
        }

        // Part (i): bounded BFS from every fat node. Sentinel f+1 = "> f".
        let sentinel = f + 1;
        let mut fat_dist: Vec<Vec<u32>> = vec![vec![sentinel; k]; n];
        for (j, &src) in fat.iter().enumerate() {
            for (v, d) in bfs_bounded(g, src, f) {
                fat_dist[v as usize][j] = d;
            }
        }

        let is_thin = |v: VertexId| fat_index[v as usize] == u32::MAX;

        let labels = (0..n as VertexId)
            .map(|v| {
                let mut bw = BitWriter::new();
                write_prelude(&mut bw, w, u64::from(v));
                bw.write_gamma(u64::from(f) + 1);
                if fat_index[v as usize] != u32::MAX {
                    bw.write_bit(true);
                    bw.write_bits(u64::from(fat_index[v as usize]), w);
                } else {
                    bw.write_bit(false);
                }
                bw.write_gamma(k as u64 + 1);
                for &d in &fat_dist[v as usize] {
                    bw.write_bits(u64::from(d), dw);
                }
                // Part (ii): thin targets via thin-interior paths.
                let ball = bfs_bounded_through(g, v, f, is_thin);
                let entries: Vec<(VertexId, u32)> = ball
                    .into_iter()
                    .filter(|&(u, _)| u != v && is_thin(u))
                    .collect();
                bw.write_gamma(entries.len() as u64 + 1);
                for (u, d) in entries {
                    bw.write_bits(u64::from(u), w);
                    bw.write_bits(u64::from(d), dw);
                }
                Label::from(bw)
            })
            .collect();
        Labeling::new(labels)
    }

    /// The matching stateless decoder.
    #[must_use]
    pub fn decoder(&self) -> DistanceDecoder {
        DistanceDecoder
    }
}

/// Number of bits needed to store values `0..=max`.
fn bit_width(max: u64) -> usize {
    (64 - max.leading_zeros() as usize).max(1)
}

/// A parsed distance label (decoder-internal).
struct Parsed {
    id: u64,
    f: u32,
    fat_index: Option<usize>,
    fat_table: Vec<u32>,
    thin: Vec<(u64, u32)>,
}

fn parse(l: LabelRef<'_>) -> Parsed {
    let mut r = l.reader();
    let (w, id) = read_prelude(&mut r);
    let f = (r.read_gamma() - 1) as u32;
    let dw = bit_width(u64::from(f) + 1);
    let fat_index = r.read_bit().then(|| r.read_bits(w) as usize);
    let k = (r.read_gamma() - 1) as usize;
    let fat_table = (0..k).map(|_| r.read_bits(dw) as u32).collect();
    let t = (r.read_gamma() - 1) as usize;
    let thin = (0..t)
        .map(|_| {
            let u = r.read_bits(w);
            let d = r.read_bits(dw) as u32;
            (u, d)
        })
        .collect();
    Parsed {
        id,
        f,
        fat_index,
        fat_table,
        thin,
    }
}

/// Stateless decoder for [`DistanceScheme`].
///
/// [`distance`](Self::distance) returns `Some(d)` with the exact hop
/// distance whenever `d ≤ f`, and `None` when the distance exceeds `f`
/// (or the vertices are disconnected).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistanceDecoder;

impl DistanceDecoder {
    /// Exact bounded distance between the two labeled vertices.
    #[must_use]
    pub fn distance(&self, a: LabelRef<'_>, b: LabelRef<'_>) -> Option<u32> {
        let pa = parse(a);
        let pb = parse(b);
        debug_assert_eq!(pa.f, pb.f, "labels from different schemes");
        if pa.id == pb.id {
            return Some(0);
        }
        let f = pa.f;
        let mut best = u32::MAX;
        // Fat endpoints: read the other side's part (i) directly.
        if let Some(j) = pb.fat_index {
            best = best.min(pa.fat_table[j]);
        }
        if let Some(i) = pa.fat_index {
            best = best.min(pb.fat_table[i]);
        }
        if pa.fat_index.is_none() && pb.fat_index.is_none() {
            // Thin–thin: part (ii) lookups plus the best fat relay.
            if let Some(&(_, d)) = pa.thin.iter().find(|&&(u, _)| u == pb.id) {
                best = best.min(d);
            }
            if let Some(&(_, d)) = pb.thin.iter().find(|&&(u, _)| u == pa.id) {
                best = best.min(d);
            }
            for (da, db) in pa.fat_table.iter().zip(&pb.fat_table) {
                if *da <= f && *db <= f {
                    best = best.min(da + db);
                }
            }
        }
        (best <= f).then_some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_graph::traversal::bfs_distances;
    use pl_graph::UNREACHABLE;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xD157)
    }

    /// Exhaustively checks the decoder against BFS ground truth.
    fn check_exact(g: &Graph, scheme: &DistanceScheme) {
        let labeling = scheme.encode(g);
        let dec = scheme.decoder();
        let f = scheme.f();
        for u in g.vertices() {
            let truth = bfs_distances(g, u);
            for v in g.vertices() {
                let got = dec.distance(labeling.label(u), labeling.label(v));
                let want = match truth[v as usize] {
                    UNREACHABLE => None,
                    d if d > f => None,
                    d => Some(d),
                };
                assert_eq!(got, want, "pair ({u}, {v}), f = {f}");
            }
        }
    }

    #[test]
    fn exact_on_path() {
        for f in [1u32, 2, 3, 7] {
            check_exact(&pl_gen::classic::path(15), &DistanceScheme::new(2.5, f));
        }
    }

    #[test]
    fn exact_on_cycle_and_grid() {
        check_exact(&pl_gen::classic::cycle(12), &DistanceScheme::new(2.5, 3));
        check_exact(&pl_gen::classic::grid(4, 5), &DistanceScheme::new(2.5, 4));
    }

    #[test]
    fn exact_on_star() {
        // The hub is fat (threshold small): thin-thin pairs must route
        // through the fat relay term.
        check_exact(&pl_gen::classic::star(30), &DistanceScheme::new(2.5, 2));
    }

    #[test]
    fn exact_on_disconnected() {
        let g = pl_graph::builder::from_edges(7, [(0, 1), (1, 2), (4, 5)]);
        check_exact(&g, &DistanceScheme::new(2.5, 3));
    }

    #[test]
    fn exact_on_power_law_graph() {
        let mut r = rng();
        let g = pl_gen::chung_lu_power_law(400, 2.5, 4.0, &mut r);
        for f in [2u32, 3] {
            check_exact(&g, &DistanceScheme::new(2.5, f));
        }
    }

    #[test]
    fn exact_with_extreme_thresholds() {
        let mut r = rng();
        let g = pl_gen::chung_lu_power_law(200, 2.5, 4.0, &mut r);
        // All-fat and all-thin degenerate cases must still be exact.
        check_exact(&g, &DistanceScheme::with_threshold(2.5, 3, 1));
        check_exact(&g, &DistanceScheme::with_threshold(2.5, 3, 10_000));
    }

    #[test]
    fn self_distance_zero() {
        let g = pl_gen::classic::path(4);
        let s = DistanceScheme::new(2.5, 2);
        let labeling = s.encode(&g);
        assert_eq!(
            s.decoder().distance(labeling.label(2), labeling.label(2)),
            Some(0)
        );
    }

    #[test]
    fn labels_sublinear_for_every_f() {
        // There is no monotonicity in f at small n (smaller f raises the
        // fat threshold, which can inflate the thin-ball tables), but every
        // choice must stay well below the trivial n·log n distance table.
        let mut r = rng();
        let n = 2_000;
        let g = pl_gen::chung_lu_power_law(n, 2.5, 4.0, &mut r);
        let trivial = n * (id_width(n) + 3);
        for f in [2u32, 3, 5] {
            let bits = DistanceScheme::new(2.5, f).encode(&g).max_bits();
            assert!(
                bits * 2 < trivial,
                "f={f}: {bits} bits vs trivial {trivial}"
            );
        }
    }

    #[test]
    fn sublinear_labels_on_power_law_graph() {
        let mut r = rng();
        let n = 4_000;
        let g = pl_gen::chung_lu_power_law(n, 2.5, 4.0, &mut r);
        let labeling = DistanceScheme::new(2.5, 2).encode(&g);
        // o(n) labels: the whole point of Lemma 7. n·w would be ~48k bits.
        let nw = n * id_width(n);
        assert!(
            labeling.max_bits() * 3 < nw,
            "max label {} bits vs n·w = {nw}",
            labeling.max_bits()
        );
    }

    #[test]
    fn threshold_override_respected() {
        let s = DistanceScheme::with_threshold(2.5, 3, 42);
        assert_eq!(s.threshold(1_000_000), 42);
        let s2 = DistanceScheme::new(2.5, 3);
        let expect = distance_fat_threshold(100_000, 2.5, 3).ceil() as usize;
        assert_eq!(s2.threshold(100_000), expect);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_zero_f() {
        let _ = DistanceScheme::new(2.5, 0);
    }
}
